"""ABL4 — speculative-subtree cancellation (paper §IV-C prose).

The paper's choice mechanism merely *ignores* losing evaluations; this
repo's layer 4 can optionally propagate cancellations.  The bench measures
the drain-time and traffic effect on the SAT suite.  Cancels travel at the
same one-hop-per-step speed as the work frontier, so the win is in drain
time and suppressed replies rather than prevented invocations.
"""

from __future__ import annotations

import pytest

from repro.apps.sat import solve_on_machine
from repro.bench import format_table, sat_suite
from repro.topology import Torus

DIMS = (10, 10)


def run_cancellation_sweep(preset):
    problems = sat_suite(preset)
    rows = []
    for label, cancellation in (("ignore (paper)", False), ("cancel", True)):
        cts, sents, completions = [], [], []
        for i, cnf in enumerate(problems):
            res = solve_on_machine(
                cnf,
                Torus(DIMS),
                cancellation=cancellation,
                simplify="none",
                seed=preset.seed + i,
                max_steps=preset.max_steps,
            )
            assert res.verified
            cts.append(res.report.computation_time)
            sents.append(res.report.sent_total)
            completions.append(res.engine_stats.completions)
        n = len(problems)
        rows.append(
            {
                "config": label,
                "ct": sum(cts) / n,
                "sent": sum(sents) / n,
                "completions": sum(completions) / n,
            }
        )
    return rows


def test_bench_cancellation(benchmark, preset, emit):
    rows = benchmark.pedantic(
        run_cancellation_sweep, args=(preset,), rounds=1, iterations=1
    )
    emit(format_table(
        ["config", "mean drain time", "mean msgs", "mean completions"],
        [
            [r["config"], round(r["ct"], 1), round(r["sent"]), round(r["completions"])]
            for r in rows
        ],
        title="ABL4 — choice losers: ignored vs cancelled (100-core torus)",
    ))
    ignore, cancel = rows[0], rows[1]
    # cancellation suppresses replies of abandoned subtrees
    assert cancel["completions"] < ignore["completions"]
    # and never slows the drain
    assert cancel["ct"] <= ignore["ct"] * 1.02
