"""ABL4 — speculative-subtree cancellation (paper §IV-C prose).

The paper's choice mechanism merely *ignores* losing evaluations; this
repo's layer 4 can optionally propagate cancellations.  The bench measures
the drain-time and traffic effect on the SAT suite.  Cancels travel at the
same one-hop-per-step speed as the work frontier, so the win is in drain
time and suppressed replies rather than prevented invocations.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, sat_suite
from repro.parallel import SatTask, solve_sat_tasks
from repro.topology import Torus

DIMS = (10, 10)
CONFIGS = (("ignore (paper)", False), ("cancel", True))


def run_cancellation_sweep(preset, jobs=None):
    problems = sat_suite(preset)
    tasks = [
        SatTask(
            cnf,
            Torus(DIMS),
            cancellation=cancellation,
            simplify="none",
            seed=preset.seed + i,
            max_steps=preset.max_steps,
        )
        for _, cancellation in CONFIGS
        for i, cnf in enumerate(problems)
    ]
    outcomes = solve_sat_tasks(tasks, jobs=jobs)
    n = len(problems)
    rows = []
    for j, (label, _) in enumerate(CONFIGS):
        outs = outcomes[j * n : (j + 1) * n]
        assert all(o.verified for o in outs)
        rows.append(
            {
                "config": label,
                "ct": sum(o.computation_time for o in outs) / n,
                "sent": sum(o.sent_total for o in outs) / n,
                "completions": sum(o.completions for o in outs) / n,
            }
        )
    return rows


def test_bench_cancellation(benchmark, preset, emit):
    rows = benchmark.pedantic(
        run_cancellation_sweep, args=(preset,), rounds=1, iterations=1
    )
    emit(format_table(
        ["config", "mean drain time", "mean msgs", "mean completions"],
        [
            [r["config"], round(r["ct"], 1), round(r["sent"]), round(r["completions"])]
            for r in rows
        ],
        title="ABL4 — choice losers: ignored vs cancelled (100-core torus)",
    ))
    ignore, cancel = rows[0], rows[1]
    # cancellation suppresses replies of abandoned subtrees
    assert cancel["completions"] < ignore["completions"]
    # and never slows the drain
    assert cancel["ct"] <= ignore["ct"] * 1.02
