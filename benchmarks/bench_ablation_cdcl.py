"""ABL9 — barebone DPLL vs conflict-driven learning (paper §V-B prose).

"In practice, many state-of-the-art SAT solvers implement additional
heuristics such as conflict-driven learning and non-chronological
backtracking to prune the search space."  The paper sets these aside to
focus on mapping/topology; this ablation quantifies the search-effort gap
on the benchmark suite, sequentially (learning does not distribute in the
paper's model — a learned clause would need global broadcast, exactly the
kind of global state hyperspace machines avoid).
"""

from __future__ import annotations

import pytest

from repro.apps.sat import cdcl_solve, dpll_solve, uniform_random_ksat
from repro.bench import format_table
from repro.rng import SeedSequence


def hard_suite(n_problems=12, n_vars=18, ratio=5.0, seed=99):
    """UNSAT-leaning instances past the phase transition — the regime where
    conflict-driven learning pays (the easy all-SAT uf20-91 suite solves in
    a dozen decisions either way and shows no gap)."""
    seeds = SeedSequence(seed)
    return [
        uniform_random_ksat(n_vars, int(n_vars * ratio), 3, rng)
        for rng in seeds.indexed("abl9-hard", n_problems)
    ]


def run_cdcl_sweep(preset):
    problems = hard_suite()
    rows = []
    for heuristic in ("first", "max_occurrence"):
        branches = [dpll_solve(c, heuristic=heuristic).stats.branches for c in problems]
        rows.append({
            "solver": f"DPLL ({heuristic})",
            "effort": sum(branches) / len(branches),
            "unit": "branches",
        })
    stats = [cdcl_solve(c).stats for c in problems]
    rows.append({
        "solver": "CDCL (1-UIP, VSIDS, Luby)",
        "effort": sum(s.decisions for s in stats) / len(stats),
        "unit": "decisions",
    })
    rows.append({
        "solver": "CDCL conflicts",
        "effort": sum(s.conflicts for s in stats) / len(stats),
        "unit": "conflicts",
    })
    return rows


def test_bench_dpll_vs_cdcl(benchmark, preset, emit):
    rows = benchmark.pedantic(run_cdcl_sweep, args=(preset,), rounds=1, iterations=1)
    emit(format_table(
        ["solver", "mean search effort", "unit"],
        [[r["solver"], round(r["effort"], 1), r["unit"]] for r in rows],
        title="ABL9 — sequential search effort (18 vars, clause ratio 5.0, mostly UNSAT)",
    ))
    by = {r["solver"]: r["effort"] for r in rows}
    # learning + VSIDS explores less than the barebone naive-heuristic DPLL
    assert by["CDCL (1-UIP, VSIDS, Luby)"] < by["DPLL (first)"]
