"""ABL6 — branching-heuristic sweep (paper §V-B prose).

The paper's literal selection is "an algorithm-independent heuristic" it
never names.  This bench sweeps the classic candidates for both the
sequential reference solver (search-tree size) and the distributed solver
(computation time), showing the layers tolerate any heuristic and how much
the choice matters.
"""

from __future__ import annotations

import random

import pytest

from repro.apps.sat import dpll_solve
from repro.bench import format_table, sat_suite
from repro.parallel import SatTask, solve_sat_tasks
from repro.topology import Torus

HEURISTICS = ("first", "max_occurrence", "jeroslow_wang", "moms")
DIMS = (10, 10)


def run_heuristic_sweep(preset, jobs=None):
    problems = sat_suite(preset)
    tasks = [
        SatTask(
            cnf,
            Torus(DIMS),
            heuristic=heuristic,
            simplify="single",
            seed=preset.seed + i,
            max_steps=preset.max_steps,
        )
        for heuristic in HEURISTICS
        for i, cnf in enumerate(problems)
    ]
    outcomes = solve_sat_tasks(tasks, jobs=jobs)
    n = len(problems)
    rows = []
    for j, heuristic in enumerate(HEURISTICS):
        branches = []
        for cnf in problems:
            seq = dpll_solve(cnf, heuristic=heuristic)
            assert seq.satisfiable
            branches.append(seq.stats.branches)
        outs = outcomes[j * n : (j + 1) * n]
        assert all(o.verified for o in outs)
        rows.append(
            {
                "heuristic": heuristic,
                "seq_branches": sum(branches) / n,
                "dist_ct": sum(o.computation_time for o in outs) / n,
            }
        )
    return rows


def test_bench_heuristics(benchmark, preset, emit):
    rows = benchmark.pedantic(
        run_heuristic_sweep, args=(preset,), rounds=1, iterations=1
    )
    emit(format_table(
        ["heuristic", "sequential branches", "distributed ct"],
        [
            [r["heuristic"], round(r["seq_branches"], 1), round(r["dist_ct"], 1)]
            for r in rows
        ],
        title="ABL6 — branching heuristic sweep (Listing-4 solver)",
    ))
    # every heuristic solved every problem correctly (asserted inline);
    # informed heuristics should not lose badly to naive first-literal
    by = {r["heuristic"]: r for r in rows}
    assert by["max_occurrence"]["seq_branches"] <= 3 * by["first"]["seq_branches"]
    assert all(r["dist_ct"] > 0 for r in rows)
