"""ABL3 — cross-layer optimization hints (paper §III-B3).

"Mapping algorithms can exploit such knowledge to further optimize load
balancing across the mesh (e.g. by delegating larger sub-problems to less
utilized sub-regions)."

The paper proposes hints in prose without evaluating them; this ablation
does, and finds a subtlety the prose misses: **on a hyperspace machine a
delegated subtree does not stay at the neighbour it was sent to — it
diffuses onward** — so a neighbour's near-term load is O(1) per subcall
regardless of subtree size.  Hints scaled like subtree magnitude
(e.g. fib's phi**n) therefore *mislead* the mapper, while unit-scaled
outstanding-call counting (the default) is well calibrated.  The bench
pins both directions:

* unit-scale hints match the plain adaptive mapper on fib;
* raw magnitude hints are measurably worse;
* knapsack's fractional-bound hints (value-scaled, same problem) do not
  beat the unit default either.
"""

from __future__ import annotations

import random

import pytest

from repro.apps.fib import fib, fib_hinted
from repro.apps.knapsack import make_knapsack_solver, random_knapsack_problem, sequential_knapsack
from repro.bench import format_table
from repro.engine import RunSpec, execute

DIMS = (8, 8)
TOPOLOGY = "torus:" + "x".join(str(d) for d in DIMS)


def run_fib_hint_sweep(n=15):
    rows = []
    configs = (
        ("lbn baseline", "lbn", fib),
        ("hint, unit-scale", "hint", fib),
        ("hint, magnitude (phi^n)", "hint", fib_hinted),
    )
    for label, mapper, fn in configs:
        spec = RunSpec(
            workload="custom", workload_params={},
            topology=TOPOLOGY, mapper=mapper, seed=1, drain=True,
        )
        run = execute(spec, fn=fn, args=n)
        assert run.result == 610
        rows.append({"config": label, "ct": run.report.computation_time})
    return rows


def run_knapsack_hint_sweep(n_problems=4, n_items=12):
    rng = random.Random(2024)
    problems = [random_knapsack_problem(n_items, 60, rng) for _ in range(n_problems)]
    rows = []
    for label, use_hints in (("bound hints", True), ("unit default", False)):
        cts = []
        for i, prob in enumerate(problems):
            solver = make_knapsack_solver(use_hints=use_hints, prune=False)
            spec = RunSpec(
                workload="custom", workload_params={},
                topology=TOPOLOGY, mapper="hint", seed=10 + i, drain=True,
            )
            run = execute(spec, fn=solver, args=prob)
            assert run.result == sequential_knapsack(prob.items, prob.capacity)
            cts.append(run.report.computation_time)
        rows.append({"config": label, "ct": sum(cts) / len(cts)})
    return rows


def test_bench_fib_hint_scaling(benchmark, emit):
    rows = benchmark.pedantic(run_fib_hint_sweep, rounds=1, iterations=1)
    emit(format_table(
        ["config", "computation time"],
        [[r["config"], round(r["ct"], 1)] for r in rows],
        title="ABL3a — hint scaling on fib(15) (64-core torus)",
    ))
    by = {r["config"]: r["ct"] for r in rows}
    # unit-scale hints are as good as the plain adaptive mapper ...
    assert by["hint, unit-scale"] <= 1.1 * by["lbn baseline"]
    # ... while magnitude hints mislead (work diffuses off the neighbour)
    assert by["hint, magnitude (phi^n)"] > by["hint, unit-scale"]


def test_bench_knapsack_hints(benchmark, emit):
    rows = benchmark.pedantic(run_knapsack_hint_sweep, rounds=1, iterations=1)
    emit(format_table(
        ["config", "mean computation time"],
        [[r["config"], round(r["ct"], 1)] for r in rows],
        title="ABL3b — knapsack fractional-bound hints (64-core torus)",
    ))
    by = {r["config"]: r["ct"] for r in rows}
    # value-scaled bound hints carry no load signal either; the unit
    # default stays within a comfortable margin of (usually beats) them
    assert by["unit default"] <= 1.25 * by["bound hints"]
