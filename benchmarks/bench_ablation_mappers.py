"""ABL2 — problem-specific tuning (paper §III-B2 prose).

"An application that makes a fixed number of recursive subcalls ... has a
predictable unfolding behaviour and may be more efficiently executed by a
static mapping algorithm.  A static mapper does not exhaust the underlying
message transfer infrastructure by exchanging status updates."

The bench pins down that exact trade on a fixed-fan-out workload
(fork-join Fibonacci): static round robin moves the minimum number of
messages, while the adaptive mapper's advantage in steps comes at the
price of status traffic on the interconnect.  On the irregular SAT
workload the adaptive mapper wins outright at this machine size.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, sat_suite
from repro.engine import RunSpec, execute
from repro.parallel import SatTask, solve_sat_tasks
from repro.topology import Torus

DIMS = (12, 12)
#: (label, mapper, status threshold)
CONFIGS = (
    ("rr (static)", "rr", None),
    ("random (static)", "random", None),
    ("lbn piggyback", "lbn", None),
    ("lbn + status", "lbn", 16),
)


def run_fib_sweep(n=15):
    rows = []
    for label, mapper, status in CONFIGS:
        run = execute(RunSpec(
            workload="fib", workload_params={"n": n},
            topology="torus:" + "x".join(str(d) for d in DIMS),
            mapper=mapper, status=status, seed=1, drain=True,
        ))
        rows.append({"config": label, "ct": run.report.computation_time,
                     "sent": run.report.sent_total, "result": run.result})
    return rows


def run_sat_sweep(preset, jobs=None):
    problems = sat_suite(preset)
    tasks = [
        SatTask(
            cnf,
            Torus(DIMS),
            mapper=mapper,
            status=status,
            simplify="none",
            seed=preset.seed + i,
            max_steps=preset.max_steps,
        )
        for _, mapper, status in CONFIGS
        for i, cnf in enumerate(problems)
    ]
    outcomes = solve_sat_tasks(tasks, jobs=jobs)
    n = len(problems)
    rows = []
    for j, (label, _, _) in enumerate(CONFIGS):
        outs = outcomes[j * n : (j + 1) * n]
        rows.append({"config": label, "ct": sum(o.computation_time for o in outs) / n})
    return rows


def test_bench_mappers_on_fixed_fanout(benchmark, emit):
    rows = benchmark.pedantic(run_fib_sweep, rounds=1, iterations=1)
    emit(format_table(
        ["config", "computation time", "messages"],
        [[r["config"], r["ct"], r["sent"]] for r in rows],
        title="ABL2a — fib(15) (fixed fan-out) on a 144-core 2D torus",
    ))
    by = {r["config"]: r for r in rows}
    assert all(r["result"] == 610 for r in rows)
    # static mappers move the bare application traffic; adaptive+status
    # inflates the interconnect load — the §III-B2 efficiency argument
    assert by["rr (static)"]["sent"] == by["random (static)"]["sent"]
    assert by["lbn + status"]["sent"] > 1.1 * by["rr (static)"]["sent"]
    # (on this unsaturated machine the extra traffic costs few steps —
    # ABL1 shows it biting once queues saturate; the infrastructure-load
    # argument is the message count above)


def test_bench_mappers_on_irregular_sat(benchmark, preset, emit):
    rows = benchmark.pedantic(run_sat_sweep, args=(preset,), rounds=1, iterations=1)
    emit(format_table(
        ["config", "mean computation time"],
        [[r["config"], round(r["ct"], 1)] for r in rows],
        title="ABL2b — SAT suite (irregular fan-out) on a 144-core 2D torus",
    ))
    by = {r["config"]: r["ct"] for r in rows}
    # adaptive mapping beats static RR on the irregular workload at this size
    assert by["lbn piggyback"] < by["rr (static)"]
