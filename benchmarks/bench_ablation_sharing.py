"""ABL8 — work sharing (paper Figure 2's layer-3 "work sharing/stealing").

An overloaded node (deep inbox) pushes newly arriving work onward instead
of executing it.  The sweep over sharing thresholds on static round-robin
mapping shows the classic diffusion trade-off: aggressive sharing thrashes
(every detour is an extra message and an extra step), a conservative
threshold recovers part of the adaptive mapper's benefit without any
status machinery, and "off" is the paper's baseline.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, sat_suite
from repro.parallel import SatTask, solve_sat_tasks
from repro.topology import Torus

THRESHOLDS = (None, 2, 4, 8, 16)
DIMS = (14, 14)


def run_sharing_sweep(preset, jobs=None):
    problems = sat_suite(preset)
    tasks = [
        SatTask(
            cnf,
            Torus(DIMS),
            mapper="rr",
            simplify="none",
            seed=preset.seed + i,
            max_steps=preset.max_steps,
            share_threshold=threshold,
        )
        for threshold in THRESHOLDS
        for i, cnf in enumerate(problems)
    ]
    outcomes = solve_sat_tasks(tasks, jobs=jobs)
    n = len(problems)
    rows = []
    for j, threshold in enumerate(THRESHOLDS):
        outs = outcomes[j * n : (j + 1) * n]
        # all suite problems are satisfiable
        assert all(o.satisfiable for o in outs)
        rows.append(
            {
                "threshold": "off" if threshold is None else threshold,
                "ct": sum(o.computation_time for o in outs) / n,
                "sent": sum(o.sent_total for o in outs) / n,
            }
        )
    return rows


def test_bench_work_sharing(benchmark, preset, emit):
    rows = benchmark.pedantic(
        run_sharing_sweep, args=(preset,), rounds=1, iterations=1
    )
    emit(format_table(
        ["share threshold (inbox depth)", "mean ct", "mean msgs"],
        [[r["threshold"], round(r["ct"], 1), round(r["sent"])] for r in rows],
        title="ABL8 — work sharing on RR mapping (196-core 2D torus)",
    ))
    by = {r["threshold"]: r for r in rows}
    # detours cost messages, monotonically decreasing with the threshold
    sents = [r["sent"] for r in rows[1:]]
    assert sents == sorted(sents, reverse=True)
    assert by[2]["sent"] > by["off"]["sent"]
    # aggressive sharing thrashes outright
    assert by[2]["ct"] > by["off"]["ct"]
    # a conservative threshold stays within 15% of baseline steps
    assert by[16]["ct"] <= 1.15 * by["off"]["ct"]
