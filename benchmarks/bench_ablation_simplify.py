"""ABL7 — local simplification depth: the work/communication trade-off.

The calibration finding behind the Figure-4/5 defaults (see EXPERIMENTS.md):
how much simplification each node performs before branching controls the
total message volume by an order of magnitude.  ``none`` reproduces the
scale of the paper's published traces; ``fixpoint`` minimises communication
at the cost of local work.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, sat_suite
from repro.parallel import SatTask, solve_sat_tasks
from repro.topology import Torus

MODES = ("none", "single", "fixpoint")
DIMS = (14, 14)


def run_simplify_sweep(preset, jobs=None):
    problems = sat_suite(preset)
    tasks = [
        SatTask(
            cnf,
            Torus(DIMS),
            simplify=mode,
            seed=preset.seed + i,
            max_steps=preset.max_steps,
            sat_sizing=True,
        )
        for mode in MODES
        for i, cnf in enumerate(problems)
    ]
    outcomes = solve_sat_tasks(tasks, jobs=jobs)
    n = len(problems)
    rows = []
    for j, mode in enumerate(MODES):
        outs = outcomes[j * n : (j + 1) * n]
        assert all(o.satisfiable and o.verified for o in outs)
        rows.append(
            {
                "mode": mode,
                "ct": sum(o.computation_time for o in outs) / n,
                "sent": sum(o.sent_total for o in outs) / n,
                "traffic": sum(o.traffic_total for o in outs) / n,
                "invocations": sum(o.invocations for o in outs) / n,
            }
        )
    return rows


def test_bench_simplification_depth(benchmark, preset, emit):
    rows = benchmark.pedantic(
        run_simplify_sweep, args=(preset,), rounds=1, iterations=1
    )
    emit(format_table(
        ["simplify", "mean ct", "mean msgs", "mean traffic (words)", "mean invocations"],
        [
            [r["mode"], round(r["ct"], 1), round(r["sent"]),
             round(r["traffic"]), round(r["invocations"])]
            for r in rows
        ],
        title="ABL7 — per-node simplification depth (196-core 2D torus)",
    ))
    by = {r["mode"]: r for r in rows}
    # message volume strictly ordered: none > single > fixpoint
    assert by["none"]["sent"] > by["single"]["sent"] > by["fixpoint"]["sent"]
    # ... and so is bandwidth, by an order of magnitude end to end
    assert by["none"]["traffic"] > by["single"]["traffic"] > by["fixpoint"]["traffic"]
    assert by["none"]["traffic"] > 5 * by["fixpoint"]["traffic"]
    # deeper local simplification also finishes in fewer steps here
    assert by["fixpoint"]["ct"] <= by["none"]["ct"]
