"""ABL7 — local simplification depth: the work/communication trade-off.

The calibration finding behind the Figure-4/5 defaults (see EXPERIMENTS.md):
how much simplification each node performs before branching controls the
total message volume by an order of magnitude.  ``none`` reproduces the
scale of the paper's published traces; ``fixpoint`` minimises communication
at the cost of local work.
"""

from __future__ import annotations

import pytest

from repro.apps.sat import SatProblem, make_solve_sat, sat_content_size
from repro.bench import format_table, sat_suite
from repro.netsim import make_envelope_sizer
from repro.stack import HyperspaceStack
from repro.topology import Torus

MODES = ("none", "single", "fixpoint")
DIMS = (14, 14)


def run_simplify_sweep(preset):
    problems = sat_suite(preset)
    rows = []
    for mode in MODES:
        cts, sents, invs, traffic = [], [], [], []
        for i, cnf in enumerate(problems):
            stack = HyperspaceStack(
                Torus(DIMS),
                seed=preset.seed + i,
                size_fn=make_envelope_sizer(sat_content_size),
            )
            raw, report = stack.run_recursive(
                make_solve_sat(simplify=mode),
                SatProblem(cnf),
                halt_on_result=False,
                max_steps=preset.max_steps,
            )
            assert raw is not None and cnf.is_satisfied_by(dict(raw))
            cts.append(report.computation_time)
            sents.append(report.sent_total)
            traffic.append(report.traffic_total)
            invs.append(stack.last_run.engine_stats.invocations)
        n = len(problems)
        rows.append(
            {
                "mode": mode,
                "ct": sum(cts) / n,
                "sent": sum(sents) / n,
                "traffic": sum(traffic) / n,
                "invocations": sum(invs) / n,
            }
        )
    return rows


def test_bench_simplification_depth(benchmark, preset, emit):
    rows = benchmark.pedantic(
        run_simplify_sweep, args=(preset,), rounds=1, iterations=1
    )
    emit(format_table(
        ["simplify", "mean ct", "mean msgs", "mean traffic (words)", "mean invocations"],
        [
            [r["mode"], round(r["ct"], 1), round(r["sent"]),
             round(r["traffic"]), round(r["invocations"])]
            for r in rows
        ],
        title="ABL7 — per-node simplification depth (196-core 2D torus)",
    ))
    by = {r["mode"]: r for r in rows}
    # message volume strictly ordered: none > single > fixpoint
    assert by["none"]["sent"] > by["single"]["sent"] > by["fixpoint"]["sent"]
    # ... and so is bandwidth, by an order of magnitude end to end
    assert by["none"]["traffic"] > by["single"]["traffic"] > by["fixpoint"]["traffic"]
    assert by["none"]["traffic"] > 5 * by["fixpoint"]["traffic"]
    # deeper local simplification also finishes in fewer steps here
    assert by["fixpoint"]["ct"] <= by["none"]["ct"]
