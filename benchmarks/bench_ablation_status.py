"""ABL1 — status-overhead ablation (paper §V-D prose).

The paper attributes adaptive mapping's cost on small machines to its
under-the-hood status machinery.  This bench sweeps the explicit-status
broadcast threshold on a small (saturated) and a large (unsaturated) 2D
torus and shows:

* more status traffic (lower threshold) monotonically inflates message
  counts on both machines;
* the *relative* slowdown from the chattiest setting is worse on the small
  machine — the mechanism behind Figure 4's "adaptive mapping had a
  negative impact ... for smaller topologies".
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, sat_suite
from repro.parallel import SatTask, solve_sat_tasks
from repro.topology import Torus

THRESHOLDS = (None, 32, 16, 8, 4)
SMALL_DIMS = (4, 4)
LARGE_DIMS = (22, 22)


def run_status_sweep(preset, jobs=None):
    problems = sat_suite(preset)
    grid = [
        (dims, threshold)
        for dims in (SMALL_DIMS, LARGE_DIMS)
        for threshold in THRESHOLDS
    ]
    tasks = [
        SatTask(
            cnf,
            Torus(dims),
            mapper="lbn",
            status=threshold,
            simplify="none",
            seed=preset.seed + i,
            max_steps=preset.max_steps,
        )
        for dims, threshold in grid
        for i, cnf in enumerate(problems)
    ]
    outcomes = solve_sat_tasks(tasks, jobs=jobs)
    n = len(problems)
    table = {dims: [] for dims in (SMALL_DIMS, LARGE_DIMS)}
    for j, (dims, threshold) in enumerate(grid):
        outs = outcomes[j * n : (j + 1) * n]
        table[dims].append(
            {
                "threshold": "off" if threshold is None else threshold,
                "mean_ct": sum(o.computation_time for o in outs) / n,
                "mean_sent": sum(o.sent_total for o in outs) / n,
            }
        )
    return table


def test_bench_status_overhead(benchmark, preset, emit):
    table = benchmark.pedantic(
        run_status_sweep, args=(preset,), rounds=1, iterations=1
    )
    for dims, rows in table.items():
        emit(format_table(
            ["status threshold", "mean computation time", "mean msgs"],
            [
                [r["threshold"], round(r["mean_ct"], 1), round(r["mean_sent"])]
                for r in rows
            ],
            title=f"ABL1 — LBN status-overhead sweep on torus {dims}",
        ))
    for dims, rows in table.items():
        sents = [r["mean_sent"] for r in rows]
        assert sents == sorted(sents), f"{dims}: status traffic not monotone"
    small, large = table[SMALL_DIMS], table[LARGE_DIMS]
    # chattiest config slows the saturated small machine outright ...
    assert small[-1]["mean_ct"] > small[0]["mean_ct"]
    # ... and its *relative* cost exceeds the large machine's
    small_penalty = small[-1]["mean_ct"] / small[0]["mean_ct"]
    large_penalty = large[-1]["mean_ct"] / large[0]["mean_ct"]
    assert small_penalty > large_penalty, (
        f"status overhead should bite hardest when saturated "
        f"(small x{small_penalty:.2f} vs large x{large_penalty:.2f})"
    )
