"""ABL5 — topology zoo at matched core counts (paper §II-A prose).

The paper motivates hypercubes by their graph properties (log diameter,
node symmetry, embeddability).  This bench runs the SAT suite on a
hypercube, tori, a grid (no wrap links), a ring and the fully connected
baseline at matched core counts.  The measured lesson matches Figure 4's
saturation regime: when the workload saturates the machine, everything in
the cube family performs alike (throughput-bound); only genuinely poor
connectivity (ring; grid corners) loses, and rich connectivity only pays
off once machines outgrow the workload.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, sat_suite
from repro.parallel import SatTask, solve_sat_tasks
from repro.topology import CubeConnectedCycles, FullyConnected, Grid, Hypercube, Ring, Torus

MACHINES = [
    ("hypercube(6)", Hypercube(6)),          # 64 cores, diameter 6, degree 6
    ("ccc(4)", CubeConnectedCycles(4)),      # 64 cores, degree 3
    ("torus 8x8", Torus((8, 8))),            # 64 cores, diameter 8
    ("torus 4x4x4", Torus((4, 4, 4))),       # 64 cores, diameter 6
    ("grid 8x8", Grid((8, 8))),              # 64 cores, diameter 14
    ("ring(64)", Ring(64)),                  # 64 cores, diameter 32
    ("full(64)", FullyConnected(64)),        # 64 cores, diameter 1
]


def run_topology_sweep(preset, jobs=None):
    problems = sat_suite(preset)
    tasks = [
        SatTask(
            cnf,
            topo,
            mapper="random" if topo.kind == "full" else "lbn",
            simplify="none",
            seed=preset.seed + i,
            max_steps=preset.max_steps,
        )
        for _, topo in MACHINES
        for i, cnf in enumerate(problems)
    ]
    outcomes = solve_sat_tasks(tasks, jobs=jobs)
    n = len(problems)
    rows = []
    for j, (label, topo) in enumerate(MACHINES):
        outs = outcomes[j * n : (j + 1) * n]
        rows.append(
            {
                "machine": label,
                "diameter": topo.diameter(),
                "ct": sum(o.computation_time for o in outs) / n,
            }
        )
    return rows


def test_bench_topology_zoo(benchmark, preset, emit):
    rows = benchmark.pedantic(
        run_topology_sweep, args=(preset,), rounds=1, iterations=1
    )
    emit(format_table(
        ["machine (64 cores)", "diameter", "mean computation time"],
        [[r["machine"], r["diameter"], round(r["ct"], 1)] for r in rows],
        title="ABL5 — topology comparison at matched core count",
    ))
    by = {r["machine"]: r["ct"] for r in rows}
    # At 64 cores the suite saturates every machine, so the cube family
    # (hypercube, 2D/3D torus, even fully connected) lands within a narrow
    # band — throughput, not diameter, is the binding constraint ...
    cube_family = [by["hypercube(6)"], by["torus 8x8"], by["torus 4x4x4"], by["full(64)"]]
    assert max(cube_family) <= 1.25 * min(cube_family)
    # bounded-degree CCC stays within 2x of its parent hypercube
    assert by["ccc(4)"] <= 2.0 * by["hypercube(6)"]
    # ... while genuinely poor connectivity still loses badly:
    assert by["ring(64)"] >= 2.0 * by["hypercube(6)"]
    # wrap links matter: the open grid trails the torus of equal size
    assert by["torus 8x8"] <= by["grid 8x8"] * 1.05
