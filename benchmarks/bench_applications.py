"""Application zoo benchmarks: every layer-5 solver timed end to end.

Times each combinatorial application on the same 64-core torus with
adaptive mapping, verifying every answer against its sequential reference.
These are conventional pytest-benchmark timings (many rounds) of the whole
stack, complementing the single-shot figure sweeps.
"""

from __future__ import annotations

import random

import pytest

from repro.apps.coloring import ColoringProblem, color_graph, cycle_graph, is_valid_coloring
from repro.apps.knapsack import knapsack, random_knapsack_problem, sequential_knapsack
from repro.apps.nqueens import QueensProblem, is_valid_placement, nqueens
from repro.apps.sat import SatProblem, make_solve_sat, uf20_91_suite
from repro.apps.subsetsum import random_subset_sum_problem, subset_sum
from repro.apps.tsp import TspProblem, random_distance_matrix, sequential_tsp, tsp
from repro.stack import HyperspaceStack
from repro.topology import Torus

TOPO_DIMS = (8, 8)


def make_stack():
    return HyperspaceStack(Torus(TOPO_DIMS), mapper="lbn", seed=11)


def test_bench_app_sat(benchmark):
    cnf = uf20_91_suite(1, seed=11)[0]
    fn = make_solve_sat(simplify="single")

    def run():
        model, _ = make_stack().run_recursive(fn, SatProblem(cnf))
        return model

    model = benchmark(run)
    assert model is not None and cnf.is_satisfied_by(dict(model))


def test_bench_app_nqueens(benchmark):
    def run():
        sol, _ = make_stack().run_recursive(nqueens, QueensProblem(7))
        return sol

    sol = benchmark(run)
    assert is_valid_placement(7, tuple(sol))


def test_bench_app_coloring(benchmark):
    edges = cycle_graph(9)
    problem = ColoringProblem.build(9, edges, 3)

    def run():
        sol, _ = make_stack().run_recursive(color_graph, problem)
        return sol

    sol = benchmark(run)
    assert is_valid_coloring(9, edges, sol, 3)


def test_bench_app_subset_sum(benchmark):
    problem = random_subset_sum_problem(12, random.Random(11), satisfiable=True)

    def run():
        sol, _ = make_stack().run_recursive(subset_sum, problem)
        return sol

    sol = benchmark(run)
    assert sum(sol) == problem.remaining_target


def test_bench_app_knapsack(benchmark):
    problem = random_knapsack_problem(10, 50, random.Random(11))
    expected = sequential_knapsack(problem.items, problem.capacity)

    def run():
        value, _ = make_stack().run_recursive(knapsack, problem)
        return value

    assert benchmark(run) == expected


def test_bench_app_tsp(benchmark):
    dist = random_distance_matrix(6, random.Random(11))
    expected = sequential_tsp(dist)[0]
    problem = TspProblem.build(dist)

    def run():
        (cost, _), _ = make_stack().run_recursive(tsp, problem)
        return cost

    assert benchmark(run) == expected
