"""Application zoo benchmarks: every layer-5 solver timed end to end.

Times each combinatorial application on the same 64-core torus with
adaptive mapping, verifying every answer against its sequential reference.
These are conventional pytest-benchmark timings (many rounds) of the whole
stack, complementing the single-shot figure sweeps.
"""

from __future__ import annotations

import random

import pytest

from repro.apps.coloring import ColoringProblem, color_graph, cycle_graph, is_valid_coloring
from repro.apps.knapsack import knapsack, random_knapsack_problem, sequential_knapsack
from repro.apps.nqueens import QueensProblem, is_valid_placement, nqueens
from repro.apps.sat import SatProblem, make_solve_sat, uf20_91_suite
from repro.apps.subsetsum import random_subset_sum_problem, subset_sum
from repro.apps.tsp import TspProblem, random_distance_matrix, sequential_tsp, tsp
from repro.engine import RunSpec, execute

TOPO_DIMS = (8, 8)


def run_app(fn, args):
    """One zoo cell: a custom layer-5 solver through the engine funnel."""
    spec = RunSpec(
        workload="custom", workload_params={},
        topology="torus:" + "x".join(str(d) for d in TOPO_DIMS),
        mapper="lbn", seed=11, drain=False,
    )
    return execute(spec, fn=fn, args=args).result


def test_bench_app_sat(benchmark):
    cnf = uf20_91_suite(1, seed=11)[0]
    fn = make_solve_sat(simplify="single")

    def run():
        return run_app(fn, SatProblem(cnf))

    model = benchmark(run)
    assert model is not None and cnf.is_satisfied_by(dict(model))


def test_bench_app_nqueens(benchmark):
    def run():
        return run_app(nqueens, QueensProblem(7))

    sol = benchmark(run)
    assert is_valid_placement(7, tuple(sol))


def test_bench_app_coloring(benchmark):
    edges = cycle_graph(9)
    problem = ColoringProblem.build(9, edges, 3)

    def run():
        return run_app(color_graph, problem)

    sol = benchmark(run)
    assert is_valid_coloring(9, edges, sol, 3)


def test_bench_app_subset_sum(benchmark):
    problem = random_subset_sum_problem(12, random.Random(11), satisfiable=True)

    def run():
        return run_app(subset_sum, problem)

    sol = benchmark(run)
    assert sum(sol) == problem.remaining_target


def test_bench_app_knapsack(benchmark):
    problem = random_knapsack_problem(10, 50, random.Random(11))
    expected = sequential_knapsack(problem.items, problem.capacity)

    def run():
        return run_app(knapsack, problem)

    assert benchmark(run) == expected


def test_bench_app_tsp(benchmark):
    dist = random_distance_matrix(6, random.Random(11))
    expected = sequential_tsp(dist)[0]
    problem = TspProblem.build(dist)

    def run():
        cost, _ = run_app(tsp, problem)
        return cost

    assert benchmark(run) == expected
