"""FIG4 — regenerate paper Figure 4: SAT solver scalability.

Sweeps {2D torus, 3D torus} x {round robin, least busy neighbour} plus the
fully connected baseline over machine sizes, averaging performance
(1/computation time) over the uf20-91 stand-in suite, and asserts every
qualitative claim the paper draws from the figure.
"""

from __future__ import annotations

import pytest

from repro.bench import render_figure4, run_figure4
from repro.bench.figure4 import assert_figure4_shape


@pytest.fixture(scope="module")
def figure4(preset, emit, request):
    result = run_figure4(preset)
    emit(render_figure4(result))
    return result


def test_bench_figure4_sweep(benchmark, preset, emit):
    """Time one full Figure-4 sweep (the headline regeneration)."""
    result = benchmark.pedantic(
        run_figure4, args=(preset,), rounds=1, iterations=1
    )
    emit(render_figure4(result))
    # every series is present (duplicate snapped machine sizes are deduped)
    assert len(result.labels()) == 5
    assert all(len(result.series(l)) >= len(preset.core_counts) - 2
               for l in result.labels())
    assert_figure4_shape(result)


class TestFigure4Shape:
    """The paper's qualitative claims (§V-D), asserted on regenerated data."""

    def test_performance_rises_with_cores(self, figure4):
        for label in figure4.labels():
            pts = figure4.series(label)
            assert pts[-1].performance > pts[0].performance, label

    def test_fully_connected_is_upper_envelope_at_scale(self, figure4):
        full = figure4.performance_at_scale("Fully connected")
        for label in figure4.labels():
            if label != "Fully connected":
                assert full >= 0.95 * figure4.performance_at_scale(label), label

    def test_3d_beats_2d_at_scale_same_mapper(self, figure4):
        for mapper in ("RR", "LBN"):
            p2 = figure4.performance_at_scale(f"2D Torus + {mapper}")
            p3 = figure4.performance_at_scale(f"3D Torus + {mapper}")
            assert p3 > p2, mapper

    def test_adaptive_hurts_small_machines(self, figure4):
        # paper: "Adaptive mapping had a negative impact on absolute
        # performance for smaller topologies (< 100 cores)"
        for dim in ("2D", "3D"):
            rr = figure4.series(f"{dim} Torus + RR")[0]
            lbn = figure4.series(f"{dim} Torus + LBN")[0]
            assert lbn.performance < rr.performance, dim

    def test_adaptive_helps_large_machines(self, figure4):
        # the crossover: LBN wins at the largest 2D machine
        rr = figure4.performance_at_scale("2D Torus + RR")
        lbn = figure4.performance_at_scale("2D Torus + LBN")
        assert lbn > rr

    def test_2d_adaptive_comparable_to_3d_static(self, figure4):
        # paper: "large 2D machines with adaptive mapping performed just as
        # well as 3D machines with static (round-robin) mapping"
        lbn2d = figure4.performance_at_scale("2D Torus + LBN")
        rr3d = figure4.performance_at_scale("3D Torus + RR")
        assert lbn2d >= 0.5 * rr3d
        assert lbn2d >= 1.2 * figure4.performance_at_scale("2D Torus + RR")

    def test_3d_adaptive_near_fully_connected(self, figure4):
        # paper: "large 3D machines with adaptive mapping performed nearly
        # like fully connected machines"
        lbn3d = figure4.performance_at_scale("3D Torus + LBN")
        full = figure4.performance_at_scale("Fully connected")
        assert lbn3d >= 0.7 * full

    def test_saturation_meshes_flatten(self, figure4):
        # 2D+RR saturates: the last two points are within 20% of each other
        pts = figure4.series("2D Torus + RR")
        assert pts[-1].performance <= 1.2 * pts[-2].performance

    def test_workload_mapper_overhead_visible(self, figure4):
        # LBN's status traffic means more total messages than RR
        rr = figure4.series("2D Torus + RR")[-1].mean_sent
        lbn = figure4.series("2D Torus + LBN")[-1].mean_sent
        assert lbn > rr
