"""FIG5 — regenerate paper Figure 5: temporal and spatial unfolding.

Profiles the solver on the paper's 196-core 2D torus, printing the
superimposed interconnect-activity traces and the node-activity heatmaps,
and asserting §V-E's qualitative claims: least-busy-neighbour mapping
yields "a larger degree of spatial unfolding, more astute message queuing
and hence faster execution" than round robin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import render_figure5, run_figure5
from repro.bench.figure5 import assert_figure5_shape
from repro.netsim import spatial_entropy


@pytest.fixture(scope="module")
def figure5(preset, emit):
    result = run_figure5(preset)
    emit(render_figure5(result))
    return result


def test_bench_figure5_profile(benchmark, preset, emit):
    """Time one full Figure-5 profiling run."""
    result = benchmark.pedantic(
        run_figure5, args=(preset,), rounds=1, iterations=1
    )
    emit(render_figure5(result))
    assert set(result.traces) == {"rr", "lbn"}
    assert_figure5_shape(result)


class TestFigure5Shape:
    def test_traces_cover_every_problem(self, figure5, preset):
        for mapper in ("rr", "lbn"):
            assert len(figure5.traces[mapper]) == preset.n_problems

    def test_traces_rise_then_drain(self, figure5):
        for mapper in ("rr", "lbn"):
            for trace in figure5.traces[mapper]:
                assert trace.max() > 10  # real queue buildup
                assert trace[-1] == 0  # fully drained

    def test_lbn_unfolds_over_more_nodes(self, figure5):
        # bottom-row heatmaps: LBN activates more of the mesh
        assert figure5.active_nodes("lbn") > figure5.active_nodes("rr")

    def test_lbn_spreads_activity_more_evenly(self, figure5):
        rr_entropy = spatial_entropy(figure5.heatmaps["rr"].ravel())
        lbn_entropy = spatial_entropy(figure5.heatmaps["lbn"].ravel())
        assert lbn_entropy > rr_entropy

    def test_lbn_executes_faster_on_this_machine(self, figure5):
        # §V-E: "hence faster execution compared to round-robin"
        assert figure5.mean_computation_time("lbn") < figure5.mean_computation_time(
            "rr"
        )

    def test_rr_concentrates_near_trigger(self, figure5):
        # RR's heatmap mass around the trigger corner (wrapping torus:
        # the 4 corner-adjacent quadrant cells) exceeds LBN's
        def corner_mass(grid):
            n = grid.sum()
            k = 3
            wrapped = np.roll(np.roll(grid, k, axis=0), k, axis=1)
            return wrapped[: 2 * k, : 2 * k].sum() / n

        assert corner_mass(figure5.heatmaps["rr"]) > corner_mass(
            figure5.heatmaps["lbn"]
        )

    def test_peak_queue_scale_matches_paper(self, figure5):
        # paper Figure 5's y-axis peaks in the 50-250 range on this machine
        for mapper in ("rr", "lbn"):
            assert 30 <= figure5.peak_queued(mapper) <= 1500
