"""Micro-benchmarks for the hot kernels underneath the figure sweeps.

Classic pytest-benchmark timing (many rounds) of the operations the
profiling guides say to measure before optimising: simulator step
throughput, CNF simplification, sequential DPLL, topology queries and the
recursion engine's per-invocation overhead.
"""

from __future__ import annotations

import random

import pytest

from repro.apps.sat import CNF, dpll_solve, uf20_91_suite, uniform_random_ksat
from repro.apps.traversal import run_traversal
from repro.engine import RunSpec, execute
from repro.netsim import EMPTY_MSG, FunctionalProgram, Machine
from repro.topology import Hypercube, Torus


@pytest.fixture(scope="module")
def sample_cnf():
    return uf20_91_suite(1, seed=123)[0]


def test_bench_machine_flood_throughput(benchmark):
    """Deliveries/second of the bare layer-1 event loop (Listing 1)."""
    topo = Torus((20, 20))

    def flood():
        _, report = run_traversal(topo)
        return report.delivered_total

    delivered = benchmark(flood)
    assert delivered == 1 + 4 * 400


def test_bench_machine_step_overhead(benchmark):
    """Cost of one event-loop step with a single hot node."""

    class PingPong:
        def init(self, ctx):
            ctx.state = None

        def on_message(self, ctx, sender, payload):
            ctx.send(ctx.neighbours[0], payload)

    m = Machine(Torus((16, 16)), PingPong())
    m.inject(0, EMPTY_MSG)

    benchmark(m.step)


def test_bench_cnf_assign(benchmark, sample_cnf):
    """One uf20-91 simplification step (the solver's inner loop)."""
    lit = 1

    result = benchmark(sample_cnf.assign, lit)
    assert result.num_vars == 20


def test_bench_sequential_dpll(benchmark, sample_cnf):
    """Full sequential solve of one uf20-91 instance."""
    result = benchmark(dpll_solve, sample_cnf)
    assert result.satisfiable


def test_bench_torus_neighbours(benchmark):
    topo = Torus((32, 32))

    def query():
        total = 0
        for n in range(0, 1024, 7):
            total += len(topo.neighbours(n))
        return total

    assert benchmark(query) > 0


def test_bench_hypercube_distance(benchmark):
    topo = Hypercube(10)

    def query():
        total = 0
        for a in range(0, 1024, 31):
            for b in range(0, 1024, 37):
                total += topo.distance(a, b)
        return total

    assert benchmark(query) > 0


def test_bench_stack_recursion_overhead(benchmark):
    """End-to-end layer-5 overhead: sum(1..40) across a 64-core torus."""
    spec = RunSpec(
        workload="sumrec", workload_params={"n": 40},
        topology="torus:8x8", drain=False,
    )

    def run():
        return execute(spec).result

    assert benchmark(run) == 820


def test_bench_random_ksat_generation(benchmark):
    rng = random.Random(0)

    def gen():
        return uniform_random_ksat(20, 91, 3, rng)

    cnf = benchmark(gen)
    assert cnf.num_clauses == 91
