"""Shared configuration for the benchmark suite.

Benches run at the ``quick`` preset by default (seconds per figure); set
``REPRO_BENCH_PRESET=full`` to regenerate the paper-sized sweep (20
problems, 10^1..10^3 cores — a few minutes).

Every bench prints the regenerated table/figure through pytest's terminal
reporter, so ``pytest benchmarks/ --benchmark-only -s`` shows the paper
artefacts alongside the timing numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import FULL, QUICK, BenchPreset


def active_preset() -> BenchPreset:
    """The preset selected via REPRO_BENCH_PRESET (quick by default)."""
    name = os.environ.get("REPRO_BENCH_PRESET", "quick").lower()
    if name == "full":
        return FULL
    if name == "quick":
        return QUICK
    raise ValueError(f"unknown REPRO_BENCH_PRESET {name!r} (quick|full)")


@pytest.fixture(scope="session")
def preset() -> BenchPreset:
    return active_preset()


@pytest.fixture(scope="session")
def emit():
    """Print a rendered figure/table block, bypassing capture."""

    def _emit(text: str) -> None:
        print("\n" + text + "\n", flush=True)

    return _emit
