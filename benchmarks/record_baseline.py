"""Record the repository performance baseline (``BENCH_baseline.json``).

Measures the numbers the optimization work tracks:

1. **Simulator hot-path throughput** — deliveries per second of the layer-1
   event loop under three synthetic loads (dense storm, traversal flood,
   sparse ping-pong), median of several repeats;
2. **Subsystem overheads** — telemetry (metrics / full trace), the
   reliability protocol (clean / faulty links), and the everything-on
   protected + instrumented configuration, each as throughput lost
   against the corresponding bare run;
3. **Sharded backend** — the coordinator's intent-replay bookkeeping
   (inline cells, host-relative) and the full multi-process backend's
   storm rate;
4. **Sweep wall time** — ``run_figure4(QUICK)`` end to end, serial and
   through the process-pool executor, asserting both produce identical
   points.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/record_baseline.py [--out BENCH_baseline.json]
        [--jobs 4] [--repeats 7] [--compare PATH_TO_REFERENCE_CHECKOUT]

``--compare`` re-runs the microbenchmarks against another checkout (e.g. a
worktree of the pre-optimization commit) in a subprocess and records both
sides plus the relative improvement.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

from repro.netsim import EMPTY_MSG, Machine
from repro.topology import Torus

#: bump when the workloads or the JSON layout change
SCHEMA = "repro-bench-baseline/2"


# -- microbenchmark workloads ---------------------------------------------


class _Storm:
    """Every node forwards every step: pure event-loop throughput."""

    def init(self, ctx):
        ctx.state = 0

    def on_message(self, ctx, sender, payload):
        ctx.state += 1
        ctx.send(ctx.neighbours[ctx.state & 3], payload)


def storm_rate(steps: int = 400, telemetry=None, **machine_kwargs) -> float:
    """Deliveries/s with all 400 nodes of a 20x20 torus busy every step.

    Extra keyword arguments go straight to :class:`Machine`, so the same
    workload measures any configuration (faults, reliability, ...).
    """
    m = Machine(Torus((20, 20)), _Storm(), telemetry=telemetry, **machine_kwargs)
    for n in range(400):
        m.inject(n, EMPTY_MSG)
    m.step()  # warm-up: one step to populate every queue
    t0 = time.perf_counter()
    delivered = 0
    for _ in range(steps):
        delivered += m.step()
    return delivered / (time.perf_counter() - t0)


class _PingPong:
    """One message bouncing along a fixed edge: per-step overhead floor."""

    def init(self, ctx):
        ctx.state = None

    def on_message(self, ctx, sender, payload):
        ctx.send(ctx.neighbours[0], payload)


def sparse_rate(steps: int = 60_000, telemetry=None) -> float:
    """Steps/s with a single active node on a 256-core torus."""
    m = Machine(Torus((16, 16)), _PingPong(), telemetry=telemetry)
    m.inject(0, EMPTY_MSG)
    m.step()
    t0 = time.perf_counter()
    for _ in range(steps):
        m.step()
    return steps / (time.perf_counter() - t0)


def flood_rate(reps: int = 40) -> float:
    """Deliveries/s of repeated full BFS traversals of a 400-node torus."""
    from repro.apps.traversal import run_traversal

    topo = Torus((20, 20))
    run_traversal(topo)  # warm-up
    t0 = time.perf_counter()
    total = 0
    for _ in range(reps):
        _, rep = run_traversal(topo)
        total += rep.delivered_total
    return total / (time.perf_counter() - t0)


def measure_micro(repeats: int) -> dict:
    """Median-of-``repeats`` rates for the three workloads."""

    def med(fn):
        vals = sorted(fn() for _ in range(repeats))
        return round(vals[len(vals) // 2])

    return {
        "unit": "deliveries per second (sparse: steps per second)",
        "repeats": repeats,
        "storm_torus400": med(storm_rate),
        "flood_torus400": med(flood_rate),
        "sparse_torus256": med(sparse_rate),
    }


def measure_telemetry_overhead(repeats: int) -> dict:
    """Cost of the telemetry bus on the layer-1 hot path.

    Three storm/sparse configurations:

    * ``disabled`` — ``telemetry=None``, the default; the emission sites
      reduce to one ``is None`` check and must stay within a few percent
      of the plain rate (the PR's zero-overhead contract);
    * ``metrics`` — a bus with a :class:`~repro.telemetry.MetricsSubscriber`
      attached (aggregation only, no event retention);
    * ``full`` — metrics plus a :class:`~repro.telemetry.ChromeTraceExporter`
      retaining every event (the ``repro trace`` pipeline).
    """
    from repro.telemetry import ChromeTraceExporter, MetricsSubscriber, TelemetryBus

    def med(fn):
        vals = sorted(fn() for _ in range(repeats))
        return round(vals[len(vals) // 2])

    def metrics_bus():
        bus = TelemetryBus()
        bus.attach(MetricsSubscriber())
        return bus

    def full_bus():
        bus = TelemetryBus()
        bus.attach(MetricsSubscriber())
        bus.attach(ChromeTraceExporter())
        return bus

    out = {"unit": "deliveries per second (sparse: steps per second)"}
    for name, rate in (("storm_torus400", storm_rate), ("sparse_torus256", sparse_rate)):
        disabled = med(lambda: rate(telemetry=None))
        metrics = med(lambda: rate(telemetry=metrics_bus()))
        full = med(lambda: rate(telemetry=full_bus()))
        out[name] = {
            "disabled": disabled,
            "metrics": metrics,
            "full_trace": full,
            "metrics_overhead_pct": round(100.0 * (1.0 - metrics / disabled), 1),
            "full_trace_overhead_pct": round(100.0 * (1.0 - full / disabled), 1),
        }
    return out


def measure_reliability_overhead(repeats: int) -> dict:
    """Cost of the layer-1.5 reliable-delivery protocol on the storm load.

    Three configurations:

    * ``off`` — ``reliability=None``, the default: the send path keeps the
      ``_fast_send`` binding and the step loop pays one ``is None`` check
      (the opt-in contract — must track the plain storm rate);
    * ``on_clean`` — protocol enabled over perfect links: every payload is
      framed, acked and retired, no retransmissions;
    * ``on_faulty`` — protocol enabled over ``drop=0.05, duplicate=0.02``
      links (the chaos suite's acceptance rates): adds retransmission and
      dedup work on top.
    """
    import random as _random

    from repro.netsim import FaultModel
    from repro.reliability import ReliabilityConfig

    def med(fn):
        vals = sorted(fn() for _ in range(repeats))
        return round(vals[len(vals) // 2])

    off = med(storm_rate)
    on_clean = med(lambda: storm_rate(reliability=ReliabilityConfig()))
    on_faulty = med(
        lambda: storm_rate(
            faults=FaultModel(0.05, 0.02, rng=_random.Random(2017)),
            reliability=ReliabilityConfig(),
        )
    )
    return {
        "unit": "deliveries per second",
        "workload": "storm_torus400",
        "off": off,
        "on_clean": on_clean,
        "on_faulty": on_faulty,
        "on_clean_overhead_pct": round(100.0 * (1.0 - on_clean / off), 1),
        "on_faulty_overhead_pct": round(100.0 * (1.0 - on_faulty / off), 1),
    }


def measure_protected_instrumented(repeats: int) -> dict:
    """The everything-on configuration: reliability *and* metrics together.

    The two subsystems contend for the same hot path (the protocol emits
    telemetry itself when a bus is attached), so the combined cost is
    recorded as its own number instead of being assumed additive.
    """
    from repro.reliability import ReliabilityConfig
    from repro.telemetry import MetricsSubscriber, TelemetryBus

    def med(fn):
        vals = sorted(fn() for _ in range(repeats))
        return round(vals[len(vals) // 2])

    def metrics_bus():
        bus = TelemetryBus()
        bus.attach(MetricsSubscriber())
        return bus

    plain = med(storm_rate)
    protected = med(
        lambda: storm_rate(telemetry=metrics_bus(), reliability=ReliabilityConfig())
    )
    return {
        "unit": "deliveries per second",
        "workload": "storm_torus400",
        "plain": plain,
        "protected_instrumented": protected,
        "overhead_pct": round(100.0 * (1.0 - protected / plain), 1),
    }


def sharded_storm_rate(shards: int, backend: str, steps: int = 400) -> float:
    """Storm deliveries/s through the sharded backend's coordinator loop."""
    from repro.netsim import ShardedMachine

    with ShardedMachine(
        Torus((20, 20)), _Storm(), shards=shards, shard_backend=backend
    ) as m:
        for n in range(400):
            m.inject(n, EMPTY_MSG)
        m.step()  # warm-up: one step to populate every queue
        t0 = time.perf_counter()
        delivered = 0
        for _ in range(steps):
            delivered += m.step()
        return delivered / (time.perf_counter() - t0)


def measure_sharded(repeats: int) -> dict:
    """Cost of the sharded backend's coordination machinery.

    Two configurations of the storm load against the plain serial rate:

    * ``inline`` (shards=4, same-process cells) — isolates the pure
      bookkeeping cost of the intent-collection/replay protocol with no
      IPC, recorded host-relative so it gates on every machine;
    * ``process`` (shards=2, real workers) — the full backend including
      pickling and the per-step barrier, recorded as an absolute rate
      (host-gated).  On the storm load every node is busy, so this is the
      worst case for the barrier: real solver runs shard far better.
    """

    def med(fn):
        vals = sorted(fn() for _ in range(repeats))
        return round(vals[len(vals) // 2])

    serial = med(storm_rate)
    inline4 = med(lambda: sharded_storm_rate(4, "inline"))
    # process workers are slow to spawn; one repeat less noise-sensitive
    # than it sounds because the 400-step run amortises startup
    process2 = round(sharded_storm_rate(2, "process", steps=100))
    return {
        "unit": "deliveries per second",
        "workload": "storm_torus400",
        "storm_serial": serial,
        "storm_inline4": inline4,
        "storm_process2": process2,
        "inline_overhead_pct": round(100.0 * (1.0 - inline4 / serial), 1),
    }


# -- figure-4 sweep wall time ---------------------------------------------


def measure_figure4(jobs: int) -> dict:
    """Time ``run_figure4(QUICK)`` serial vs pooled; assert identical data."""
    from repro.bench import QUICK, figure4_to_dict, preset_fingerprint, run_figure4

    run_figure4(QUICK)  # warm the memoised problem suite
    t0 = time.perf_counter()
    serial = run_figure4(QUICK, jobs=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    pooled = run_figure4(QUICK, jobs=jobs)
    pooled_s = time.perf_counter() - t0
    identical = figure4_to_dict(serial) == figure4_to_dict(pooled)
    if not identical:
        raise AssertionError("parallel figure-4 sweep diverged from serial")
    return {
        "preset": "quick",
        # digest of every sweep cell's canonical RunSpec: tells a workload
        # change apart from a genuine performance drift when comparing
        "workload_fingerprint": preset_fingerprint(QUICK),
        "serial_seconds": round(serial_s, 2),
        "parallel_seconds": round(pooled_s, 2),
        "parallel_jobs": jobs,
        "speedup": round(serial_s / pooled_s, 2),
        "identical_results": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_baseline.json")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel figure-4 run")
    parser.add_argument("--repeats", type=int, default=7,
                        help="microbenchmark repeats (median is recorded)")
    parser.add_argument("--compare", metavar="PATH", default=None,
                        help="also run the microbenchmarks against another "
                             "checkout and record the improvement")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="also capture a telemetry-instrumented SAT run "
                             "and write a Chrome/Perfetto trace to PATH")
    parser.add_argument("--skip-figure4", action="store_true",
                        help="record only the microbenchmarks (fast mode)")
    parser.add_argument("--micro-json", action="store_true",
                        help=argparse.SUPPRESS)  # subprocess mode for --compare
    args = parser.parse_args(argv)

    if args.micro_json:
        print(json.dumps(measure_micro(args.repeats)))
        return 0

    def run_reference_micro():
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(args.compare, "src")
        out = subprocess.run(
            [sys.executable, os.path.abspath(__file__),
             "--micro-json", "--repeats", str(args.repeats)],
            capture_output=True, text=True, env=env, check=True,
        )
        return json.loads(out.stdout.splitlines()[-1])

    micro_keys = ("storm_torus400", "flood_torus400", "sparse_torus256")
    if args.compare:
        # Interleave the runs (reference, local, reference) and score the
        # local numbers against the *best* reference pass: host frequency
        # drift between passes then shows up as a reference improvement
        # rather than a phantom local regression.
        ref_a = run_reference_micro()
        micro = measure_micro(args.repeats)
        ref_b = run_reference_micro()
        reference = dict(ref_b)
        for k in micro_keys:
            reference[k] = max(ref_a[k], ref_b[k])
    else:
        micro = measure_micro(args.repeats)

    payload = {
        "schema": SCHEMA,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "microbenchmark": micro,
        "telemetry_overhead": measure_telemetry_overhead(args.repeats),
        "reliability_overhead": measure_reliability_overhead(args.repeats),
        "protected_instrumented": measure_protected_instrumented(args.repeats),
        "sharded": measure_sharded(args.repeats),
    }
    if args.compare:
        payload["microbenchmark_reference"] = {
            "checkout": args.compare,
            "interleaved": "best of two reference passes bracketing the local run",
            **reference,
        }
        payload["microbenchmark_improvement_pct"] = {
            k: round(100.0 * (payload["microbenchmark"][k] / reference[k] - 1.0), 1)
            for k in micro_keys
        }
    if not args.skip_figure4:
        payload["figure4_quick"] = measure_figure4(args.jobs)
    if args.trace:
        from repro.telemetry import capture_workload

        summary = capture_workload("sat", args.trace)
        payload["trace"] = {
            "workload": summary["workload"],
            "events": summary["events"],
            "layers": summary["layers"],
            "trace_path": summary["trace_path"],
        }
        print(f"Perfetto trace written to {summary['trace_path']}")

    from repro.bench import write_json

    path = write_json(args.out, payload)
    print(f"baseline written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
