#!/usr/bin/env python3
"""Every combinatorial solver in the repo, on one machine.

Runs the full application zoo — SAT, N-queens, graph coloring, subset sum,
knapsack and TSP — on the same simulated 64-core torus, verifying each
answer against its sequential reference and comparing how the workloads
load the mesh.  Decision problems race speculative branches under
non-deterministic choice; optimization problems join all branches and
reduce.

Usage:  python examples/combinatorial_zoo.py
"""

import random

from repro import HyperspaceStack, Torus
from repro.apps.coloring import (
    ColoringProblem,
    chromatic_number,
    color_graph,
    cycle_graph,
    is_valid_coloring,
)
from repro.apps.knapsack import knapsack, random_knapsack_problem, sequential_knapsack
from repro.apps.nqueens import QueensProblem, is_valid_placement, nqueens
from repro.apps.sat import SatProblem, dpll_solve, make_solve_sat, uf20_91_suite
from repro.apps.subsetsum import random_subset_sum_problem, subset_sum
from repro.apps.tsp import TspProblem, random_distance_matrix, sequential_tsp, tsp
from repro.bench import format_table


def main() -> None:
    topo = Torus((8, 8))
    rng = random.Random(7)
    rows = []

    def record(name, kind, report, stats, verified):
        rows.append([
            name,
            kind,
            report.computation_time,
            report.sent_total,
            stats.invocations,
            "ok" if verified else "FAIL",
        ])

    def fresh_stack(seed):
        return HyperspaceStack(topo, mapper="lbn", seed=seed)

    # SAT (decision, fixed fan-out 2)
    cnf = uf20_91_suite(1, seed=7)[0]
    stack = fresh_stack(1)
    model, report = stack.run_recursive(
        make_solve_sat(simplify="single"), SatProblem(cnf), halt_on_result=False
    )
    ok = model is not None and cnf.is_satisfied_by(dict(model))
    ok = ok and dpll_solve(cnf).satisfiable
    record("3-SAT uf20-91", "decision", report, stack.last_run.engine_stats, ok)

    # N-queens (decision, data-dependent fan-out)
    stack = fresh_stack(2)
    sol, report = stack.run_recursive(
        nqueens, QueensProblem(7), halt_on_result=False
    )
    record("7-queens", "decision", report, stack.last_run.engine_stats,
           sol is not None and is_valid_placement(7, tuple(sol)))

    # graph coloring (decision)
    edges = cycle_graph(9)
    stack = fresh_stack(3)
    colors, report = stack.run_recursive(
        color_graph, ColoringProblem.build(9, edges, 3), halt_on_result=False
    )
    ok = colors is not None and is_valid_coloring(9, edges, colors, 3)
    ok = ok and chromatic_number(9, edges) == 3
    record("3-color C9", "decision", report, stack.last_run.engine_stats, ok)

    # subset sum (decision)
    ss = random_subset_sum_problem(14, rng, satisfiable=True)
    stack = fresh_stack(4)
    subset, report = stack.run_recursive(subset_sum, ss, halt_on_result=False)
    record("subset sum (14)", "decision", report, stack.last_run.engine_stats,
           subset is not None and sum(subset) == ss.remaining_target)

    # knapsack (optimization)
    kp = random_knapsack_problem(11, 55, rng)
    stack = fresh_stack(5)
    value, report = stack.run_recursive(knapsack, kp, halt_on_result=False)
    record("knapsack (11)", "optimization", report, stack.last_run.engine_stats,
           value == sequential_knapsack(kp.items, kp.capacity))

    # TSP (optimization)
    dist = random_distance_matrix(7, rng)
    stack = fresh_stack(6)
    (cost, tour), report = stack.run_recursive(
        tsp, TspProblem.build(dist), halt_on_result=False
    )
    record("TSP (7 cities)", "optimization", report,
           stack.last_run.engine_stats, cost == sequential_tsp(dist)[0])

    print(format_table(
        ["application", "kind", "steps", "messages", "invocations", "verified"],
        rows,
        title="combinatorial zoo on a 64-core 2D torus (least-busy-neighbour)",
    ))
    assert all(r[-1] == "ok" for r in rows)


if __name__ == "__main__":
    main()
