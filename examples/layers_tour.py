#!/usr/bin/env python3
"""A tour of the five layers — the paper's listings, runnable side by side.

Walks the abstraction stack bottom-up with the paper's own examples:

* Layer 1 (Listing 1): raw message passing — flood-fill traversal;
* Layer 3 (Listing 2): ticketed message passing — the hand-written
  state-machine implementation of sum(1..10);
* Layer 5 (Listing 3): the same sum as a three-line recursive generator.

The point of the model in one screen: compare how much code Listing 2
needs against Listing 3, for identical behaviour on identical hardware.

Usage:  python examples/layers_tour.py
"""

from repro import HyperspaceStack, Ring, Torus
from repro.apps.sumrec import SumTrigger, calculate_sum, sum_ticketed_app
from repro.apps.traversal import run_traversal, visited_nodes
from repro.mapping import MappingService


def layer1_listing1() -> None:
    print("=" * 64)
    print("Layer 1 — Listing 1: message-passing traversal (flood fill)")
    print("=" * 64)
    topo = Torus((4, 4))
    machine, report = run_traversal(topo, start=0)
    print(f"machine        : {topo.describe()}")
    print(f"visited        : {len(visited_nodes(machine))}/{topo.n_nodes} nodes")
    print(f"steps          : {report.steps}")
    print(f"messages       : {report.sent_total} "
          f"(1 trigger + degree per node)\n")


def layer3_listing2() -> None:
    print("=" * 64)
    print("Layer 3 — Listing 2: sum(1..10) as a hand-written state machine")
    print("=" * 64)
    stack = HyperspaceStack(Ring(16))
    _, report = stack.run_ticketed(sum_ticketed_app(), SumTrigger(10))
    state = MappingService.app_state_of(
        stack.last_run.scheduler.process_state(stack.last_run.machine, 0)
    )
    print(f"machine        : ring(16)")
    print(f"final state    : {state}  (the paper's Done(total))")
    print(f"steps          : {report.steps}")
    print("note           : Continue/Done bookkeeping, ticket quoting and")
    print("                 message classification are all application code\n")


def layer5_listing3() -> None:
    print("=" * 64)
    print("Layer 5 — Listing 3: the same sum as a recursive generator")
    print("=" * 64)
    stack = HyperspaceStack(Ring(16))
    result, report = stack.run_recursive(calculate_sum, 10)
    print(f"machine        : ring(16)")
    print(f"result         : {result}")
    print(f"steps          : {report.steps}")
    print("note           : layers 1-4 now do the bookkeeping; the app is\n"
          "                 'if n < 1: yield Result(0) else: yield Call(n-1); ...'")


if __name__ == "__main__":
    layer1_listing1()
    layer3_listing2()
    layer5_listing3()
