#!/usr/bin/env python3
"""N-queens on a hypercube machine — combinatorial search beyond SAT.

The paper's layer diagram (Figure 2) lists "Computer Chess" alongside SAT
as layer-5 applications.  This example solves N-queens with the same
non-deterministic-choice mechanism the SAT solver uses, on a hypercube —
the topology the paper's background section celebrates — and compares
static vs adaptive mapping.

Usage:
    python examples/nqueens_mesh.py [--n 8] [--cube-dim 6]
"""

import argparse

from repro import HyperspaceStack
from repro.apps.nqueens import QueensProblem, is_valid_placement, nqueens
from repro.topology import Hypercube


def render_board(n: int, placement) -> str:
    rows = []
    for r in range(n):
        rows.append(" ".join("Q" if placement[r] == c else "." for c in range(n)))
    return "\n".join(rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8, help="board size")
    parser.add_argument("--cube-dim", type=int, default=6,
                        help="hypercube dimension (2**d cores)")
    args = parser.parse_args()

    topo = Hypercube(args.cube_dim)
    print(f"machine: {topo.describe()} (diameter {topo.diameter()})\n")

    for mapper in ("rr", "lbn"):
        stack = HyperspaceStack(topo, mapper=mapper, seed=7)
        placement, report = stack.run_recursive(nqueens, QueensProblem(args.n))
        assert placement is not None and is_valid_placement(args.n, tuple(placement))
        stats = stack.last_run.engine_stats
        print(f"[{mapper}] solved {args.n}-queens in {report.computation_time} steps "
              f"({stats.invocations} invocations, "
              f"{report.active_node_count}/{topo.n_nodes} nodes active)")

    print(f"\nfirst solution found:\n{render_board(args.n, placement)}")


if __name__ == "__main__":
    main()
