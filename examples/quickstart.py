#!/usr/bin/env python3
"""Quickstart: run recursive applications on a simulated hyperspace machine.

The five-layer stack hides message passing, scheduling and load balancing;
an application is just a Python generator yielding Call / Sync / Result
(paper Listing 3).  This script runs the paper's running example — the
recursive sum — plus fork-join Fibonacci, and prints the profiling report
the paper's evaluation is built from.

Usage:  python examples/quickstart.py
"""

from repro import HyperspaceStack, Torus
from repro.apps.fib import fib, sequential_fib
from repro.apps.sumrec import calculate_sum
from repro.recursion import Call, Result, Sync


def main() -> None:
    # an 8x8 torus machine with adaptive (least-busy-neighbour) mapping
    stack = HyperspaceStack(Torus((8, 8)), mapper="lbn", seed=42)

    # --- the paper's Listing 3: sum(1..n) ---------------------------------
    result, report = stack.run_recursive(calculate_sum, 10)
    print(f"sum(1..10) = {result}")
    print(f"  computation time : {report.computation_time} steps")
    print(f"  messages sent    : {report.sent_total}")

    # --- fork-join Fibonacci ----------------------------------------------
    n = 12
    result, report = stack.run_recursive(fib, n)
    assert result == sequential_fib(n)
    print(f"\nfib({n}) = {result}")
    print(f"  computation time : {report.computation_time} steps")
    print(f"  active nodes     : {report.active_node_count} / 64")
    stats = stack.last_run.engine_stats
    print(f"  invocations      : {stats.invocations}")
    print(f"  subcalls shipped : {stats.calls_made}")

    # --- write your own in three lines -------------------------------------
    def depth_of_tree(spec):
        """Depth of a nested-tuple tree, computed across the mesh."""
        if not isinstance(spec, tuple):
            yield Result(0)
        else:
            for child in spec:
                yield Call(child)
            depths = yield Sync()
            if len(spec) == 1:
                depths = (depths,)
            yield Result(1 + max(depths))

    tree = ((1, (2, 3)), ((4,), 5), 6)
    result, report = stack.run_recursive(depth_of_tree, tree)
    print(f"\ndepth of {tree} = {result} "
          f"({report.computation_time} steps on the mesh)")


if __name__ == "__main__":
    main()
