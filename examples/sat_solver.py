#!/usr/bin/env python3
"""Solve SAT problems on a simulated hyperspace machine (paper §V).

Solves a DIMACS CNF file — or a generated uf20-91-style instance when no
file is given — with the paper's Listing-4 distributed DPLL, verifies the
model against the formula and against the sequential reference solver, and
prints the profiling data of §V-C: computation time, interconnect activity
and the node-activity heatmap.

Usage:
    python examples/sat_solver.py [problem.cnf] [--cores N] [--mapper rr|lbn|random|hint]
"""

import argparse

from repro.apps.sat import dpll_solve, load_dimacs, solve_on_machine, uf20_91_suite
from repro.bench import heatmap_ascii, sparkline
from repro.topology import Torus, nearest_mesh_dims


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("cnf", nargs="?", help="DIMACS CNF file (default: generated)")
    parser.add_argument("--cores", type=int, default=196, help="approximate core count")
    parser.add_argument("--mapper", default="lbn", choices=["rr", "lbn", "random", "hint"])
    parser.add_argument("--seed", type=int, default=2017)
    args = parser.parse_args()

    if args.cnf:
        cnf = load_dimacs(args.cnf)
        print(f"loaded {args.cnf}: {cnf.num_vars} vars, {cnf.num_clauses} clauses")
    else:
        cnf = uf20_91_suite(1, seed=args.seed)[0]
        print(f"generated uf20-91-style instance ({cnf.num_vars} vars, "
              f"{cnf.num_clauses} clauses, satisfiable)")

    topo = Torus(nearest_mesh_dims(args.cores, 2))
    print(f"machine: {topo.describe()} with {args.mapper} mapping\n")

    res = solve_on_machine(
        cnf, topo, mapper=args.mapper, seed=args.seed, simplify="none"
    )

    seq = dpll_solve(cnf)
    assert res.satisfiable == seq.satisfiable, "distributed/sequential disagree!"

    if res.satisfiable:
        assert res.verified
        model = dict(sorted(res.assignment.items()))
        lits = " ".join(str(v if val else -v) for v, val in model.items())
        print(f"SAT — verified model: {lits}")
    else:
        print("UNSAT")

    rep = res.report
    print(f"\ncomputation time  : {rep.computation_time} steps")
    print(f"messages          : {rep.sent_total}")
    print(f"peak queued       : {rep.peak_queued}")
    print(f"active nodes      : {rep.active_node_count} / {topo.n_nodes}")
    print(f"activity entropy  : {rep.activity_entropy:.2f} bits")
    print(f"\ninterconnect activity (queued messages vs step):")
    print(f"  |{sparkline(rep.interconnect_activity)}|")
    print(f"\nnode activity heatmap:")
    print(heatmap_ascii(rep.heatmap()))


if __name__ == "__main__":
    main()
