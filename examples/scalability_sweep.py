#!/usr/bin/env python3
"""Regenerate paper Figure 4 (SAT solver scalability) from the command line.

Sweeps the five configurations of the paper's Figure 4 — {2D, 3D} torus x
{round robin, least busy neighbour} plus the fully connected baseline —
and prints the performance table and the qualitative verdicts.

Usage:
    python examples/scalability_sweep.py            # quick preset (~30 s)
    python examples/scalability_sweep.py --full     # paper-sized (minutes)
"""

import argparse

from repro.bench import FULL, QUICK, assert_figure4_shape, render_figure4, run_figure4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-sized sweep")
    parser.add_argument("--status", type=int, default=16,
                        help="LBN status-broadcast threshold (default 16)")
    args = parser.parse_args()

    preset = FULL if args.full else QUICK
    print(f"running the {preset.name} preset: {preset.n_problems} problems x "
          f"{len(preset.core_counts)} machine sizes x 5 configurations ...\n")

    result = run_figure4(preset, status_threshold=args.status, verbose=True)
    print()
    print(render_figure4(result))

    print("\nchecking the paper's qualitative claims:")
    try:
        assert_figure4_shape(result)
    except AssertionError as exc:
        print(f"  MISMATCH: {exc}")
        raise SystemExit(1)
    for claim in (
        "performance rises with core count for every configuration",
        "the fully connected machine is the upper envelope at scale",
        "3D beats 2D at equal cores under both mappers",
        "adaptive (LBN) mapping hurts the smallest machines",
        "adaptive mapping wins at scale in 2D",
        "3D + LBN approaches the fully connected baseline",
    ):
        print(f"  ok: {claim}")


if __name__ == "__main__":
    main()
