#!/usr/bin/env python3
"""Topology playground: one workload, many machines.

Runs fork-join Fibonacci on every topology family in the package — tori,
hypercube, cube-connected cycles, grid, ring, fully connected, a NetworkX
import (the Petersen graph) — at comparable sizes, then demonstrates
*virtualised* execution: a complete binary tree of workers embedded into a
hypercube host, paying its dilation as link latency.

Usage:  python examples/topology_playground.py
"""

import networkx as nx

from repro import HyperspaceStack
from repro.apps.fib import fib, sequential_fib
from repro.bench import format_table
from repro.topology import (
    CompleteTree,
    CubeConnectedCycles,
    FullyConnected,
    Grid,
    Hypercube,
    Ring,
    Torus,
    embed_tree_in_hypercube,
    embedding_latency,
    from_networkx,
)

N = 14
EXPECTED = sequential_fib(N)

MACHINES = [
    Torus((8, 8)),
    Torus((4, 4, 4)),
    Hypercube(6),
    CubeConnectedCycles(4),
    Grid((8, 8)),
    Ring(64),
    FullyConnected(64),
    from_networkx(nx.petersen_graph(), name="petersen"),
]


def main() -> None:
    rows = []
    for topo in MACHINES:
        stack = HyperspaceStack(topo, mapper="lbn", seed=1)
        result, report = stack.run_recursive(fib, N, halt_on_result=False)
        assert result == EXPECTED
        rows.append([
            topo.describe(),
            topo.n_nodes,
            topo.diameter(),
            report.computation_time,
            report.active_node_count,
        ])
    print(format_table(
        ["machine", "cores", "diameter", f"fib({N}) steps", "active nodes"],
        rows,
        title="one workload, many machines (least-busy-neighbour mapping)",
    ))

    # --- virtualised execution via embedding --------------------------------
    tree = CompleteTree(2, 6)          # 63 workers in a binary tree
    cube = Hypercube(6)                # 64-node host
    emb = embed_tree_in_hypercube(tree, cube)
    native = HyperspaceStack(tree, seed=1)
    _, rep_native = native.run_recursive(fib, N, halt_on_result=False)
    virtual = HyperspaceStack(tree, seed=1, latency=embedding_latency(emb))
    _, rep_virtual = virtual.run_recursive(fib, N, halt_on_result=False)
    print(f"\nvirtualised tree-on-hypercube (dilation {emb.dilation()}):")
    print(f"  native tree machine : {rep_native.computation_time} steps")
    print(f"  embedded in 6-cube  : {rep_virtual.computation_time} steps")
    print(
        "  note: dilated links pay extra in-flight hops, but on a congested\n"
        "  machine the delays also re-order queue processing — the two\n"
        "  effects can partially offset, so virtualisation cost is workload-\n"
        "  dependent rather than a fixed slowdown."
    )


if __name__ == "__main__":
    main()
