#!/usr/bin/env python3
"""Regenerate paper Figure 5 (temporal and spatial unfolding).

Profiles the SAT suite on the paper's 196-core 2D torus under round-robin
and least-busy-neighbour mapping, printing superimposed queue traces and
the per-node activity heatmaps.

Usage:
    python examples/unfolding_heatmap.py [--problems N]
"""

import argparse

from repro.bench import BenchPreset, render_figure5, run_figure5


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--problems", type=int, default=6,
                        help="benchmark problems to superimpose (default 6)")
    args = parser.parse_args()

    preset = BenchPreset("custom", args.problems, (196,))
    print(f"profiling {preset.n_problems} problems on the 14x14 torus ...\n")
    result = run_figure5(preset)
    print(render_figure5(result))

    print("\nsummary (paper §V-E):")
    print(f"  RR  active nodes: {result.active_nodes('rr'):4d}   "
          f"mean ct: {result.mean_computation_time('rr'):7.1f}")
    print(f"  LBN active nodes: {result.active_nodes('lbn'):4d}   "
          f"mean ct: {result.mean_computation_time('lbn'):7.1f}")
    print("  => least-busy-neighbour unfolds over more of the mesh and "
          "finishes sooner")


if __name__ == "__main__":
    main()
