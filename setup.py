"""Legacy setup shim: this environment has no `wheel` package and no network,
so PEP 517 editable installs (which need bdist_wheel) fail. Plain
`pip install -e .` falls back to `setup.py develop` via this file."""
from setuptools import setup

setup()
