"""repro — reproduction of "Programming Model to Develop Supercomputer
Combinatorial Solvers" (Tarawneh et al., ICPP Workshops / P2S2 2017).

The package implements the paper's five-layer abstraction stack on a
simulated hyperspace machine:

1. :mod:`repro.netsim`   — message passing (simulated backend, §IV-A)
2. :mod:`repro.sched`    — node-level process scheduling
3. :mod:`repro.mapping`  — ticketed destination-free sends + mesh load balancing
4. :mod:`repro.recursion`— continuation-based fork-join recursion
5. :mod:`repro.apps`     — applications (DPLL SAT solver, N-queens, …)

plus :mod:`repro.topology` (tori / hypercubes / …), :mod:`repro.stack` (the
assembled stack and its high-level ``run_recursive`` API),
:mod:`repro.engine` (the declarative :class:`~repro.engine.RunSpec` /
:func:`~repro.engine.execute` front door every entry point funnels
through) and :mod:`repro.bench` (the harness regenerating the paper's
figures).

Quickstart::

    from repro import RunSpec, execute

    run = execute(RunSpec(workload="sumrec", workload_params={"n": 10},
                          topology="torus:8x8", drain=False))
    assert run.result == 55
"""

from . import errors
from .rng import SeedSequence
from .topology import (
    CompleteTree,
    FullyConnected,
    Grid,
    Hypercube,
    Line,
    Ring,
    Star,
    Topology,
    Torus,
    topology_from_spec,
)

__version__ = "1.0.0"

__all__ = [
    "errors",
    "SeedSequence",
    "Topology",
    "Torus",
    "Grid",
    "Ring",
    "Line",
    "Hypercube",
    "FullyConnected",
    "Star",
    "CompleteTree",
    "topology_from_spec",
    "HyperspaceStack",
    "Machine",
    "ShardedMachine",
    "ShardProgramSpec",
    "ReliabilityConfig",
    "RunSpec",
    "RunResult",
    "execute",
    "validate",
    "SpecError",
    "StackCheckpoint",
    "load_checkpoint",
    "save_checkpoint",
    "__version__",
]


def __getattr__(name):  # lazy imports to avoid import cycles at startup
    if name == "HyperspaceStack":
        from .stack import HyperspaceStack

        return HyperspaceStack
    if name in ("RunSpec", "RunResult", "execute", "validate"):
        from . import engine

        return getattr(engine, name)
    if name == "SpecError":
        from .errors import SpecError

        return SpecError
    if name == "Machine":
        from .netsim import Machine

        return Machine
    if name in ("ShardedMachine", "ShardProgramSpec"):
        from . import netsim

        return getattr(netsim, name)
    if name == "ReliabilityConfig":
        from .reliability import ReliabilityConfig

        return ReliabilityConfig
    if name in ("StackCheckpoint", "load_checkpoint", "save_checkpoint"):
        from . import state

        return getattr(state, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
