"""Cross-run analysis utilities for scalability studies.

The figure harness produces raw (cores, performance) series; this module
extracts the quantities the paper reasons about in prose:

* :func:`speedup_curve` — performance normalised to the smallest machine;
* :func:`parallel_efficiency` — speedup divided by the core ratio;
* :func:`saturation_point` — where a curve stops improving meaningfully;
* :func:`crossover_point` — where one curve overtakes another (the
  adaptive-vs-static crossover of Figure 4);
* :func:`amdahl_fit` — least-squares fit of Amdahl's law, yielding the
  implied serial fraction of the workload;
* :func:`align_series` — resample two series onto common core counts.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "speedup_curve",
    "parallel_efficiency",
    "saturation_point",
    "crossover_point",
    "amdahl_fit",
    "align_series",
]

#: a scalability series: ordered (cores, performance) points
Series = Sequence[Tuple[int, float]]


def _validate(series: Series) -> List[Tuple[int, float]]:
    pts = [(int(n), float(p)) for n, p in series]
    if not pts:
        raise ValueError("empty series")
    if any(n <= 0 for n, _ in pts):
        raise ValueError("core counts must be positive")
    if any(p < 0 for _, p in pts):
        raise ValueError("performance must be non-negative")
    if [n for n, _ in pts] != sorted({n for n, _ in pts}):
        raise ValueError("series must be strictly increasing in cores")
    return pts


def speedup_curve(series: Series) -> List[Tuple[int, float]]:
    """Performance relative to the smallest machine in the series."""
    pts = _validate(series)
    base = pts[0][1]
    if base == 0:
        raise ValueError("baseline performance is zero")
    return [(n, p / base) for n, p in pts]


def parallel_efficiency(series: Series) -> List[Tuple[int, float]]:
    """Speedup divided by the core-count ratio (1.0 = perfect scaling)."""
    pts = _validate(series)
    base_n = pts[0][0]
    return [(n, s / (n / base_n)) for (n, s) in speedup_curve(pts)]


def saturation_point(series: Series, tolerance: float = 0.05) -> int:
    """Smallest core count whose performance is within ``tolerance`` of the
    series' best — i.e. where adding cores stops paying."""
    pts = _validate(series)
    best = max(p for _, p in pts)
    if best == 0:
        return pts[0][0]
    for n, p in pts:
        if p >= (1.0 - tolerance) * best:
            return n
    return pts[-1][0]  # pragma: no cover - unreachable (best is in pts)


def align_series(a: Series, b: Series) -> List[Tuple[int, float, float]]:
    """Join two series on common core counts: ``(cores, perf_a, perf_b)``."""
    da = dict(_validate(a))
    db = dict(_validate(b))
    common = sorted(set(da) & set(db))
    return [(n, da[n], db[n]) for n in common]


def crossover_point(a: Series, b: Series) -> Optional[int]:
    """First common core count at which curve ``a`` overtakes curve ``b``.

    Returns ``None`` when ``a`` never overtakes ``b`` on the shared grid
    (including when ``a`` already leads at the smallest shared machine —
    a crossover requires ``b`` to lead somewhere first).
    """
    joined = align_series(a, b)
    if not joined:
        raise ValueError("series share no core counts")
    b_has_led = False
    for n, pa, pb in joined:
        if pa > pb and b_has_led:
            return n
        if pb > pa:
            b_has_led = True
    return None


def amdahl_fit(series: Series) -> Tuple[float, float]:
    """Fit Amdahl's law ``speedup(n) = 1 / (s + (1-s)/n)``.

    Returns ``(serial_fraction, rms_error)``.  Core counts are normalised
    to the smallest machine (ratio ``r = n / n0``); the serial fraction is
    estimated per point as ``s_i = (r/S - 1) / (r - 1)`` and averaged
    (clamped to [0, 1]); single-machine series have no parallel signal and
    are rejected.
    """
    pts = _validate(series)
    speedups = speedup_curve(pts)
    base_n = pts[0][0]
    samples = [
        (((n / base_n) / s) - 1.0) / ((n / base_n) - 1.0)
        for n, s in speedups
        if n > base_n and s > 0
    ]
    if not samples:
        raise ValueError("need at least two distinct machine sizes")
    serial = min(1.0, max(0.0, sum(samples) / len(samples)))

    def predicted(n: int) -> float:
        return 1.0 / (serial + (1.0 - serial) / (n / pts[0][0]))

    err = math.sqrt(
        sum((s - predicted(n)) ** 2 for n, s in speedups) / len(speedups)
    )
    return serial, err
