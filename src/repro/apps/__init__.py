"""Layer 5 — applications built on the stack (paper §III-A5).

* :mod:`repro.apps.traversal` — Listing 1 (layer-1 flood fill).
* :mod:`repro.apps.sumrec`    — Listings 2 & 3 (the running sum example).
* :mod:`repro.apps.fib`       — Cilk-style fork-join Fibonacci.
* :mod:`repro.apps.sat`       — the DPLL SAT solver of §V (the paper's use
  case) and its sequential/brute-force references.
* :mod:`repro.apps.nqueens`   — N-queens via non-deterministic choice.
* :mod:`repro.apps.knapsack`  — branch-and-bound knapsack with size hints.
"""

__all__ = ["traversal", "sumrec", "fib", "sat", "nqueens", "knapsack"]
