"""Graph k-coloring — constraint satisfaction via non-deterministic choice.

A third member of the combinatorial-solver family alongside SAT and
N-queens: vertices are coloured one at a time in a fixed order, and every
invocation explores all feasible colours for the next vertex as concurrent
subcalls.  Like the SAT solver, the first complete colouring found anywhere
in the mesh wins.

The module also provides a sequential backtracking reference, a greedy
upper bound, and seeded random-graph generators for workloads.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Tuple

from ..errors import ApplicationError
from ..recursion import Call, Choice, Result, Sync

__all__ = [
    "ColoringProblem",
    "coloring_found",
    "color_graph",
    "sequential_coloring",
    "greedy_coloring",
    "chromatic_number",
    "is_valid_coloring",
    "random_graph",
    "cycle_graph",
    "complete_graph",
]

#: edges as a tuple of (u, v) pairs with u < v; vertices are 0..n-1
Edges = Tuple[Tuple[int, int], ...]


def _check_graph(n_vertices: int, edges: Sequence[Tuple[int, int]]) -> Edges:
    if n_vertices < 0:
        raise ApplicationError(f"vertex count must be >= 0, got {n_vertices}")
    out = []
    for u, v in edges:
        if u == v:
            raise ApplicationError(f"self-loop on vertex {u}")
        if not (0 <= u < n_vertices and 0 <= v < n_vertices):
            raise ApplicationError(f"edge ({u},{v}) outside 0..{n_vertices - 1}")
        out.append((min(u, v), max(u, v)))
    return tuple(sorted(set(out)))


class ColoringProblem(NamedTuple):
    """Sub-problem: the graph, the palette size and colours chosen so far.

    ``colors[i]`` is vertex *i*'s colour; vertices are coloured in index
    order, so ``len(colors)`` is the next vertex to colour.
    """

    n_vertices: int
    edges: Edges
    k: int
    colors: Tuple[int, ...] = ()

    @classmethod
    def build(
        cls, n_vertices: int, edges: Sequence[Tuple[int, int]], k: int
    ) -> "ColoringProblem":
        """Validated constructor."""
        if k < 0:
            raise ApplicationError(f"palette size must be >= 0, got {k}")
        return cls(n_vertices, _check_graph(n_vertices, edges), k)


def _neighbours_of(problem: ColoringProblem, vertex: int) -> List[int]:
    out = []
    for u, v in problem.edges:
        if u == vertex:
            out.append(v)
        elif v == vertex:
            out.append(u)
    return out


def _feasible_colors(problem: ColoringProblem, vertex: int) -> List[int]:
    used = {
        problem.colors[n]
        for n in _neighbours_of(problem, vertex)
        if n < len(problem.colors)
    }
    return [c for c in range(problem.k) if c not in used]


def is_valid_coloring(
    n_vertices: int, edges: Sequence[Tuple[int, int]], coloring: Sequence[int], k: int
) -> bool:
    """Full validity check for a claimed colouring."""
    if len(coloring) != n_vertices or any(not (0 <= c < k) for c in coloring):
        return False
    return all(coloring[u] != coloring[v] for u, v in edges)


def coloring_found(result) -> bool:
    """Choice predicate: a colour tuple means success."""
    return result is not None


def color_graph(problem: ColoringProblem):
    """Layer-5 k-coloring: one vertex per invocation, choice over colours."""
    vertex = len(problem.colors)
    if vertex == problem.n_vertices:
        yield Result(problem.colors)
        return
    candidates = _feasible_colors(problem, vertex)
    if not candidates:
        yield Result(None)
        return
    hint = float(problem.n_vertices - vertex)
    yield Choice(
        coloring_found,
        *[
            Call(problem._replace(colors=problem.colors + (c,)), hint=hint)
            for c in candidates
        ],
    )
    result = yield Sync()
    yield Result(result)


def sequential_coloring(
    n_vertices: int, edges: Sequence[Tuple[int, int]], k: int
) -> Optional[Tuple[int, ...]]:
    """First valid k-colouring by sequential backtracking (reference)."""
    problem = ColoringProblem.build(n_vertices, edges, k)

    def search(colors: Tuple[int, ...]) -> Optional[Tuple[int, ...]]:
        if len(colors) == n_vertices:
            return colors
        for c in _feasible_colors(problem._replace(colors=colors), len(colors)):
            sol = search(colors + (c,))
            if sol is not None:
                return sol
        return None

    return search(())


def greedy_coloring(
    n_vertices: int, edges: Sequence[Tuple[int, int]]
) -> Tuple[int, ...]:
    """Greedy colouring in vertex order (upper-bounds the chromatic number)."""
    checked = _check_graph(n_vertices, edges)
    adj: Dict[int, List[int]] = {v: [] for v in range(n_vertices)}
    for u, v in checked:
        adj[u].append(v)
        adj[v].append(u)
    colors: List[int] = []
    for v in range(n_vertices):
        used = {colors[n] for n in adj[v] if n < v}
        c = 0
        while c in used:
            c += 1
        colors.append(c)
    return tuple(colors)


def chromatic_number(n_vertices: int, edges: Sequence[Tuple[int, int]]) -> int:
    """Exact chromatic number by increasing-k search (small graphs only)."""
    if n_vertices == 0:
        return 0
    if n_vertices > 16:
        raise ApplicationError("exact chromatic number limited to 16 vertices")
    for k in range(1, n_vertices + 1):
        if sequential_coloring(n_vertices, edges, k) is not None:
            return k
    raise AssertionError("unreachable: n colours always suffice")


# ---------------------------------------------------------------------------
# workload generators
# ---------------------------------------------------------------------------


def random_graph(n_vertices: int, edge_probability: float, rng: random.Random) -> Edges:
    """Erdos-Renyi G(n, p) graph with seeded randomness."""
    if not (0.0 <= edge_probability <= 1.0):
        raise ApplicationError(f"edge probability must be in [0,1], got {edge_probability}")
    edges = [
        (u, v)
        for u in range(n_vertices)
        for v in range(u + 1, n_vertices)
        if rng.random() < edge_probability
    ]
    return _check_graph(n_vertices, edges)


def cycle_graph(n_vertices: int) -> Edges:
    """The n-cycle (chromatic number 2 if even, 3 if odd, for n >= 3)."""
    if n_vertices < 3:
        raise ApplicationError(f"cycle needs >= 3 vertices, got {n_vertices}")
    return _check_graph(
        n_vertices,
        [(i, (i + 1) % n_vertices) for i in range(n_vertices)],
    )


def complete_graph(n_vertices: int) -> Edges:
    """K_n (chromatic number n)."""
    return _check_graph(
        n_vertices,
        [(u, v) for u in range(n_vertices) for v in range(u + 1, n_vertices)],
    )
