"""Fork-join Fibonacci — the canonical Cilk-style example (paper §IV-C).

The paper builds its layer-4 mechanism around Cilk-like fork-join semantics;
``fib`` is the standard demonstration of a *fixed fan-out* recursion, the
workload class the paper's §III-B2 argues static mappers suit best (its
"predictable unfolding behaviour").  Used by the mapper-ablation bench.
"""

from __future__ import annotations

from functools import lru_cache

from ..recursion import Call, Result, Sync

__all__ = ["fib", "fib_hinted", "sequential_fib"]


@lru_cache(maxsize=None)
def sequential_fib(n: int) -> int:
    """Reference value of the n-th Fibonacci number (fib(0)=0, fib(1)=1)."""
    if n < 0:
        raise ValueError(f"fib is defined for n >= 0, got {n}")
    return n if n < 2 else sequential_fib(n - 1) + sequential_fib(n - 2)


def fib(n: int):
    """Distributed ``fib``: two concurrent subcalls joined by one sync."""
    if n < 2:
        yield Result(n)
    else:
        yield Call(n - 1)
        yield Call(n - 2)
        a, b = yield Sync()
        yield Result(a + b)


def fib_hinted(n: int):
    """``fib`` with cross-layer size hints (paper §III-B3).

    The hint is the exponential size estimate ``phi**n`` of each subtree,
    letting hint-aware mappers route heavier subcalls to quieter neighbours.
    """
    if n < 2:
        yield Result(n)
    else:
        phi = 1.618
        yield Call(n - 1, hint=phi ** (n - 1))
        yield Call(n - 2, hint=phi ** (n - 2))
        a, b = yield Sync()
        yield Result(a + b)
