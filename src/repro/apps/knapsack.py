"""0/1 knapsack by branch and bound — the cross-layer-hints showcase.

The paper's §III-B3 motivates letting applications pass problem-size
estimates down to the mapping layer ("solvers often employ lazy evaluation
functions to prune the search space ... mapping algorithms can exploit such
knowledge").  Knapsack's fractional upper bound is exactly such an estimate:
each subcall carries its bound as a hint, and hint-aware mappers route the
heavier branches to quieter neighbours.

Unlike SAT/N-queens this solver needs *both* branch results (it maximises),
so it exercises the plain two-call ``Sync`` join rather than choice.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple

from ..errors import ApplicationError
from ..recursion import Call, Result, Sync

__all__ = [
    "Item",
    "KnapsackProblem",
    "fractional_bound",
    "make_knapsack_solver",
    "knapsack",
    "sequential_knapsack",
    "random_knapsack_problem",
]


class Item(NamedTuple):
    """One knapsack item."""

    value: int
    weight: int


class KnapsackProblem(NamedTuple):
    """Sub-problem: items (sorted by density), next index, remaining
    capacity, and the value accumulated by decisions taken so far."""

    items: Tuple[Item, ...]
    index: int = 0
    capacity: int = 0
    value_so_far: int = 0


def _check_items(items: Sequence[Item]) -> Tuple[Item, ...]:
    out = tuple(Item(int(v), int(w)) for v, w in items)
    for it in out:
        if it.weight < 0 or it.value < 0:
            raise ApplicationError(f"negative item {it} not supported")
    return out


def fractional_bound(problem: KnapsackProblem) -> float:
    """Upper bound: greedy fractional relaxation from ``index`` onward.

    Assumes ``items`` are sorted by value density (descending); the solver
    constructors enforce that.
    """
    bound = float(problem.value_so_far)
    cap = problem.capacity
    for it in problem.items[problem.index :]:
        if it.weight <= cap:
            bound += it.value
            cap -= it.weight
        else:
            if it.weight > 0:
                bound += it.value * (cap / it.weight)
            break
    return bound


def make_knapsack_solver(use_hints: bool = True, prune: bool = True):
    """Build the layer-5 branch-and-bound generator.

    ``use_hints`` attaches each subcall's fractional bound as its mapping
    hint; ``prune`` skips branches whose bound cannot beat the *local*
    incumbent (no global incumbent exists on a hyperspace machine — pruning
    is per-subtree, exactly the "lazy evaluation" the paper describes).
    """

    def knapsack(problem: KnapsackProblem):
        items, idx, cap, acc = problem
        if idx >= len(items) or cap <= 0:
            yield Result(acc)
            return
        item = items[idx]
        exclude = KnapsackProblem(items, idx + 1, cap, acc)
        calls = []
        branches: List[KnapsackProblem] = [exclude]
        if item.weight <= cap:
            include = KnapsackProblem(items, idx + 1, cap - item.weight, acc + item.value)
            branches.append(include)
        if prune and len(branches) == 2:
            # greedy completion of the include branch is a feasible incumbent
            incumbent = _greedy_value(branches[1])
            branches = [
                b for b in branches if fractional_bound(b) >= incumbent
            ] or branches[-1:]
        for b in branches:
            hint = fractional_bound(b) if use_hints else None
            calls.append(Call(b, hint=hint))
        for c in calls:
            yield c
        results = yield Sync()
        if len(calls) == 1:
            yield Result(results)
        else:
            yield Result(max(results))

    return knapsack


def _greedy_value(problem: KnapsackProblem) -> int:
    """Feasible greedy completion (lower bound / incumbent)."""
    total = problem.value_so_far
    cap = problem.capacity
    for it in problem.items[problem.index :]:
        if it.weight <= cap:
            total += it.value
            cap -= it.weight
    return total


#: default solver: hints on, pruning on
knapsack = make_knapsack_solver()


def sequential_knapsack(items: Sequence[Item], capacity: int) -> int:
    """Exact optimum by dynamic programming (reference)."""
    items = _check_items(items)
    if capacity < 0:
        raise ApplicationError(f"capacity must be >= 0, got {capacity}")
    best = [0] * (capacity + 1)
    for value, weight in items:
        for c in range(capacity, weight - 1, -1):
            cand = best[c - weight] + value
            if cand > best[c]:
                best[c] = cand
    return best[capacity]


def random_knapsack_problem(
    n_items: int, capacity: int, rng, max_value: int = 100, max_weight: int = 30
) -> KnapsackProblem:
    """A random instance with items pre-sorted by value density."""
    if n_items < 0:
        raise ApplicationError(f"n_items must be >= 0, got {n_items}")
    items = [
        Item(rng.randint(1, max_value), rng.randint(1, max_weight))
        for _ in range(n_items)
    ]
    items.sort(key=lambda it: it.value / it.weight, reverse=True)
    return KnapsackProblem(tuple(items), 0, capacity, 0)
