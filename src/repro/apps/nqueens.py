"""N-queens — a combinatorial search in the "computer chess" application
class the paper's Figure 2 lists for layer 5.

Queens are placed row by row; every invocation expands one row and explores
all safe columns as concurrent subcalls under non-deterministic choice, so
the first complete placement found anywhere in the mesh wins — structurally
the same speculative search as the SAT solver, but with data-dependent
fan-out (up to N subcalls per node instead of 2).
"""

from __future__ import annotations

from typing import Any, List, NamedTuple, Optional, Tuple

from ..errors import ApplicationError
from ..recursion import Call, Choice, Result, Sync

__all__ = [
    "QueensProblem",
    "found",
    "nqueens",
    "sequential_nqueens",
    "count_solutions",
    "is_valid_placement",
]


class QueensProblem(NamedTuple):
    """Sub-problem: board size and queens placed so far (one per row)."""

    n: int
    placement: Tuple[int, ...] = ()


def _safe(placement: Tuple[int, ...], col: int) -> bool:
    """Can a queen go in the next row at ``col``?"""
    row = len(placement)
    for r, c in enumerate(placement):
        if c == col or abs(c - col) == row - r:
            return False
    return True


def is_valid_placement(n: int, placement: Tuple[int, ...]) -> bool:
    """Full validity check for a claimed solution."""
    if len(placement) != n or not all(0 <= c < n for c in placement):
        return False
    return all(_safe(placement[:r], placement[r]) for r in range(n))


def found(result: Any) -> bool:
    """Choice predicate: a placement tuple means success."""
    return result is not None


def nqueens(problem: "QueensProblem | int"):
    """Layer-5 N-queens: one row per invocation, choice over safe columns."""
    if isinstance(problem, int):
        problem = QueensProblem(problem)
    n, placement = problem.n, problem.placement
    if n < 1:
        raise ApplicationError(f"board size must be >= 1, got {n}")
    row = len(placement)
    if row == n:
        yield Result(placement)
        return
    candidates = [c for c in range(n) if _safe(placement, c)]
    if not candidates:
        yield Result(None)
        return
    # remaining rows is a crude size hint for hint-aware mappers
    hint = float(n - row)
    yield Choice(
        found,
        *[Call(QueensProblem(n, placement + (c,)), hint=hint) for c in candidates],
    )
    result = yield Sync()
    yield Result(result)


def sequential_nqueens(n: int) -> Optional[Tuple[int, ...]]:
    """First solution by sequential backtracking (reference)."""
    if n < 1:
        raise ApplicationError(f"board size must be >= 1, got {n}")

    def search(placement: Tuple[int, ...]) -> Optional[Tuple[int, ...]]:
        if len(placement) == n:
            return placement
        for col in range(n):
            if _safe(placement, col):
                sol = search(placement + (col,))
                if sol is not None:
                    return sol
        return None

    return search(())


def count_solutions(n: int) -> int:
    """Total number of solutions (reference; OEIS A000170)."""
    if n < 1:
        raise ApplicationError(f"board size must be >= 1, got {n}")
    count = 0
    stack: List[Tuple[int, ...]] = [()]
    while stack:
        placement = stack.pop()
        if len(placement) == n:
            count += 1
            continue
        for col in range(n):
            if _safe(placement, col):
                stack.append(placement + (col,))
    return count
