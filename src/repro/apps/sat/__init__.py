"""The SAT solving substrate and the paper's distributed DPLL solver (§V).

Public surface:

* :class:`CNF` and DIMACS I/O (:func:`parse_dimacs` / :func:`to_dimacs`).
* Generators: :func:`uniform_random_ksat`, :func:`satisfiable_random_ksat`,
  :func:`planted_random_ksat`, :func:`uf20_91_suite` (the paper's suite).
* Sequential reference: :func:`dpll_solve` (+ :func:`brute_force_solve`).
* Distributed solver: :func:`make_solve_sat` (Listing 4),
  :func:`solve_on_machine` (one-call convenience).
* Branching heuristics registry: :func:`make_heuristic`.
"""

from .bruteforce import all_models, brute_force_count, brute_force_solve
from .cdcl import CdclResult, CdclStats, cdcl_solve, luby
from .cnf import CNF, Clause, Literal, negate, var_of
from .dimacs import load_dimacs, parse_dimacs, save_dimacs, to_dimacs
from .distributed import (
    DistributedSatResult,
    SatProblem,
    is_sat,
    make_solve_sat,
    sat_content_size,
    solve_on_machine,
    solve_sat,
)
from .dpll import SatResult, SolveStats, assign_pures, dpll_solve, propagate_units
from .generator import (
    UF20_CLAUSES,
    UF20_VARS,
    planted_random_ksat,
    satisfiable_random_ksat,
    uf20_91_suite,
    uniform_random_ksat,
)
from .heuristics import (
    HEURISTIC_NAMES,
    first_literal,
    jeroslow_wang,
    make_heuristic,
    make_random_heuristic,
    max_occurrence,
    moms,
)

__all__ = [
    "CNF",
    "Clause",
    "Literal",
    "var_of",
    "negate",
    "parse_dimacs",
    "to_dimacs",
    "load_dimacs",
    "save_dimacs",
    "uniform_random_ksat",
    "satisfiable_random_ksat",
    "planted_random_ksat",
    "uf20_91_suite",
    "UF20_VARS",
    "UF20_CLAUSES",
    "dpll_solve",
    "SatResult",
    "SolveStats",
    "propagate_units",
    "assign_pures",
    "brute_force_solve",
    "cdcl_solve",
    "CdclResult",
    "CdclStats",
    "luby",
    "brute_force_count",
    "all_models",
    "SatProblem",
    "is_sat",
    "sat_content_size",
    "make_solve_sat",
    "solve_sat",
    "solve_on_machine",
    "DistributedSatResult",
    "make_heuristic",
    "HEURISTIC_NAMES",
    "first_literal",
    "max_occurrence",
    "jeroslow_wang",
    "moms",
    "make_random_heuristic",
]
