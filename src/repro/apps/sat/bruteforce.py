"""Exhaustive SAT reference for cross-checking the solvers.

Enumerates all ``2**n`` assignments — only usable for small ``n`` but
unimpeachably correct, which is what the property-based tests need to
validate DPLL (sequential and distributed) against.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ...errors import ApplicationError
from .cnf import CNF

__all__ = ["brute_force_solve", "brute_force_count", "all_models"]

#: refuse to enumerate beyond this many variables
MAX_BRUTE_VARS = 24


def _assignments(num_vars: int) -> Iterator[Dict[int, bool]]:
    for bits in range(1 << num_vars):
        yield {v: bool((bits >> (v - 1)) & 1) for v in range(1, num_vars + 1)}


def _check_size(cnf: CNF) -> None:
    if cnf.num_vars > MAX_BRUTE_VARS:
        raise ApplicationError(
            f"brute force limited to {MAX_BRUTE_VARS} variables, got {cnf.num_vars}"
        )


def brute_force_solve(cnf: CNF) -> Optional[Dict[int, bool]]:
    """A satisfying total assignment, or ``None`` when unsatisfiable."""
    _check_size(cnf)
    for assignment in _assignments(cnf.num_vars):
        if cnf.is_satisfied_by(assignment):
            return assignment
    return None


def brute_force_count(cnf: CNF) -> int:
    """Number of satisfying total assignments (#SAT)."""
    _check_size(cnf)
    return sum(1 for a in _assignments(cnf.num_vars) if cnf.is_satisfied_by(a))


def all_models(cnf: CNF) -> List[Dict[int, bool]]:
    """Every satisfying total assignment (small formulas only)."""
    _check_size(cnf)
    return [a for a in _assignments(cnf.num_vars) if cnf.is_satisfied_by(a)]
