"""CDCL — the modern-solver contrast to the paper's barebone DPLL (§V-B).

"In practice, many state-of-the-art SAT solvers implement additional
heuristics such as conflict-driven learning and non-chronological
backtracking to prune the search space.  However, our focus here is ...
a basic implementation of DPLL."

This module implements the techniques the paper deliberately set aside —
conflict-driven clause learning with first-UIP analysis, non-chronological
backjumping, VSIDS-style activity ordering and Luby restarts — as a
*sequential* reference, so the ablation bench can quantify how much search
the barebone distributed solver performs compared to a modern one on the
same instances.

The implementation favours clarity over raw speed (counter-based
propagation rather than watched literals); uf20-91-scale instances solve in
microseconds either way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import ApplicationError
from .cnf import CNF, var_of

__all__ = ["CdclStats", "CdclResult", "cdcl_solve", "luby"]


def luby(i: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 1-indexed."""
    if i < 1:
        raise ApplicationError(f"luby is 1-indexed, got {i}")
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1  # tail recursion on i - 2**(k-1) + 1


class CdclStats:
    """Search-effort counters for one CDCL solve."""

    __slots__ = ("decisions", "propagations", "conflicts", "learned_clauses",
                 "restarts", "max_backjump")

    def __init__(self) -> None:
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0
        self.learned_clauses = 0
        self.restarts = 0
        #: largest number of levels jumped over in one backjump
        self.max_backjump = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reports."""
        return {name: getattr(self, name) for name in self.__slots__}


class CdclResult:
    """Outcome of a CDCL solve."""

    __slots__ = ("satisfiable", "assignment", "stats")

    def __init__(self, satisfiable: bool, assignment: Optional[Dict[int, bool]],
                 stats: CdclStats) -> None:
        self.satisfiable = satisfiable
        self.assignment = assignment
        self.stats = stats

    def __bool__(self) -> bool:
        return self.satisfiable


class _Solver:
    """Internal CDCL state machine."""

    def __init__(self, cnf: CNF, restart_base: int) -> None:
        self.num_vars = cnf.num_vars
        self.clauses: List[List[int]] = [list(c) for c in cnf.clauses]
        self.restart_base = restart_base
        #: var -> bool (current partial assignment)
        self.values: Dict[int, bool] = {}
        #: var -> decision level it was assigned at
        self.level: Dict[int, int] = {}
        #: var -> clause index that implied it (None for decisions)
        self.reason: Dict[int, Optional[int]] = {}
        self.trail: List[int] = []  # assigned literals, in order
        self.decision_level = 0
        #: VSIDS-style activity per variable
        self.activity: Dict[int, float] = {v: 0.0 for v in range(1, cnf.num_vars + 1)}
        self.activity_inc = 1.0
        self.stats = CdclStats()

    # -- literal/clause state ------------------------------------------------

    def lit_value(self, lit: int) -> Optional[bool]:
        v = self.values.get(var_of(lit))
        if v is None:
            return None
        return v == (lit > 0)

    def assign(self, lit: int, reason: Optional[int]) -> None:
        var = var_of(lit)
        self.values[var] = lit > 0
        self.level[var] = self.decision_level
        self.reason[var] = reason
        self.trail.append(lit)

    # -- propagation -----------------------------------------------------------

    def propagate(self) -> Optional[int]:
        """Unit-propagate to fixpoint; return a conflicting clause index."""
        changed = True
        while changed:
            changed = False
            for idx, clause in enumerate(self.clauses):
                unassigned = None
                n_unassigned = 0
                satisfied = False
                for lit in clause:
                    val = self.lit_value(lit)
                    if val is True:
                        satisfied = True
                        break
                    if val is None:
                        unassigned = lit
                        n_unassigned += 1
                if satisfied:
                    continue
                if n_unassigned == 0:
                    return idx  # conflict
                if n_unassigned == 1:
                    self.assign(unassigned, idx)
                    self.stats.propagations += 1
                    changed = True
        return None

    # -- conflict analysis (first UIP) -----------------------------------------

    def analyse(self, conflict_idx: int) -> Tuple[List[int], int]:
        """Return (learned clause, backjump level)."""
        self.stats.conflicts += 1
        seen: set[int] = set()
        learned: List[int] = []
        counter = 0  # literals of the current level still to resolve
        clause = list(self.clauses[conflict_idx])
        trail_pos = len(self.trail) - 1
        uip_lit: Optional[int] = None

        while True:
            for lit in clause:
                var = var_of(lit)
                if var in seen or self.level.get(var, 0) == 0:
                    continue
                seen.add(var)
                self.bump(var)
                if self.level[var] == self.decision_level:
                    counter += 1
                else:
                    learned.append(lit)
            # walk the trail backwards to the next marked current-level var
            while trail_pos >= 0 and var_of(self.trail[trail_pos]) not in seen:
                trail_pos -= 1
            assert trail_pos >= 0, "conflict analysis walked off the trail"
            lit = self.trail[trail_pos]
            var = var_of(lit)
            trail_pos -= 1
            counter -= 1
            if counter == 0:
                uip_lit = -lit
                break
            reason_idx = self.reason[var]
            assert reason_idx is not None, "decision reached before UIP"
            clause = [l for l in self.clauses[reason_idx] if var_of(l) != var]
        learned.append(uip_lit)
        if len(learned) == 1:
            return learned, 0
        back_level = max(
            self.level[var_of(l)] for l in learned if l != uip_lit
        )
        return learned, back_level

    def bump(self, var: int) -> None:
        self.activity[var] += self.activity_inc
        if self.activity[var] > 1e100:
            for v in self.activity:
                self.activity[v] *= 1e-100
            self.activity_inc *= 1e-100

    def backjump(self, level: int) -> None:
        self.stats.max_backjump = max(
            self.stats.max_backjump, self.decision_level - level
        )
        while self.trail and self.level[var_of(self.trail[-1])] > level:
            lit = self.trail.pop()
            var = var_of(lit)
            del self.values[var]
            del self.level[var]
            del self.reason[var]
        self.decision_level = level

    def pick_branch_literal(self) -> int:
        best_var = max(
            (v for v in range(1, self.num_vars + 1) if v not in self.values),
            key=lambda v: (self.activity[v], -v),
        )
        return best_var  # positive phase first

    # -- main loop ----------------------------------------------------------------

    def solve(self) -> CdclResult:
        if any(not c for c in self.clauses):
            return CdclResult(False, None, self.stats)
        conflicts_since_restart = 0
        restart_count = 1
        limit = self.restart_base * luby(restart_count)
        while True:
            conflict = self.propagate()
            if conflict is not None:
                if self.decision_level == 0:
                    return CdclResult(False, None, self.stats)
                learned, back_level = self.analyse(conflict)
                self.backjump(back_level)
                self.clauses.append(learned)
                self.stats.learned_clauses += 1
                self.activity_inc *= 1.05
                conflicts_since_restart += 1
                if conflicts_since_restart >= limit:
                    self.stats.restarts += 1
                    restart_count += 1
                    limit = self.restart_base * luby(restart_count)
                    conflicts_since_restart = 0
                    self.backjump(0)
                continue
            if len(self.values) == self.num_vars:
                return CdclResult(True, dict(self.values), self.stats)
            self.decision_level += 1
            self.stats.decisions += 1
            self.assign(self.pick_branch_literal(), None)


def cdcl_solve(cnf: CNF, restart_base: int = 64) -> CdclResult:
    """Solve ``cnf`` with conflict-driven clause learning.

    Implements the §V-B "state-of-the-art" feature set the paper's solver
    deliberately omits: 1-UIP clause learning, non-chronological
    backjumping, VSIDS activity branching and Luby restarts.  Returns a
    :class:`CdclResult` whose assignment (for SAT) is total.
    """
    if restart_base < 1:
        raise ApplicationError(f"restart_base must be >= 1, got {restart_base}")
    return _Solver(cnf, restart_base).solve()
