"""CNF formula representation for the SAT solver (paper §V-B).

Literals use DIMACS conventions: variables are positive integers ``1..n``
and a literal is ``+v`` or ``-v``.  A clause is a tuple of literals
(disjunction); a :class:`CNF` is a tuple of clauses (conjunction).

:class:`CNF` is immutable — :meth:`assign` returns a *new* simplified
formula — which is exactly what the distributed solver needs: sub-problems
travel inside messages and must not share mutable state across simulated
nodes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ...errors import ApplicationError

__all__ = ["CNF", "Clause", "Literal", "var_of", "negate"]

Literal = int
Clause = Tuple[Literal, ...]


def var_of(lit: Literal) -> int:
    """Variable index of a literal (``var_of(-3) == 3``)."""
    return -lit if lit < 0 else lit


def negate(lit: Literal) -> Literal:
    """The complementary literal."""
    return -lit


def _check_clause(clause: Iterable[Literal]) -> Clause:
    out = tuple(int(l) for l in clause)
    for l in out:
        if l == 0:
            raise ApplicationError("0 is not a valid literal (DIMACS terminator)")
    return out


class CNF:
    """An immutable CNF formula.

    Parameters
    ----------
    clauses:
        Iterable of literal iterables.  Order is preserved (the branching
        heuristics and the paper's listing iterate clauses in order).
    num_vars:
        Declared variable count; inferred from the largest variable when
        omitted.
    """

    __slots__ = ("clauses", "num_vars", "_lit_cache")

    def __init__(
        self, clauses: Iterable[Iterable[Literal]], num_vars: Optional[int] = None
    ) -> None:
        cs: Tuple[Clause, ...] = tuple(_check_clause(c) for c in clauses)
        max_var = max((var_of(l) for c in cs for l in c), default=0)
        if num_vars is None:
            num_vars = max_var
        elif num_vars < max_var:
            raise ApplicationError(
                f"declared num_vars={num_vars} but clause mentions variable {max_var}"
            )
        object.__setattr__(self, "clauses", cs)
        object.__setattr__(self, "num_vars", int(num_vars))
        object.__setattr__(self, "_lit_cache", None)

    # CNF is conceptually frozen; block accidental mutation.
    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("CNF is immutable")

    # The frozen __setattr__ breaks pickle's default slot restoration, so
    # spell the protocol out; formulas must cross process boundaries when
    # sweeps fan out over a worker pool (repro.parallel).
    def __getstate__(self) -> Tuple[Tuple[Clause, ...], int]:
        return (self.clauses, self.num_vars)

    def __setstate__(self, state: Tuple[Tuple[Clause, ...], int]) -> None:
        clauses, num_vars = state
        object.__setattr__(self, "clauses", clauses)
        object.__setattr__(self, "num_vars", num_vars)
        object.__setattr__(self, "_lit_cache", None)

    @classmethod
    def _from_trusted(
        cls, clauses: Tuple[Clause, ...], num_vars: int
    ) -> "CNF":
        """Internal fast constructor for already-validated clause tuples.

        :meth:`assign` runs in the solver's innermost loop and only ever
        *removes* literals/clauses, so revalidating every clause (the
        dominant cost of public construction, per profiling) is skipped.
        """
        obj = object.__new__(cls)
        object.__setattr__(obj, "clauses", clauses)
        object.__setattr__(obj, "num_vars", num_vars)
        object.__setattr__(obj, "_lit_cache", None)
        return obj

    # -- basic structure ---------------------------------------------------

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, CNF)
            and self.clauses == other.clauses
            and self.num_vars == other.num_vars
        )

    def __hash__(self) -> int:
        return hash((self.clauses, self.num_vars))

    def literals(self) -> FrozenSet[Literal]:
        """The set of literals appearing in the formula (cached)."""
        cached = self._lit_cache
        if cached is None:
            cached = frozenset(l for c in self.clauses for l in c)
            object.__setattr__(self, "_lit_cache", cached)
        return cached

    def variables(self) -> FrozenSet[int]:
        """Variables appearing in the formula."""
        return frozenset(var_of(l) for l in self.literals())

    # -- solver predicates -------------------------------------------------

    @property
    def is_consistent(self) -> bool:
        """Paper's ``consistent(problem)``: no clauses remain → satisfied."""
        return not self.clauses

    @property
    def has_empty_clause(self) -> bool:
        """Paper's ``exist_empty_clause``: some clause is unsatisfiable."""
        return any(not c for c in self.clauses)

    def unit_literals(self) -> List[Literal]:
        """Literals forced by unit clauses, in clause order, deduplicated.

        When contradictory units (``l`` and ``-l``) are both present, both
        are reported — :meth:`assign` of one then produces the empty clause
        from the other, surfacing the conflict naturally.
        """
        seen: set[Literal] = set()
        out: List[Literal] = []
        for c in self.clauses:
            if len(c) == 1 and c[0] not in seen:
                seen.add(c[0])
                out.append(c[0])
        return out

    def pure_literals(self) -> List[Literal]:
        """Literals that occur in only one polarity, ascending by variable."""
        lits = self.literals()
        return sorted(
            (l for l in lits if negate(l) not in lits), key=lambda l: (var_of(l), l < 0)
        )

    # -- transformation ------------------------------------------------------

    def assign(self, lit: Literal) -> "CNF":
        """Return the formula simplified under ``lit = true``.

        Clauses containing ``lit`` are satisfied (dropped); occurrences of
        ``-lit`` are falsified (removed, possibly leaving an empty clause).
        """
        if lit == 0:
            raise ApplicationError("cannot assign literal 0")
        neg = -lit
        new_clauses: List[Clause] = []
        for c in self.clauses:
            if lit in c:
                continue
            if neg in c:
                new_clauses.append(tuple(l for l in c if l != neg))
            else:
                new_clauses.append(c)
        return CNF._from_trusted(tuple(new_clauses), self.num_vars)

    def assign_all(self, lits: Sequence[Literal]) -> "CNF":
        """Apply :meth:`assign` for each literal in order."""
        cnf = self
        for lit in lits:
            cnf = cnf.assign(lit)
        return cnf

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, assignment: Dict[int, bool]) -> Optional[bool]:
        """Truth value under a (possibly partial) assignment.

        Returns True/False when determined, ``None`` when the assignment
        leaves the formula undecided.
        """
        undecided = False
        for c in self.clauses:
            clause_true = False
            clause_open = False
            for l in c:
                v = assignment.get(var_of(l))
                if v is None:
                    clause_open = True
                elif v == (l > 0):
                    clause_true = True
                    break
            if clause_true:
                continue
            if clause_open:
                undecided = True
            else:
                return False
        return None if undecided else True

    def is_satisfied_by(self, assignment: Dict[int, bool]) -> bool:
        """True iff the assignment makes every clause true."""
        return self.evaluate(assignment) is True

    # -- misc ----------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Structural counts used in reports and hints."""
        return {
            "num_vars": self.num_vars,
            "num_clauses": self.num_clauses,
            "num_literals": sum(len(c) for c in self.clauses),
            "free_vars": len(self.variables()),
        }

    def __repr__(self) -> str:
        return f"CNF({self.num_clauses} clauses, {self.num_vars} vars)"
