"""DIMACS CNF reader/writer.

The paper's benchmark problems come from SATLIB ([42]), distributed in
DIMACS CNF format.  This module parses and serialises that format so users
can run the solver on standard instances (the bench suite generates
equivalent instances locally because the SATLIB files require network
access; see DESIGN.md).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ...errors import DimacsFormatError
from .cnf import CNF

__all__ = ["parse_dimacs", "to_dimacs", "load_dimacs", "save_dimacs"]


def parse_dimacs(text: str) -> CNF:
    """Parse DIMACS CNF text into a :class:`CNF`.

    Accepts the common dialect: ``c`` comment lines, one ``p cnf V C``
    problem line, clauses as whitespace-separated literals terminated by
    ``0`` (clauses may span lines), ``%``/``0`` trailer lines (as found in
    SATLIB files) are tolerated.
    """
    declared_vars: Optional[int] = None
    declared_clauses: Optional[int] = None
    clauses: List[List[int]] = []
    current: List[int] = []
    ended = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line == "%":
            ended = True
            continue
        if ended and line == "0":
            continue
        if line.startswith("p"):
            if declared_vars is not None:
                raise DimacsFormatError(f"line {line_no}: duplicate problem line")
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsFormatError(
                    f"line {line_no}: malformed problem line {line!r}"
                )
            try:
                declared_vars, declared_clauses = int(parts[2]), int(parts[3])
            except ValueError as exc:
                raise DimacsFormatError(
                    f"line {line_no}: non-numeric counts in {line!r}"
                ) from exc
            if declared_vars < 0 or declared_clauses < 0:
                raise DimacsFormatError(f"line {line_no}: negative counts")
            continue
        if declared_vars is None:
            raise DimacsFormatError(
                f"line {line_no}: clause data before 'p cnf' problem line"
            )
        for tok in line.split():
            try:
                lit = int(tok)
            except ValueError as exc:
                raise DimacsFormatError(
                    f"line {line_no}: bad literal {tok!r}"
                ) from exc
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                current.append(lit)
    if current:
        raise DimacsFormatError("unterminated final clause (missing trailing 0)")
    if declared_vars is None:
        raise DimacsFormatError("missing 'p cnf' problem line")
    if declared_clauses is not None and len(clauses) != declared_clauses:
        raise DimacsFormatError(
            f"problem line declares {declared_clauses} clauses, found {len(clauses)}"
        )
    try:
        return CNF(clauses, num_vars=declared_vars)
    except Exception as exc:  # variable out of declared range etc.
        raise DimacsFormatError(str(exc)) from exc


def to_dimacs(cnf: CNF, comments: Iterable[str] = ()) -> str:
    """Serialise a :class:`CNF` to DIMACS text."""
    lines: List[str] = [f"c {c}" for c in comments]
    lines.append(f"p cnf {cnf.num_vars} {cnf.num_clauses}")
    for clause in cnf.clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"


def load_dimacs(path: Union[str, Path]) -> CNF:
    """Read a DIMACS CNF file."""
    return parse_dimacs(Path(path).read_text())


def save_dimacs(
    cnf: CNF, path: Union[str, Path], comments: Iterable[str] = ()
) -> None:
    """Write a DIMACS CNF file."""
    Path(path).write_text(to_dimacs(cnf, comments))
