"""The distributed DPLL solver — the paper's Listing 4, on the full stack.

The solver is a layer-5 generator function.  Each invocation simplifies its
sub-problem (unit propagation + pure literals), branches on a heuristically
chosen literal and delegates both polarities as concurrent subcalls using
the non-deterministic choice mechanism — "if a solution to one of the
sub-problems is found, the application will resume execution without
waiting for other result" (§V-B).

Result convention: a satisfying (partial) assignment ``dict`` for SAT,
``None`` for UNSAT — so the choice predicate is simply
:func:`is_sat`.  Sub-problems carry their accumulated assignment, letting
the root recover a checkable model (a detail the paper's SAT/UNSAT-only
listing omits).
"""

from __future__ import annotations

import random
from typing import Any, Dict, NamedTuple, Optional, Tuple

from ...errors import ApplicationError
from ...netsim import resolve_shards
from ...recursion import Call, Choice, Result, Sync
from ...telemetry.probe import probe, probe_enabled
from ...topology import NodeId, Topology
from .cnf import CNF, var_of
from .dpll import assign_pures, propagate_units
from .heuristics import Heuristic, make_heuristic

__all__ = [
    "SatProblem",
    "is_sat",
    "sat_content_size",
    "make_solve_sat",
    "solve_sat",
    "DistributedSatResult",
    "solve_on_machine",
]


class SatProblem(NamedTuple):
    """A sub-problem travelling between nodes: formula + assignment so far."""

    cnf: CNF
    assignment: Tuple[Tuple[int, bool], ...] = ()

    def extend(self, var: int, value: bool) -> "SatProblem":
        """Sub-problem with one more assigned variable (cnf unchanged)."""
        return SatProblem(self.cnf, self.assignment + ((var, value),))

    def as_dict(self) -> Dict[int, bool]:
        """The accumulated assignment as a dict."""
        return dict(self.assignment)


def is_sat(result: Any) -> bool:
    """The paper's ``is_SAT`` choice predicate: a model means SAT."""
    return result is not None


def sat_content_size(content: Any) -> int:
    """Wire-size model for SAT payloads (bandwidth accounting).

    A :class:`SatProblem` costs one word per literal plus one per
    accumulated assignment entry plus a small header; a returned model
    costs one word per assigned variable; UNSAT replies cost one word.
    Used with :func:`repro.netsim.make_envelope_sizer`.
    """
    if isinstance(content, SatProblem):
        literals = sum(len(c) for c in content.cnf.clauses)
        return 2 + literals + len(content.assignment)
    if isinstance(content, CNF):
        return 2 + sum(len(c) for c in content.clauses)
    if isinstance(content, dict):
        return 1 + len(content)
    return 1


def make_solve_sat(
    heuristic: "Heuristic | str" = "max_occurrence",
    rng: Optional[random.Random] = None,
    hint_mode: Optional[str] = None,
    simplify: str = "single",
):
    """Build the Listing-4 generator function with a fixed heuristic.

    Parameters
    ----------
    heuristic:
        Branching heuristic (callable or registry name) — the paper's
        "algorithm-independent heuristic".
    rng:
        Seeded stream for the ``"random"`` heuristic.
    hint_mode:
        Cross-layer size hint attached to each subcall (§III-B3):
        ``None`` (no hints), ``"clauses"`` (remaining clause count) or
        ``"vars"`` (remaining free-variable count).
    simplify:
        Per-node simplification depth, the solver's work/communication
        knob (ablated in the benches):

        * ``"single"`` (default) — the one sweep of unit propagation +
          pure literals that the paper's Listing 4 spells out, deferring
          follow-on units to the child invocations;
        * ``"fixpoint"`` — simplify exhaustively before branching
          (maximum local computation, smallest search tree);
        * ``"none"`` — branch immediately with only the terminal checks
          (maximum unfolding).  This mode reproduces the *scale* of the
          paper's published traces — its Figure 5 peaks near 250 queued
          messages over ~200 steps on a 196-core 2D torus, which matches
          this mode and is an order of magnitude more work than Listing 4
          with effective propagation produces on uf20-91 (see
          EXPERIMENTS.md, calibration note).
    """
    if isinstance(heuristic, str):
        heuristic = make_heuristic(heuristic, rng)
    if hint_mode not in (None, "clauses", "vars"):
        raise ApplicationError(f"unknown hint_mode {hint_mode!r}")
    if simplify not in ("none", "single", "fixpoint"):
        raise ApplicationError(f"unknown simplify mode {simplify!r}")
    fixpoint = simplify == "fixpoint"
    no_simplify = simplify == "none"

    def subcall_hint(cnf: CNF) -> Optional[float]:
        if hint_mode == "clauses":
            return float(cnf.num_clauses)
        if hint_mode == "vars":
            return float(len(cnf.variables()))
        return None

    def solve_sat(problem: "SatProblem | CNF"):
        """Paper Listing 4: the DPLL step executed at each node."""
        if isinstance(problem, CNF):
            problem = SatProblem(problem)
        cnf = problem.cnf
        model = problem.as_dict()
        # lines 2-5: terminal checks
        if cnf.is_consistent:
            yield Result(model)
            return
        if cnf.has_empty_clause:
            if probe_enabled():
                probe("dpll.backtrack", depth=len(model), reason="empty_clause")
            yield Result(None)
            return
        # lines 6-8: unit propagation / lines 9-11: pure literal assignment
        if not no_simplify:
            cnf = propagate_units(cnf, model, fixpoint=fixpoint)
            if not cnf.has_empty_clause:
                cnf = assign_pures(cnf, model)
            # simplification may already decide the sub-problem
            if cnf.has_empty_clause:
                if probe_enabled():
                    probe("dpll.backtrack", depth=len(model), reason="conflict")
                yield Result(None)
                return
            if cnf.is_consistent:
                yield Result(model)
                return
        # lines 12-14: branch on a selected literal
        lit = heuristic(cnf)
        var, value = var_of(lit), lit > 0
        if probe_enabled():
            probe(
                "dpll.branch",
                var=var,
                depth=len(model),
                clauses=cnf.num_clauses,
            )
        base = SatProblem(cnf, tuple(model.items()))
        sub1 = SatProblem(cnf.assign(lit), base.assignment + ((var, value),))
        sub2 = SatProblem(cnf.assign(-lit), base.assignment + ((var, not value),))
        # line 15: concurrent evaluation with non-deterministic choice
        yield Choice(
            is_sat,
            Call(sub1, hint=subcall_hint(sub1.cnf)),
            Call(sub2, hint=subcall_hint(sub2.cnf)),
        )
        # lines 16-17: first valid (SAT) evaluation, else None (UNSAT)
        result = yield Sync()
        yield Result(result)

    return solve_sat


#: the default solver (max-occurrence heuristic, no hints)
solve_sat = make_solve_sat()


class DistributedSatResult:
    """Outcome of a distributed solve: verdict, model and profiling data."""

    __slots__ = (
        "satisfiable", "assignment", "report", "engine_stats", "cnf",
        "link_stats", "state_digest",
    )

    def __init__(
        self, cnf: CNF, raw_result: Any, report, engine_stats, link_stats=None,
        state_digest: Optional[str] = None,
    ) -> None:
        self.cnf = cnf
        self.satisfiable = raw_result is not None
        self.assignment: Optional[Dict[int, bool]] = (
            dict(raw_result) if raw_result is not None else None
        )
        self.report = report
        self.engine_stats = engine_stats
        #: layer-1.5 protocol counters (reliable runs only, else None)
        self.link_stats = link_stats
        #: semantic digest of the final stack state — only computed for
        #: checkpointed/resumed solves, where it anchors resume parity
        self.state_digest = state_digest

    @property
    def verified(self) -> bool:
        """True iff the returned model actually satisfies the formula."""
        if not self.satisfiable:
            return True  # UNSAT verdicts are verified against dpll elsewhere
        assert self.assignment is not None
        return self.cnf.is_satisfied_by(self.assignment)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "SAT" if self.satisfiable else "UNSAT"
        return f"DistributedSatResult({tag}, ct={self.report.computation_time})"


def solve_on_machine(
    cnf: CNF,
    topology: Topology,
    *,
    mapper: str = "rr",
    status: "int | None" = None,
    heuristic: "Heuristic | str" = "max_occurrence",
    cancellation: bool = False,
    hint_mode: Optional[str] = None,
    simplify: str = "single",
    seed: int = 0,
    trigger_node: NodeId = 0,
    max_steps: int = 1_000_000,
    record_queue_depths: bool = False,
    drain: bool = True,
    share_threshold: Optional[int] = None,
    size_fn=None,
    drop: float = 0.0,
    duplicate: float = 0.0,
    reliable=False,
    telemetry=None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir=None,
    checkpoint_sink=None,
    resume_from=None,
    topology_spec: Optional[str] = None,
    shards=None,
    shard_partitioner: str = "strip",
) -> DistributedSatResult:
    """Solve one formula on a simulated machine; the one-call entry point.

    Builds a :class:`~repro.stack.HyperspaceStack` over ``topology``, runs
    the Listing-4 solver and returns the verdict with the full profiling
    report (computation time, interconnect activity, node activity).

    ``drain`` (default) matches the paper's measurement protocol: losing
    speculative evaluations are ignored but *keep running*, and computation
    time counts "the number of simulation time steps between the first
    (trigger) and last messages" — i.e. until the machine is quiescent.
    ``drain=False`` halts as soon as the root verdict is known (the
    latency a real user would observe); combined with ``cancellation=True``
    it also stops speculative subtrees early.

    ``share_threshold`` and ``size_fn`` pass straight through to the
    :class:`~repro.stack.HyperspaceStack` (layer-3 work sharing and the
    bandwidth-accounting message sizer) so sweep tasks can cover the
    ablation benches' configurations too.  ``telemetry`` likewise: pass a
    :class:`~repro.telemetry.TelemetryBus` (or ``True`` for a fresh one)
    to capture structured events from all five layers, including the
    solver's ``dpll.branch`` / ``dpll.backtrack`` probes.

    ``drop`` / ``duplicate`` / ``reliable`` configure lossy links and the
    layer-1.5 reliable-delivery protocol (``docs/robustness.md``); with
    ``reliable`` the result's ``link_stats`` carries the protocol counters
    (retransmits, suppressed duplicates, ...).

    ``checkpoint_every`` / ``checkpoint_dir`` / ``checkpoint_sink`` /
    ``resume_from`` expose stack checkpointing (``docs/checkpointing.md``):
    checkpoints embed a ``workload`` header describing this solve (formula
    included) so ``repro solve --resume`` can rebuild the stack unaided;
    ``topology_spec`` optionally records the parseable CLI topology string
    in that header.  Checkpointed solves carry the final semantic state
    digest on the result (``state_digest``).  The ``"random"`` branching
    heuristic draws from one shared RNG across invocations and therefore
    cannot be replayed from a checkpoint — it is rejected here.

    ``shards`` / ``shard_partitioner`` select the sharded multi-process
    backend (``docs/parallelism.md``): node handlers run in ``shards``
    persistent worker processes with a schedule bit-identical to the
    serial machine, so verdicts, digests and telemetry counters do not
    depend on the shard count.  ``shards=None`` consults ``REPRO_SHARDS``
    and defaults to serial.  Checkpoints never record the shard count —
    a sharded run resumes serially and vice versa.

    This function is a thin back-compat shim: it builds a
    :class:`repro.engine.RunSpec` from its keyword arguments and runs it
    through :func:`repro.engine.execute`, the library's one run entry
    point.  Validation (including the random-heuristic guards above)
    happens in :func:`repro.engine.validate`, so the CLI, this shim and
    the conformance fuzzer reject bad configurations with identical
    messages.
    """
    from ...engine import RunSpec, execute
    from ...reliability import ReliabilityConfig
    from ...topology import spec_of

    # split the legacy polymorphic kwargs into declarative spec fields
    # plus runtime attachments execute() takes alongside the spec
    heuristic_fn = None
    heuristic_name = heuristic
    if not isinstance(heuristic, str):
        heuristic_fn, heuristic_name = heuristic, "custom"
    reliability_override = None
    reliable_flag = bool(reliable)
    retry_limit = None
    if isinstance(reliable, ReliabilityConfig):
        reliability_override, reliable_flag = reliable, True
    status_factory = None
    spec_status = status
    if not (status is None or isinstance(status, int)):
        status_factory, spec_status = status, None
    mapper_factory = None
    spec_mapper = mapper
    if not isinstance(mapper, str):
        mapper_factory, spec_mapper = mapper, "rr"
    spec = RunSpec(
        workload="sat",
        workload_params={
            "clauses": [list(c) for c in cnf.clauses],
            "num_vars": cnf.num_vars,
        },
        topology=topology_spec if topology_spec is not None else spec_of(topology),
        mapper=spec_mapper,
        status=spec_status,
        cancellation=cancellation,
        share_threshold=share_threshold,
        record_queue_depths=record_queue_depths,
        heuristic=heuristic_name,
        simplify=simplify,
        hint_mode=hint_mode,
        seed=seed,
        trigger_node=trigger_node,
        max_steps=max_steps,
        drain=drain,
        drop=drop,
        duplicate=duplicate,
        reliable=reliable_flag,
        retry_limit=retry_limit,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=str(checkpoint_dir) if checkpoint_dir is not None else None,
        shards=min(resolve_shards(shards), topology.n_nodes),
        partitioner=shard_partitioner,
    )
    run = execute(
        spec,
        topology=topology,
        telemetry=telemetry,
        size_fn=size_fn,
        checkpoint_sink=checkpoint_sink,
        resume_from=resume_from,
        reliability=reliability_override,
        heuristic_fn=heuristic_fn,
        mapper_factory=mapper_factory,
        status_factory=status_factory,
    )
    return DistributedSatResult(
        cnf,
        run.result,
        run.report,
        run.engine_stats,
        link_stats=run.link_stats,
        state_digest=run.state_digest,
    )
