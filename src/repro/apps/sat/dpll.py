"""Sequential DPLL solver — the single-node reference (paper §V-B).

This is the same "barebone implementation of the Davis-Putnam-Logemann-
Loveland algorithm" the paper distributes (Listing 4): unit propagation,
pure-literal assignment, heuristic branching, no learning or
non-chronological backtracking ("our focus here is [mapping and topology],
to this end we choose a basic implementation of DPLL").

The sequential version serves three purposes:

* ground truth for the distributed solver's answers;
* the satisfiability filter of the benchmark generator (SATLIB's uf20-91
  suite contains satisfiable instances only);
* a workload-size oracle (its statistics estimate problem hardness).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from .cnf import CNF, Literal, var_of
from .heuristics import Heuristic, make_heuristic

__all__ = ["SolveStats", "SatResult", "dpll_solve", "propagate_units", "assign_pures"]


class SolveStats:
    """Search-effort counters for one sequential solve."""

    __slots__ = ("decisions", "unit_propagations", "pure_assignments", "max_depth", "branches")

    def __init__(self) -> None:
        self.decisions = 0
        self.unit_propagations = 0
        self.pure_assignments = 0
        self.max_depth = 0
        #: recursive branch evaluations (size of the explored search tree)
        self.branches = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reports."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SolveStats({self.as_dict()!r})"


class SatResult:
    """Outcome of a solve: satisfiable flag, model (if SAT) and stats."""

    __slots__ = ("satisfiable", "assignment", "stats")

    def __init__(
        self,
        satisfiable: bool,
        assignment: Optional[Dict[int, bool]],
        stats: SolveStats,
    ) -> None:
        self.satisfiable = satisfiable
        self.assignment = assignment
        self.stats = stats

    def __bool__(self) -> bool:
        return self.satisfiable

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "SAT" if self.satisfiable else "UNSAT"
        return f"SatResult({tag}, decisions={self.stats.decisions})"


def propagate_units(
    cnf: CNF,
    assignment: Dict[int, bool],
    stats: Optional[SolveStats] = None,
    fixpoint: bool = True,
) -> CNF:
    """Unit propagation (paper Listing 4 lines 6-8).

    Extends ``assignment`` in place with every forced literal and returns
    the simplified formula.  Stops early when an empty clause appears.

    With ``fixpoint`` (default) propagation repeats until no unit clauses
    remain; with ``fixpoint=False`` it performs the single sweep of the
    paper's listing (``for clause in problem[clauses]: if unit_clause ...``),
    leaving newly created units for the next recursion level — which is
    what shapes the deep unfolding the paper profiles.
    """
    while True:
        units = cnf.unit_literals()
        if not units:
            return cnf
        for lit in units:
            cnf = cnf.assign(lit)
            assignment[var_of(lit)] = lit > 0
            if stats is not None:
                stats.unit_propagations += 1
            if cnf.has_empty_clause:
                return cnf
        if not fixpoint:
            return cnf


def assign_pures(
    cnf: CNF, assignment: Dict[int, bool], stats: Optional[SolveStats] = None
) -> CNF:
    """Assign pure literals (paper Listing 4 lines 9-11), one sweep."""
    for lit in cnf.pure_literals():
        # purity can change as clauses vanish; re-check before each assign
        lits_now = cnf.literals()
        if lit in lits_now and -lit not in lits_now:
            cnf = cnf.assign(lit)
            assignment[var_of(lit)] = lit > 0
            if stats is not None:
                stats.pure_assignments += 1
    return cnf


def dpll_solve(
    cnf: CNF,
    heuristic: "Heuristic | str" = "max_occurrence",
    rng: Optional[random.Random] = None,
    max_branches: Optional[int] = None,
) -> SatResult:
    """Solve ``cnf`` with the barebone DPLL of the paper's Listing 4.

    Parameters
    ----------
    heuristic:
        Branching heuristic (callable or registry name).
    rng:
        Seeded stream, required by the ``"random"`` heuristic.
    max_branches:
        Optional search-effort cap; exceeded → :class:`RecursionError`
        style abort via :class:`ApplicationError` is *not* raised — instead
        the cap raises ``RuntimeError`` to make runaway searches loud.
    """
    if isinstance(heuristic, str):
        heuristic = make_heuristic(heuristic, rng)
    stats = SolveStats()

    def solve(
        problem: CNF, assignment: Dict[int, bool], depth: int
    ) -> Optional[Dict[int, bool]]:
        stats.branches += 1
        if max_branches is not None and stats.branches > max_branches:
            raise RuntimeError(f"DPLL exceeded max_branches={max_branches}")
        stats.max_depth = max(stats.max_depth, depth)
        problem = propagate_units(problem, assignment, stats)
        if problem.has_empty_clause:
            return None
        problem = assign_pures(problem, assignment, stats)
        if problem.is_consistent:
            return assignment
        lit = heuristic(problem)
        stats.decisions += 1
        for chosen in (lit, -lit):
            trial = dict(assignment)
            trial[var_of(chosen)] = chosen > 0
            model = solve(problem.assign(chosen), trial, depth + 1)
            if model is not None:
                return model
        return None

    model = solve(cnf, {}, 0)
    if model is None:
        return SatResult(False, None, stats)
    return SatResult(True, model, stats)
