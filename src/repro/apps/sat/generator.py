"""Random SAT instance generators (the paper's benchmark workload, §V-C).

The paper benchmarks on "a collection of uniform random 3-SAT problems
(20 variables and 91 clauses each, all satisfiable)" from SATLIB's uf20-91
suite [42].  SATLIB's files are built by sampling uniform random 3-SAT at
that clause/variable ratio and keeping the satisfiable instances; with no
network access we regenerate the same distribution locally:

* :func:`uniform_random_ksat` — k distinct variables per clause, uniform
  polarity (the SATLIB recipe);
* :func:`satisfiable_random_ksat` — rejection-sample until the sequential
  DPLL solver confirms satisfiability (the "all satisfiable" filter);
* :func:`planted_random_ksat` — guaranteed-satisfiable instances via a
  hidden planted assignment (cheaper for large sweeps; slightly different
  distribution, used only where noted);
* :func:`uf20_91_suite` — the drop-in replacement for the paper's 20
  benchmark problems.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ...errors import ApplicationError
from ...rng import SeedSequence
from .cnf import CNF
from .dpll import dpll_solve

__all__ = [
    "uniform_random_ksat",
    "satisfiable_random_ksat",
    "planted_random_ksat",
    "uf20_91_suite",
    "clear_suite_cache",
    "UF20_VARS",
    "UF20_CLAUSES",
]

#: parameters of the paper's benchmark suite (SATLIB uf20-91)
UF20_VARS = 20
UF20_CLAUSES = 91


def uniform_random_ksat(
    num_vars: int, num_clauses: int, k: int, rng: random.Random
) -> CNF:
    """One uniform random k-SAT instance.

    Each clause draws ``k`` *distinct* variables uniformly and negates each
    with probability 1/2 — the standard fixed-clause-length model used by
    SATLIB.  Duplicate clauses are permitted (they are in the model too).
    """
    if k < 1:
        raise ApplicationError(f"k must be >= 1, got {k}")
    if num_vars < k:
        raise ApplicationError(
            f"need at least k={k} variables for {k}-SAT, got {num_vars}"
        )
    if num_clauses < 0:
        raise ApplicationError(f"num_clauses must be >= 0, got {num_clauses}")
    variables = range(1, num_vars + 1)
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(variables, k)
        clause = [v if rng.random() < 0.5 else -v for v in chosen]
        clauses.append(clause)
    return CNF(clauses, num_vars=num_vars)


def satisfiable_random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int,
    rng: random.Random,
    max_attempts: int = 10_000,
) -> CNF:
    """Rejection-sample :func:`uniform_random_ksat` until satisfiable.

    This reproduces SATLIB's "uf" (uniform-filtered) construction.  At the
    uf20-91 ratio roughly a third to a half of raw samples are satisfiable,
    so a handful of attempts suffice.
    """
    for _ in range(max_attempts):
        cnf = uniform_random_ksat(num_vars, num_clauses, k, rng)
        if dpll_solve(cnf).satisfiable:
            return cnf
    raise ApplicationError(
        f"no satisfiable instance found in {max_attempts} attempts "
        f"({num_vars} vars, {num_clauses} clauses, k={k})"
    )


def planted_random_ksat(
    num_vars: int, num_clauses: int, k: int, rng: random.Random
) -> CNF:
    """Guaranteed-satisfiable k-SAT via a hidden planted assignment.

    A random total assignment is drawn first; candidate clauses violating
    it are rejected and re-sampled.  The planted model is *not* identical
    in distribution to filtered uniform (it biases clauses toward the
    hidden model) — benches that need faithful uf20-91 statistics use
    :func:`satisfiable_random_ksat` instead.
    """
    if num_vars < k:
        raise ApplicationError(
            f"need at least k={k} variables for {k}-SAT, got {num_vars}"
        )
    hidden = {v: rng.random() < 0.5 for v in range(1, num_vars + 1)}
    variables = range(1, num_vars + 1)
    clauses = []
    for _ in range(num_clauses):
        while True:
            chosen = rng.sample(variables, k)
            clause = [v if rng.random() < 0.5 else -v for v in chosen]
            if any(hidden[abs(l)] == (l > 0) for l in clause):
                clauses.append(clause)
                break
    return CNF(clauses, num_vars=num_vars)


#: memoised suites keyed by (n_problems, seed, planted) — see uf20_91_suite
_SUITE_CACHE: "dict[tuple[int, int, bool], tuple[CNF, ...]]" = {}


def uf20_91_suite(
    n_problems: int = 20, seed: int = 2017, planted: bool = False
) -> List[CNF]:
    """The benchmark suite standing in for the paper's 20 SATLIB problems.

    Deterministic in ``seed``; every instance is satisfiable (filtered by
    the sequential DPLL solver, or planted when ``planted=True``).

    Suites are memoised per ``(n_problems, seed, planted)``: generation
    rejection-samples through the sequential solver, which dominates
    start-up cost when every bench invocation (and every parallel sweep)
    asks for the same seeded suite.  Formulas are immutable, so the cached
    instances are shared; the returned list is a fresh copy each call.
    """
    key = (n_problems, seed, planted)
    cached = _SUITE_CACHE.get(key)
    if cached is None:
        seeds = SeedSequence(seed)
        gen = planted_random_ksat if planted else satisfiable_random_ksat
        cached = tuple(
            gen(UF20_VARS, UF20_CLAUSES, 3, rng)
            for rng in seeds.indexed("uf20-91", n_problems)
        )
        _SUITE_CACHE[key] = cached
    return list(cached)


def clear_suite_cache() -> None:
    """Drop all memoised :func:`uf20_91_suite` results (tests only)."""
    _SUITE_CACHE.clear()
