"""Branching heuristics for DPLL (paper §V-B).

The paper selects the branching variable "using an algorithm-independent
heuristic" without naming one; this module provides the classic candidates,
all deterministic given their inputs (the random heuristic takes a seeded
stream), so whole simulations stay reproducible.

A heuristic is a function ``(CNF) -> Literal`` choosing the literal to try
``True`` first; the solver then branches on both polarities.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Callable, Dict, Optional

from ...errors import ApplicationError
from .cnf import CNF, Literal, var_of

__all__ = [
    "Heuristic",
    "first_literal",
    "max_occurrence",
    "jeroslow_wang",
    "moms",
    "make_random_heuristic",
    "make_heuristic",
    "HEURISTIC_NAMES",
]

Heuristic = Callable[[CNF], Literal]


def _require_literals(cnf: CNF) -> None:
    if not cnf.literals():
        raise ApplicationError("cannot select a literal from an empty formula")


def first_literal(cnf: CNF) -> Literal:
    """First literal of the first non-empty clause (the naive choice)."""
    for clause in cnf.clauses:
        if clause:
            return clause[0]
    raise ApplicationError("cannot select a literal from an empty formula")


def max_occurrence(cnf: CNF) -> Literal:
    """The literal occurring in the most clauses (ties: smallest var, then
    positive polarity).  A solid general-purpose default."""
    _require_literals(cnf)
    counts: Counter[Literal] = Counter(l for c in cnf.clauses for l in c)
    return max(counts, key=lambda l: (counts[l], -var_of(l), l > 0))


def jeroslow_wang(cnf: CNF) -> Literal:
    """Jeroslow-Wang: maximise ``J(l) = sum(2**-|c| for clauses c with l)``.

    Weighs short clauses exponentially more — satisfying them quickly
    shrinks the search tree.
    """
    _require_literals(cnf)
    scores: Dict[Literal, float] = {}
    for clause in cnf.clauses:
        if not clause:
            continue
        w = 2.0 ** (-len(clause))
        for l in clause:
            scores[l] = scores.get(l, 0.0) + w
    return max(scores, key=lambda l: (scores[l], -var_of(l), l > 0))


def moms(cnf: CNF) -> Literal:
    """Maximum Occurrences in clauses of Minimum Size."""
    _require_literals(cnf)
    min_len = min((len(c) for c in cnf.clauses if c), default=0)
    if min_len == 0:
        return first_literal(cnf)
    counts: Counter[Literal] = Counter(
        l for c in cnf.clauses if len(c) == min_len for l in c
    )
    return max(counts, key=lambda l: (counts[l], -var_of(l), l > 0))


def make_random_heuristic(rng: random.Random) -> Heuristic:
    """Uniform random literal (seeded) — the no-information baseline."""

    def random_literal(cnf: CNF) -> Literal:
        lits = sorted(cnf.literals(), key=lambda l: (var_of(l), l < 0))
        if not lits:
            raise ApplicationError("cannot select a literal from an empty formula")
        return lits[rng.randrange(len(lits))]

    random_literal.__name__ = "random_literal"
    return random_literal


#: names accepted by :func:`make_heuristic`
HEURISTIC_NAMES = ("first", "max_occurrence", "jeroslow_wang", "moms", "random")


def make_heuristic(name: str, rng: Optional[random.Random] = None) -> Heuristic:
    """Build a heuristic by registry name."""
    if name == "first":
        return first_literal
    if name == "max_occurrence":
        return max_occurrence
    if name == "jeroslow_wang":
        return jeroslow_wang
    if name == "moms":
        return moms
    if name == "random":
        if rng is None:
            raise ApplicationError("random heuristic needs a seeded rng")
        return make_random_heuristic(rng)
    raise ApplicationError(
        f"unknown heuristic {name!r}; expected one of {HEURISTIC_NAMES}"
    )
