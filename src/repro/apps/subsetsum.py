"""Subset sum — a decision problem with SAT-like speculative structure.

Given positive integers and a target, decide whether some subset sums to
the target (and produce it).  Each invocation branches on including or
excluding the next number under non-deterministic choice, with two
classic prunes (remaining-sum bound and overshoot), making it a compact
second decision-problem workload beside SAT.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import List, NamedTuple, Optional, Sequence, Tuple

from ..errors import ApplicationError
from ..recursion import Call, Choice, Result, Sync

__all__ = [
    "SubsetSumProblem",
    "subset_found",
    "subset_sum",
    "sequential_subset_sum",
    "brute_force_subset_sum",
    "random_subset_sum_problem",
]


class SubsetSumProblem(NamedTuple):
    """Sub-problem: remaining numbers start at ``index``; ``chosen`` is the
    set picked so far; ``remaining_target`` what it still must sum to."""

    numbers: Tuple[int, ...]
    remaining_target: int
    index: int = 0
    chosen: Tuple[int, ...] = ()

    @classmethod
    def build(cls, numbers: Sequence[int], target: int) -> "SubsetSumProblem":
        """Validated constructor (positive numbers, non-negative target)."""
        nums = tuple(int(x) for x in numbers)
        if any(x <= 0 for x in nums):
            raise ApplicationError("subset sum requires positive numbers")
        if target < 0:
            raise ApplicationError(f"target must be >= 0, got {target}")
        return cls(nums, int(target))


def subset_found(result) -> bool:
    """Choice predicate: a tuple of chosen numbers means success."""
    return result is not None


def subset_sum(problem: SubsetSumProblem):
    """Layer-5 subset sum: include/exclude under speculative choice."""
    numbers, target, idx, chosen = problem
    if target == 0:
        yield Result(chosen)
        return
    if idx >= len(numbers):
        yield Result(None)
        return
    # prune: even taking everything left cannot reach the target
    if sum(numbers[idx:]) < target:
        yield Result(None)
        return
    branches = []
    head = numbers[idx]
    if head <= target:  # prune overshoot on the include branch
        branches.append(
            SubsetSumProblem(numbers, target - head, idx + 1, chosen + (head,))
        )
    branches.append(SubsetSumProblem(numbers, target, idx + 1, chosen))
    if len(branches) == 1:
        yield Call(branches[0])
        result = yield Sync()
        yield Result(result)
    else:
        yield Choice(subset_found, *[Call(b) for b in branches])
        result = yield Sync()
        yield Result(result)


def sequential_subset_sum(
    numbers: Sequence[int], target: int
) -> Optional[Tuple[int, ...]]:
    """Reference: depth-first search with the same prunes."""
    problem = SubsetSumProblem.build(numbers, target)

    def search(idx: int, remaining: int, chosen: Tuple[int, ...]):
        if remaining == 0:
            return chosen
        if idx >= len(problem.numbers) or sum(problem.numbers[idx:]) < remaining:
            return None
        head = problem.numbers[idx]
        if head <= remaining:
            sol = search(idx + 1, remaining - head, chosen + (head,))
            if sol is not None:
                return sol
        return search(idx + 1, remaining, chosen)

    return search(0, problem.remaining_target, ())


def brute_force_subset_sum(numbers: Sequence[int], target: int) -> bool:
    """Exhaustive decision reference (small inputs only)."""
    nums = list(numbers)
    if len(nums) > 20:
        raise ApplicationError("brute force limited to 20 numbers")
    if target == 0:
        return True
    for r in range(1, len(nums) + 1):
        for combo in combinations(nums, r):
            if sum(combo) == target:
                return True
    return False


def random_subset_sum_problem(
    n_numbers: int,
    rng: random.Random,
    max_value: int = 50,
    satisfiable: Optional[bool] = None,
) -> SubsetSumProblem:
    """A random instance; ``satisfiable`` forces the answer when not None."""
    if n_numbers < 1:
        raise ApplicationError(f"need >= 1 number, got {n_numbers}")
    while True:
        numbers = tuple(rng.randint(1, max_value) for _ in range(n_numbers))
        if satisfiable is True:
            size = rng.randint(1, n_numbers)
            target = sum(rng.sample(numbers, size))
            return SubsetSumProblem.build(numbers, target)
        target = rng.randint(1, sum(numbers))
        problem = SubsetSumProblem.build(numbers, target)
        if satisfiable is None:
            return problem
        if (sequential_subset_sum(numbers, target) is not None) == satisfiable:
            return problem
