"""The paper's running example: ``sum(n) = n + sum(n-1)`` (Listings 2 & 3).

Two implementations are provided, mirroring the paper exactly:

* :func:`calculate_sum` — the layer-5 generator of Listing 3 ("contains
  application logic only");
* :data:`sum_ticketed_app` / :func:`sum_receive` — the raw layer-3
  message-passing version of Listing 2, with its hand-rolled ``Continue`` /
  ``Done`` state machine, kept as the motivating contrast.

Note the Listing-2 version inherits the listing's limitation: one pending
evaluation per node (the node state holds a single ``Continue``).  Run it on
machines with more nodes than the recursion depth so the call chain never
revisits a node — exactly the unwieldiness layer 4 exists to hide ("likely
to become unwieldy for anything but trivial recursive functions").
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional

from ..mapping import TicketedFunctionalApp
from ..recursion import Call, Result, Sync

__all__ = [
    "calculate_sum",
    "sum_ticketed_app",
    "sum_receive",
    "SumCall",
    "SumResult",
    "SumTrigger",
    "closed_form_sum",
]


def closed_form_sum(n: int) -> int:
    """Reference value: ``sum(i for 1 <= i <= n)`` (0 for n < 1)."""
    return n * (n + 1) // 2 if n >= 1 else 0


# ---------------------------------------------------------------------------
# Listing 3: layer-5 generator style
# ---------------------------------------------------------------------------


def calculate_sum(n: int):
    """Paper Listing 3 — "An algorithm to calculate the sum 1 to N
    recursively", verbatim in layer-4 ops::

        function calculate_sum(n):
            if n < 1 then
                yield Result(0)
            else
                yield Call(n - 1)
                total <- yield Sync()
                yield Result(total + n)
    """
    if n < 1:
        yield Result(0)
    else:
        yield Call(n - 1)
        total = yield Sync()
        yield Result(total + n)


# ---------------------------------------------------------------------------
# Listing 2: raw layer-3 ticket style
# ---------------------------------------------------------------------------


class SumCall(NamedTuple):
    """Evaluation request: compute ``sum(n)``."""

    n: int


class SumResult(NamedTuple):
    """Returned evaluation: ``total`` = the computed sum."""

    total: int


class SumTrigger(NamedTuple):
    """Kickstart message: begin computing ``sum(n)`` at the receiving node."""

    n: int = 10


class _Continue(NamedTuple):
    """Listing 2's ``Continue(ticket, n)`` bookkeeping state."""

    ticket: Any
    n: int


class _Done(NamedTuple):
    """Listing 2's ``Done(total)`` terminal state."""

    total: int


def sum_receive(state: Any, ticket: Any, msg: Any, send) -> Any:
    """Paper Listing 2 — the message-passing sum, transcribed line by line.

    An incoming message is classified as (1) an evaluation call, (2) a
    returned result or (3) an initialization trigger; compare the listing's
    three branches.  Returns the new node state (functional style).
    """
    if isinstance(msg, SumCall):
        n = msg.n
        if n < 1:
            send(SumResult(0), ticket)
            return state
        sub_ticket = send(SumCall(n - 1))
        return _Continue(ticket, n)
    if isinstance(msg, SumResult):
        if isinstance(state, _Continue):
            send(SumResult(msg.total + state.n), state.ticket)
            return state
        return _Done(msg.total)
    if isinstance(msg, SumTrigger):
        send(SumCall(msg.n))
        return state
    raise ValueError(f"sum_receive cannot classify message {msg!r}")


def sum_ticketed_app() -> TicketedFunctionalApp:
    """Fresh layer-3 app hosting :func:`sum_receive` (Listing 2)."""
    return TicketedFunctionalApp(sum_receive)
