"""Paper Listing 1: the message-passing node-traversal algorithm.

The simplest possible layer-1 application — a mesh flood fill — used by the
paper to introduce the backend's ``init`` / ``receive`` programming model.
Useful here as a topology-connectivity checker and a layer-1 test workload.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..netsim import EMPTY_MSG, FunctionalProgram, Machine
from ..topology import NodeId, Topology

__all__ = ["traversal_program", "run_traversal", "visited_nodes"]


def traversal_program() -> FunctionalProgram:
    """Build Listing 1 as a layer-1 program::

        function init(node):
            state <- {visited: False}
            return state

        function receive(node, state, sender, msg, send, neighbours):
            if state[visited] = False then
                state[visited] <- True
                foreach n in neighbours do
                    send(n, EMPTY_MSG)
    """

    def init(node: NodeId) -> Dict[str, bool]:
        return {"visited": False}

    def receive(
        node: NodeId,
        state: Dict[str, bool],
        sender: NodeId,
        msg: Any,
        send,
        neighbours: Sequence[NodeId],
    ) -> None:
        if not state["visited"]:
            state["visited"] = True
            for n in neighbours:
                send(n, EMPTY_MSG)

    return FunctionalProgram(init, receive)


def run_traversal(topology: Topology, start: NodeId = 0, max_steps: int = 1_000_000):
    """Flood-fill ``topology`` from ``start``; return ``(machine, report)``."""
    machine = Machine(topology, traversal_program())
    machine.inject(start, EMPTY_MSG)
    report = machine.run(max_steps=max_steps)
    return machine, report


def visited_nodes(machine: Machine) -> List[NodeId]:
    """Nodes marked visited after a traversal run."""
    return [
        n for n in machine.topology.nodes() if machine.state_of(n)["visited"]
    ]
