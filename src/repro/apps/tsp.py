"""Travelling salesman by branch and bound — optimization with deep hints.

A second optimization workload beside knapsack: extend a partial tour city
by city, joining *all* feasible extensions with a plain sync and returning
the minimum.  Each subcall carries a lower bound (partial cost + cheapest
completion estimate) as its cross-layer hint, and subtrees whose bound
exceeds a greedy incumbent are pruned locally.
"""

from __future__ import annotations

import random
from itertools import permutations
from typing import List, NamedTuple, Optional, Sequence, Tuple

from ..errors import ApplicationError
from ..recursion import Call, Result, Sync

__all__ = [
    "TspProblem",
    "tsp",
    "sequential_tsp",
    "brute_force_tsp",
    "greedy_tour",
    "tour_cost",
    "random_distance_matrix",
]

Matrix = Tuple[Tuple[int, ...], ...]


def _check_matrix(dist: Sequence[Sequence[int]]) -> Matrix:
    n = len(dist)
    out = []
    for i, row in enumerate(dist):
        row = tuple(int(x) for x in row)
        if len(row) != n:
            raise ApplicationError(f"distance matrix row {i} has wrong length")
        if row[i] != 0:
            raise ApplicationError(f"diagonal entry ({i},{i}) must be 0")
        if any(x < 0 for x in row):
            raise ApplicationError("distances must be non-negative")
        out.append(row)
    return tuple(out)


class TspProblem(NamedTuple):
    """Sub-problem: distance matrix, the partial tour, its cost so far and
    the best complete cost known when this subtree was spawned."""

    dist: Matrix
    tour: Tuple[int, ...]
    cost: int
    incumbent: int

    @classmethod
    def build(cls, dist: Sequence[Sequence[int]]) -> "TspProblem":
        """Root problem starting at city 0 with a greedy incumbent."""
        matrix = _check_matrix(dist)
        if len(matrix) < 2:
            raise ApplicationError("TSP needs at least 2 cities")
        incumbent = tour_cost(matrix, greedy_tour(matrix))
        return cls(matrix, (0,), 0, incumbent)


def tour_cost(dist: Matrix, tour: Sequence[int]) -> int:
    """Cost of a complete tour (returning to the start)."""
    total = 0
    for a, b in zip(tour, tour[1:]):
        total += dist[a][b]
    total += dist[tour[-1]][tour[0]]
    return total


def greedy_tour(dist: Matrix) -> Tuple[int, ...]:
    """Nearest-neighbour tour from city 0 (the incumbent heuristic)."""
    n = len(dist)
    tour = [0]
    remaining = set(range(1, n))
    while remaining:
        last = tour[-1]
        nxt = min(remaining, key=lambda c: (dist[last][c], c))
        tour.append(nxt)
        remaining.remove(nxt)
    return tuple(tour)


def _lower_bound(problem: TspProblem) -> int:
    """Partial cost + cheapest-outgoing-edge estimate for unvisited cities."""
    dist, tour, cost, _ = problem
    n = len(dist)
    unvisited = [c for c in range(n) if c not in tour]
    bound = cost
    for c in unvisited + [tour[-1]]:
        options = [dist[c][d] for d in unvisited + [tour[0]] if d != c]
        if options:
            bound += min(options)
    return bound


def tsp(problem: TspProblem):
    """Layer-5 branch-and-bound TSP; returns ``(cost, tour)``."""
    dist, tour, cost, incumbent = problem
    n = len(dist)
    if len(tour) == n:
        yield Result((cost + dist[tour[-1]][tour[0]], tour))
        return
    last = tour[-1]
    branches: List[TspProblem] = []
    for city in range(n):
        if city in tour:
            continue
        child = TspProblem(dist, tour + (city,), cost + dist[last][city], incumbent)
        if _lower_bound(child) <= incumbent:
            branches.append(child)
    if not branches:
        yield Result((None, None))  # pruned subtree: no candidate tour
        return
    for b in branches:
        yield Call(b, hint=float(_lower_bound(b)))
    results = yield Sync()
    if len(branches) == 1:
        results = (results,)
    best = min(
        (r for r in results if r[0] is not None),
        default=(None, None),
        key=lambda r: r[0],
    )
    yield Result(best)


def sequential_tsp(dist: Sequence[Sequence[int]]) -> Tuple[int, Tuple[int, ...]]:
    """Reference branch-and-bound with a live (improving) incumbent."""
    matrix = _check_matrix(dist)
    n = len(matrix)
    best_cost = tour_cost(matrix, greedy_tour(matrix))
    best_tour = greedy_tour(matrix)

    def search(tour: Tuple[int, ...], cost: int) -> None:
        nonlocal best_cost, best_tour
        if len(tour) == n:
            total = cost + matrix[tour[-1]][tour[0]]
            if total < best_cost:
                best_cost, best_tour = total, tour
            return
        last = tour[-1]
        for city in range(n):
            if city in tour:
                continue
            child_cost = cost + matrix[last][city]
            child = TspProblem(matrix, tour + (city,), child_cost, best_cost)
            if _lower_bound(child) <= best_cost:
                search(tour + (city,), child_cost)

    search((0,), 0)
    return best_cost, best_tour


def brute_force_tsp(dist: Sequence[Sequence[int]]) -> int:
    """Exhaustive optimum (small instances only)."""
    matrix = _check_matrix(dist)
    n = len(matrix)
    if n > 9:
        raise ApplicationError("brute force limited to 9 cities")
    return min(
        tour_cost(matrix, (0,) + perm) for perm in permutations(range(1, n))
    )


def random_distance_matrix(
    n_cities: int, rng: random.Random, max_distance: int = 99
) -> Matrix:
    """A random symmetric distance matrix."""
    if n_cities < 2:
        raise ApplicationError(f"need >= 2 cities, got {n_cities}")
    dist = [[0] * n_cities for _ in range(n_cities)]
    for i in range(n_cities):
        for j in range(i + 1, n_cities):
            d = rng.randint(1, max_distance)
            dist[i][j] = dist[j][i] = d
    return _check_matrix(dist)
