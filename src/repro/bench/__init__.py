"""Benchmark harness regenerating the paper's evaluation artefacts.

* :mod:`repro.bench.figure4` — SAT solver scalability (paper Figure 4).
* :mod:`repro.bench.figure5` — temporal/spatial unfolding (paper Figure 5).
* :mod:`repro.bench.suites`  — shared workloads and machine grids.
* :mod:`repro.bench.report`  — ASCII tables / sparklines / heatmaps.

The pytest-benchmark entry points live in ``benchmarks/`` at the repository
root; they call into this package.
"""

from .figure4 import (
    Figure4Point,
    Figure4Result,
    assert_figure4_shape,
    figure4_to_dict,
    render_figure4,
    run_figure4,
)
from .figure5 import (
    Figure5Result,
    assert_figure5_shape,
    figure5_to_dict,
    render_figure5,
    run_figure5,
)
from .report import (
    format_json,
    format_series_block,
    format_table,
    heatmap_ascii,
    sparkline,
    write_json,
)
from .suites import (
    FIGURE5_TORUS_DIMS,
    FULL,
    QUICK,
    BenchPreset,
    figure4_grid,
    figure4_series,
    mesh_for,
    preset_fingerprint,
    preset_runspecs,
    sat_suite,
)

__all__ = [
    "run_figure4",
    "render_figure4",
    "assert_figure4_shape",
    "assert_figure5_shape",
    "Figure4Result",
    "Figure4Point",
    "run_figure5",
    "render_figure5",
    "Figure5Result",
    "BenchPreset",
    "QUICK",
    "FULL",
    "sat_suite",
    "mesh_for",
    "figure4_series",
    "figure4_grid",
    "preset_runspecs",
    "preset_fingerprint",
    "FIGURE5_TORUS_DIMS",
    "figure4_to_dict",
    "figure5_to_dict",
    "format_table",
    "format_series_block",
    "format_json",
    "write_json",
    "sparkline",
    "heatmap_ascii",
]
