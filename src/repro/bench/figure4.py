"""Figure 4 regeneration: SAT solver scalability vs topology and mapping.

The paper's Figure 4 plots performance (1/computation time, log-log) against
core count for five configurations: {2D, 3D} torus x {round-robin,
least-busy-neighbour} plus a fully connected baseline, each point averaged
over 20 benchmark SAT problems.

:func:`run_figure4` sweeps exactly that grid on the simulated machines and
:func:`render_figure4` prints the series.  Qualitative invariants the paper
reports (and our benchmark asserts):

* performance rises with core count, then saturates;
* the fully connected machine is the upper envelope at scale;
* 3D beats 2D at equal core count and mapper;
* LBN beats RR on large machines but *hurts* on small ones;
* large 2D+LBN is comparable to 3D+RR, and large 3D+LBN approaches the
  fully connected baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..parallel import solve_sat_tasks
from .report import format_table
from .suites import BenchPreset, QUICK, figure4_grid, mesh_for, sat_suite, with_seed

__all__ = [
    "Figure4Point",
    "Figure4Result",
    "run_figure4",
    "render_figure4",
    "figure4_to_dict",
]


class Figure4Point:
    """One data point: a configuration at one machine size."""

    __slots__ = ("label", "kind", "mapper", "requested_cores", "actual_cores",
                 "mean_ct", "performance", "mean_sent")

    def __init__(self, label, kind, mapper, requested_cores, actual_cores,
                 mean_ct, mean_sent):
        self.label = label
        self.kind = kind
        self.mapper = mapper
        self.requested_cores = requested_cores
        self.actual_cores = actual_cores
        self.mean_ct = mean_ct
        #: the paper's y-axis: 1 / mean computation time
        self.performance = 1.0 / mean_ct if mean_ct > 0 else float("inf")
        self.mean_sent = mean_sent


class Figure4Result:
    """All points of one sweep, grouped by series label."""

    def __init__(self, preset: BenchPreset, points: List[Figure4Point]):
        self.preset = preset
        self.points = points
        #: summary of the representative traced cell (``trace_path`` runs)
        self.trace_summary: Optional[Dict[str, object]] = None

    def series(self, label: str) -> List[Figure4Point]:
        """Points of one curve, ordered by machine size."""
        return sorted(
            (p for p in self.points if p.label == label),
            key=lambda p: p.actual_cores,
        )

    def labels(self) -> List[str]:
        """Series labels in plot order."""
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.label, None)
        return list(seen)

    def performance_at_scale(self, label: str) -> float:
        """Performance of a curve's largest machine (saturation value)."""
        pts = self.series(label)
        if not pts:
            raise KeyError(f"no series {label!r}")
        return pts[-1].performance


def run_figure4(
    preset: BenchPreset = QUICK,
    *,
    status_threshold: Optional[int] = 16,
    simplify: str = "none",
    heuristic: str = "max_occurrence",
    verbose: bool = False,
    jobs: Optional[int] = None,
    trace_path: Optional[str] = None,
    seed: Optional[int] = None,
) -> Figure4Result:
    """Sweep the Figure-4 grid and return all data points.

    ``status_threshold`` applies to the adaptive (LBN) runs only and models
    the explicit status traffic that makes adaptivity costly on small
    machines; ``None`` runs LBN with free piggybacking only.

    ``simplify="none"`` is the calibrated default: it reproduces the
    workload *scale* of the paper's published traces (see EXPERIMENTS.md).

    ``jobs`` fans the independent ``(series, machine size, problem)`` cells
    out over a process pool (see :mod:`repro.parallel`); every cell is a
    separately seeded simulation, so the result is bit-identical to a
    serial run regardless of worker count.

    ``trace_path`` additionally captures one representative cell — the
    largest 2D-torus + LBN configuration on problem 0 — with a full
    telemetry pipeline and writes a Chrome/Perfetto trace there.  The
    traced run happens in-process after the sweep (telemetry buses do not
    cross the process-pool boundary), so it never perturbs the sweep
    numbers; its summary lands in :attr:`Figure4Result.trace_summary`.

    ``seed`` overrides the preset's pinned base seed (problem suite and
    per-cell machine seeds alike); the default ``None`` keeps the preset's
    seed, which reproduces the committed JSON baselines bit-for-bit.
    """
    preset = with_seed(preset, seed)
    # flatten the sweep: one cell per (series, machine size), one task per
    # (cell, problem); the pool returns outcomes in task order, so the
    # aggregation below is independent of scheduling.  The grid itself
    # lives in suites.py, where the preset also names each run's RunSpec.
    cells, tasks, task_cells = figure4_grid(
        preset,
        status_threshold=status_threshold,
        simplify=simplify,
        heuristic=heuristic,
    )

    outcomes = solve_sat_tasks(tasks, jobs=jobs)

    cts: List[List[int]] = [[] for _ in cells]
    sents: List[List[int]] = [[] for _ in cells]
    for (cell, i), out in zip(task_cells, outcomes):
        if not out.verified:
            topo = cells[cell][4]
            raise AssertionError(
                f"unverified SAT model for problem {i} on {topo.describe()}"
            )
        cts[cell].append(out.computation_time)
        sents[cell].append(out.sent_total)

    points: List[Figure4Point] = []
    for cell, (label, kind, mapper, n_cores, topo) in enumerate(cells):
        point = Figure4Point(
            label,
            kind,
            mapper,
            n_cores,
            topo.n_nodes,
            sum(cts[cell]) / len(cts[cell]),
            sum(sents[cell]) / len(sents[cell]),
        )
        points.append(point)
        if verbose:
            print(
                f"  {label:18s} n={topo.n_nodes:5d} "
                f"ct={point.mean_ct:8.1f} perf={point.performance:.5f}",
                flush=True,
            )
    result = Figure4Result(preset, points)
    if trace_path is not None:
        from ..telemetry import capture_sat_trace

        trace_topo = mesh_for("torus2d", max(preset.core_counts))
        result.trace_summary = capture_sat_trace(
            sat_suite(preset)[0],
            trace_topo,
            trace_path,
            mapper="lbn",
            status=status_threshold,
            heuristic=heuristic,
            simplify=simplify,
            seed=preset.seed,
            max_steps=preset.max_steps,
        )
    return result


def assert_figure4_shape(result: Figure4Result) -> None:
    """Assert the paper's qualitative Figure-4 claims on regenerated data.

    Raises :class:`AssertionError` naming the violated claim.  Used by both
    the benchmark entry point and the harness tests.
    """
    for label in result.labels():
        pts = result.series(label)
        assert pts[-1].performance > pts[0].performance, (
            f"{label}: performance did not rise with core count"
        )
    full = result.performance_at_scale("Fully connected")
    for label in result.labels():
        if label != "Fully connected":
            assert full >= 0.95 * result.performance_at_scale(label), (
                f"fully connected is not the upper envelope vs {label}"
            )
    for mapper in ("RR", "LBN"):
        p2 = result.performance_at_scale(f"2D Torus + {mapper}")
        p3 = result.performance_at_scale(f"3D Torus + {mapper}")
        assert p3 > p2, f"3D does not beat 2D at scale under {mapper}"
    for dim in ("2D", "3D"):
        rr0 = result.series(f"{dim} Torus + RR")[0]
        lbn0 = result.series(f"{dim} Torus + LBN")[0]
        assert lbn0.performance < rr0.performance, (
            f"adaptive mapping did not hurt the smallest {dim} machine"
        )
    assert result.performance_at_scale("2D Torus + LBN") > result.performance_at_scale(
        "2D Torus + RR"
    ), "adaptive mapping did not win at scale in 2D"
    assert result.performance_at_scale("3D Torus + LBN") >= 0.7 * full, (
        "3D adaptive did not approach the fully connected baseline"
    )


def figure4_to_dict(result: Figure4Result) -> Dict[str, object]:
    """Figure-4 data as a JSON-ready dict (see ``repro.bench.report``).

    One entry per series, points ordered by machine size — the exact rows
    :func:`render_figure4` tabulates, machine-readable for baselines.
    """
    return {
        "figure": "figure4",
        "preset": {
            "name": result.preset.name,
            "n_problems": result.preset.n_problems,
            "core_counts": list(result.preset.core_counts),
            "seed": result.preset.seed,
        },
        "series": {
            label: [
                {
                    "requested_cores": p.requested_cores,
                    "actual_cores": p.actual_cores,
                    "mean_computation_time": p.mean_ct,
                    "performance": p.performance,
                    "mean_sent": p.mean_sent,
                }
                for p in result.series(label)
            ]
            for label in result.labels()
        },
    }


def render_figure4(result: Figure4Result) -> str:
    """Print Figure 4 as a table: one row per (series, machine size)."""
    rows = []
    for label in result.labels():
        for p in result.series(label):
            rows.append(
                [label, p.actual_cores, round(p.mean_ct, 1),
                 round(p.performance, 6), round(p.mean_sent)]
            )
    table = format_table(
        ["series", "cores", "mean computation time", "performance (1/ct)", "mean msgs"],
        rows,
        title=(
            f"Figure 4 — SAT solver scalability ({result.preset.n_problems} "
            "problems/point, uf20-91 stand-in suite)"
        ),
    )
    return table + "\n\n" + render_figure4_analysis(result)


def render_figure4_analysis(result: Figure4Result) -> str:
    """Derived scalability metrics: saturation points, crossovers, Amdahl.

    Quantifies the prose the paper attaches to Figure 4 — where each curve
    stops scaling and where adaptive mapping overtakes static.
    """
    from ..analysis import amdahl_fit, crossover_point, saturation_point

    lines = ["analysis:"]
    series = {
        label: [(p.actual_cores, p.performance) for p in result.series(label)]
        for label in result.labels()
    }
    for label, pts in series.items():
        sat = saturation_point(pts)
        serial, _ = amdahl_fit(pts) if len(pts) > 1 else (float("nan"), 0.0)
        lines.append(
            f"  {label:18s} saturates at ~{sat} cores "
            f"(Amdahl serial fraction ~{serial:.3f})"
        )
    for dim in ("2D", "3D"):
        cross = crossover_point(
            series[f"{dim} Torus + LBN"], series[f"{dim} Torus + RR"]
        )
        where = f"~{cross} cores" if cross is not None else "never (on this grid)"
        lines.append(f"  {dim}: adaptive overtakes static at {where}")
    return "\n".join(lines)
