"""Figure 5 regeneration: temporal and spatial unfolding of SAT problems.

The paper's Figure 5 profiles the solver on a 196-core 2D torus:

* **top row** — superimposed interconnect-activity traces (total queued
  messages vs simulation step) for every benchmark problem, round-robin
  vs least-busy-neighbour;
* **bottom row** — heatmaps of total messages delivered per node across the
  14x14 mesh for one problem, per mapper.

:func:`run_figure5` collects both; :func:`render_figure5` prints sparkline
traces and digit heatmaps.  The qualitative claims (§V-E, asserted by the
benchmark): LBN drains queues faster and unfolds over more of the mesh
(higher spatial entropy / more active nodes) than RR.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..parallel import SatTask, solve_sat_tasks
from ..topology import Torus
from .report import format_series_block, format_table, heatmap_ascii
from .suites import FIGURE5_TORUS_DIMS, BenchPreset, QUICK, sat_suite, with_seed

__all__ = ["Figure5Result", "run_figure5", "render_figure5", "figure5_to_dict"]

#: the two mappers Figure 5 contrasts
FIGURE5_MAPPERS = ("rr", "lbn")
MAPPER_TITLES = {"rr": "Round Robin", "lbn": "Least Busy Neighbour"}


class Figure5Result:
    """Traces and heatmaps for both mappers."""

    def __init__(
        self,
        preset: BenchPreset,
        traces: Dict[str, List[np.ndarray]],
        heatmaps: Dict[str, np.ndarray],
        computation_times: Dict[str, List[int]],
    ) -> None:
        self.preset = preset
        #: mapper -> one queued-messages series per problem (top row)
        self.traces = traces
        #: mapper -> 14x14 delivered-messages grid for problem 0 (bottom row)
        self.heatmaps = heatmaps
        #: mapper -> computation time per problem
        self.computation_times = computation_times
        #: summary of the representative traced cell (``trace_path`` runs)
        self.trace_summary: Optional[Dict[str, object]] = None

    def peak_queued(self, mapper: str) -> int:
        """Highest queue population over all problems for one mapper."""
        return int(max(t.max() for t in self.traces[mapper]))

    def mean_computation_time(self, mapper: str) -> float:
        """Average computation time across problems."""
        cts = self.computation_times[mapper]
        return sum(cts) / len(cts)

    def active_nodes(self, mapper: str) -> int:
        """Nodes that received any message (problem 0 heatmap)."""
        return int((self.heatmaps[mapper] > 0).sum())


def run_figure5(
    preset: BenchPreset = QUICK,
    *,
    status_threshold: Optional[int] = 16,
    simplify: str = "none",
    heuristic: str = "max_occurrence",
    jobs: Optional[int] = None,
    trace_path: Optional[str] = None,
    seed: Optional[int] = None,
) -> Figure5Result:
    """Profile the benchmark suite on the 196-core 2D torus of Figure 5.

    ``jobs`` fans the per-``(mapper, problem)`` runs out over a process
    pool (see :mod:`repro.parallel`); results are bit-identical to a
    serial sweep.

    ``trace_path`` additionally captures the LBN mapper on problem 0 —
    the heatmap cell of the bottom row — with a full telemetry pipeline
    and writes a Chrome/Perfetto trace there (in-process, after the
    sweep; see :func:`repro.bench.run_figure4`).

    ``seed`` overrides the preset's pinned base seed (see
    :func:`repro.bench.run_figure4`); ``None`` reproduces the committed
    baselines.
    """
    preset = with_seed(preset, seed)
    problems = sat_suite(preset)
    topo = Torus(FIGURE5_TORUS_DIMS)
    tasks: List[SatTask] = []
    task_keys: List[tuple] = []  # (mapper, problem index)
    for mapper in FIGURE5_MAPPERS:
        status = status_threshold if mapper == "lbn" else None
        for i, cnf in enumerate(problems):
            tasks.append(
                SatTask(
                    cnf,
                    topo,
                    mapper=mapper,
                    status=status,
                    heuristic=heuristic,
                    simplify=simplify,
                    seed=preset.seed + i,
                    max_steps=preset.max_steps,
                    collect_activity=True,
                    collect_heatmap=i == 0,
                )
            )
            task_keys.append((mapper, i))
    outcomes = solve_sat_tasks(tasks, jobs=jobs)

    traces: Dict[str, List[np.ndarray]] = {m: [] for m in FIGURE5_MAPPERS}
    heatmaps: Dict[str, np.ndarray] = {}
    cts: Dict[str, List[int]] = {m: [] for m in FIGURE5_MAPPERS}
    for (mapper, i), out in zip(task_keys, outcomes):
        traces[mapper].append(out.activity)
        cts[mapper].append(out.computation_time)
        if i == 0:
            heatmaps[mapper] = out.heatmap
    result = Figure5Result(preset, traces, heatmaps, cts)
    if trace_path is not None:
        from ..telemetry import capture_sat_trace

        result.trace_summary = capture_sat_trace(
            problems[0],
            topo,
            trace_path,
            mapper="lbn",
            status=status_threshold,
            heuristic=heuristic,
            simplify=simplify,
            seed=preset.seed,
            max_steps=preset.max_steps,
        )
    return result


def assert_figure5_shape(result: Figure5Result) -> None:
    """Assert §V-E's qualitative Figure-5 claims on regenerated data."""
    from ..netsim import spatial_entropy

    for mapper in FIGURE5_MAPPERS:
        for trace in result.traces[mapper]:
            assert trace.max() > 10, f"{mapper}: no real queue buildup"
            assert trace[-1] == 0, f"{mapper}: machine did not drain"
    assert result.active_nodes("lbn") > result.active_nodes("rr"), (
        "LBN did not unfold over more of the mesh than RR"
    )
    assert spatial_entropy(result.heatmaps["lbn"].ravel()) > spatial_entropy(
        result.heatmaps["rr"].ravel()
    ), "LBN's activity is not spread more evenly than RR's"
    assert result.mean_computation_time("lbn") < result.mean_computation_time(
        "rr"
    ), "LBN was not faster than RR on the 196-core torus"


def figure5_to_dict(result: Figure5Result) -> Dict[str, object]:
    """Figure-5 data as a JSON-ready dict (see ``repro.bench.report``).

    Carries the per-problem activity traces, the problem-0 heatmaps and the
    summary row :func:`render_figure5` tabulates.
    """
    return {
        "figure": "figure5",
        "preset": {
            "name": result.preset.name,
            "n_problems": result.preset.n_problems,
            "seed": result.preset.seed,
        },
        "mappers": {
            mapper: {
                "mean_computation_time": result.mean_computation_time(mapper),
                "peak_queued": result.peak_queued(mapper),
                "active_nodes": result.active_nodes(mapper),
                "computation_times": list(result.computation_times[mapper]),
                "traces": [t.tolist() for t in result.traces[mapper]],
                "heatmap": result.heatmaps[mapper].tolist(),
            }
            for mapper in FIGURE5_MAPPERS
        },
    }


def render_figure5(result: Figure5Result) -> str:
    """Print Figure 5: traces as sparklines, heatmaps as digit grids."""
    blocks: List[str] = [
        "Figure 5 — temporal and spatial unfolding "
        f"(196-core 2D torus, {result.preset.n_problems} problems)"
    ]
    for mapper in FIGURE5_MAPPERS:
        title = MAPPER_TITLES[mapper]
        series = {
            f"problem {i}": t for i, t in enumerate(result.traces[mapper])
        }
        blocks.append(f"\n[{title}] queued messages vs step (superimposed traces)")
        blocks.append(format_series_block(series))
        blocks.append(f"\n[{title}] node activity heatmap (problem 0)")
        blocks.append(heatmap_ascii(result.heatmaps[mapper]))
    rows = []
    for mapper in FIGURE5_MAPPERS:
        rows.append(
            [
                MAPPER_TITLES[mapper],
                round(result.mean_computation_time(mapper), 1),
                result.peak_queued(mapper),
                result.active_nodes(mapper),
            ]
        )
    blocks.append("")
    blocks.append(
        format_table(
            ["mapper", "mean computation time", "peak queued", "active nodes"],
            rows,
        )
    )
    return "\n".join(blocks)
