"""ASCII and JSON rendering utilities for benchmark reports.

The harness prints the same rows/series the paper's figures plot: tables of
performance versus core count (Figure 4), activity time series and mesh
heatmaps (Figure 5).  Everything renders to plain text so results live in
logs and CI output; :func:`format_json` / :func:`write_json` emit the same
data machine-readably for baselines and regression tracking.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

__all__ = [
    "format_table",
    "sparkline",
    "heatmap_ascii",
    "format_series_block",
    "json_default",
    "format_json",
    "write_json",
]

_SPARK_CHARS = " .:-=+*#%@"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table with right-aligned numeric columns."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) < 0.01 or abs(cell) >= 100000:
                return f"{cell:.3e}"
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compress a series into a one-line density sparkline."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # bucket means so long traces still fit on one line
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [arr[a:b].mean() if b > a else 0.0 for a, b in zip(edges, edges[1:])]
        )
    top = arr.max()
    if top <= 0:
        return " " * len(arr)
    scale = len(_SPARK_CHARS) - 1
    return "".join(_SPARK_CHARS[int(round(v / top * scale))] for v in arr)


def heatmap_ascii(grid: "np.ndarray", width: int = 2) -> str:
    """Render a 2D integer grid as a digit heatmap (0-9 scaled to max).

    3D grids are rendered as stacked 2D slices.
    """
    grid = np.asarray(grid)
    if grid.ndim == 1:
        grid = grid[None, :]
    if grid.ndim == 3:
        return "\n\n".join(
            f"[z={z}]\n" + heatmap_ascii(grid[z], width) for z in range(grid.shape[0])
        )
    if grid.ndim != 2:
        raise ValueError(f"cannot render {grid.ndim}-d heatmap")
    top = grid.max()
    lines = []
    for row in grid:
        if top <= 0:
            cells = ["." for _ in row]
        else:
            cells = [
                "." if v == 0 else str(min(9, int(math.floor(v / top * 9.0001))))
                for v in row
            ]
        lines.append(" ".join(c.rjust(width - 1) for c in cells))
    return "\n".join(lines)


def json_default(obj: Any) -> Any:
    """``json.dumps`` fallback for the numpy types benchmark data carries."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serialisable: {type(obj).__name__}")


def format_json(payload: Any, indent: int = 2) -> str:
    """Serialise a benchmark payload (possibly numpy-laden) to JSON text.

    Non-finite floats (the ``inf`` performance of a zero computation time)
    are emitted as strings so the output stays standard JSON.
    """

    def sanitise(obj: Any) -> Any:
        if isinstance(obj, dict):
            return {str(k): sanitise(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [sanitise(v) for v in obj]
        if isinstance(obj, (float, np.floating)) and not math.isfinite(obj):
            return str(obj)
        return obj

    return json.dumps(sanitise(payload), indent=indent, default=json_default)


def write_json(path: Union[str, Path], payload: Any, indent: int = 2) -> Path:
    """Write a benchmark payload as JSON; returns the resolved path."""
    out = Path(path)
    out.write_text(format_json(payload, indent=indent) + "\n")
    return out


def format_series_block(
    series: Mapping[str, Sequence[float]], width: int = 60, label_width: int = 24
) -> str:
    """Render several labelled series as aligned sparklines with ranges."""
    lines = []
    for name, values in series.items():
        arr = np.asarray(list(values), dtype=np.float64)
        peak = arr.max() if arr.size else 0.0
        lines.append(
            f"{name[:label_width].ljust(label_width)} |{sparkline(arr, width)}| "
            f"peak={peak:g} len={arr.size}"
        )
    return "\n".join(lines)
