"""Benchmark workload suites and machine sweeps.

Centralises the workload/machine grids the figure benches share, so the
"quick" (CI-sized) and "full" (paper-sized) variants stay consistent.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..apps.sat import CNF, uf20_91_suite
from ..topology import FullyConnected, Topology, Torus, nearest_mesh_dims

__all__ = [
    "BenchPreset",
    "QUICK",
    "FULL",
    "sat_suite",
    "with_seed",
    "mesh_for",
    "figure4_series",
    "FIGURE5_TORUS_DIMS",
]


class BenchPreset:
    """Scale knobs for a figure regeneration run."""

    __slots__ = ("name", "n_problems", "core_counts", "seed", "max_steps")

    def __init__(
        self,
        name: str,
        n_problems: int,
        core_counts: Tuple[int, ...],
        seed: int = 2017,
        max_steps: int = 2_000_000,
    ) -> None:
        self.name = name
        self.n_problems = n_problems
        self.core_counts = core_counts
        self.seed = seed
        self.max_steps = max_steps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BenchPreset({self.name}, problems={self.n_problems})"


#: CI-sized preset: 6 problems, 5 machine sizes (tens of seconds)
QUICK = BenchPreset("quick", 6, (9, 27, 64, 196, 512))

#: paper-sized preset: 20 problems, 10^1..10^3 cores as in Figure 4
FULL = BenchPreset("full", 20, (9, 16, 27, 64, 125, 196, 343, 512, 729, 1000))


def sat_suite(preset: BenchPreset) -> List[CNF]:
    """The uf20-91 stand-in suite at the preset's problem count."""
    return uf20_91_suite(preset.n_problems, seed=preset.seed)


def with_seed(preset: BenchPreset, seed: "int | None") -> BenchPreset:
    """``preset`` with its base seed overridden (``None`` = keep pinned).

    The seed feeds both the problem-suite generation and every sweep
    cell's machine, so an override reruns the whole figure on a fresh but
    fully reproducible draw; the pinned default reproduces the committed
    JSON baselines.
    """
    if seed is None or seed == preset.seed:
        return preset
    return BenchPreset(
        preset.name,
        preset.n_problems,
        preset.core_counts,
        seed=seed,
        max_steps=preset.max_steps,
    )


def mesh_for(kind: str, n_cores: int) -> Topology:
    """The machine used for one Figure-4 data point.

    ``kind``: ``"torus2d"`` / ``"torus3d"`` (nearest square/cube of the
    requested size) or ``"full"``.
    """
    if kind == "torus2d":
        return Torus(nearest_mesh_dims(n_cores, 2))
    if kind == "torus3d":
        return Torus(nearest_mesh_dims(n_cores, 3))
    if kind == "full":
        return FullyConnected(n_cores)
    raise ValueError(f"unknown machine kind {kind!r}")


def figure4_series() -> List[Tuple[str, str, str]]:
    """The five curves of Figure 4 as ``(label, machine kind, mapper)``.

    The fully connected baseline uses the ``random`` mapper: on a complete
    graph a deterministic circular order degenerates into a pipeline along
    node indices, while destination-free uniform spreading is the ideal the
    paper's baseline represents (see DESIGN.md).
    """
    return [
        ("2D Torus + RR", "torus2d", "rr"),
        ("3D Torus + RR", "torus3d", "rr"),
        ("2D Torus + LBN", "torus2d", "lbn"),
        ("3D Torus + LBN", "torus3d", "lbn"),
        ("Fully connected", "full", "random"),
    ]


#: Figure 5's machine: "a 196-core 2D torus machine"
FIGURE5_TORUS_DIMS = (14, 14)
