"""Benchmark workload suites and machine sweeps.

Centralises the workload/machine grids the figure benches share, so the
"quick" (CI-sized) and "full" (paper-sized) variants stay consistent.
"""

from __future__ import annotations

from typing import List, Tuple

from ..apps.sat import CNF, uf20_91_suite
from ..topology import FullyConnected, Topology, Torus, nearest_mesh_dims

__all__ = [
    "BenchPreset",
    "QUICK",
    "FULL",
    "sat_suite",
    "with_seed",
    "mesh_for",
    "figure4_series",
    "figure4_grid",
    "preset_runspecs",
    "preset_fingerprint",
    "FIGURE5_TORUS_DIMS",
]


class BenchPreset:
    """Scale knobs for a figure regeneration run."""

    __slots__ = ("name", "n_problems", "core_counts", "seed", "max_steps")

    def __init__(
        self,
        name: str,
        n_problems: int,
        core_counts: Tuple[int, ...],
        seed: int = 2017,
        max_steps: int = 2_000_000,
    ) -> None:
        self.name = name
        self.n_problems = n_problems
        self.core_counts = core_counts
        self.seed = seed
        self.max_steps = max_steps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BenchPreset({self.name}, problems={self.n_problems})"


#: CI-sized preset: 6 problems, 5 machine sizes (tens of seconds)
QUICK = BenchPreset("quick", 6, (9, 27, 64, 196, 512))

#: paper-sized preset: 20 problems, 10^1..10^3 cores as in Figure 4
FULL = BenchPreset("full", 20, (9, 16, 27, 64, 125, 196, 343, 512, 729, 1000))


def sat_suite(preset: BenchPreset) -> List[CNF]:
    """The uf20-91 stand-in suite at the preset's problem count."""
    return uf20_91_suite(preset.n_problems, seed=preset.seed)


def with_seed(preset: BenchPreset, seed: "int | None") -> BenchPreset:
    """``preset`` with its base seed overridden (``None`` = keep pinned).

    The seed feeds both the problem-suite generation and every sweep
    cell's machine, so an override reruns the whole figure on a fresh but
    fully reproducible draw; the pinned default reproduces the committed
    JSON baselines.
    """
    if seed is None or seed == preset.seed:
        return preset
    return BenchPreset(
        preset.name,
        preset.n_problems,
        preset.core_counts,
        seed=seed,
        max_steps=preset.max_steps,
    )


def mesh_for(kind: str, n_cores: int) -> Topology:
    """The machine used for one Figure-4 data point.

    ``kind``: ``"torus2d"`` / ``"torus3d"`` (nearest square/cube of the
    requested size) or ``"full"``.
    """
    if kind == "torus2d":
        return Torus(nearest_mesh_dims(n_cores, 2))
    if kind == "torus3d":
        return Torus(nearest_mesh_dims(n_cores, 3))
    if kind == "full":
        return FullyConnected(n_cores)
    raise ValueError(f"unknown machine kind {kind!r}")


def figure4_series() -> List[Tuple[str, str, str]]:
    """The five curves of Figure 4 as ``(label, machine kind, mapper)``.

    The fully connected baseline uses the ``random`` mapper: on a complete
    graph a deterministic circular order degenerates into a pipeline along
    node indices, while destination-free uniform spreading is the ideal the
    paper's baseline represents (see DESIGN.md).
    """
    return [
        ("2D Torus + RR", "torus2d", "rr"),
        ("3D Torus + RR", "torus3d", "rr"),
        ("2D Torus + LBN", "torus2d", "lbn"),
        ("3D Torus + LBN", "torus3d", "lbn"),
        ("Fully connected", "full", "random"),
    ]


#: Figure 5's machine: "a 196-core 2D torus machine"
FIGURE5_TORUS_DIMS = (14, 14)


def figure4_grid(
    preset: BenchPreset,
    *,
    status_threshold: "int | None" = 16,
    simplify: str = "none",
    heuristic: str = "max_occurrence",
):
    """The flattened Figure-4 sweep: cells, tasks and their mapping.

    One *cell* per ``(series, machine size)`` (sizes that snap to the same
    square/cube mesh are deduplicated), one task per ``(cell, problem)``.
    Returns ``(cells, tasks, task_cells)`` where ``cells`` is a list of
    ``(label, kind, mapper, requested_cores, topology)`` tuples, ``tasks``
    the :class:`~repro.parallel.SatTask` list in deterministic order and
    ``task_cells`` the ``(cell index, problem index)`` pair for each task.

    This is the single place the preset's workload is spelled out; the
    figure bench executes it and :func:`preset_runspecs` names it.
    """
    from ..parallel import SatTask

    problems = sat_suite(preset)
    cells: List[Tuple[str, str, str, int, object]] = []
    tasks: List[SatTask] = []
    task_cells: List[Tuple[int, int]] = []
    for label, kind, mapper in figure4_series():
        status = status_threshold if mapper == "lbn" else None
        seen_sizes: "set[int]" = set()
        for n_cores in preset.core_counts:
            topo = mesh_for(kind, n_cores)
            if topo.n_nodes in seen_sizes:
                # two requested sizes snapped to the same square/cube mesh
                continue
            seen_sizes.add(topo.n_nodes)
            cell = len(cells)
            cells.append((label, kind, mapper, n_cores, topo))
            for i, cnf in enumerate(problems):
                tasks.append(
                    SatTask(
                        cnf,
                        topo,
                        mapper=mapper,
                        status=status,
                        heuristic=heuristic,
                        simplify=simplify,
                        seed=preset.seed + i,
                        max_steps=preset.max_steps,
                    )
                )
                task_cells.append((cell, i))
    return cells, tasks, task_cells


def preset_runspecs(preset: BenchPreset, **grid_kwargs):
    """Every run of the preset's Figure-4 sweep as a canonical RunSpec.

    The list is in the same deterministic order as the tasks
    :func:`~repro.bench.run_figure4` executes; each entry is the
    JSON-round-trippable :class:`repro.engine.RunSpec` the corresponding
    cell runs through :func:`repro.engine.execute`.
    """
    _cells, tasks, _task_cells = figure4_grid(preset, **grid_kwargs)
    return [task.to_runspec() for task in tasks]


def preset_fingerprint(preset: BenchPreset, **grid_kwargs) -> str:
    """One digest naming the preset's entire sweep workload.

    Changes whenever any cell's formula, machine or knob changes —
    recorded into the performance baseline so a benchmark-number drift
    can be told apart from a benchmark-*workload* drift.
    """
    from ..netsim.digest import canonical_digest

    return canonical_digest(
        [spec.to_dict() for spec in preset_runspecs(preset, **grid_kwargs)]
    )
