"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``     solve a DIMACS CNF file (or a generated instance) on a
              simulated machine and print the verdict, model and profile;
``generate``  write uf20-91-style DIMACS benchmark files;
``topo``      describe a topology spec (nodes, links, diameter, ...);
``figure4``   regenerate the paper's Figure 4 scalability table;
``figure5``   regenerate the paper's Figure 5 traces and heatmaps;
``trace``     run a packaged workload with full telemetry and write a
              Chrome/Perfetto trace (open at https://ui.perfetto.dev);
``fuzz``      differential conformance fuzzing: sample seeded configs and
              assert every execution mode (serial / sharded / resume /
              fault-free / sequential reference) agrees (docs/testing.md).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Hyperspace-computer combinatorial solver stack "
            "(reproduction of Tarawneh et al., ICPP Workshops 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve a SAT problem on a simulated machine")
    solve.add_argument("cnf", nargs="?", help="DIMACS file (default: generated uf20-91)")
    solve.add_argument("--topology", default="torus2d:14x14", help="machine spec")
    solve.add_argument("--mapper", default="lbn", choices=["rr", "lbn", "random", "hint"])
    solve.add_argument("--status", type=int, default=None, help="LBN status threshold")
    solve.add_argument("--heuristic", default="max_occurrence")
    solve.add_argument("--simplify", default="none", choices=["none", "single", "fixpoint"])
    solve.add_argument("--seed", type=int, default=2017)
    solve.add_argument("--quiet", action="store_true", help="verdict only")
    solve.add_argument(
        "--drop", type=float, default=0.0, metavar="P",
        help="per-send link drop probability (default 0: reliable links)",
    )
    solve.add_argument(
        "--dup", type=float, default=0.0, metavar="P",
        help="per-send link duplication probability (default 0)",
    )
    solve.add_argument(
        "--reliable", action="store_true",
        help="enable the layer-1.5 reliable-delivery protocol "
             "(sequence numbers + acks + retransmission; docs/robustness.md)",
    )
    solve.add_argument(
        "--retry-limit", type=int, default=None, metavar="N",
        help="retransmissions per frame before giving up (implies --reliable)",
    )
    solve.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="K",
        help="checkpoint the whole stack every K simulation steps "
             "(docs/checkpointing.md)",
    )
    solve.add_argument(
        "--checkpoint-dir", default="checkpoints", metavar="DIR",
        help="where --checkpoint-every writes checkpoint-<step>.ckpt "
             "files (default: ./checkpoints)",
    )
    solve.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume a checkpointed solve; the workload (formula, machine, "
             "solver flags) is rebuilt from the checkpoint header, so other "
             "solver flags are ignored",
    )
    solve.add_argument(
        "--shards", default=None, metavar="N",
        help="run node handlers in N worker processes (0 or 'auto' = all "
             "cores; default: REPRO_SHARDS env var, else serial); the "
             "schedule, verdict and digests are identical for any shard "
             "count (docs/parallelism.md)",
    )
    solve.add_argument(
        "--shard-partitioner", default="strip",
        choices=["strip", "grid", "greedy"],
        help="how --shards splits nodes across workers (default: strip)",
    )

    gen = sub.add_parser("generate", help="write random 3-SAT benchmark files")
    gen.add_argument("out_dir", help="output directory")
    gen.add_argument("--count", type=int, default=20)
    gen.add_argument("--vars", type=int, default=20)
    gen.add_argument("--clauses", type=int, default=91)
    gen.add_argument("--seed", type=int, default=2017)
    gen.add_argument("--planted", action="store_true",
                     help="planted-solution instances (faster for large sweeps)")

    topo = sub.add_parser("topo", help="describe a topology spec")
    topo.add_argument("spec", help='e.g. "torus2d:14x14", "hypercube:6"')

    fig4 = sub.add_parser("figure4", help="regenerate paper Figure 4")
    fig4.add_argument("--preset", default="quick", choices=["quick", "full"])
    fig4.add_argument("--status", type=int, default=16)

    fig5 = sub.add_parser("figure5", help="regenerate paper Figure 5")
    fig5.add_argument("--preset", default="quick", choices=["quick", "full"])

    for fig in (fig4, fig5):
        fig.add_argument(
            "--seed", type=int, default=None, metavar="S",
            help="override the preset's base seed (default: the preset's "
                 "pinned seed, which reproduces the committed baselines)",
        )
        fig.add_argument(
            "--jobs", "-j", type=int, default=None, metavar="N",
            help="worker processes for the sweep (0 = all cores; default: "
                 "REPRO_JOBS env var, else serial); results are identical "
                 "for any job count",
        )
        fig.add_argument(
            "--json", metavar="PATH", default=None,
            help="also write the figure data as JSON to PATH",
        )
        fig.add_argument(
            "--trace", metavar="PATH", default=None,
            help="also capture one representative sweep cell with full "
                 "telemetry and write a Chrome/Perfetto trace to PATH",
        )

    trace = sub.add_parser(
        "trace",
        help="capture a Chrome/Perfetto trace of a packaged workload",
        description=(
            "Run one packaged workload with the telemetry bus enabled and "
            "write a Chrome trace-event JSON file (load it at "
            "https://ui.perfetto.dev).  WORKLOAD is a registry name (sat, "
            "sumrec, fib, nqueens, traversal) or the path of an example "
            "script (examples/sat_solver.py)."
        ),
    )
    trace.add_argument("workload", help="workload name or examples/ script path")
    trace.add_argument("--out", default="trace.json", metavar="PATH",
                       help="trace output path (default: trace.json)")
    trace.add_argument("--metrics", default=None, metavar="PATH",
                       help="also dump aggregated metrics (.json or .csv)")
    trace.add_argument("--topology", default=None, help="override machine spec")
    trace.add_argument("--seed", type=int, default=2017)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing across execution modes",
        description=(
            "Sample seeded configurations (topology x workload x mapper x "
            "heuristic x faults x reliability x shards x checkpoint point) "
            "and run each through every applicable execution mode, "
            "asserting verdict, state-digest, schedule-digest and "
            "telemetry-counter parity.  Discrepancies are shrunk to a "
            "minimal config and written as replayable artifacts "
            "(docs/testing.md)."
        ),
    )
    fuzz.add_argument("--seed", type=int, default=9,
                      help="sampler seed (same seed = same configs everywhere)")
    fuzz.add_argument("--budget", type=int, default=200, metavar="N",
                      help="number of configurations to sample (default 200)")
    fuzz.add_argument(
        "--replay", default=None, metavar="PATH",
        help="re-run the oracle on a saved discrepancy artifact instead of "
             "sampling; exits 1 while the discrepancy still reproduces",
    )
    fuzz.add_argument(
        "--modes", default=None, metavar="M[,M...]",
        help="restrict the compared modes (comma-separated subset of "
             "sharded,resume,fault_free,reference; the serial baseline "
             "always runs)",
    )
    fuzz.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="stop sampling early after this many seconds (bounded CI "
             "smoke runs)",
    )
    fuzz.add_argument(
        "--artifact-dir", default="fuzz_artifacts", metavar="DIR",
        help="where shrunk discrepancy artifacts are written "
             "(default: ./fuzz_artifacts)",
    )
    fuzz.add_argument(
        "--shard-backend", default="inline", choices=["inline", "process"],
        help="worker backend for the sharded comparison runs (default "
             "inline: identical semantics without process spawn cost)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="record discrepancies as sampled, without minimization",
    )

    return parser


def _cmd_solve(args) -> int:
    from .apps.sat import dpll_solve, load_dimacs, uf20_91_suite
    from .bench import heatmap_ascii, sparkline
    from .engine import RunSpec, cnf_of, execute
    from .errors import ApplicationError, SimulationError, SpecError
    from .netsim import resolve_shards
    from .state import load_checkpoint
    from .topology import topology_from_spec

    resume_ckpt = None
    header_spec = None
    if args.resume is not None:
        from .errors import CheckpointError

        # the checkpoint header embeds the canonical RunSpec: formula,
        # machine and solver flags all come from the original run
        try:
            resume_ckpt = load_checkpoint(args.resume)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        header = resume_ckpt.meta.get("runspec")
        if not header:
            print(
                f"error: {args.resume} carries no runspec header "
                "(was it written by `repro solve --checkpoint-every`?)",
                file=sys.stderr,
            )
            return 2
        try:
            header_spec = RunSpec.from_dict(header)
        except SpecError as exc:
            print(f"error: {args.resume}: {exc}", file=sys.stderr)
            return 2
        if header_spec.workload != "sat":
            print(
                f"error: {args.resume} checkpoints a "
                f"{header_spec.workload!r} workload; `repro solve --resume` "
                "resumes only 'sat' runs",
                file=sys.stderr,
            )
            return 2
        if header_spec.topology is None or header_spec.heuristic == "custom":
            print(
                f"error: {args.resume} was checkpointed from a run with a "
                "non-serialisable topology or heuristic; resume it "
                "programmatically via repro.engine.execute",
                file=sys.stderr,
            )
            return 2
        cnf = cnf_of(header_spec.workload_params)
        if not args.quiet:
            print(
                f"c resuming from      {args.resume} "
                f"(step {resume_ckpt.step}, digest {resume_ckpt.state_digest})"
            )
    elif args.cnf:
        cnf = load_dimacs(args.cnf)
    else:
        cnf = uf20_91_suite(1, seed=args.seed)[0]

    topo = topology_from_spec(
        header_spec.topology if header_spec is not None else args.topology
    )
    try:
        n_shards = min(resolve_shards(args.shards), topo.n_nodes)
    except SimulationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if header_spec is not None:
        # --shards is honoured on --resume too: checkpoints carry no shard
        # count, so a run may be checkpointed sharded and resumed serially
        spec = header_spec.with_(
            shards=n_shards,
            partitioner=args.shard_partitioner,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir if args.checkpoint_every else None,
        )
    else:
        spec = RunSpec(
            workload="sat",
            workload_params={
                "clauses": [list(c) for c in cnf.clauses],
                "num_vars": cnf.num_vars,
            },
            topology=args.topology,
            mapper=args.mapper,
            status=args.status,
            heuristic=args.heuristic,
            simplify=args.simplify,
            seed=args.seed,
            drop=args.drop,
            duplicate=args.dup,
            reliable=args.reliable or args.retry_limit is not None,
            retry_limit=args.retry_limit,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir if args.checkpoint_every else None,
            shards=n_shards,
            partitioner=args.shard_partitioner,
        )
    try:
        run = execute(spec, topology=topo, resume_from=resume_ckpt)
    except (ApplicationError, SimulationError) as exc:
        # contradictory flag combinations (e.g. --shards with the shared-RNG
        # 'random' heuristic) are usage errors, not crashes — and they carry
        # the same message here, in the library shim and in the fuzzer,
        # because all three reject through engine.validate
        print(f"error: {exc}", file=sys.stderr)
        return 2
    satisfiable = run.verdict["sat"]
    seq = dpll_solve(cnf)
    if satisfiable != seq.satisfiable:
        print("ERROR: distributed and sequential solvers disagree", file=sys.stderr)
        return 2
    if satisfiable:
        model = dict(sorted(dict(run.verdict["assignment"]).items()))
        lits = " ".join(str(v if val else -v) for v, val in model.items())
        print(f"s SATISFIABLE\nv {lits} 0")
    else:
        print("s UNSATISFIABLE")
    if not args.quiet:
        rep = run.report
        print(f"c machine            {topo.describe()} ({spec.mapper})")
        if n_shards > 1:
            print(
                f"c sharded backend    {n_shards} worker processes "
                f"({spec.partitioner} partition)"
            )
        if spec.drop or spec.duplicate:
            guard = (
                "reliable delivery on"
                if spec.reliable or spec.retry_limit is not None
                else "UNPROTECTED"
            )
            print(
                f"c link faults        drop={spec.drop} dup={spec.duplicate} "
                f"({guard})"
            )
        if run.link_stats is not None:
            ls = run.link_stats
            print(
                f"c reliability        {ls.retransmits} retransmits, "
                f"{ls.dups_suppressed} dups suppressed, "
                f"{ls.frames_lost} frames lost, {ls.exhausted} exhausted"
            )
        if run.state_digest is not None:
            print(f"c state digest       {run.state_digest}")
        if args.checkpoint_every:
            print(
                f"c checkpoints        every {args.checkpoint_every} steps "
                f"-> {args.checkpoint_dir}"
            )
        print(f"c computation time   {rep.computation_time} steps")
        print(f"c messages           {rep.sent_total}")
        print(f"c peak queued        {rep.peak_queued}")
        print(f"c active nodes       {rep.active_node_count}/{topo.n_nodes}")
        print(f"c activity |{sparkline(rep.interconnect_activity, 50)}|")
        if len(topo.shape) in (2, 3):
            print("c node activity heatmap:")
            for line in heatmap_ascii(rep.heatmap()).splitlines():
                print(f"c   {line}")
    return 0


def _cmd_generate(args) -> int:
    from .apps.sat import save_dimacs, uf20_91_suite
    from .apps.sat.generator import planted_random_ksat, satisfiable_random_ksat
    from .rng import SeedSequence

    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    seeds = SeedSequence(args.seed)
    gen = planted_random_ksat if args.planted else satisfiable_random_ksat
    for i, rng in enumerate(seeds.indexed("cli-generate", args.count)):
        cnf = gen(args.vars, args.clauses, 3, rng)
        path = out / f"uf{args.vars}-{args.clauses}-{i:03d}.cnf"
        save_dimacs(
            cnf,
            path,
            comments=[
                f"uniform random 3-SAT, {args.vars} vars, {args.clauses} clauses",
                f"seed={args.seed} index={i} satisfiable=yes",
            ],
        )
        print(path)
    return 0


def _cmd_topo(args) -> int:
    from .topology import topology_from_spec

    topo = topology_from_spec(args.spec)
    degrees = [topo.degree(n) for n in topo.nodes()]
    print(f"topology   {topo.describe()}")
    print(f"nodes      {topo.n_nodes}")
    print(f"links      {topo.n_links()}")
    print(f"degree     min {min(degrees)} / max {max(degrees)}")
    print(f"diameter   {topo.diameter()}")
    print(f"symmetric  {'yes' if topo.is_node_symmetric() else 'no'}")
    return 0


def _cmd_figure4(args) -> int:
    from .bench import (
        FULL,
        QUICK,
        assert_figure4_shape,
        figure4_to_dict,
        render_figure4,
        run_figure4,
        write_json,
    )

    preset = FULL if args.preset == "full" else QUICK
    result = run_figure4(
        preset,
        status_threshold=args.status,
        verbose=True,
        jobs=args.jobs,
        trace_path=args.trace,
        seed=args.seed,
    )
    print(render_figure4(result))
    if args.json:
        print(f"\nJSON written to {write_json(args.json, figure4_to_dict(result))}")
    if result.trace_summary is not None:
        print(f"\nPerfetto trace written to {result.trace_summary['trace_path']}")
    assert_figure4_shape(result)
    print("\nall Figure-4 qualitative claims hold")
    return 0


def _cmd_figure5(args) -> int:
    from .bench import (
        FULL,
        QUICK,
        assert_figure5_shape,
        figure5_to_dict,
        render_figure5,
        run_figure5,
        write_json,
    )

    preset = FULL if args.preset == "full" else QUICK
    result = run_figure5(
        preset, jobs=args.jobs, trace_path=args.trace, seed=args.seed
    )
    print(render_figure5(result))
    if args.json:
        print(f"\nJSON written to {write_json(args.json, figure5_to_dict(result))}")
    if result.trace_summary is not None:
        print(f"\nPerfetto trace written to {result.trace_summary['trace_path']}")
    assert_figure5_shape(result)
    print("\nall Figure-5 qualitative claims hold")
    return 0


def _cmd_trace(args) -> int:
    from .telemetry import LAYER_NAMES, capture_workload

    try:
        summary = capture_workload(
            args.workload,
            args.out,
            metrics_path=args.metrics,
            topology=args.topology,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"workload   {summary['workload']} — {summary['description']}")
    print(f"machine    {summary['topology']}")
    for key, value in summary["result"].items():
        print(f"{key:10s} {value}")
    layers = ", ".join(LAYER_NAMES[n] for n in summary["layers"])
    print(f"events     {summary['events']} across {layers}")
    print(f"trace      {summary['trace_path']} (open at https://ui.perfetto.dev)")
    if "metrics_path" in summary:
        print(f"metrics    {summary['metrics_path']}")
    return 0


def _cmd_fuzz(args) -> int:
    from .conformance import MODE_NAMES, ArtifactError, replay_artifact, run_fuzz

    modes = None
    if args.modes is not None:
        modes = [m.strip() for m in args.modes.split(",") if m.strip()]
        unknown = sorted(set(modes) - set(MODE_NAMES))
        if unknown:
            print(
                f"error: unknown modes {', '.join(unknown)} "
                f"(known: {', '.join(MODE_NAMES)})",
                file=sys.stderr,
            )
            return 2

    if args.replay is not None:
        from .errors import SpecError

        try:
            result = replay_artifact(args.replay, shard_backend=args.shard_backend)
        except (ArtifactError, SpecError) as exc:
            # SpecError comes from the same engine.validate table that
            # drives `repro solve` exit-2 paths — identical message
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"replayed   {args.replay}")
        print(f"config     {result.config.describe()}")
        print(f"modes run  {', '.join(result.modes_run)}")
        if result.ok:
            print("verdict    discrepancy did NOT reproduce (all modes agree)")
            return 0
        d = result.discrepancy
        print(f"verdict    discrepancy reproduces: {d.mode}/{d.kind}")
        print(f"detail     {d.detail}")
        return 1

    if args.budget < 1:
        print(f"error: --budget must be >= 1, got {args.budget}", file=sys.stderr)
        return 2
    report = run_fuzz(
        args.seed,
        args.budget,
        modes=modes,
        shard_backend=args.shard_backend,
        artifact_dir=args.artifact_dir,
        time_limit=args.time_limit,
        shrink=not args.no_shrink,
        progress=print,
    )
    print(f"seed       {args.seed}")
    print(f"configs    {report.configs_checked}/{args.budget} checked "
          f"in {report.elapsed:.1f}s")
    runs = ", ".join(f"{m}={n}" for m, n in sorted(report.mode_runs.items()))
    print(f"mode runs  {runs}")
    if report.ok:
        print("verdict    all execution modes agree on every sampled config")
        return 0
    print(f"verdict    {len(report.discrepancies)} DISCREPANCIES", file=sys.stderr)
    for disc, path in zip(
        report.discrepancies,
        report.artifact_paths or [None] * len(report.discrepancies),
    ):
        print(f"  {disc.mode}/{disc.kind}: {disc.config.describe()}", file=sys.stderr)
        if path is not None:
            print(f"    artifact: {path} (re-run: repro fuzz --replay {path})",
                  file=sys.stderr)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "generate": _cmd_generate,
        "topo": _cmd_topo,
        "figure4": _cmd_figure4,
        "figure5": _cmd_figure5,
        "trace": _cmd_trace,
        "fuzz": _cmd_fuzz,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
