"""Differential conformance fuzzing: one oracle for every execution mode.

The paper's five-layer model promises that layers can be swapped without
changing solver semantics, and this repository has accumulated many
swappable execution modes: the serial :class:`~repro.netsim.Machine`, the
sharded multi-process backend at any shard count, reliability-protected
faulty links, and checkpoint/resume at arbitrary step boundaries.  Their
pairwise equivalence used to be pinned only by hand-written parity tests
at a handful of configurations; this package turns the layer-substitution
claim into a continuously fuzzed invariant:

* :mod:`repro.conformance.space` — a seeded sampler over the configuration
  space (topology x workload x mapper x heuristic x fault schedule x
  reliability x shard count x checkpoint-resume point);
* :mod:`repro.conformance.workloads` — adapters that run one sampled
  configuration through one execution mode and report a comparable
  :class:`~repro.conformance.workloads.RunOutcome` (verdict, schedule
  digest, semantic state digest, telemetry counters);
* :mod:`repro.conformance.oracle` — the differential oracle: run every
  applicable mode, assert verdict parity, ``state_digest`` equality,
  telemetry-counter equality and schedule-digest equality (plus verdict
  parity of reliability-protected faulty runs against their fault-free
  baseline, and against the sequential reference solvers);
* :mod:`repro.conformance.shrink` — an automatic shrinker
  (delta-debugging over config dimensions, then step count and formula
  size) that reduces any discrepancy to a minimal repro;
* :mod:`repro.conformance.fuzzer` — the fuzz loop and the replayable
  artifact format behind ``repro fuzz`` (``--seed``, ``--budget``,
  ``--replay``, ``--modes``).

A pinned-seed corpus lives under ``tests/conformance/corpus/`` and is
replayed by the tier-1 suite; ``docs/testing.md`` documents how to run
and extend the fuzzer.
"""

from .fuzzer import (
    ArtifactError,
    FuzzReport,
    load_artifact,
    replay_artifact,
    run_fuzz,
    save_artifact,
)
from .oracle import MODE_NAMES, CheckResult, Discrepancy, check_config
from .shrink import shrink_config
from .space import DEFAULT_CONFIG, FuzzConfig, sample_configs

__all__ = [
    "ArtifactError",
    "CheckResult",
    "DEFAULT_CONFIG",
    "Discrepancy",
    "FuzzConfig",
    "FuzzReport",
    "MODE_NAMES",
    "check_config",
    "load_artifact",
    "replay_artifact",
    "run_fuzz",
    "sample_configs",
    "save_artifact",
    "shrink_config",
]
