"""The fuzz loop and the replayable discrepancy artifact format.

:func:`run_fuzz` drives the whole tentpole: sample ``budget`` configs
from the seeded space, run each through the differential oracle, shrink
any discrepancy to a minimal config (re-checking that the *same* mode
and comparison kind still fail, so shrinking cannot drift onto a
different bug) and write it as a replayable JSON artifact.

An artifact is self-contained: the exact :class:`FuzzConfig`, the mode
and comparison that disagreed, and the mode restriction in effect — so
``repro fuzz --replay <artifact>`` re-runs the oracle on precisely that
configuration, deterministically, on any machine.  The pinned corpus
under ``tests/conformance/corpus/`` uses the same format.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..errors import ReproError
from .oracle import CheckResult, Discrepancy, check_config
from .shrink import shrink_config
from .space import FuzzConfig, sample_configs

__all__ = [
    "ARTIFACT_FORMAT",
    "ArtifactError",
    "FuzzReport",
    "load_artifact",
    "replay_artifact",
    "run_fuzz",
    "save_artifact",
]

ARTIFACT_FORMAT = "repro-conformance-repro"
ARTIFACT_VERSION = 1


class ArtifactError(ReproError):
    """A discrepancy artifact is missing, corrupt, or not an artifact."""


# -- artifacts --------------------------------------------------------------


def save_artifact(
    path: Union[str, Path],
    discrepancy: Discrepancy,
    *,
    modes: Optional[Sequence[str]] = None,
    original: Optional[FuzzConfig] = None,
) -> Path:
    """Write a replayable artifact for ``discrepancy``; returns the path.

    ``modes`` records any mode restriction the fuzz run was under (so the
    replay applies the same one); ``original`` optionally preserves the
    pre-shrink config for forensics.
    """
    path = Path(path)
    payload: Dict[str, Any] = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "discrepancy": discrepancy.to_dict(),
        "modes": list(modes) if modes is not None else None,
    }
    if original is not None and original != discrepancy.config:
        payload["original_config"] = original.to_dict()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate an artifact; raises :class:`ArtifactError`.

    Returns the decoded payload with ``discrepancy`` already upgraded to
    a :class:`~repro.conformance.oracle.Discrepancy` (which validates the
    embedded config's fields).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"artifact {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"artifact {path} is not a {ARTIFACT_FORMAT} file "
            f"(format={payload.get('format')!r})"
            if isinstance(payload, dict)
            else f"artifact {path} is not a {ARTIFACT_FORMAT} file"
        )
    if payload.get("version") != ARTIFACT_VERSION:
        raise ArtifactError(
            f"artifact {path} has unsupported version "
            f"{payload.get('version')!r} (supported: {ARTIFACT_VERSION})"
        )
    try:
        payload["discrepancy"] = Discrepancy.from_dict(payload["discrepancy"])
    except (KeyError, TypeError, ReproError) as exc:
        raise ArtifactError(f"artifact {path} is corrupt: {exc}") from exc
    return payload


def replay_artifact(
    path: Union[str, Path], *, shard_backend: str = "inline"
) -> CheckResult:
    """Re-run the oracle on an artifact's config, deterministically.

    The embedded config is first checked against the single capability
    table in :mod:`repro.engine` (normalised to its serial baseline —
    shard count and checkpoint cadence are per-mode knobs): a hand-edited
    artifact naming an unknown mapper or an impossible knob combination
    raises :class:`~repro.errors.SpecError` with the *same message*
    ``repro solve`` and ``solve_on_machine`` would print, instead of
    being reported as a mode "crash" discrepancy.
    """
    from ..engine import validate

    payload = load_artifact(path)
    disc: Discrepancy = payload["discrepancy"]
    validate(disc.config.to_runspec().with_(shards=1, checkpoint_every=None))
    return check_config(
        disc.config, modes=payload.get("modes"), shard_backend=shard_backend
    )


# -- the fuzz loop ----------------------------------------------------------


@dataclass
class FuzzReport:
    """Aggregate outcome of one :func:`run_fuzz` invocation."""

    seed: int
    budget: int
    configs_checked: int = 0
    #: how many times each mode actually ran and was compared
    mode_runs: Dict[str, int] = field(default_factory=dict)
    discrepancies: List[Discrepancy] = field(default_factory=list)
    #: artifact file per discrepancy (when an artifact_dir was given)
    artifact_paths: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "configs_checked": self.configs_checked,
            "mode_runs": dict(sorted(self.mode_runs.items())),
            "discrepancies": [d.to_dict() for d in self.discrepancies],
            "artifact_paths": list(self.artifact_paths),
            "elapsed": round(self.elapsed, 3),
            "ok": self.ok,
        }


def _same_failure(template: Discrepancy) -> Callable[[CheckResult], bool]:
    """Shrink predicate: the candidate must fail the same way.

    "Same way" = same disagreeing mode and same comparison kind; anything
    looser lets the shrinker wander onto an unrelated failure and report
    a minimal config for the wrong bug.
    """

    def matches(result: CheckResult) -> bool:
        d = result.discrepancy
        return d is not None and d.mode == template.mode and d.kind == template.kind

    return matches


def run_fuzz(
    seed: int,
    budget: int,
    *,
    modes: Optional[Sequence[str]] = None,
    shard_backend: str = "inline",
    artifact_dir: Union[None, str, Path] = None,
    time_limit: Optional[float] = None,
    shrink: bool = True,
    max_shrink_evals: int = 200,
    progress: Optional[Callable[[str], None]] = None,
    check: Callable[..., CheckResult] = check_config,
) -> FuzzReport:
    """Fuzz ``budget`` seeded configs through the differential oracle.

    Keeps fuzzing after a discrepancy (each one is shrunk and recorded;
    a single run can surface several independent bugs).  ``time_limit``
    (seconds) stops sampling early for bounded CI smoke jobs — the
    report's ``configs_checked`` says how far it got.  ``check`` is
    injectable for tests; it must follow the
    :func:`~repro.conformance.oracle.check_config` contract.
    """
    report = FuzzReport(seed=seed, budget=budget)
    start = time.monotonic()
    say = progress if progress is not None else (lambda msg: None)
    for index, config in enumerate(sample_configs(seed, budget)):
        if time_limit is not None and time.monotonic() - start > time_limit:
            say(
                f"time limit {time_limit:.0f}s reached after "
                f"{report.configs_checked} configs"
            )
            break
        result = check(config, modes=modes, shard_backend=shard_backend)
        report.configs_checked += 1
        for mode in result.modes_run:
            report.mode_runs[mode] = report.mode_runs.get(mode, 0) + 1
        if result.ok:
            if (index + 1) % 25 == 0:
                say(f"[{index + 1}/{budget}] ok so far")
            continue
        disc = result.discrepancy
        say(f"[{index + 1}/{budget}] DISCREPANCY {disc.mode}/{disc.kind}: "
            f"{config.describe()}")
        original = config
        if shrink:
            matches = _same_failure(disc)

            def still_fails(candidate: FuzzConfig) -> bool:
                return matches(
                    check(candidate, modes=modes, shard_backend=shard_backend)
                )

            shrunk = shrink_config(config, still_fails, max_evals=max_shrink_evals)
            if shrunk != config:
                say(f"    shrunk to: {shrunk.describe()}")
                final = check(shrunk, modes=modes, shard_backend=shard_backend)
                if matches(final):
                    disc = final.discrepancy
        report.discrepancies.append(disc)
        if artifact_dir is not None:
            path = save_artifact(
                Path(artifact_dir) / f"discrepancy-{len(report.discrepancies):03d}.json",
                disc,
                modes=modes,
                original=original,
            )
            report.artifact_paths.append(str(path))
            say(f"    artifact: {path}")
    report.elapsed = time.monotonic() - start
    return report
