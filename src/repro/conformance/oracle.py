"""The differential oracle: run every applicable mode, demand agreement.

For one sampled :class:`~repro.conformance.space.FuzzConfig` the oracle
runs the serial baseline and then every other applicable execution mode,
asserting per mode:

========== =========================================================
mode        comparison against the serial baseline
========== =========================================================
sharded     verdict, schedule digest, semantic state digest and
            telemetry counters all equal (the backend promises
            bit-identity)
resume      verdict, schedule digest and semantic state digest equal
            (telemetry *counters* are skipped: bus subscribers are
            assembly, not state — a resumed run's metrics cover only
            the post-resume suffix by design)
fault_free  coarse verdict parity (a reliability-protected faulty run
            must reach the same answer as clean links; schedules
            legitimately differ, and the comparison is skipped if
            either run ran out of steps)
reference   coarse verdict parity with the sequential solvers, plus
            witness validation (SAT models satisfy the formula,
            N-queens placements are valid, traversals reach every
            node) — applied to clean or protected runs only
========== =========================================================

The first disagreement becomes a :class:`Discrepancy` — plain data,
JSON-round-trippable, carrying both sides of the comparison so the fuzz
artifact is self-explanatory.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .space import FuzzConfig
from .workloads import RunOutcome, applicable_modes, check_reference, run_mode

__all__ = ["CheckResult", "Discrepancy", "MODE_NAMES", "check_config"]

#: every mode the oracle knows (--modes validates against this)
MODE_NAMES = ("serial", "sharded", "resume", "fault_free", "reference")


@dataclass
class Discrepancy:
    """One observed disagreement between execution modes (plain data)."""

    config: FuzzConfig
    #: the mode that disagreed with the serial baseline
    mode: str
    #: what disagreed: verdict | schedule_digest | state_digest |
    #: counters | reference | error
    kind: str
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "mode": self.mode,
            "kind": self.kind,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Discrepancy":
        return cls(
            config=FuzzConfig.from_dict(data["config"]),
            mode=data["mode"],
            kind=data["kind"],
            detail=data["detail"],
        )


@dataclass
class CheckResult:
    """Everything one oracle invocation learned about one config."""

    config: FuzzConfig
    #: modes that actually ran/compared (skipped modes excluded)
    modes_run: List[str] = field(default_factory=list)
    discrepancy: Optional[Discrepancy] = None

    @property
    def ok(self) -> bool:
        return self.discrepancy is None


def _dict_diff(want: Dict[str, Any], got: Dict[str, Any], limit: int = 4) -> str:
    """A short human summary of how two counter dicts differ."""
    keys = sorted(set(want) | set(got))
    diffs = [
        f"{k}: baseline={want.get(k)!r} vs {got.get(k)!r}"
        for k in keys
        if want.get(k) != got.get(k)
    ]
    more = f" (+{len(diffs) - limit} more)" if len(diffs) > limit else ""
    return "; ".join(diffs[:limit]) + more


def _compare(
    config: FuzzConfig, baseline: RunOutcome, other: RunOutcome, *, counters: bool
) -> Optional[Discrepancy]:
    """Full-equality comparison of one mode against the serial baseline."""
    if other.verdict != baseline.verdict:
        return Discrepancy(
            config, other.mode, "verdict",
            f"serial verdict {baseline.verdict!r} vs "
            f"{other.mode} verdict {other.verdict!r}",
        )
    if other.schedule_digest != baseline.schedule_digest:
        return Discrepancy(
            config, other.mode, "schedule_digest",
            f"serial schedule {baseline.schedule_digest} vs "
            f"{other.mode} schedule {other.schedule_digest}",
        )
    if other.state_digest != baseline.state_digest:
        return Discrepancy(
            config, other.mode, "state_digest",
            f"serial state {baseline.state_digest} vs "
            f"{other.mode} state {other.state_digest}",
        )
    if counters and other.counters != baseline.counters:
        return Discrepancy(
            config, other.mode, "counters",
            _dict_diff(baseline.counters, other.counters),
        )
    return None


def check_config(
    config: FuzzConfig,
    *,
    modes: Optional[Sequence[str]] = None,
    shard_backend: str = "inline",
    runner: Callable[..., Optional[RunOutcome]] = run_mode,
) -> CheckResult:
    """Run ``config`` through every applicable mode and compare.

    ``modes`` optionally restricts the non-serial modes (the serial
    baseline always runs — it is what everything is compared against).
    ``runner`` is injectable so the shrinker tests can substitute a
    deliberately-broken oracle; it must follow the
    :func:`~repro.conformance.workloads.run_mode` contract.

    Any exception a mode raises is itself a conformance failure (modes
    may not crash on configurations others accept) and is reported as a
    ``kind="error"`` discrepancy rather than propagated.
    """
    result = CheckResult(config)
    wanted = applicable_modes(config)
    if modes is not None:
        unknown = sorted(set(modes) - set(MODE_NAMES))
        if unknown:
            raise ValueError(
                f"unknown modes {unknown}; known: {', '.join(MODE_NAMES)}"
            )
        wanted = [m for m in wanted if m == "serial" or m in modes]
    try:
        baseline = runner(config, "serial", shard_backend=shard_backend)
    except Exception:
        result.discrepancy = Discrepancy(
            config, "serial", "error", traceback.format_exc(limit=8)
        )
        return result
    result.modes_run.append("serial")
    for mode in wanted:
        if mode == "serial":
            continue
        if mode == "reference":
            error = check_reference(config, baseline)
            if error is not None:
                result.discrepancy = Discrepancy(config, "reference", "reference", error)
                return result
            result.modes_run.append(mode)
            continue
        try:
            other = runner(
                config, mode, shard_backend=shard_backend, baseline=baseline
            )
        except Exception:
            result.discrepancy = Discrepancy(
                config, mode, "error", traceback.format_exc(limit=8)
            )
            return result
        if other is None:
            # mode turned out moot for this run (e.g. it finished before
            # the first checkpoint boundary) — skipped, not compared
            continue
        if mode == "fault_free":
            if baseline.completed and other.completed:
                want, got = other.coarse_verdict(), baseline.coarse_verdict()
                if want != got:
                    result.discrepancy = Discrepancy(
                        config, mode, "verdict",
                        f"protected faulty verdict {got!r} vs "
                        f"fault-free verdict {want!r}",
                    )
                    return result
                result.modes_run.append(mode)
            continue
        # sharded and resume promise bit-identity; counters are part of
        # that promise for sharded only (see module docstring)
        found = _compare(config, baseline, other, counters=(mode == "sharded"))
        if found is not None:
            result.discrepancy = found
            return result
        result.modes_run.append(mode)
    return result
