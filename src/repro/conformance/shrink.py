"""Automatic shrinking of a failing config to a minimal repro.

Given a configuration on which the oracle found a discrepancy and a
``failing`` predicate (``config -> bool``, True while the failure still
reproduces), :func:`shrink_config` delta-debugs in two phases:

1. **Dimension sweep** — repeatedly try moving each config dimension to
   its :data:`~repro.conformance.space.DEFAULT_CONFIG` value (workload
   first: collapsing it deletes heuristic/simplify/hint riders in one
   move), keeping any change under which the failure persists, until a
   full pass changes nothing.  The result reads as "default everything
   except ...".
2. **Size minimisation** — shrink the workload argument itself: fib and
   N-queens ``n`` walk down to the smallest still-failing value; a SAT
   generator recipe is first materialised into explicit clauses, then
   classic ddmin removes clause subsets, then unreferenced variables are
   compacted away.  (If the workload's canonical default parameters
   already fail, they win outright — a canonical repro beats a merely
   small one.)

The predicate is injectable precisely so the shrinker can be tested with
a deliberately-broken oracle stub; ``max_evals`` bounds the number of
predicate calls, since each real call replays several full simulations.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .space import (
    DEFAULT_CONFIG,
    DEFAULT_WORKLOAD_PARAMS,
    DIMENSIONS,
    FuzzConfig,
    build_cnf,
)

__all__ = ["shrink_config"]


class _Budget:
    """Counts predicate evaluations; the shrinker stops when exhausted."""

    def __init__(self, failing: Callable[[FuzzConfig], bool], max_evals: int) -> None:
        self._failing = failing
        self.remaining = max_evals

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0

    def fails(self, config: FuzzConfig) -> bool:
        if self.exhausted:
            return False
        self.remaining -= 1
        return bool(self._failing(config))


def _default_candidate(config: FuzzConfig, dim: str) -> Optional[FuzzConfig]:
    """``config`` with ``dim`` moved to its default, or None if already there."""
    default = getattr(DEFAULT_CONFIG, dim)
    if getattr(config, dim) == default:
        return None
    changes: Dict[str, Any] = {dim: default}
    if dim == "workload":
        # the params travel with the workload they parameterise
        changes["workload_params"] = dict(DEFAULT_WORKLOAD_PARAMS[default])
    return config.with_(**changes)


def _sweep_dimensions(config: FuzzConfig, budget: _Budget) -> FuzzConfig:
    changed = True
    while changed and not budget.exhausted:
        changed = False
        for dim in DIMENSIONS:
            candidate = _default_candidate(config, dim)
            if candidate is not None and budget.fails(candidate):
                config = candidate
                changed = True
    return config


# -- size minimisation ------------------------------------------------------


def _shrink_int_param(
    config: FuzzConfig, key: str, floor: int, budget: _Budget
) -> FuzzConfig:
    """Walk an integer workload parameter down to the smallest failing value."""
    current = config.workload_params[key]
    for value in range(floor, current):
        candidate = config.with_(workload_params={**config.workload_params, key: value})
        if budget.fails(candidate):
            return candidate
        if budget.exhausted:
            break
    return config


def _with_clauses(
    config: FuzzConfig, clauses: Sequence[Tuple[int, ...]]
) -> FuzzConfig:
    num_vars = max((abs(l) for c in clauses for l in c), default=1)
    return config.with_(workload_params={
        "clauses": [list(c) for c in clauses],
        "num_vars": num_vars,
    })


def _ddmin_clauses(
    config: FuzzConfig, clauses: List[Tuple[int, ...]], budget: _Budget
) -> FuzzConfig:
    """Zeller's ddmin over the clause list (complements first)."""
    n = 2
    while len(clauses) >= 2 and not budget.exhausted:
        chunk = max(1, len(clauses) // n)
        reduced = False
        for start in range(0, len(clauses), chunk):
            complement = clauses[:start] + clauses[start + chunk:]
            if complement and budget.fails(_with_clauses(config, complement)):
                clauses = complement
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(clauses):
                break
            n = min(len(clauses), n * 2)
    return _with_clauses(config, clauses)


def _shrink_sat(config: FuzzConfig, budget: _Budget) -> FuzzConfig:
    # materialise the generator recipe so single clauses become removable
    if "clauses" not in config.workload_params:
        cnf = build_cnf(config)
        explicit = _with_clauses(config, cnf.clauses)
        if not budget.fails(explicit):
            return config  # materialisation changed behaviour; keep recipe
        config = explicit
    clauses = [tuple(c) for c in config.workload_params["clauses"]]
    config = _ddmin_clauses(config, clauses, budget)
    # compact variable names so num_vars reflects what the formula uses
    clauses = [tuple(c) for c in config.workload_params["clauses"]]
    used = sorted({abs(l) for c in clauses for l in c})
    renumber = {v: i + 1 for i, v in enumerate(used)}
    if renumber != {v: v for v in used}:
        renamed = [
            tuple(renumber[abs(l)] * (1 if l > 0 else -1) for l in c)
            for c in clauses
        ]
        candidate = _with_clauses(config, renamed)
        if budget.fails(candidate):
            config = candidate
    return config


def _shrink_size(config: FuzzConfig, budget: _Budget) -> FuzzConfig:
    # a canonical repro beats a merely small one: params already at (or
    # movable to) the workload default end the size phase right there
    defaults = DEFAULT_WORKLOAD_PARAMS[config.workload]
    if config.workload_params == defaults:
        return config
    candidate = config.with_(workload_params=dict(defaults))
    if budget.fails(candidate):
        return candidate
    if config.workload == "fib":
        return _shrink_int_param(config, "n", 0, budget)
    if config.workload == "nqueens":
        return _shrink_int_param(config, "n", 1, budget)
    if config.workload == "sat":
        return _shrink_sat(config, budget)
    return config  # traversal carries no size parameter


def shrink_config(
    config: FuzzConfig,
    failing: Callable[[FuzzConfig], bool],
    *,
    max_evals: int = 400,
) -> FuzzConfig:
    """Reduce ``config`` to a minimal configuration still satisfying
    ``failing``.

    ``failing(config) -> bool`` must return True while the original
    failure reproduces (for the fuzzer this wraps
    :func:`~repro.conformance.oracle.check_config`; tests inject stubs).
    The input config is required to fail; if it does not, it is returned
    unchanged.  At most ``max_evals`` predicate calls are spent.
    """
    budget = _Budget(failing, max_evals)
    if not budget.fails(config):
        return config
    config = _sweep_dimensions(config, budget)
    config = _shrink_size(config, budget)
    # size changes can unlock further dimension collapses (and vice versa
    # is already covered by the sweep's fixpoint loop)
    return _sweep_dimensions(config, budget)
