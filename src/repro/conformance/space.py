"""The fuzzer's configuration space: dimensions, defaults, seeded sampling.

A :class:`FuzzConfig` is one point in the cross product the conformance
oracle differences: topology x workload x mapper x heuristic x fault
schedule x reliability x shard count x checkpoint-resume point (plus the
cheap riders: status threshold, simplification depth, hint mode, drain
protocol, partitioner).  Configs are plain JSON-round-trippable data so a
failing one can be written verbatim into a replayable artifact and into
the pinned corpus under ``tests/conformance/corpus/``.

:func:`sample_configs` is the seeded sampler: one ``random.Random(seed)``
stream drives every draw, so a ``(seed, budget)`` pair names the exact
same config list on every machine — which is what lets CI replay a local
fuzz run bit-for-bit.

``DEFAULT_CONFIG`` is the shrinker's target: delta-debugging moves every
dimension it can toward these values, so a minimized repro reads as
"default everything except ...".
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import ApplicationError

__all__ = [
    "DEFAULT_CONFIG",
    "DIMENSIONS",
    "FuzzConfig",
    "build_cnf",
    "sample_configs",
]


@dataclass(frozen=True)
class FuzzConfig:
    """One sampled point of the conformance space (plain, JSON-safe data).

    ``workload_params`` is workload-specific: ``{"n": ...}`` for ``fib``
    and ``nqueens``, nothing for ``traversal``, and for ``sat`` either a
    generator recipe ``{"num_vars", "num_clauses", "formula_seed"}`` or an
    explicit formula ``{"clauses": [[...]], "num_vars": ...}`` (the form
    the shrinker rewrites to so it can delta-debug single clauses).
    """

    workload: str = "fib"
    workload_params: Dict[str, Any] = field(default_factory=lambda: {"n": 5})
    topology: str = "ring:4"
    mapper: str = "rr"
    status: Optional[int] = None
    heuristic: str = "max_occurrence"
    simplify: str = "single"
    hint_mode: Optional[str] = None
    drain: bool = True
    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    reliable: bool = False
    shards: int = 1
    partitioner: str = "strip"
    ckpt_step: Optional[int] = None
    max_steps: int = 5000

    # -- (de)serialisation ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-encodable; artifact/corpus payload)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = set(cls.__dataclass_fields__)
        extra = sorted(set(data) - known)
        if extra:
            raise ApplicationError(f"unknown FuzzConfig fields: {extra}")
        return cls(**data)

    def with_(self, **changes: Any) -> "FuzzConfig":
        """A copy with ``changes`` applied (shrinker convenience)."""
        return replace(self, **changes)

    def to_runspec(self):
        """The :class:`repro.engine.RunSpec` this config names.

        The config is the fuzz-space *point*; the spec is the executable
        run.  ``ckpt_step`` maps to ``checkpoint_every`` and the oracle
        always runs non-strict (a hung config is a *finding*, not a
        crash).  Shard count / backend are mode-level knobs the oracle
        overrides per execution mode via ``RunSpec.with_``.
        """
        from ..engine import RunSpec

        return RunSpec(
            workload=self.workload,
            workload_params=dict(self.workload_params),
            topology=self.topology,
            mapper=self.mapper,
            status=self.status,
            heuristic=self.heuristic,
            simplify=self.simplify,
            hint_mode=self.hint_mode,
            drain=self.drain,
            seed=self.seed,
            drop=self.drop,
            duplicate=self.duplicate,
            reliable=self.reliable,
            shards=self.shards,
            partitioner=self.partitioner,
            checkpoint_every=self.ckpt_step,
            max_steps=self.max_steps,
            strict=False,
        )

    def describe(self) -> str:
        """One-line human summary (fuzz-loop progress, artifacts)."""
        parts = [f"{self.workload}{self.workload_params}", self.topology,
                 f"mapper={self.mapper}"]
        if self.status is not None:
            parts.append(f"status={self.status}")
        if self.workload == "sat":
            parts.append(f"heur={self.heuristic}/{self.simplify}")
        if self.drop or self.duplicate:
            guard = "reliable" if self.reliable else "unprotected"
            parts.append(f"faults={self.drop}/{self.duplicate}({guard})")
        elif self.reliable:
            parts.append("reliable")
        if self.shards > 1:
            parts.append(f"shards={self.shards}({self.partitioner})")
        if self.ckpt_step is not None:
            parts.append(f"ckpt@{self.ckpt_step}")
        parts.append(f"seed={self.seed}")
        return " ".join(parts)


#: the shrinker's target values, one per dimension
DEFAULT_CONFIG = FuzzConfig()

#: dimension names in the order the shrinker sweeps them (workload first:
#: collapsing the workload usually deletes the most moving parts at once)
DIMENSIONS: Tuple[str, ...] = (
    "workload",
    "topology",
    "mapper",
    "status",
    "heuristic",
    "simplify",
    "hint_mode",
    "drain",
    "drop",
    "duplicate",
    "reliable",
    "shards",
    "partitioner",
    "ckpt_step",
    "seed",
)

#: canonical default workload_params per workload (shrinker + sampler)
DEFAULT_WORKLOAD_PARAMS: Dict[str, Dict[str, Any]] = {
    "fib": {"n": 5},
    "nqueens": {"n": 4},
    "traversal": {},
    "sat": {"num_vars": 6, "num_clauses": 14, "formula_seed": 0},
}


def build_cnf(config: FuzzConfig):
    """Materialise the config's CNF formula (``sat`` workloads only).

    Generator-recipe params are expanded through
    :func:`repro.apps.sat.generator.uniform_random_ksat` (unfiltered, so
    both SAT and UNSAT instances occur); explicit-clause params are used
    verbatim.  Deterministic: the formula is a pure function of the
    params.  Thin alias for :func:`repro.engine.cnf_of`, kept as the
    conformance-facing name.
    """
    from ..engine import cnf_of

    return cnf_of(config.workload_params)


# -- sampling ---------------------------------------------------------------

#: small machines only: every config must run in milliseconds, because the
#: oracle runs each one several times over
_TOPOLOGIES = (
    "ring:4", "ring:6", "line:5", "star:5",
    "torus2d:3x3", "torus2d:4x4", "torus2d:2x3",
    "grid:3x3", "grid:2x4", "hypercube:3", "full:6", "tree:2x3",
)
_MAPPERS = ("rr", "rr", "lbn", "random", "hint")
_STATUSES = (None, None, None, 4, 16)
_HEURISTICS = ("max_occurrence", "max_occurrence", "first",
               "jeroslow_wang", "moms", "random")
_SIMPLIFY = ("none", "single", "single", "fixpoint")
_HINT_MODES = (None, None, None, "clauses", "vars")
_WORKLOADS = ("sat", "sat", "sat", "fib", "nqueens", "traversal")
_SHARDS = (1, 1, 2, 2, 3, 4)
_PARTITIONERS = ("strip", "strip", "grid", "greedy")
_CKPT_STEPS = (None, None, 5, 10, 20, 40)
_DROPS = (0.02, 0.05, 0.1)
_DUPS = (0.0, 0.02, 0.05)


def _sample_workload_params(workload: str, rng: random.Random) -> Dict[str, Any]:
    if workload == "fib":
        return {"n": rng.randrange(3, 10)}
    if workload == "nqueens":
        # n=2/3 have no solution, n=1/4/5/6 do — both verdicts get coverage
        return {"n": rng.randrange(2, 7)}
    if workload == "traversal":
        return {}
    num_vars = rng.randrange(5, 10)
    # straddle the satisfiability threshold (~4.27 clauses/var for 3-SAT)
    ratio = rng.choice((3.0, 4.3, 5.5))
    return {
        "num_vars": num_vars,
        "num_clauses": max(1, round(num_vars * ratio)),
        "formula_seed": rng.randrange(1_000_000),
    }


def sample_one(rng: random.Random) -> FuzzConfig:
    """Draw one configuration from the space (all draws from ``rng``)."""
    workload = rng.choice(_WORKLOADS)
    faulty = rng.random() < 0.35
    drop = rng.choice(_DROPS) if faulty else 0.0
    duplicate = rng.choice(_DUPS) if faulty else 0.0
    if drop == 0.0 and duplicate == 0.0:
        faulty = False
    # protected faulty runs dominate (they admit the fault-free comparison);
    # unprotected faults and clean-link protocol runs keep their code paths
    # covered too
    reliable = (rng.random() < 0.75) if faulty else (rng.random() < 0.1)
    return FuzzConfig(
        workload=workload,
        workload_params=_sample_workload_params(workload, rng),
        topology=rng.choice(_TOPOLOGIES),
        mapper=rng.choice(_MAPPERS),
        status=rng.choice(_STATUSES),
        heuristic=rng.choice(_HEURISTICS),
        simplify=rng.choice(_SIMPLIFY),
        hint_mode=rng.choice(_HINT_MODES),
        drain=rng.random() < 0.75,
        seed=rng.randrange(10_000),
        drop=drop,
        duplicate=duplicate,
        reliable=reliable,
        shards=rng.choice(_SHARDS),
        partitioner=rng.choice(_PARTITIONERS),
        ckpt_step=rng.choice(_CKPT_STEPS),
        max_steps=5000,
    )


def sample_configs(seed: int, budget: int) -> Iterator[FuzzConfig]:
    """Yield ``budget`` configurations, a pure function of ``seed``."""
    if budget < 0:
        raise ApplicationError(f"budget must be >= 0, got {budget}")
    rng = random.Random(seed)
    for _ in range(budget):
        yield sample_one(rng)


def sample_list(seed: int, budget: int) -> List[FuzzConfig]:
    """Eager form of :func:`sample_configs` (tests, corpus tooling)."""
    return list(sample_configs(seed, budget))
