"""Mode adapters: run one :class:`FuzzConfig` in one execution mode.

Every adapter returns a :class:`RunOutcome` with the four comparands the
oracle differences across modes:

* ``verdict`` — plain data: the solver's answer (model / value /
  placement / visited set), or ``("incomplete",)`` when the step budget
  ran out first;
* ``schedule_digest`` — :func:`~repro.netsim.digest.canonical_digest` of
  the run's observable schedule (verdict + step count + computation time
  + send/deliver/drop totals + the per-step queue-depth series);
* ``state_digest`` — :func:`~repro.state.state_digest_of` over the final
  semantic layer states (netsim/sched/reliability).  The telemetry layer
  is digested separately as ``counters``: its counter values must match
  across modes, but gauge *last-seen* values depend on event-relay
  interleaving (the documented sharded relaxation), so they are excluded
  here exactly as in ``tests/test_sharded_stack.py``;
* ``counters`` — the filtered :class:`~repro.telemetry.metrics.MetricsSubscriber`
  registry (shard-only partition counters removed, gauge ``last`` popped).

The serial adapter doubles as the checkpoint producer: when the config
carries a ``ckpt_step`` it captures the in-flight checkpoints so the
resume adapter can restart from the first one and the oracle can demand
the resumed run land on the identical final outcome.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..netsim import EMPTY_MSG, Machine, ShardProgramSpec, ShardedMachine
from ..netsim.digest import canonical_digest
from ..netsim.faults import FaultModel, ReliableLinks
from ..rng import substream
from ..stack import HyperspaceStack
from ..state import state_digest_of
from ..telemetry import TelemetryBus
from ..telemetry.metrics import MetricsSubscriber
from ..topology import Topology, topology_from_spec
from .space import FuzzConfig, build_cnf

__all__ = [
    "RunOutcome",
    "SHARD_ONLY_METRICS",
    "applicable_modes",
    "run_mode",
]

#: the sharded coordinator reports its partition through these counters; a
#: serial run has no partition, so parity comparisons must ignore them
SHARD_ONLY_METRICS = ("l1.shard_count", "l1.shard_edge_cut")

#: verdict marker for runs that exhausted max_steps without an answer
INCOMPLETE: Tuple[str] = ("incomplete",)


@dataclass
class RunOutcome:
    """Everything the oracle compares about one run of one mode."""

    mode: str
    completed: bool
    verdict: Any
    schedule_digest: str
    state_digest: Optional[str]
    counters: Dict[str, Dict[str, Any]]
    #: in-flight checkpoints (serial baseline only, when ckpt applies)
    checkpoints: List[Any] = field(default_factory=list)

    def coarse_verdict(self) -> Any:
        """The schedule-independent part of the verdict.

        Full verdicts embed schedule-dependent choices (which model, which
        placement); runs that legitimately take different schedules — the
        fault-free baseline of a protected faulty run, the sequential
        reference — can only be held to this.
        """
        if self.verdict == INCOMPLETE or not isinstance(self.verdict, dict):
            return self.verdict
        kind = self.verdict.get("kind")
        if kind == "sat":
            return {"kind": "sat", "sat": self.verdict["sat"]}
        if kind == "nqueens":
            return {"kind": "nqueens", "found": self.verdict["placement"] is not None}
        return self.verdict  # fib value / traversal visited set are unique


# -- applicability ----------------------------------------------------------


def checkpointable(config: FuzzConfig) -> bool:
    """Can this config run under checkpoint/resume?

    ``traversal`` is a bare layer-1 program: :meth:`Machine.snapshot`
    covers the netsim core but node *program* state belongs to the layer-2
    snapshot protocol, which a program-less machine does not run.  The
    ``"random"`` SAT heuristic shares one RNG stream across invocations
    and is rejected by the checkpoint protocol.
    """
    if config.workload == "traversal":
        return False
    if config.workload == "sat" and config.heuristic == "random":
        return False
    return True


def shardable(config: FuzzConfig) -> bool:
    """Can this config run on the sharded backend?

    Everything except the shared-RNG ``"random"`` SAT heuristic (each
    worker would hold its own copy and the draws would diverge).
    """
    return not (config.workload == "sat" and config.heuristic == "random")


def applicable_modes(config: FuzzConfig) -> List[str]:
    """The execution modes the oracle will run for ``config``.

    ``serial`` is always first (it is the baseline the others are compared
    against).  ``fault_free`` and ``reference`` are comparison runs, not
    alternate backends: the former re-runs a reliability-protected faulty
    config on clean links, the latter consults the sequential solver.
    """
    modes = ["serial"]
    if config.shards > 1 and shardable(config):
        modes.append("sharded")
    if config.ckpt_step is not None and checkpointable(config):
        modes.append("resume")
    faulty = config.drop > 0.0 or config.duplicate > 0.0
    if faulty and config.reliable:
        modes.append("fault_free")
    if not faulty or config.reliable:
        modes.append("reference")
    return modes


# -- shared plumbing --------------------------------------------------------


def _filter_counters(sub: MetricsSubscriber) -> Dict[str, Dict[str, Any]]:
    metrics: Dict[str, Dict[str, Any]] = {}
    for name, value in sub.as_dict().items():
        if name in SHARD_ONLY_METRICS:
            continue
        value = dict(value)
        # a gauge's *last seen* value depends on event-relay interleaving
        # (documented relaxation); counters/histograms/peaks must match
        value.pop("last", None)
        metrics[name] = value
    return metrics


def _schedule_digest(verdict: Any, report: Any) -> str:
    return canonical_digest({
        "verdict": verdict,
        "steps": report.steps,
        "computation_time": report.computation_time,
        "sent": report.sent_total,
        "delivered": report.delivered_total,
        "dropped": report.dropped_total,
        "queued": [int(q) for q in report.queued_series],
    })


def _semantic_digest(layers: Dict[str, Any]) -> str:
    """State digest over the semantic layers (telemetry held separately)."""
    return state_digest_of({k: v for k, v in layers.items() if k != "telemetry"})


def _stack_verdict(config: FuzzConfig, run) -> Tuple[bool, Any]:
    if not run.results:
        return False, INCOMPLETE
    raw = run.results[0]
    if config.workload == "sat":
        return True, {
            "kind": "sat",
            "sat": raw is not None,
            "assignment": sorted(dict(raw).items()) if raw is not None else None,
        }
    if config.workload == "fib":
        return True, {"kind": "fib", "value": raw}
    return True, {
        "kind": "nqueens",
        "placement": list(raw) if raw is not None else None,
    }


def _build_fn(config: FuzzConfig):
    """The layer-5 function + (for sharded runs) its picklable recipe."""
    if config.workload == "sat":
        from ..apps.sat.distributed import make_solve_sat

        kwargs = dict(hint_mode=config.hint_mode, simplify=config.simplify)
        fn = make_solve_sat(
            config.heuristic, rng=random.Random(config.seed), **kwargs
        )
        spec = ShardProgramSpec(
            make_solve_sat, config.heuristic,
            rng=random.Random(config.seed), **kwargs,
        )
        return fn, spec
    if config.workload == "fib":
        from ..apps.fib import fib

        return fib, None  # module-level: pickles by reference
    from ..apps.nqueens import nqueens

    return nqueens, None


def _stack_args(config: FuzzConfig) -> Any:
    if config.workload == "sat":
        from ..apps.sat.distributed import SatProblem

        return SatProblem(build_cnf(config))
    if config.workload == "fib":
        return config.workload_params["n"]
    from ..apps.nqueens import QueensProblem

    return QueensProblem(config.workload_params["n"])


def _run_stack(
    config: FuzzConfig,
    mode: str,
    *,
    shards: int,
    shard_backend: str,
    capture_checkpoints: bool = False,
    resume_from: Any = None,
) -> RunOutcome:
    """Run a layer-5 workload through :class:`HyperspaceStack`."""
    bus = TelemetryBus()
    sub = bus.attach(MetricsSubscriber())
    stack = HyperspaceStack(
        topology_from_spec(config.topology),
        mapper=config.mapper,
        status=config.status,
        seed=config.seed,
        drop=config.drop,
        duplicate=config.duplicate,
        reliable=config.reliable,
        telemetry=bus,
        shards=shards,
        shard_backend=shard_backend,
    )
    fn, spec = _build_fn(config)
    checkpoints: List[Any] = []
    kwargs: Dict[str, Any] = {}
    if capture_checkpoints and config.ckpt_step is not None:
        kwargs["checkpoint_every"] = config.ckpt_step
        kwargs["checkpoint_sink"] = checkpoints.append
    if resume_from is not None:
        kwargs["resume_from"] = resume_from
    _result, report = stack.run_recursive(
        fn,
        None if resume_from is not None else _stack_args(config),
        max_steps=config.max_steps,
        strict=False,
        halt_on_result=not config.drain,
        fn_spec=spec if shards > 1 else None,
        **kwargs,
    )
    run = stack.last_run
    completed, verdict = _stack_verdict(config, run)
    layers = stack._compose_layers(run.machine, run.scheduler)
    close = getattr(run.machine, "close", None)
    if close is not None:
        close()
    return RunOutcome(
        mode=mode,
        completed=completed,
        verdict=verdict,
        schedule_digest=_schedule_digest(verdict, report),
        state_digest=_semantic_digest(layers),
        counters=_filter_counters(sub),
        checkpoints=checkpoints,
    )


# -- traversal (bare layer 1) ----------------------------------------------


def _traversal_visited_rpc(program, ctx, arg):
    """map_nodes RPC: read one node's visited flag inside its shard."""
    return bool(ctx.state["visited"])


def _run_traversal(config: FuzzConfig, mode: str, *, shards: int,
                   shard_backend: str) -> RunOutcome:
    from ..apps.traversal import traversal_program

    topology = topology_from_spec(config.topology)
    bus = TelemetryBus()
    sub = bus.attach(MetricsSubscriber())
    if config.drop or config.duplicate:
        faults = FaultModel(
            config.drop, config.duplicate,
            rng=substream(config.seed, "l1-faults"),
        )
    else:
        faults = ReliableLinks
    common = dict(
        seed=config.seed,
        faults=faults,
        reliability=config.reliable,
        telemetry=bus,
    )
    if shards > 1:
        machine: Machine = ShardedMachine(
            topology,
            ShardProgramSpec(traversal_program),
            shards=shards,
            partitioner=config.partitioner,
            shard_backend=shard_backend,
            **common,
        )
    else:
        machine = Machine(topology, traversal_program(), **common)
    machine.inject(0, EMPTY_MSG)
    report = machine.run(max_steps=config.max_steps)
    if isinstance(machine, ShardedMachine):
        per = machine.map_nodes(_traversal_visited_rpc)
        visited = [n for n in topology.nodes() if per[n]]
        machine.drain_telemetry()
    else:
        visited = [n for n in topology.nodes() if machine.state_of(n)["visited"]]
    verdict = {"kind": "traversal", "visited": visited}
    snapshot = machine.snapshot()
    layers: Dict[str, Any] = {"netsim": snapshot}
    if machine.reliability is not None:
        layers["reliability"] = machine.reliability.snapshot()
    close = getattr(machine, "close", None)
    if close is not None:
        close()
    return RunOutcome(
        mode=mode,
        completed=True,
        verdict=verdict,
        schedule_digest=_schedule_digest(verdict, report),
        state_digest=_semantic_digest(layers),
        counters=_filter_counters(sub),
    )


# -- the sequential references ---------------------------------------------


def reference_verdict(config: FuzzConfig) -> Optional[Any]:
    """Ground truth from the sequential solvers (coarse-verdict form).

    Returns None when no reference applies (traversal's reference — every
    node visited — depends on the topology object, so it is computed
    inline by :func:`check_reference` instead).
    """
    if config.workload == "sat":
        from ..apps.sat.dpll import dpll_solve

        res = dpll_solve(build_cnf(config), heuristic="max_occurrence")
        return {"kind": "sat", "sat": bool(res.satisfiable)}
    if config.workload == "fib":
        from ..apps.fib import sequential_fib

        return {"kind": "fib", "value": sequential_fib(config.workload_params["n"])}
    if config.workload == "nqueens":
        from ..apps.nqueens import sequential_nqueens

        found = sequential_nqueens(config.workload_params["n"]) is not None
        return {"kind": "nqueens", "found": found}
    return None


def check_reference(config: FuzzConfig, outcome: RunOutcome) -> Optional[str]:
    """Compare a completed clean/protected run against ground truth.

    Returns an error string on mismatch, None when the run agrees (or no
    reference applies).  Also validates witness structures: a SAT model
    must satisfy the formula, an N-queens placement must be valid.
    """
    if not outcome.completed:
        return None
    if config.workload == "traversal":
        n_nodes = topology_from_spec(config.topology).n_nodes
        visited = outcome.verdict["visited"]
        if visited != list(range(n_nodes)):
            return (
                f"traversal visited {len(visited)}/{n_nodes} nodes "
                f"on connected topology {config.topology}"
            )
        return None
    want = reference_verdict(config)
    got = outcome.coarse_verdict()
    if got != want:
        return f"verdict {got!r} disagrees with sequential reference {want!r}"
    if config.workload == "sat" and outcome.verdict["sat"]:
        model = dict(outcome.verdict["assignment"])
        if not build_cnf(config).is_satisfied_by(model):
            return f"claimed SAT model does not satisfy the formula: {model!r}"
    if config.workload == "nqueens" and outcome.verdict["placement"] is not None:
        from ..apps.nqueens import is_valid_placement

        n = config.workload_params["n"]
        placement = tuple(outcome.verdict["placement"])
        if not is_valid_placement(n, placement):
            return f"claimed {n}-queens placement is invalid: {placement!r}"
    return None


# -- the adapter entry point ------------------------------------------------


def run_mode(
    config: FuzzConfig,
    mode: str,
    *,
    shard_backend: str = "inline",
    baseline: Optional[RunOutcome] = None,
) -> Optional[RunOutcome]:
    """Run ``config`` in one execution mode; None when the mode is moot.

    ``resume`` needs the serial ``baseline`` outcome (it restarts from the
    first checkpoint that run captured; a run that finished before the
    first checkpoint boundary yields no checkpoint, and the mode returns
    None).  ``fault_free`` reruns the config serially on clean links.
    """
    if mode == "serial":
        capture = config.ckpt_step is not None and checkpointable(config)
        if config.workload == "traversal":
            return _run_traversal(config, mode, shards=1, shard_backend=shard_backend)
        return _run_stack(
            config, mode, shards=1, shard_backend=shard_backend,
            capture_checkpoints=capture,
        )
    if mode == "sharded":
        if config.workload == "traversal":
            return _run_traversal(
                config, mode, shards=config.shards, shard_backend=shard_backend
            )
        return _run_stack(
            config, mode, shards=config.shards, shard_backend=shard_backend
        )
    if mode == "resume":
        if baseline is None or not baseline.checkpoints:
            return None
        return _run_stack(
            config, mode, shards=1, shard_backend=shard_backend,
            resume_from=baseline.checkpoints[0],
        )
    if mode == "fault_free":
        clean = config.with_(drop=0.0, duplicate=0.0, reliable=False)
        if config.workload == "traversal":
            return _run_traversal(clean, mode, shards=1, shard_backend=shard_backend)
        return _run_stack(clean, mode, shards=1, shard_backend=shard_backend)
    raise ValueError(f"unknown execution mode {mode!r}")
