"""Mode adapters: run one :class:`FuzzConfig` in one execution mode.

Every adapter returns a :class:`RunOutcome` with the four comparands the
oracle differences across modes:

* ``verdict`` — plain data: the solver's answer (model / value /
  placement / visited set), or ``("incomplete",)`` when the step budget
  ran out first;
* ``schedule_digest`` — :func:`~repro.netsim.digest.canonical_digest` of
  the run's observable schedule (verdict + step count + computation time
  + send/deliver/drop totals + the per-step queue-depth series);
* ``state_digest`` — :func:`~repro.state.state_digest_of` over the final
  semantic layer states (netsim/sched/reliability).  The telemetry layer
  is digested separately as ``counters``: its counter values must match
  across modes, but gauge *last-seen* values depend on event-relay
  interleaving (the documented sharded relaxation), so they are excluded
  here exactly as in ``tests/test_sharded_stack.py``;
* ``counters`` — the filtered :class:`~repro.telemetry.metrics.MetricsSubscriber`
  registry (shard-only partition counters removed, gauge ``last`` popped).

The serial adapter doubles as the checkpoint producer: when the config
carries a ``ckpt_step`` it captures the in-flight checkpoints so the
resume adapter can restart from the first one and the oracle can demand
the resumed run land on the identical final outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import engine
from ..engine import INCOMPLETE, execute
from ..telemetry import TelemetryBus
from ..telemetry.metrics import MetricsSubscriber
from ..topology import topology_from_spec
from .space import FuzzConfig, build_cnf

__all__ = [
    "RunOutcome",
    "SHARD_ONLY_METRICS",
    "applicable_modes",
    "run_mode",
]

#: the sharded coordinator reports its partition through these counters; a
#: serial run has no partition, so parity comparisons must ignore them
SHARD_ONLY_METRICS = ("l1.shard_count", "l1.shard_edge_cut")


@dataclass
class RunOutcome:
    """Everything the oracle compares about one run of one mode."""

    mode: str
    completed: bool
    verdict: Any
    schedule_digest: str
    state_digest: Optional[str]
    counters: Dict[str, Dict[str, Any]]
    #: in-flight checkpoints (serial baseline only, when ckpt applies)
    checkpoints: List[Any] = field(default_factory=list)

    def coarse_verdict(self) -> Any:
        """The schedule-independent part of the verdict.

        Full verdicts embed schedule-dependent choices (which model, which
        placement); runs that legitimately take different schedules — the
        fault-free baseline of a protected faulty run, the sequential
        reference — can only be held to this.
        """
        if self.verdict == INCOMPLETE or not isinstance(self.verdict, dict):
            return self.verdict
        kind = self.verdict.get("kind")
        if kind == "sat":
            return {"kind": "sat", "sat": self.verdict["sat"]}
        if kind == "nqueens":
            return {"kind": "nqueens", "found": self.verdict["placement"] is not None}
        return self.verdict  # fib value / traversal visited set are unique


# -- applicability ----------------------------------------------------------


def checkpointable(config: FuzzConfig) -> bool:
    """Can this config run under checkpoint/resume?

    Delegates to the capability-rule table in :mod:`repro.engine` — the
    same rules that reject the combination with an exit-2 error in
    ``repro solve`` and a :class:`~repro.errors.SpecError` in the library
    (``traversal`` is a bare layer-1 program outside the layer-2 snapshot
    protocol; the ``"random"`` SAT heuristic shares one RNG stream).
    """
    return engine.checkpointable(config.to_runspec())


def shardable(config: FuzzConfig) -> bool:
    """Can this config run on the sharded backend?

    Delegates to :func:`repro.engine.shardable`: everything except the
    shared-RNG ``"random"`` SAT heuristic (each worker would hold its own
    copy and the draws would diverge).
    """
    return engine.shardable(config.to_runspec())


def applicable_modes(config: FuzzConfig) -> List[str]:
    """The execution modes the oracle will run for ``config``.

    ``serial`` is always first (it is the baseline the others are compared
    against).  ``fault_free`` and ``reference`` are comparison runs, not
    alternate backends: the former re-runs a reliability-protected faulty
    config on clean links, the latter consults the sequential solver.
    """
    modes = ["serial"]
    if config.shards > 1 and shardable(config):
        modes.append("sharded")
    if config.ckpt_step is not None and checkpointable(config):
        modes.append("resume")
    faulty = config.drop > 0.0 or config.duplicate > 0.0
    if faulty and config.reliable:
        modes.append("fault_free")
    if not faulty or config.reliable:
        modes.append("reference")
    return modes


# -- shared plumbing --------------------------------------------------------


def _filter_counters(sub: MetricsSubscriber) -> Dict[str, Dict[str, Any]]:
    metrics: Dict[str, Dict[str, Any]] = {}
    for name, value in sub.as_dict().items():
        if name in SHARD_ONLY_METRICS:
            continue
        value = dict(value)
        # a gauge's *last seen* value depends on event-relay interleaving
        # (documented relaxation); counters/histograms/peaks must match
        value.pop("last", None)
        metrics[name] = value
    return metrics


def _mode_spec(
    config: FuzzConfig,
    *,
    shards: int,
    shard_backend: str,
    capture_checkpoints: bool = False,
):
    """The :class:`~repro.engine.RunSpec` for one execution mode.

    ``to_runspec`` names the config's canonical run; the mode then pins
    the backend knobs (shard count, worker backend) and whether this run
    *produces* checkpoints — only the serial baseline captures them, and
    only when the capability rules allow it (a spec carrying
    ``checkpoint_every`` for an uncheckpointable workload would be
    rejected by :func:`~repro.engine.validate`, by design).
    """
    return config.to_runspec().with_(
        shards=shards,
        shard_backend=shard_backend,
        checkpoint_every=config.ckpt_step if capture_checkpoints else None,
    )


def _run_stack(
    config: FuzzConfig,
    mode: str,
    *,
    shards: int,
    shard_backend: str,
    capture_checkpoints: bool = False,
    resume_from: Any = None,
) -> RunOutcome:
    """Run a layer-5 workload through :func:`repro.engine.execute`."""
    bus = TelemetryBus()
    sub = bus.attach(MetricsSubscriber())
    spec = _mode_spec(
        config, shards=shards, shard_backend=shard_backend,
        capture_checkpoints=capture_checkpoints,
    )
    checkpoints: List[Any] = []
    run = execute(
        spec,
        telemetry=bus,
        checkpoint_sink=checkpoints.append if capture_checkpoints else None,
        resume_from=resume_from,
        want_state_digest=True,
    )
    return RunOutcome(
        mode=mode,
        completed=run.completed,
        verdict=run.verdict,
        schedule_digest=run.schedule_digest(),
        state_digest=run.semantic_digest,
        counters=_filter_counters(sub),
        checkpoints=checkpoints,
    )


# -- traversal (bare layer 1) ----------------------------------------------


def _run_traversal(config: FuzzConfig, mode: str, *, shards: int,
                   shard_backend: str) -> RunOutcome:
    bus = TelemetryBus()
    sub = bus.attach(MetricsSubscriber())
    spec = _mode_spec(config, shards=shards, shard_backend=shard_backend)
    run = execute(spec, telemetry=bus, want_state_digest=True)
    return RunOutcome(
        mode=mode,
        completed=run.completed,
        verdict=run.verdict,
        schedule_digest=run.schedule_digest(),
        state_digest=run.semantic_digest,
        counters=_filter_counters(sub),
    )


# -- the sequential references ---------------------------------------------


def reference_verdict(config: FuzzConfig) -> Optional[Any]:
    """Ground truth from the sequential solvers (coarse-verdict form).

    Returns None when no reference applies (traversal's reference — every
    node visited — depends on the topology object, so it is computed
    inline by :func:`check_reference` instead).
    """
    if config.workload == "sat":
        from ..apps.sat.dpll import dpll_solve

        res = dpll_solve(build_cnf(config), heuristic="max_occurrence")
        return {"kind": "sat", "sat": bool(res.satisfiable)}
    if config.workload == "fib":
        from ..apps.fib import sequential_fib

        return {"kind": "fib", "value": sequential_fib(config.workload_params["n"])}
    if config.workload == "nqueens":
        from ..apps.nqueens import sequential_nqueens

        found = sequential_nqueens(config.workload_params["n"]) is not None
        return {"kind": "nqueens", "found": found}
    return None


def check_reference(config: FuzzConfig, outcome: RunOutcome) -> Optional[str]:
    """Compare a completed clean/protected run against ground truth.

    Returns an error string on mismatch, None when the run agrees (or no
    reference applies).  Also validates witness structures: a SAT model
    must satisfy the formula, an N-queens placement must be valid.
    """
    if not outcome.completed:
        return None
    if config.workload == "traversal":
        n_nodes = topology_from_spec(config.topology).n_nodes
        visited = outcome.verdict["visited"]
        if visited != list(range(n_nodes)):
            return (
                f"traversal visited {len(visited)}/{n_nodes} nodes "
                f"on connected topology {config.topology}"
            )
        return None
    want = reference_verdict(config)
    got = outcome.coarse_verdict()
    if got != want:
        return f"verdict {got!r} disagrees with sequential reference {want!r}"
    if config.workload == "sat" and outcome.verdict["sat"]:
        model = dict(outcome.verdict["assignment"])
        if not build_cnf(config).is_satisfied_by(model):
            return f"claimed SAT model does not satisfy the formula: {model!r}"
    if config.workload == "nqueens" and outcome.verdict["placement"] is not None:
        from ..apps.nqueens import is_valid_placement

        n = config.workload_params["n"]
        placement = tuple(outcome.verdict["placement"])
        if not is_valid_placement(n, placement):
            return f"claimed {n}-queens placement is invalid: {placement!r}"
    return None


# -- the adapter entry point ------------------------------------------------


def run_mode(
    config: FuzzConfig,
    mode: str,
    *,
    shard_backend: str = "inline",
    baseline: Optional[RunOutcome] = None,
) -> Optional[RunOutcome]:
    """Run ``config`` in one execution mode; None when the mode is moot.

    ``resume`` needs the serial ``baseline`` outcome (it restarts from the
    first checkpoint that run captured; a run that finished before the
    first checkpoint boundary yields no checkpoint, and the mode returns
    None).  ``fault_free`` reruns the config serially on clean links.
    """
    if mode == "serial":
        capture = config.ckpt_step is not None and checkpointable(config)
        if config.workload == "traversal":
            return _run_traversal(config, mode, shards=1, shard_backend=shard_backend)
        return _run_stack(
            config, mode, shards=1, shard_backend=shard_backend,
            capture_checkpoints=capture,
        )
    if mode == "sharded":
        if config.workload == "traversal":
            return _run_traversal(
                config, mode, shards=config.shards, shard_backend=shard_backend
            )
        return _run_stack(
            config, mode, shards=config.shards, shard_backend=shard_backend
        )
    if mode == "resume":
        if baseline is None or not baseline.checkpoints:
            return None
        return _run_stack(
            config, mode, shards=1, shard_backend=shard_backend,
            resume_from=baseline.checkpoints[0],
        )
    if mode == "fault_free":
        clean = config.with_(drop=0.0, duplicate=0.0, reliable=False)
        if config.workload == "traversal":
            return _run_traversal(clean, mode, shards=1, shard_backend=shard_backend)
        return _run_stack(clean, mode, shards=1, shard_backend=shard_backend)
    raise ValueError(f"unknown execution mode {mode!r}")
