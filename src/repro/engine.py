"""The run engine: one declarative spec, one validator, one executor.

The paper's central claim is layer substitutability — the same solver
program runs unchanged across interconnects, mappers and execution
backends.  This module is where that claim becomes a single funnel:

* :class:`RunSpec` — a frozen, JSON-round-trippable description of one
  run: workload + topology + mapper/status + heuristic + fault schedule
  + reliability + checkpoint policy + shard backend, with a schema
  version.  Anything a run needs that *cannot* be JSON (a pre-built
  topology object, a telemetry bus, a checkpoint sink callable) is a
  runtime attachment passed to :func:`execute` instead.
* :func:`validate` — the one capability-rule table.  The CLI, the
  :func:`~repro.apps.sat.distributed.solve_on_machine` shim and the
  conformance fuzzer all reject a bad configuration with the *same*
  message, because they all reject it here.
* :func:`execute` — the only place in the library where a
  :class:`~repro.stack.HyperspaceStack` (or a bare layer-1 machine for
  the ``traversal`` workload) is assembled.  ``tools/check_entrypoints.py``
  enforces this in CI.

Checkpoint headers embed the canonical spec JSON (``meta["runspec"]``),
so ``repro solve --resume`` rebuilds the original run through the same
funnel it was started from — see ``docs/runspec.md``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from .errors import SpecError, TopologyError
from .netsim import EMPTY_MSG, Machine, ShardProgramSpec, ShardedMachine
from .netsim.digest import canonical_digest
from .netsim.faults import FaultModel, ReliableLinks
from .rng import substream
from .stack import HyperspaceStack
from .state import state_digest_of
from .topology import Topology, topology_from_spec

__all__ = [
    "INCOMPLETE",
    "RULES",
    "RunResult",
    "RunSpec",
    "SCHEMA_VERSION",
    "SpecError",
    "WORKLOAD_NAMES",
    "checkpoint_blockers",
    "checkpointable",
    "cnf_of",
    "execute",
    "schedule_digest",
    "shard_blockers",
    "shardable",
    "validate",
    "violations",
]

#: the RunSpec wire-format version; bump when a field changes meaning
SCHEMA_VERSION = 1

#: workloads the engine can build a layer-5 function for.  ``custom``
#: marks a run whose function is a runtime attachment (``execute(fn=...)``);
#: such specs execute but their checkpoint headers cannot rebuild them.
WORKLOAD_NAMES = ("sat", "fib", "nqueens", "sumrec", "traversal", "custom")

#: verdict marker for runs that exhausted max_steps without an answer
INCOMPLETE: Tuple[str] = ("incomplete",)

_SIMPLIFY_NAMES = ("none", "single", "fixpoint")
_HINT_MODES = (None, "clauses", "vars")
_SHARE_LOADS = ("queue", "invocations")
_QUEUE_POLICIES = ("fifo", "lifo", "random")
_PARTITIONER_NAMES = ("strip", "grid", "greedy")
_SHARD_BACKENDS = ("auto", "process", "inline")


# -- the spec ---------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One run of one workload on one simulated machine, as plain data.

    Every field is JSON-safe; :meth:`to_dict`/:meth:`from_dict` round-trip
    losslessly and reject unknown fields, so a spec written into a
    checkpoint header or a conformance artifact today is still readable
    (or cleanly refused, by version) tomorrow.  See ``docs/runspec.md``
    for the field table and the validation rules.
    """

    version: int = SCHEMA_VERSION
    # -- workload (layer 5)
    workload: str = "fib"
    workload_params: Dict[str, Any] = field(default_factory=lambda: {"n": 5})
    # -- machine (layer 1) + placement (layer 3)
    topology: Optional[str] = None
    mapper: str = "rr"
    status: Optional[int] = None
    # -- recursion/scheduling knobs (layers 2-4)
    cancellation: bool = False
    forward_hops: int = 0
    share_threshold: Optional[int] = None
    share_load: str = "queue"
    scheduler_budget: Optional[int] = None
    queue_policy: str = "fifo"
    queue_capacity: Optional[int] = None
    record_queue_depths: bool = False
    # -- SAT solver knobs (ignored by other workloads)
    heuristic: str = "max_occurrence"
    simplify: str = "single"
    hint_mode: Optional[str] = None
    # -- run protocol
    seed: int = 0
    trigger_node: int = 0
    max_steps: int = 1_000_000
    drain: bool = True
    strict: bool = True
    # -- fault schedule + layer-1.5 reliability
    latency: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    reliable: bool = False
    retry_limit: Optional[int] = None
    # -- checkpoint policy
    checkpoint_every: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    # -- sharded backend
    shards: int = 1
    partitioner: str = "strip"
    shard_backend: str = "auto"
    # -- bandwidth accounting (SAT envelope sizer)
    sat_sizing: bool = False

    # -- (de)serialisation ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-encodable; checkpoint-header payload)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["workload_params"] = dict(self.workload_params)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict`; unknown fields and unsupported
        schema versions are rejected (missing fields take defaults)."""
        if not isinstance(data, dict):
            raise SpecError(f"RunSpec data must be a dict, got {type(data).__name__}")
        known = set(cls.__dataclass_fields__)
        extra = sorted(set(data) - known)
        if extra:
            raise SpecError(f"unknown RunSpec fields: {extra}")
        version = data.get("version", SCHEMA_VERSION)
        if not isinstance(version, int) or not 1 <= version <= SCHEMA_VERSION:
            raise SpecError(
                f"unsupported RunSpec schema version {version!r} "
                f"(this build understands 1..{SCHEMA_VERSION})"
            )
        return cls(**data)

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON form; ``from_json(to_json(spec)) == spec``."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"RunSpec JSON does not parse: {exc}") from exc
        return cls.from_dict(data)

    def canonical_json(self) -> str:
        """Minimal sorted-key JSON: equal specs, equal bytes."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Stable hash of the canonical form (spec identity for parity tests)."""
        return canonical_digest(self.to_dict())

    def with_(self, **changes: Any) -> "RunSpec":
        """A copy with ``changes`` applied."""
        unknown = sorted(set(changes) - set(self.__dataclass_fields__))
        if unknown:
            raise SpecError(f"unknown RunSpec fields: {unknown}")
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human summary (progress lines, error context)."""
        parts = [f"{self.workload}{self.workload_params}",
                 self.topology or "<topology object>", f"mapper={self.mapper}"]
        if self.workload == "sat":
            parts.append(f"heur={self.heuristic}/{self.simplify}")
        if self.drop or self.duplicate:
            guard = "reliable" if self.reliable else "unprotected"
            parts.append(f"faults={self.drop}/{self.duplicate}({guard})")
        if self.shards > 1:
            parts.append(f"shards={self.shards}({self.partitioner})")
        if self.checkpoint_every is not None:
            parts.append(f"ckpt@{self.checkpoint_every}")
        parts.append(f"seed={self.seed}")
        return " ".join(parts)


def cnf_of(params: Dict[str, Any]):
    """Materialise a ``sat`` spec's CNF formula from its workload params.

    Either an explicit formula (``{"clauses": [[...]], "num_vars": N}``,
    used verbatim) or a generator recipe (``{"num_vars", "num_clauses",
    "formula_seed"}`` through :func:`~repro.apps.sat.generator.uniform_random_ksat`,
    unfiltered so both SAT and UNSAT instances occur).  Deterministic:
    the formula is a pure function of the params.
    """
    from .apps.sat.cnf import CNF
    from .apps.sat.generator import uniform_random_ksat

    if "clauses" in params:
        return CNF([tuple(c) for c in params["clauses"]], params["num_vars"])
    rng = random.Random(params["formula_seed"])
    k = min(3, params["num_vars"])
    return uniform_random_ksat(params["num_vars"], params["num_clauses"], k, rng)


# -- the capability-rule table ----------------------------------------------

#: why the 'random' SAT heuristic cannot be checkpointed (shared RNG stream)
_RANDOM_CKPT_MSG = (
    "the 'random' branching heuristic shares one RNG stream across "
    "invocations and cannot be checkpointed/resumed deterministically; "
    "use a deterministic heuristic (e.g. 'max_occurrence')"
)
#: why the 'random' SAT heuristic cannot run sharded (per-worker RNG copies)
_RANDOM_SHARD_MSG = (
    "the 'random' branching heuristic shares one RNG stream across "
    "invocations; under the sharded backend each worker would hold "
    "its own copy and the draws would diverge from a serial run — "
    "use a deterministic heuristic (e.g. 'max_occurrence')"
)
#: why work sharing cannot run sharded (mirrors the HyperspaceStack guard)
_SHARE_SHARD_MSG = (
    "work sharing (share_threshold) reads live inbox depths and "
    "is not supported with shards > 1"
)
#: why traversal cannot be checkpointed (bare layer-1 program)
_TRAVERSAL_CKPT_MSG = (
    "the 'traversal' workload is a bare layer-1 program: node program "
    "state lives outside the layer-2 snapshot protocol, so it cannot be "
    "checkpointed or resumed"
)


def checkpoint_blockers(spec: RunSpec) -> List[str]:
    """Why this spec could not run under checkpoint/resume ([] = it can)."""
    blockers = []
    if spec.workload == "traversal":
        blockers.append(_TRAVERSAL_CKPT_MSG)
    if spec.workload == "sat" and spec.heuristic == "random":
        blockers.append(_RANDOM_CKPT_MSG)
    return blockers


def shard_blockers(spec: RunSpec) -> List[str]:
    """Why this spec could not run on the sharded backend ([] = it can)."""
    blockers = []
    if spec.workload == "sat" and spec.heuristic == "random":
        blockers.append(_RANDOM_SHARD_MSG)
    if spec.share_threshold is not None:
        blockers.append(_SHARE_SHARD_MSG)
    return blockers


def checkpointable(spec: RunSpec) -> bool:
    """Can this spec run under checkpoint/resume?"""
    return not checkpoint_blockers(spec)


def shardable(spec: RunSpec) -> bool:
    """Can this spec run on the sharded backend?"""
    return not shard_blockers(spec)


class Rule(NamedTuple):
    """One row of the validation table: a code, a doc line, a predicate.

    ``check(spec)`` returns an error message, or None when the rule holds.
    The docs page renders this table directly (``docs/runspec.md``)."""

    code: str
    doc: str
    check: Callable[[RunSpec], Optional[str]]


def _enum(value: Any, allowed: Tuple[Any, ...], what: str) -> Optional[str]:
    if value not in allowed:
        return f"unknown {what} {value!r}; expected one of {allowed}"
    return None


def _check_workload_params(spec: RunSpec) -> Optional[str]:
    params = spec.workload_params
    if not isinstance(params, dict):
        return f"workload_params must be a dict, got {type(params).__name__}"
    if spec.workload in ("fib", "nqueens", "sumrec"):
        n = params.get("n")
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            return (
                f"workload {spec.workload!r} needs workload_params"
                f"['n'] (a non-negative int), got {params!r}"
            )
    if spec.workload == "sat":
        explicit = "clauses" in params and "num_vars" in params
        recipe = all(k in params for k in ("num_vars", "num_clauses", "formula_seed"))
        if not (explicit or recipe):
            return (
                "workload 'sat' needs workload_params {'clauses', 'num_vars'} "
                "(explicit formula) or {'num_vars', 'num_clauses', "
                "'formula_seed'} (generator recipe), got "
                f"{sorted(params)!r}"
            )
    return None


def _check_topology(spec: RunSpec) -> Optional[str]:
    if spec.topology is None:
        return None
    try:
        topo = topology_from_spec(spec.topology)
    except TopologyError as exc:
        return f"bad topology spec {spec.topology!r}: {exc}"
    if not 0 <= spec.trigger_node < topo.n_nodes:
        return (
            f"trigger_node {spec.trigger_node} out of range for "
            f"{spec.topology!r} ({topo.n_nodes} nodes)"
        )
    return None


def _check_probability(name: str) -> Callable[[RunSpec], Optional[str]]:
    def check(spec: RunSpec) -> Optional[str]:
        value = getattr(spec, name)
        if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
            return f"{name} must be a probability in [0, 1], got {value!r}"
        return None

    return check


def _check_positive(name: str, *, optional: bool = False,
                    floor: int = 1) -> Callable[[RunSpec], Optional[str]]:
    def check(spec: RunSpec) -> Optional[str]:
        value = getattr(spec, name)
        if optional and value is None:
            return None
        if not isinstance(value, int) or isinstance(value, bool) or value < floor:
            kind = f"an int >= {floor}" if not optional else f"None or an int >= {floor}"
            return f"{name} must be {kind}, got {value!r}"
        return None

    return check


def _check_sat_knobs(spec: RunSpec) -> Optional[str]:
    if spec.workload != "sat":
        return None
    from .apps.sat.heuristics import HEURISTIC_NAMES

    if spec.heuristic not in HEURISTIC_NAMES + ("custom",):
        return (
            f"unknown heuristic {spec.heuristic!r}; expected one of "
            f"{HEURISTIC_NAMES} (or 'custom' with execute(heuristic_fn=...))"
        )
    err = _enum(spec.simplify, _SIMPLIFY_NAMES, "simplify mode")
    if err:
        return err
    return _enum(spec.hint_mode, _HINT_MODES, "hint_mode")


def _check_checkpoint_policy(spec: RunSpec) -> Optional[str]:
    if spec.checkpoint_dir is not None and spec.checkpoint_every is None:
        # mirror the CheckpointError text run_recursive would raise
        return "checkpoint_dir/checkpoint_sink need checkpoint_every"
    return None


def _check_checkpoint_capability(spec: RunSpec) -> Optional[str]:
    if spec.checkpoint_every is None:
        return None
    blockers = checkpoint_blockers(spec)
    return blockers[0] if blockers else None


def _check_shard_capability(spec: RunSpec) -> Optional[str]:
    if spec.shards <= 1:
        return None
    blockers = shard_blockers(spec)
    return blockers[0] if blockers else None


def _check_retry_limit(spec: RunSpec) -> Optional[str]:
    if spec.retry_limit is None:
        return None
    if not isinstance(spec.retry_limit, int) or spec.retry_limit < 0:
        return f"retry_limit must be None or an int >= 0, got {spec.retry_limit!r}"
    if not spec.reliable:
        return "retry_limit needs reliable=True (it configures the layer-1.5 protocol)"
    return None


#: the one capability-rule table: every entry point rejects through this
RULES: Tuple[Rule, ...] = (
    Rule("workload", "workload is a known registry name",
         lambda s: _enum(s.workload, WORKLOAD_NAMES, "workload")),
    Rule("workload-params", "workload_params carry what the workload needs",
         _check_workload_params),
    Rule("topology", "topology spec (when given) parses; trigger_node in range",
         _check_topology),
    Rule("mapper", "mapper is a known registry name",
         lambda s: _enum(s.mapper, ("rr", "lbn", "random", "hint"), "mapper")),
    Rule("status", "status is None or an int threshold",
         lambda s: None if s.status is None or
         (isinstance(s.status, int) and not isinstance(s.status, bool))
         else f"status must be None or an int threshold, got {s.status!r}"),
    Rule("sat-knobs", "heuristic/simplify/hint_mode are valid (sat only)",
         _check_sat_knobs),
    Rule("share-load", "share_load is 'queue' or 'invocations'",
         lambda s: _enum(s.share_load, _SHARE_LOADS, "share_load")),
    Rule("queue-policy", "queue_policy is fifo/lifo/random",
         lambda s: _enum(s.queue_policy, _QUEUE_POLICIES, "queue_policy")),
    Rule("queue-capacity", "queue_capacity is None or >= 1",
         _check_positive("queue_capacity", optional=True)),
    Rule("scheduler-budget", "scheduler_budget is None or >= 1",
         _check_positive("scheduler_budget", optional=True)),
    Rule("share-threshold", "share_threshold is None or >= 0",
         _check_positive("share_threshold", optional=True, floor=0)),
    Rule("forward-hops", "forward_hops is >= 0",
         _check_positive("forward_hops", floor=0)),
    Rule("latency", "latency is >= 0", _check_positive("latency", floor=0)),
    Rule("max-steps", "max_steps is >= 1", _check_positive("max_steps")),
    Rule("drop", "drop is a probability in [0, 1]", _check_probability("drop")),
    Rule("duplicate", "duplicate is a probability in [0, 1]",
         _check_probability("duplicate")),
    Rule("retry-limit", "retry_limit is None, or >= 0 with reliable=True",
         _check_retry_limit),
    Rule("checkpoint-every", "checkpoint_every is None or >= 1",
         _check_positive("checkpoint_every", optional=True)),
    Rule("checkpoint-policy", "checkpoint_dir needs checkpoint_every",
         _check_checkpoint_policy),
    Rule("checkpoint-capability",
         "checkpointing excludes traversal and the shared-RNG 'random' heuristic",
         _check_checkpoint_capability),
    Rule("shards", "shards is >= 1", _check_positive("shards")),
    Rule("partitioner", "partitioner is a known registry name",
         lambda s: _enum(s.partitioner, _PARTITIONER_NAMES, "partitioner")),
    Rule("shard-backend", "shard_backend is auto/process/inline",
         lambda s: _enum(s.shard_backend, _SHARD_BACKENDS, "shard_backend")),
    Rule("shard-capability",
         "sharding excludes the shared-RNG 'random' heuristic and work sharing",
         _check_shard_capability),
)


def violations(spec: RunSpec) -> List[Tuple[str, str]]:
    """Every ``(rule_code, message)`` the spec breaks, in table order."""
    found = []
    for rule in RULES:
        message = rule.check(spec)
        if message is not None:
            found.append((rule.code, message))
    return found


def validate(spec: RunSpec) -> RunSpec:
    """Raise :class:`SpecError` on the first broken rule; return the spec.

    The single gate all entry points (CLI, ``solve_on_machine`` shim,
    conformance fuzzer, checkpoint resume) reject configurations through,
    so they all produce identical error messages.
    """
    broken = violations(spec)
    if broken:
        raise SpecError(broken[0][1])
    return spec


# -- the result -------------------------------------------------------------


@dataclass
class RunResult:
    """Everything :func:`execute` can tell you about one finished run.

    ``verdict`` is plain comparable data (the conformance oracle's
    comparand); ``results`` is the raw layer-5 result list.  The two state
    digests differ only when a telemetry bus was attached: ``state_digest``
    covers every composed layer (what ``solve_on_machine`` reports),
    ``semantic_digest`` excludes the telemetry layer (what cross-mode
    parity compares — gauge last-values depend on event-relay
    interleaving).  Both are None unless the run checkpointed/resumed or
    the caller asked (``want_state_digest=True``)."""

    spec: RunSpec
    completed: bool
    results: List[Any]
    verdict: Any
    report: Any
    engine_stats: Any = None
    link_stats: Any = None
    state_digest: Optional[str] = None
    semantic_digest: Optional[str] = None
    telemetry: Any = None

    @property
    def result(self) -> Any:
        """The first (root) result, or None when the run was incomplete."""
        return self.results[0] if self.results else None

    def schedule_digest(self) -> str:
        """Digest of the observable schedule (verdict + report totals)."""
        return schedule_digest(self.verdict, self.report)


def schedule_digest(verdict: Any, report: Any) -> str:
    """Canonical digest of one run's observable schedule.

    Verdict + step count + computation time + send/deliver/drop totals +
    the per-step queue-depth series: what the conformance oracle requires
    to be bit-identical across execution modes.
    """
    return canonical_digest({
        "verdict": verdict,
        "steps": report.steps,
        "computation_time": report.computation_time,
        "sent": report.sent_total,
        "delivered": report.delivered_total,
        "dropped": report.dropped_total,
        "queued": [int(q) for q in report.queued_series],
    })


# -- execution --------------------------------------------------------------


def _header_spec(spec: RunSpec) -> RunSpec:
    """The spec a checkpoint header embeds.

    Shard layout is normalised away: checkpoints never record the shard
    count (a sharded run resumes serially and vice versa), so the header
    describes the canonical serial run.
    """
    return spec.with_(shards=1, partitioner="strip", shard_backend="auto")


def _resolve_reliability(spec: RunSpec, reliability: Any) -> Any:
    if reliability is not None:
        return reliability
    if spec.retry_limit is not None:
        from .reliability import ReliabilityConfig

        return ReliabilityConfig(retry_limit=spec.retry_limit)
    return spec.reliable


def _resolve_workload(
    spec: RunSpec,
    *,
    sharded: bool,
    heuristic_fn: Any,
    fn: Any,
    args: Any,
    fn_spec: Any,
) -> Tuple[Any, Any, Any]:
    """The layer-5 function, its argument and (sharded) picklable recipe."""
    if spec.workload == "sat":
        from .apps.sat.distributed import SatProblem, make_solve_sat

        heuristic: Any = spec.heuristic
        if spec.heuristic == "custom":
            if heuristic_fn is None:
                raise SpecError(
                    "heuristic 'custom' needs execute(heuristic_fn=...)"
                )
            heuristic = heuristic_fn
        kwargs = dict(hint_mode=spec.hint_mode, simplify=spec.simplify)
        run_fn = make_solve_sat(heuristic, rng=random.Random(spec.seed), **kwargs)
        run_spec = None
        if sharded:
            # workers rebuild the generator function from this picklable recipe
            run_spec = ShardProgramSpec(
                make_solve_sat, heuristic, rng=random.Random(spec.seed), **kwargs
            )
        return run_fn, SatProblem(cnf_of(spec.workload_params)), run_spec
    if spec.workload == "fib":
        from .apps.fib import fib

        return fib, spec.workload_params["n"], None  # module-level: pickles
    if spec.workload == "nqueens":
        from .apps.nqueens import QueensProblem, nqueens

        return nqueens, QueensProblem(spec.workload_params["n"]), None
    if spec.workload == "sumrec":
        from .apps.sumrec import calculate_sum

        return calculate_sum, spec.workload_params["n"], None
    # custom: the function is a runtime attachment
    if fn is None:
        raise SpecError("workload 'custom' needs execute(fn=...)")
    return fn, args, fn_spec


def _verdict_of(spec: RunSpec, results: List[Any]) -> Tuple[bool, Any]:
    """Plain comparable data from the raw layer-5 results."""
    if not results:
        return False, INCOMPLETE
    raw = results[0]
    if spec.workload == "sat":
        return True, {
            "kind": "sat",
            "sat": raw is not None,
            "assignment": sorted(dict(raw).items()) if raw is not None else None,
        }
    if spec.workload == "fib":
        return True, {"kind": "fib", "value": raw}
    if spec.workload == "nqueens":
        return True, {
            "kind": "nqueens",
            "placement": list(raw) if raw is not None else None,
        }
    if spec.workload == "sumrec":
        return True, {"kind": "sumrec", "value": raw}
    return True, {"kind": "custom", "value": raw}


def _traversal_visited_rpc(program, ctx, arg):
    """map_nodes RPC: read one node's visited flag inside its shard."""
    return bool(ctx.state["visited"])


def _execute_traversal(
    spec: RunSpec,
    topo: Topology,
    *,
    telemetry: Any,
    reliability: Any,
    want_digest: bool,
) -> RunResult:
    """The bare layer-1 path: no stack, just a machine and a flood."""
    from .apps.traversal import traversal_program

    if spec.drop or spec.duplicate:
        faults = FaultModel(
            spec.drop, spec.duplicate, rng=substream(spec.seed, "l1-faults")
        )
    else:
        faults = ReliableLinks
    common = dict(
        seed=spec.seed,
        faults=faults,
        reliability=reliability,
        telemetry=telemetry,
        queue_policy=spec.queue_policy,
        queue_capacity=spec.queue_capacity,
        latency=spec.latency,
    )
    n_shards = min(spec.shards, topo.n_nodes)
    if n_shards > 1:
        machine: Machine = ShardedMachine(
            topo,
            ShardProgramSpec(traversal_program),
            shards=n_shards,
            partitioner=spec.partitioner,
            shard_backend=spec.shard_backend,
            **common,
        )
    else:
        machine = Machine(topo, traversal_program(), **common)
    machine.inject(spec.trigger_node, EMPTY_MSG)
    report = machine.run(max_steps=spec.max_steps)
    if isinstance(machine, ShardedMachine):
        per = machine.map_nodes(_traversal_visited_rpc)
        visited = [n for n in topo.nodes() if per[n]]
        machine.drain_telemetry()
    else:
        visited = [n for n in topo.nodes() if machine.state_of(n)["visited"]]
    verdict = {"kind": "traversal", "visited": visited}
    state_digest = None
    if want_digest:
        layers: Dict[str, Any] = {"netsim": machine.snapshot()}
        if machine.reliability is not None:
            layers["reliability"] = machine.reliability.snapshot()
        state_digest = state_digest_of(layers)
    rel = machine.reliability
    link_stats = rel.stats if rel is not None else None
    close = getattr(machine, "close", None)
    if close is not None:
        close()
    return RunResult(
        spec=spec,
        completed=True,
        results=[],
        verdict=verdict,
        report=report,
        link_stats=link_stats,
        # a traversal run has no telemetry layer in its composed state,
        # so the full and semantic digests coincide
        state_digest=state_digest,
        semantic_digest=state_digest,
        telemetry=telemetry,
    )


def execute(
    spec: RunSpec,
    *,
    topology: Optional[Topology] = None,
    telemetry: Any = None,
    size_fn: Optional[Callable[[Any], int]] = None,
    checkpoint_sink: Optional[Callable[[Any], None]] = None,
    checkpoint_meta: Optional[Dict[str, Any]] = None,
    resume_from: Any = None,
    reliability: Any = None,
    heuristic_fn: Any = None,
    mapper_factory: Any = None,
    status_factory: Any = None,
    fn: Any = None,
    args: Any = None,
    fn_spec: Any = None,
    want_state_digest: Optional[bool] = None,
) -> RunResult:
    """Validate ``spec`` and run it; the one run entry point.

    Everything declarative lives in the spec.  The keyword arguments are
    the runtime attachments a JSON spec cannot carry:

    * ``topology`` — a pre-built :class:`~repro.topology.Topology`,
      overriding (or standing in for a missing) ``spec.topology`` string;
    * ``telemetry`` — a :class:`~repro.telemetry.TelemetryBus` (or
      ``True`` for a fresh one, reachable as ``result.telemetry``);
    * ``size_fn`` — a message-size model (``spec.sat_sizing`` builds the
      standard SAT envelope sizer when this is omitted);
    * ``checkpoint_sink`` / ``resume_from`` — in-memory checkpoint
      capture and resume (file-based policy is in the spec);
    * ``checkpoint_meta`` — extra header entries merged next to the
      canonical ``runspec`` header;
    * ``reliability`` — a configured
      :class:`~repro.reliability.ReliabilityConfig` overriding the
      spec's ``reliable``/``retry_limit`` pair;
    * ``heuristic_fn`` / ``mapper_factory`` / ``status_factory`` —
      callable substitutes for the registry names (the spec then says
      ``"custom"`` / keeps its name for the record);
    * ``fn`` / ``args`` / ``fn_spec`` — the ``custom`` workload's
      generator function, root argument and picklable shard recipe;
    * ``want_state_digest`` — force state-digest computation on or off
      (default: computed exactly when the run checkpoints or resumes).

    Returns a :class:`RunResult`; raises :class:`SpecError` (a broken
    rule), :class:`~repro.errors.SimulationError` (incomplete strict run)
    or :class:`~repro.errors.CheckpointError` (bad resume state) like the
    layers it assembles.
    """
    validate(spec)
    if telemetry is True:
        from .telemetry import TelemetryBus

        telemetry = TelemetryBus()
    topo = topology
    if topo is None:
        if spec.topology is None:
            raise SpecError(
                "spec has no topology string; pass a Topology object via "
                "execute(..., topology=...)"
            )
        topo = topology_from_spec(spec.topology)
    if not 0 <= spec.trigger_node < topo.n_nodes:
        raise SpecError(
            f"trigger_node {spec.trigger_node} out of range for "
            f"{topo.describe()} ({topo.n_nodes} nodes)"
        )
    rel = _resolve_reliability(spec, reliability)
    if size_fn is None and spec.sat_sizing:
        from .apps.sat import sat_content_size
        from .netsim import make_envelope_sizer

        size_fn = make_envelope_sizer(sat_content_size)

    checkpointing = spec.checkpoint_every is not None or resume_from is not None
    want = want_state_digest if want_state_digest is not None else checkpointing

    if spec.workload == "traversal":
        return _execute_traversal(
            spec, topo, telemetry=telemetry, reliability=rel, want_digest=want
        )

    n_shards = min(spec.shards, topo.n_nodes)
    stack = HyperspaceStack(
        topo,
        mapper=mapper_factory if mapper_factory is not None else spec.mapper,
        status=status_factory if status_factory is not None else spec.status,
        cancellation=spec.cancellation,
        forward_hops=spec.forward_hops,
        share_threshold=spec.share_threshold,
        share_load=spec.share_load,
        seed=spec.seed,
        scheduler_budget=spec.scheduler_budget,
        queue_policy=spec.queue_policy,
        queue_capacity=spec.queue_capacity,
        record_queue_depths=spec.record_queue_depths,
        size_fn=size_fn,
        latency=spec.latency,
        drop=spec.drop,
        duplicate=spec.duplicate,
        reliable=rel,
        telemetry=telemetry,
        shards=n_shards,
        shard_partitioner=spec.partitioner,
        shard_backend=spec.shard_backend,
    )
    run_fn, run_args, run_fn_spec = _resolve_workload(
        spec, sharded=n_shards > 1, heuristic_fn=heuristic_fn,
        fn=fn, args=args, fn_spec=fn_spec,
    )
    meta: Optional[Dict[str, Any]] = None
    if spec.checkpoint_every is not None:
        # the canonical header: `repro solve --resume` rebuilds the run
        # from this spec through this same function
        meta = dict(checkpoint_meta or {})
        meta.setdefault("runspec", _header_spec(spec).to_dict())
    try:
        _raw, report = stack.run_recursive(
            run_fn,
            None if resume_from is not None else run_args,
            trigger_node=spec.trigger_node,
            max_steps=spec.max_steps,
            strict=spec.strict,
            halt_on_result=not spec.drain,
            checkpoint_every=spec.checkpoint_every,
            checkpoint_dir=spec.checkpoint_dir,
            checkpoint_sink=checkpoint_sink,
            checkpoint_meta=meta,
            resume_from=resume_from,
            fn_spec=run_fn_spec,
        )
    except BaseException:
        # a strict run that timed out (or a mid-run error) must not leak
        # sharded worker processes
        last = stack.last_run
        if last is not None:
            close = getattr(last.machine, "close", None)
            if close is not None:
                close()
        raise
    run = stack.last_run
    assert run is not None
    completed, verdict = _verdict_of(spec, run.results)
    state_digest = semantic_digest = None
    if want:
        layers = stack._compose_layers(run.machine, run.scheduler)
        state_digest = state_digest_of(layers)
        semantic_digest = state_digest_of(
            {k: v for k, v in layers.items() if k != "telemetry"}
        )
    rel_layer = run.machine.reliability
    link_stats = rel_layer.stats if rel_layer is not None else None
    close = getattr(run.machine, "close", None)
    if close is not None:
        close()
    return RunResult(
        spec=spec,
        completed=completed,
        results=list(run.results),
        verdict=verdict,
        report=report,
        engine_stats=run.engine_stats,
        link_stats=link_stats,
        state_digest=state_digest,
        semantic_digest=semantic_digest,
        telemetry=telemetry,
    )
