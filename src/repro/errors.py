"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the stack may raise with a single ``except`` clause while
still being able to discriminate by layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(ReproError):
    """Invalid topology construction or node/coordinate out of range."""


class SimulationError(ReproError):
    """Layer 1: illegal operation in the message-passing backend."""


class AdjacencyError(SimulationError):
    """Layer 1: attempted to send a message to a non-neighbour node."""


class QueueOverflowError(SimulationError):
    """Layer 1: a finite-capacity inbox overflowed."""


class ReliabilityError(SimulationError):
    """Layer 1.5: reliable-delivery misconfiguration or retry-cap exhaustion."""


class CheckpointError(ReproError):
    """Snapshot/restore protocol violation: incompatible configuration,
    corrupted or truncated checkpoint file, or non-replayable state."""


class SchedulingError(ReproError):
    """Layer 2: process registration or delivery failure."""


class MappingError(ReproError):
    """Layer 3: ticket misuse or mapper failure."""


class UnknownTicketError(MappingError):
    """Layer 3: a reply quoted a ticket this node never issued."""


class RecursionLayerError(ReproError):
    """Layer 4: protocol violation by a recursive application."""


class ProtocolError(RecursionLayerError):
    """Layer 4: the application generator yielded an unsupported object."""


class ApplicationError(ReproError):
    """Layer 5: error raised by / about an application."""


class DimacsFormatError(ApplicationError):
    """Malformed DIMACS CNF input."""


class SpecError(ApplicationError):
    """A :class:`repro.engine.RunSpec` failed a capability/validation rule.

    Subclasses :class:`ApplicationError` so existing callers that catch
    layer-5 misconfiguration (the CLI's exit-2 paths, ``pytest.raises``
    on the random-heuristic guards) keep working unchanged."""
