"""Layer 3 — problem mapping and mesh-level load balancing (paper §III-A3).

Public surface:

* :class:`MappingService` — the per-node layer-3 process.
* :class:`MappedApp` / :class:`MappingContext` — the ticketed programming
  model exposed upward.
* :class:`TicketedFunctionalApp` — the paper's Listing-2 handler style.
* Mappers: :class:`RoundRobinMapper` (static),
  :class:`LeastBusyNeighbourMapper` (adaptive), :class:`RandomMapper`,
  :class:`HintAwareMapper`; see :func:`make_mapper_factory`.
* Status policies controlling adaptivity overhead: :class:`NoStatusPolicy`,
  :class:`ExplicitStatusPolicy`; see :func:`make_status_factory`.
"""

from .envelopes import CancelMsg, ReplyMsg, StatusMsg, WorkMsg
from .functional import TicketedFunctionalApp
from .mappers import (
    MAPPER_NAMES,
    HintAwareMapper,
    LeastBusyNeighbourMapper,
    Mapper,
    MapperFactory,
    MapperView,
    RandomMapper,
    RoundRobinMapper,
    make_mapper_factory,
)
from .service import MappedApp, MappingContext, MappingService, queue_depth_load
from .status import (
    ExplicitStatusPolicy,
    NoStatusPolicy,
    StatusPolicy,
    StatusPolicyFactory,
    make_status_factory,
)
from .tickets import ReplyHandle, Ticket

__all__ = [
    "MappingService",
    "MappedApp",
    "queue_depth_load",
    "MappingContext",
    "TicketedFunctionalApp",
    "Ticket",
    "ReplyHandle",
    "WorkMsg",
    "ReplyMsg",
    "StatusMsg",
    "CancelMsg",
    "Mapper",
    "MapperFactory",
    "MapperView",
    "RoundRobinMapper",
    "LeastBusyNeighbourMapper",
    "RandomMapper",
    "HintAwareMapper",
    "make_mapper_factory",
    "MAPPER_NAMES",
    "StatusPolicy",
    "StatusPolicyFactory",
    "NoStatusPolicy",
    "ExplicitStatusPolicy",
    "make_status_factory",
]
