"""Layer-3 wire envelopes.

Everything the mapping services of two nodes exchange is one of these four
message kinds.  Each envelope piggybacks the sender's total received-message
count (``sender_count``) — the information channel the least-busy-neighbour
mapper feeds on ("Embed a count of total messages received in all outgoing
messages", paper §V-D).
"""

from __future__ import annotations

from typing import Any, Tuple

from ..topology import NodeId
from .tickets import Ticket

__all__ = ["WorkMsg", "ReplyMsg", "StatusMsg", "CancelMsg"]


class WorkMsg:
    """A delegated sub-problem travelling to (or through) a worker node.

    ``path`` records the nodes the work has visited starting at the issuer;
    replies retrace it in reverse.  ``hops_left`` > 0 lets forwarding mappers
    push work deeper into the mesh before it executes.
    """

    __slots__ = ("ticket", "payload", "hint", "path", "hops_left", "sender_count")

    def __init__(
        self,
        ticket: Ticket,
        payload: Any,
        hint: Any,
        path: Tuple[NodeId, ...],
        hops_left: int,
        sender_count: int,
    ) -> None:
        self.ticket = ticket
        self.payload = payload
        self.hint = hint
        self.path = path
        self.hops_left = hops_left
        self.sender_count = sender_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkMsg({self.ticket!r}, path={list(self.path)})"


class ReplyMsg:
    """A sub-problem result retracing the work's path back to its issuer.

    ``route`` holds the remaining hops; the node that pops the last element
    is the issuer and consumes the reply.
    """

    __slots__ = ("ticket", "payload", "route", "sender_count")

    def __init__(
        self,
        ticket: Ticket,
        payload: Any,
        route: Tuple[NodeId, ...],
        sender_count: int,
    ) -> None:
        self.ticket = ticket
        self.payload = payload
        self.route = route
        self.sender_count = sender_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplyMsg({self.ticket!r}, route={list(self.route)})"


class StatusMsg:
    """Explicit activity broadcast (the adaptive mapper's overhead).

    Sent neighbour-to-neighbour when a node's received count has moved far
    enough since its last broadcast (see
    :class:`~repro.mapping.status.ExplicitStatusPolicy`).
    """

    __slots__ = ("sender_count",)

    def __init__(self, sender_count: int) -> None:
        self.sender_count = sender_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatusMsg(count={self.sender_count})"


class CancelMsg:
    """Cancellation of previously delegated work (extension, paper §IV-C).

    Routed along the same forwarding chain the work took; every relay looks
    the ticket up in its forwarding table.
    """

    __slots__ = ("ticket", "sender_count")

    def __init__(self, ticket: Ticket, sender_count: int) -> None:
        self.ticket = ticket
        self.sender_count = sender_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CancelMsg({self.ticket!r})"
