"""Paper-style functional adapter for layer-3 applications (Listing 2).

The paper expresses layer-3 programs as a single ``receive`` handler::

    function receive(state, ticket, msg, send):
        ...

where ``send(msg)`` delegates a sub-problem (returning a fresh ticket) and
``send(msg, ticket)`` replies to incoming work.  :class:`TicketedFunctionalApp`
adapts exactly that signature onto the :class:`~repro.mapping.service.MappedApp`
protocol so Listing 2 can be transcribed verbatim — see
:mod:`repro.apps.sumrec`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .service import MappingContext
from .tickets import ReplyHandle, Ticket

__all__ = ["TicketedFunctionalApp", "TicketedSend"]

#: ``send(msg)`` -> Ticket (delegate) / ``send(msg, ticket)`` -> None (reply)
TicketedSend = Callable[..., Optional[Ticket]]


class TicketedFunctionalApp:
    """Host a paper-style ``receive(state, ticket, msg, send)`` handler.

    The handler is called with:

    * ``ticket`` — a :class:`ReplyHandle` for incoming work, the issued
      :class:`Ticket` for incoming replies, or ``None`` for triggers;
    * ``send`` — the dual-purpose send described in the module docstring
      (replying with ``ticket=None``, i.e. to a trigger, surfaces the value
      as an external result).

    A non-``None`` return value replaces the node state, mirroring the
    functional style of the paper's listings.
    """

    def __init__(
        self,
        receive: Callable[[Any, Any, Any, TicketedSend], Any],
        init_state: Optional[Callable[[], Any]] = None,
    ) -> None:
        self._receive = receive
        self._init_state = init_state

    # -- MappedApp protocol ----------------------------------------------

    def init(self, mctx: MappingContext) -> None:
        mctx.state = self._init_state() if self._init_state is not None else None

    def _dispatch(self, mctx: MappingContext, ticket: Any, msg: Any) -> None:
        def send(payload: Any, reply_to: Any = _NO_TICKET) -> Optional[Ticket]:
            if reply_to is _NO_TICKET:
                return mctx.call(payload)
            mctx.reply(reply_to, payload)
            return None

        new_state = self._receive(mctx.state, ticket, msg, send)
        if new_state is not None:
            mctx.state = new_state

    def on_work(
        self,
        mctx: MappingContext,
        reply: Optional[ReplyHandle],
        payload: Any,
        hint: Optional[float],
    ) -> None:
        self._dispatch(mctx, reply, payload)

    def on_reply(self, mctx: MappingContext, ticket: Ticket, payload: Any) -> None:
        self._dispatch(mctx, ticket, payload)

    def on_cancel(self, mctx: MappingContext, ticket: Ticket) -> None:
        return None  # paper-style apps do not observe cancellations


class _NoTicket:
    """Sentinel distinguishing 'no ticket passed' from 'reply to trigger'."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<no-ticket>"


_NO_TICKET = _NoTicket()
