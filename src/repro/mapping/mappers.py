"""Mapping algorithms (paper §V-D).

A mapper answers one question: *which neighbour should execute this new
sub-problem?*  The paper classifies mappers as **static** (behaviour fixed
apriori — round robin) or **adaptive** (influenced by runtime activity —
least busy neighbour).  Both of the paper's algorithms are implemented here,
plus extensions used by the ablation benches:

* :class:`RoundRobinMapper` — "map sub-problems to adjacent cores in
  circular order" (static, the paper's baseline);
* :class:`LeastBusyNeighbourMapper` — "maintain a record of neighbouring
  node counts; map sub-problems to neighbour with the smallest count"
  (adaptive);
* :class:`RandomMapper` — seeded uniform choice (static, for control runs);
* :class:`HintAwareMapper` — least-busy extended with cross-layer size
  hints (paper §III-B3): delegating *larger* sub-problems to *less* utilized
  neighbours by tracking outstanding hinted load per neighbour.

Mappers are per-node objects created by a factory; :class:`MapperView` is
the slice of node state they may consult.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Protocol, Sequence

from ..errors import MappingError
from ..topology import NodeId

__all__ = [
    "MapperView",
    "Mapper",
    "MapperFactory",
    "RoundRobinMapper",
    "LeastBusyNeighbourMapper",
    "RandomMapper",
    "HintAwareMapper",
    "make_mapper_factory",
    "MAPPER_NAMES",
]


class MapperView:
    """Per-node information exposed to mapping algorithms.

    Attributes
    ----------
    node:
        This node's id.
    neighbours:
        Adjacent nodes in topology order.
    received_count:
        Total messages this node's mapping service has received.
    neighbour_counts:
        Latest known received-count of each neighbour (piggybacked or from
        status messages); missing entries mean "never heard from".
    rng:
        Seeded per-node random stream for tie-breaking.
    """

    __slots__ = ("node", "neighbours", "received_count", "neighbour_counts", "rng")

    def __init__(
        self, node: NodeId, neighbours: Sequence[NodeId], rng: random.Random
    ) -> None:
        self.node = node
        self.neighbours = tuple(neighbours)
        self.received_count = 0
        self.neighbour_counts: Dict[NodeId, int] = {}
        self.rng = rng

    def observe(self, src: NodeId, count: int) -> None:
        """Record that ``src`` reported a received-count of ``count``."""
        if src in self.neighbour_counts:
            # counts are monotone; keep the freshest (largest) observation
            if count > self.neighbour_counts[src]:
                self.neighbour_counts[src] = count
        else:
            self.neighbour_counts[src] = count

    def known_count(self, neighbour: NodeId) -> int:
        """Latest count for ``neighbour`` (0 if never observed)."""
        return self.neighbour_counts.get(neighbour, 0)


class Mapper(Protocol):
    """Chooses destinations for new work (one instance per node)."""

    def choose(self, view: MapperView, hint: Optional[float]) -> NodeId:
        """Return the neighbour that should receive the next sub-problem."""
        ...

    def on_sent(self, view: MapperView, dst: NodeId, hint: Optional[float]) -> None:
        """Notification that work (with ``hint``) was sent to ``dst``."""
        ...

    def on_reply(self, view: MapperView, src: NodeId) -> None:
        """Notification that a reply for earlier work came back via ``src``."""
        ...


MapperFactory = Callable[[], Mapper]


class _MapperBase:
    """Default no-op notification hooks."""

    __slots__ = ()

    def on_sent(self, view: MapperView, dst: NodeId, hint: Optional[float]) -> None:
        return None

    def on_reply(self, view: MapperView, src: NodeId) -> None:
        return None


class RoundRobinMapper(_MapperBase):
    """Static circular mapping over the neighbour list (paper's "RR")."""

    __slots__ = ("_next",)

    #: registry name
    name = "rr"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, view: MapperView, hint: Optional[float]) -> NodeId:
        if not view.neighbours:
            raise MappingError(f"node {view.node} has no neighbours to map work to")
        dst = view.neighbours[self._next % len(view.neighbours)]
        self._next += 1
        return dst


class LeastBusyNeighbourMapper(_MapperBase):
    """Adaptive mapping to the neighbour with the smallest count
    (paper's "LBN").

    A neighbour's *expected* count is its last reported received-count plus
    the work this node has sent it that has not been answered yet — a
    message already posted to a neighbour is guaranteed to raise its count,
    so ignoring it (``track_outstanding=False``, the literal reading of the
    paper's one-sentence description) makes a node fire whole bursts of
    subcalls at the same stale minimum.  The corrected estimate is what
    delivers the paper's headline result that large adaptive 2D machines
    match static 3D ones; the naive variant is kept for the ablation bench.

    Ties (common early on, when most neighbours have never been heard from)
    break by seeded random choice so work does not always pile onto the
    first neighbour in topology order.
    """

    __slots__ = ("track_outstanding", "_outstanding")

    name = "lbn"

    def __init__(self, track_outstanding: bool = True) -> None:
        self.track_outstanding = track_outstanding
        self._outstanding: Dict[NodeId, int] = {}

    def _score(self, view: MapperView, n: NodeId) -> float:
        score = float(view.known_count(n))
        if self.track_outstanding:
            score += self._outstanding.get(n, 0)
        return score

    def choose(self, view: MapperView, hint: Optional[float]) -> NodeId:
        if not view.neighbours:
            raise MappingError(f"node {view.node} has no neighbours to map work to")
        best = min(self._score(view, n) for n in view.neighbours)
        candidates = [n for n in view.neighbours if self._score(view, n) == best]
        if len(candidates) == 1:
            return candidates[0]
        return candidates[view.rng.randrange(len(candidates))]

    def on_sent(self, view: MapperView, dst: NodeId, hint: Optional[float]) -> None:
        if self.track_outstanding:
            self._outstanding[dst] = self._outstanding.get(dst, 0) + 1

    def on_reply(self, view: MapperView, src: NodeId) -> None:
        if self.track_outstanding:
            pending = self._outstanding.get(src, 0)
            if pending > 1:
                self._outstanding[src] = pending - 1
            else:
                self._outstanding.pop(src, None)


class RandomMapper(_MapperBase):
    """Uniform random neighbour choice (static, seeded)."""

    __slots__ = ()

    name = "random"

    def choose(self, view: MapperView, hint: Optional[float]) -> NodeId:
        if not view.neighbours:
            raise MappingError(f"node {view.node} has no neighbours to map work to")
        return view.neighbours[view.rng.randrange(len(view.neighbours))]


class HintAwareMapper(_MapperBase):
    """Least-busy mapping weighted by outstanding hinted load (§III-B3).

    The score of a neighbour is ``known_count + alpha * outstanding_hints``
    where ``outstanding_hints`` sums the size hints of work this node sent
    there that has not been replied to yet.  With no hints ever supplied it
    degenerates to plain least-busy-neighbour.
    """

    __slots__ = ("alpha", "_outstanding", "_sent_order")

    name = "hint"

    #: hint assumed for work delegated without a hint
    DEFAULT_HINT = 1.0

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise MappingError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self._outstanding: Dict[NodeId, float] = {}
        # FIFO of (dst, hint) so replies retire the oldest load first
        self._sent_order: list[tuple[NodeId, float]] = []

    def choose(self, view: MapperView, hint: Optional[float]) -> NodeId:
        if not view.neighbours:
            raise MappingError(f"node {view.node} has no neighbours to map work to")

        def score(n: NodeId) -> float:
            return view.known_count(n) + self.alpha * self._outstanding.get(n, 0.0)

        best = min(score(n) for n in view.neighbours)
        candidates = [n for n in view.neighbours if score(n) == best]
        if len(candidates) == 1:
            return candidates[0]
        return candidates[view.rng.randrange(len(candidates))]

    def on_sent(self, view: MapperView, dst: NodeId, hint: Optional[float]) -> None:
        h = self.DEFAULT_HINT if hint is None else float(hint)
        self._outstanding[dst] = self._outstanding.get(dst, 0.0) + h
        self._sent_order.append((dst, h))

    def on_reply(self, view: MapperView, src: NodeId) -> None:
        # retire the oldest outstanding load attributed to src
        for i, (dst, h) in enumerate(self._sent_order):
            if dst == src:
                del self._sent_order[i]
                remaining = self._outstanding.get(src, 0.0) - h
                if remaining <= 1e-12:
                    self._outstanding.pop(src, None)
                else:
                    self._outstanding[src] = remaining
                return


#: names accepted by :func:`make_mapper_factory`
MAPPER_NAMES = ("rr", "lbn", "random", "hint")


def make_mapper_factory(name: str, **kwargs) -> MapperFactory:
    """Return a factory building fresh per-node mappers of kind ``name``."""
    if name == "rr":
        return lambda: RoundRobinMapper(**kwargs)
    if name == "lbn":
        return lambda: LeastBusyNeighbourMapper(**kwargs)
    if name == "random":
        return lambda: RandomMapper(**kwargs)
    if name == "hint":
        return lambda: HintAwareMapper(**kwargs)
    raise MappingError(f"unknown mapper {name!r}; expected one of {MAPPER_NAMES}")
