"""Layer 3: the mapping service (paper §III-A3, §IV-B).

:class:`MappingService` is a layer-2 :class:`~repro.sched.Process` template
hosted (at the same pid) on every node.  It gives the layer above a
destination-free message interface:

* ``mctx.call(payload)`` — "request that a message be delivered without
  specifying its destination"; the mapper picks a neighbour and a fresh
  :class:`~repro.mapping.tickets.Ticket` is returned;
* ``mctx.reply(handle, payload)`` — answer incoming work, quoting its ticket;
* incoming work and replies are delivered to the hosted
  :class:`MappedApp`'s ``on_work`` / ``on_reply`` handlers.

The service also runs the activity-estimation machinery: every outgoing
envelope piggybacks this node's received count, incoming envelopes update the
per-neighbour record, and an optional
:class:`~repro.mapping.status.StatusPolicy` broadcasts explicit updates.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Protocol, Tuple

from ..errors import MappingError, UnknownTicketError
from ..rng import SeedSequence
from ..sched import Address, ProcessContext
from ..topology import NodeId
from .envelopes import CancelMsg, ReplyMsg, StatusMsg, WorkMsg
from .mappers import Mapper, MapperFactory, MapperView
from .status import NoStatusPolicy, StatusPolicy, StatusPolicyFactory
from .tickets import ReplyHandle, Ticket

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..telemetry import TelemetryBus

__all__ = ["MappedApp", "MappingContext", "MappingService", "queue_depth_load"]


def queue_depth_load(pctx: ProcessContext, app_state: Any) -> int:
    """Work-sharing load probe: this node's current inbox backlog.

    In the one-message-per-step machine the inbox depth *is* the node's
    service backlog, which makes it the natural pressure signal for work
    sharing (live-invocation counts overstate load: suspended invocations
    cost nothing until their replies arrive).
    """
    return pctx.machine.queue_depth_of(pctx.node)


class MappedApp(Protocol):
    """The layer-3 programming model: ticketed message handlers.

    "Similar to layer 2, it allows upper layers to run applications expressed
    as message handling routines.  However, it prevents communication between
    arbitrary nodes" (paper §III-A3).
    """

    def init(self, mctx: "MappingContext") -> None:
        """Initialise per-node application state (``mctx.state``)."""
        ...

    def on_work(
        self,
        mctx: "MappingContext",
        reply: Optional[ReplyHandle],
        payload: Any,
        hint: Optional[float],
    ) -> None:
        """Handle an incoming sub-problem.

        ``reply`` is the handle to quote when answering, or ``None`` when the
        payload was injected from outside the machine (a trigger) — answers
        to triggers surface through ``mctx.reply(None, value)`` as external
        results.
        """
        ...

    def on_reply(self, mctx: "MappingContext", ticket: Ticket, payload: Any) -> None:
        """Handle the result of a sub-problem this node delegated."""
        ...

    def on_cancel(self, mctx: "MappingContext", ticket: Ticket) -> None:
        """Handle cancellation of work this node is executing (optional)."""
        ...


class _MapState:
    """Per-node mapping-service state (the process-context state slot)."""

    __slots__ = (
        "view",
        "mapper",
        "status",
        "mctx",
        "app_state",
        "next_seq",
        "forward_table",
        "results",
    )

    def __init__(self, view: MapperView, mapper: Mapper, status: StatusPolicy):
        self.view = view
        self.mapper = mapper
        self.status = status
        self.mctx: Optional[MappingContext] = None
        self.app_state: Any = None
        self.next_seq = 0
        #: ticket -> next hop, for routing cancellations along work paths
        self.forward_table: Dict[Ticket, NodeId] = {}
        #: results of externally triggered (root) work
        self.results: List[Any] = []


class MappingContext:
    """Layer-3 API handed to :class:`MappedApp` handlers."""

    __slots__ = ("_service", "_pctx", "_mstate")

    def __init__(
        self, service: "MappingService", pctx: ProcessContext, mstate: _MapState
    ) -> None:
        self._service = service
        self._pctx = pctx
        self._mstate = mstate

    # -- identity / environment ---------------------------------------

    @property
    def node(self) -> NodeId:
        """This node's id (for diagnostics; not usable as a destination)."""
        return self._pctx.node

    @property
    def n_neighbours(self) -> int:
        """Degree of this node (applications may tune fan-out to it)."""
        return len(self._pctx.neighbours)

    @property
    def step(self) -> int:
        """Current simulation step."""
        return self._pctx.step

    @property
    def rng(self) -> random.Random:
        """Per-node seeded random stream."""
        return self._mstate.view.rng

    @property
    def state(self) -> Any:
        """Application state slot."""
        return self._mstate.app_state

    @state.setter
    def state(self, value: Any) -> None:
        self._mstate.app_state = value

    @property
    def results(self) -> List[Any]:
        """Results delivered for externally triggered work on this node."""
        return self._mstate.results

    # -- the ticketed send interface ------------------------------------

    def call(self, payload: Any, hint: Optional[float] = None) -> Ticket:
        """Delegate a sub-problem; destination chosen by the mapper.

        Returns the ticket identifying the eventual reply.  ``hint`` is the
        optional cross-layer estimate of sub-problem size (§III-B3).
        """
        st = self._mstate
        view = st.view
        ticket = Ticket(self.node, st.next_seq)
        st.next_seq += 1
        dst = st.mapper.choose(view, hint)
        if dst not in self._pctx.neighbours:
            raise MappingError(
                f"mapper chose {dst}, not a neighbour of node {self.node}"
            )
        st.mapper.on_sent(view, dst, hint)
        st.forward_table[ticket] = dst
        msg = WorkMsg(
            ticket,
            payload,
            hint,
            path=(self.node,),
            hops_left=self._service.forward_hops,
            sender_count=view.received_count,
        )
        self._pctx.send(Address(dst, self._pctx.pid), msg)
        tel = self._service._telemetry
        if tel is not None:
            tel.emit(
                3,
                "ticket_issue",
                self._pctx.step,
                self.node,
                attrs={"ticket": str(ticket), "dst": dst, "hint": hint},
            )
        return ticket

    def reply(self, handle: Optional[ReplyHandle], payload: Any) -> None:
        """Answer incoming work (or deliver an external result).

        ``handle`` must be the :class:`ReplyHandle` the work arrived with;
        ``None`` marks the answer to an external trigger, which is appended
        to this node's ``results`` (and halts the machine when the service
        was configured with ``halt_on_result``).
        """
        tel = self._service._telemetry
        if handle is None:
            self._mstate.results.append(payload)
            if tel is not None:
                tel.emit(3, "external_result", self._pctx.step, self.node)
            if self._service.halt_on_result:
                self._pctx.machine.halt()
            return
        route = handle.route
        if not route:
            raise MappingError(f"reply handle {handle!r} has an empty route")
        msg = ReplyMsg(
            handle.ticket, payload, route[1:], self._mstate.view.received_count
        )
        self._pctx.send(Address(route[0], self._pctx.pid), msg)
        if tel is not None:
            tel.emit(
                3,
                "reply_sent",
                self._pctx.step,
                self.node,
                attrs={"ticket": str(handle.ticket), "route_len": len(route)},
            )

    def cancel(self, ticket: Ticket) -> None:
        """Cancel previously delegated work (extension; see §IV-C).

        The cancellation follows the work's forwarding chain; if the work
        already replied (the ticket is retired) this is a silent no-op.
        """
        dst = self._mstate.forward_table.get(ticket)
        if dst is None:
            return
        msg = CancelMsg(ticket, self._mstate.view.received_count)
        self._pctx.send(Address(dst, self._pctx.pid), msg)
        tel = self._service._telemetry
        if tel is not None:
            tel.emit(
                3,
                "cancel_sent",
                self._pctx.step,
                self.node,
                attrs={"ticket": str(ticket), "dst": dst},
            )


class MappingService:
    """Layer-2 process template running layer 3 on every node.

    Parameters
    ----------
    app:
        The hosted :class:`MappedApp` (shared template; per-node state lives
        in the context).
    mapper_factory:
        Builds one fresh :class:`~repro.mapping.mappers.Mapper` per node.
    status_factory:
        Builds one fresh status policy per node (default: piggyback only).
    seed:
        Master seed for per-node tie-breaking streams.
    forward_hops:
        Extra hops work travels before executing (0 = execute at the first
        mapped neighbour, the paper's behaviour).
    halt_on_result:
        Stop the whole machine once any external (root) result is delivered
        — how the solver stack terminates without draining speculative work.
    share_threshold / load_fn / max_share_hops:
        Work sharing (extension; paper Figure 2 lists "work
        sharing/stealing" as a layer-3 mechanism): when incoming work
        arrives at a node whose load — ``load_fn(pctx, app_state)`` — is
        at least ``share_threshold``, the work is pushed onward to a
        mapper-chosen neighbour instead of executing locally, up to
        ``max_share_hops`` total detour hops per work item.  Disabled when
        ``share_threshold`` or ``load_fn`` is ``None``.
        :func:`queue_depth_load` (this node's inbox backlog) is the load
        probe that measures actual pressure in the one-pop-per-step
        machine; application-level probes like
        :meth:`repro.recursion.RecursionEngine.load_probe` are also
        accepted.
    telemetry:
        Optional :class:`~repro.telemetry.TelemetryBus`; when given, the
        service publishes the layer-3 ticket lifecycle (``ticket_issue`` /
        ``ticket_claim`` / ``ticket_forward``), reply and cancel traffic,
        and ``status_broadcast`` events.
    """

    def __init__(
        self,
        app: MappedApp,
        mapper_factory: MapperFactory,
        status_factory: Optional[StatusPolicyFactory] = None,
        seed: int = 0,
        forward_hops: int = 0,
        halt_on_result: bool = False,
        share_threshold: Optional[int] = None,
        load_fn: Optional[Callable[[Any], int]] = None,
        max_share_hops: int = 4,
        telemetry: Optional["TelemetryBus"] = None,
    ) -> None:
        if forward_hops < 0:
            raise MappingError(f"forward_hops must be >= 0, got {forward_hops}")
        if share_threshold is not None and share_threshold < 1:
            raise MappingError(
                f"share_threshold must be >= 1 or None, got {share_threshold}"
            )
        if max_share_hops < 1:
            raise MappingError(f"max_share_hops must be >= 1, got {max_share_hops}")
        if share_threshold is not None and load_fn is None:
            raise MappingError("work sharing needs a load_fn to measure load")
        self.app = app
        self.mapper_factory = mapper_factory
        self.status_factory = status_factory if status_factory is not None else NoStatusPolicy
        self.seeds = SeedSequence(seed)
        self.forward_hops = forward_hops
        self.halt_on_result = halt_on_result
        self.share_threshold = share_threshold
        self.load_fn = load_fn
        self.max_share_hops = max_share_hops
        self._telemetry = telemetry

    # -- layer-2 Process interface --------------------------------------

    def init(self, pctx: ProcessContext) -> None:
        view = MapperView(
            pctx.node, pctx.neighbours, self.seeds.stream(f"mapper[{pctx.node}]")
        )
        mstate = _MapState(view, self.mapper_factory(), self.status_factory())
        pctx.state = mstate
        mstate.mctx = MappingContext(self, pctx, mstate)
        self.app.init(mstate.mctx)

    def on_message(
        self, pctx: ProcessContext, sender: Optional[Address], payload: Any
    ) -> None:
        mstate: _MapState = pctx.state
        view = mstate.view
        # Only substantive traffic (work, replies, triggers) counts as
        # activity.  Status and cancel envelopes are control overhead; were
        # they counted, a status threshold at or below the node degree would
        # make broadcasts self-sustaining (every status volley triggers the
        # next one) and the machine would never go quiescent.
        if not isinstance(payload, (StatusMsg, CancelMsg)):
            view.received_count += 1
        mctx = mstate.mctx
        assert mctx is not None

        if isinstance(payload, WorkMsg):
            if sender is not None:
                view.observe(sender.node, payload.sender_count)
            if payload.hops_left > 0:
                self._forward_work(pctx, mstate, payload)
            elif self._should_share(pctx, mstate, payload):
                # overloaded: push the work onward rather than execute it
                self._forward_work(pctx, mstate, payload, consume_hop=False)
            else:
                tel = self._telemetry
                if tel is not None:
                    tel.emit(
                        3,
                        "ticket_claim",
                        pctx.step,
                        pctx.node,
                        attrs={
                            "ticket": str(payload.ticket),
                            "hops": len(payload.path),
                        },
                    )
                handle = ReplyHandle(
                    payload.ticket, tuple(reversed(payload.path))
                )
                self.app.on_work(mctx, handle, payload.payload, payload.hint)
        elif isinstance(payload, ReplyMsg):
            if sender is not None:
                view.observe(sender.node, payload.sender_count)
            if payload.route:
                # relay toward the issuer; retire our forwarding-table entry
                mstate.forward_table.pop(payload.ticket, None)
                fwd = ReplyMsg(
                    payload.ticket,
                    payload.payload,
                    payload.route[1:],
                    view.received_count,
                )
                pctx.send(Address(payload.route[0], pctx.pid), fwd)
            else:
                if payload.ticket.node != pctx.node:
                    raise UnknownTicketError(
                        f"node {pctx.node} received terminal reply for foreign "
                        f"ticket {payload.ticket!r}"
                    )
                if sender is not None:
                    mstate.mapper.on_reply(view, sender.node)
                mstate.forward_table.pop(payload.ticket, None)
                tel = self._telemetry
                if tel is not None:
                    tel.emit(
                        3,
                        "reply_delivered",
                        pctx.step,
                        pctx.node,
                        attrs={"ticket": str(payload.ticket)},
                    )
                self.app.on_reply(mctx, payload.ticket, payload.payload)
        elif isinstance(payload, StatusMsg):
            if sender is not None:
                view.observe(sender.node, payload.sender_count)
        elif isinstance(payload, CancelMsg):
            if sender is not None:
                view.observe(sender.node, payload.sender_count)
            next_hop = mstate.forward_table.get(payload.ticket)
            if next_hop is not None and payload.ticket.node != pctx.node:
                # we relayed this work onward: pass the cancel along
                pctx.send(
                    Address(next_hop, pctx.pid),
                    CancelMsg(payload.ticket, view.received_count),
                )
            else:
                self.app.on_cancel(mctx, payload.ticket)
        else:
            # raw payload: an external trigger for the application
            self.app.on_work(mctx, None, payload, None)

        self._maybe_broadcast_status(pctx, mstate)

    # -- internals -------------------------------------------------------

    def _should_share(
        self, pctx: ProcessContext, mstate: _MapState, msg: WorkMsg
    ) -> bool:
        if self.share_threshold is None or self.load_fn is None:
            return False
        # path holds the issuer plus every relay so far; cap the detour
        if len(msg.path) > self.max_share_hops:
            return False
        return self.load_fn(pctx, mstate.app_state) >= self.share_threshold

    def _forward_work(
        self,
        pctx: ProcessContext,
        mstate: _MapState,
        msg: WorkMsg,
        consume_hop: bool = True,
    ) -> None:
        view = mstate.view
        dst = mstate.mapper.choose(view, msg.hint)
        mstate.mapper.on_sent(view, dst, msg.hint)
        mstate.forward_table[msg.ticket] = dst
        fwd = WorkMsg(
            msg.ticket,
            msg.payload,
            msg.hint,
            path=msg.path + (pctx.node,),
            hops_left=msg.hops_left - 1 if consume_hop else msg.hops_left,
            sender_count=view.received_count,
        )
        pctx.send(Address(dst, pctx.pid), fwd)
        tel = self._telemetry
        if tel is not None:
            tel.emit(
                3,
                "ticket_forward",
                pctx.step,
                pctx.node,
                attrs={
                    "ticket": str(msg.ticket),
                    "dst": dst,
                    "shared": not consume_hop,
                },
            )

    def _maybe_broadcast_status(self, pctx: ProcessContext, mstate: _MapState) -> None:
        if mstate.status.should_broadcast(mstate.view.received_count):
            count = mstate.view.received_count
            for n in pctx.neighbours:
                pctx.send(Address(n, pctx.pid), StatusMsg(count))
            mstate.status.on_broadcast(count)
            tel = self._telemetry
            if tel is not None:
                tel.emit(
                    3,
                    "status_broadcast",
                    pctx.step,
                    pctx.node,
                    attrs={"count": count, "fanout": len(pctx.neighbours)},
                )

    # -- snapshot / restore (repro.state protocol) ------------------------

    def snapshot_process_state(self, pstate: Any) -> Dict[str, Any]:
        """Scheduler hook: capture one node's layer-3 state (plus the app's).

        Returns live references — the calling scheduler detaches the whole
        composite with one deepcopy, preserving any sharing.  The hosted
        application's state is delegated to its ``snapshot_app_state`` hook
        when present (the recursion engine implements it to make its live
        generators replayable); hookless apps are captured raw.
        """
        if not isinstance(pstate, _MapState):
            raise MappingError("state does not belong to a MappingService process")
        view = pstate.view
        hook = getattr(self.app, "snapshot_app_state", None)
        if hook is not None:
            app: Tuple[str, Any] = ("hook", hook(pstate.app_state))
        else:
            app = ("raw", pstate.app_state)
        return {
            "received_count": view.received_count,
            "neighbour_counts": dict(view.neighbour_counts),
            "view_rng": view.rng.getstate(),
            "mapper": pstate.mapper,
            "status": pstate.status,
            "next_seq": pstate.next_seq,
            "forward_table": dict(pstate.forward_table),
            "results": list(pstate.results),
            "app": app,
        }

    def restore_process_state(self, pctx: ProcessContext, data: Dict[str, Any]) -> None:
        """Scheduler hook: install a captured layer-3 state into ``pctx``.

        ``pctx`` must already be initialised by this service (so the
        :class:`MappingContext` and view objects exist); counters, mapper,
        status policy, routing tables and the app state are replaced.
        """
        from ..errors import CheckpointError

        mstate: _MapState = pctx.state
        if not isinstance(mstate, _MapState):
            raise MappingError("state does not belong to a MappingService process")
        view = mstate.view
        view.received_count = data["received_count"]
        view.neighbour_counts = dict(data["neighbour_counts"])
        view.rng.setstate(data["view_rng"])
        mstate.mapper = data["mapper"]
        mstate.status = data["status"]
        mstate.next_seq = data["next_seq"]
        mstate.forward_table = dict(data["forward_table"])
        mstate.results = list(data["results"])
        kind, app_data = data["app"]
        if kind == "hook":
            hook = getattr(self.app, "restore_app_state", None)
            if hook is None:
                raise CheckpointError(
                    f"application {type(self.app).__name__} cannot restore "
                    "a hook-captured state"
                )
            assert mstate.mctx is not None
            hook(mstate.mctx, app_data)
        else:
            mstate.app_state = app_data

    # -- inspection -------------------------------------------------------

    @staticmethod
    def results_of(process_state: Any) -> List[Any]:
        """External results stored in a node's mapping-service state."""
        if not isinstance(process_state, _MapState):
            raise MappingError("state does not belong to a MappingService process")
        return process_state.results

    @staticmethod
    def app_state_of(process_state: Any) -> Any:
        """Hosted application's state inside a service state blob."""
        if not isinstance(process_state, _MapState):
            raise MappingError("state does not belong to a MappingService process")
        return process_state.app_state

    @staticmethod
    def view_of(process_state: Any) -> MapperView:
        """The node's :class:`MapperView` (activity counters)."""
        if not isinstance(process_state, _MapState):
            raise MappingError("state does not belong to a MappingService process")
        return process_state.view
