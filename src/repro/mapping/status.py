"""Activity-status propagation policies (paper Figure 2, layer-3 concerns).

Adaptive mapping needs activity estimates for neighbouring nodes.  Two
channels feed them:

* **piggybacking** — every layer-3 envelope carries the sender's received
  count for free (always on);
* **explicit status messages** — a node whose count moved by at least
  ``threshold`` since its last broadcast tells all neighbours.  These
  messages consume real queue slots, which is precisely the overhead that
  makes adaptive mapping a net loss on small machines in the paper's
  Figure 4 ("Adaptive mapping had a negative impact on absolute performance
  for smaller topologies").

Policies are per-node objects created by a factory, mirroring mappers.
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..errors import MappingError

__all__ = [
    "StatusPolicy",
    "StatusPolicyFactory",
    "NoStatusPolicy",
    "ExplicitStatusPolicy",
    "make_status_factory",
]


class StatusPolicy(Protocol):
    """Decides when a node broadcasts its activity count to neighbours."""

    def should_broadcast(self, received_count: int) -> bool:
        """Called after handling each message; True triggers a broadcast."""
        ...

    def on_broadcast(self, received_count: int) -> None:
        """Notification that the broadcast was actually sent."""
        ...


StatusPolicyFactory = Callable[[], StatusPolicy]


class NoStatusPolicy:
    """Never send explicit status messages (piggybacking only)."""

    __slots__ = ()

    def should_broadcast(self, received_count: int) -> bool:
        return False

    def on_broadcast(self, received_count: int) -> None:  # pragma: no cover
        raise MappingError("NoStatusPolicy never broadcasts")


class ExplicitStatusPolicy:
    """Broadcast whenever the count moved >= ``threshold`` since last time."""

    __slots__ = ("threshold", "_last_broadcast")

    def __init__(self, threshold: int = 4) -> None:
        if threshold < 1:
            raise MappingError(f"status threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._last_broadcast = 0

    def should_broadcast(self, received_count: int) -> bool:
        return received_count - self._last_broadcast >= self.threshold

    def on_broadcast(self, received_count: int) -> None:
        self._last_broadcast = received_count


def make_status_factory(spec: "str | int | None") -> StatusPolicyFactory:
    """Build a status-policy factory from a compact spec.

    ``None`` or ``"off"`` → piggyback only; an integer (or numeric string)
    → :class:`ExplicitStatusPolicy` with that threshold.
    """
    if spec is None or spec == "off":
        return NoStatusPolicy
    if isinstance(spec, str):
        try:
            spec = int(spec)
        except ValueError as exc:
            raise MappingError(f"bad status policy spec {spec!r}") from exc
    threshold = int(spec)
    return lambda: ExplicitStatusPolicy(threshold)
