"""Tickets: the layer-3 replacement for destination addressing (paper §IV-B).

"In the mapping layer we replace node identifiers with a ticket system that
selects message destinations automatically. [...] sender identity [is
replaced] with a unique identifier (a ticket) that can be quoted to send
reply messages."

A :class:`Ticket` is globally unique — ``(issuing node, per-node sequence)``
— and is all an application ever sees of "where" a sub-problem went.
:class:`ReplyHandle` is the receiving side's view of a piece of delegated
work: the ticket to quote plus the (hidden) reverse route to the issuer.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

from ..topology import NodeId

__all__ = ["Ticket", "ReplyHandle"]


class Ticket(NamedTuple):
    """Unique identifier for one delegated sub-problem."""

    node: NodeId  # issuing node
    seq: int  # issuer-local sequence number

    def __repr__(self) -> str:
        return f"Ticket({self.node}.{self.seq})"


class ReplyHandle(NamedTuple):
    """What a worker quotes to answer a piece of incoming work.

    ``route`` is the reverse path back to the issuer (most work travels one
    hop, so it is usually a single node).  Applications treat the handle as
    opaque; only :class:`~repro.mapping.service.MappingContext.reply`
    interprets it.
    """

    ticket: Ticket
    route: Tuple[NodeId, ...]

    def __repr__(self) -> str:
        return f"ReplyHandle({self.ticket!r} via {list(self.route)})"
