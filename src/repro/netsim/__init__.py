"""Layer 1 — simulated message-passing machine (paper §IV-A).

Public surface:

* :class:`Machine` — the discrete-time event-loop backend.
* :class:`NodeProgram` / :class:`FunctionalProgram` / :class:`NodeContext` —
  the node code interface.
* :class:`TraceRecorder` / :class:`SimulationReport` — profiling (paper §V-C).
* :class:`FaultModel`, inbox policies — documented extensions.
* :class:`ShardedMachine` + :mod:`repro.netsim.partition` — the sharded
  multi-process backend (bit-identical to :class:`Machine`).
"""

from .backend import EXTERNAL, Machine
from .faults import FaultModel, ReliableLinks
from .message import EMPTY_MSG, Envelope
from .partition import PARTITIONERS, edge_cut, make_partition
from .program import FunctionalProgram, NodeContext, NodeProgram, SendFn
from .queues import FifoInbox, Inbox, LifoInbox, RandomInbox, make_inbox
from .sharded import (
    SHARDS_ENV_VAR,
    ShardProgramSpec,
    ShardWorkerError,
    ShardedMachine,
    resolve_shards,
)
from .sizing import HEADER_SIZE, SizeFn, generic_content_size, make_envelope_sizer, unit_size
from .trace import SimulationReport, TraceRecorder, gini, spatial_entropy

__all__ = [
    "Machine",
    "ShardedMachine",
    "ShardProgramSpec",
    "ShardWorkerError",
    "SHARDS_ENV_VAR",
    "resolve_shards",
    "PARTITIONERS",
    "make_partition",
    "edge_cut",
    "EXTERNAL",
    "EMPTY_MSG",
    "Envelope",
    "NodeProgram",
    "FunctionalProgram",
    "NodeContext",
    "SendFn",
    "TraceRecorder",
    "SimulationReport",
    "spatial_entropy",
    "gini",
    "FaultModel",
    "ReliableLinks",
    "Inbox",
    "FifoInbox",
    "LifoInbox",
    "RandomInbox",
    "make_inbox",
    "SizeFn",
    "unit_size",
    "generic_content_size",
    "make_envelope_sizer",
    "HEADER_SIZE",
]
