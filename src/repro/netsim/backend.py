"""Layer 1: the discrete-time message-passing machine simulator.

This is the paper's §IV-A backend: "The backend initializes an array of node
states and message queues then runs an event loop to deliver messages.  On
each simulation time step, a message is popped from each non-empty queue and
passed to a handler function (``receive``) to update the respective node's
state.  While executing ``receive``, the node can queue further messages for
transmission using a ``send`` handler."

Semantics implemented here (and verified by tests):

* one message popped per *non-empty-at-step-start* queue per step;
* messages sent while handling step *t* are enqueued immediately but cannot
  be popped before step *t+1*;
* sends are restricted to topology neighbours (the paper assumes "messages
  can be communicated between adjacent cores only") unless the topology is
  fully connected — violations raise :class:`AdjacencyError`;
* node handler order within a step is ascending node id (deterministic);
* queues are unbounded FIFO by default (the paper's assumption); finite
  capacities, other pop orders, link latency and fault injection are
  opt-in extensions.
"""

from __future__ import annotations

import copy
import random
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..reliability import ReliabilityConfig, ReliableDelivery
    from ..telemetry import TelemetryBus

from ..errors import AdjacencyError, SimulationError
from ..topology import NodeId, Topology
from .faults import FaultModel, ReliableLinks
from .message import Envelope
from .program import NodeContext, NodeProgram
from .queues import Inbox, make_inbox
from .trace import SimulationReport, TraceRecorder

__all__ = ["Machine", "LatencyFn"]

#: Optional per-link latency: extra steps a message spends in flight.
LatencyFn = Union[int, Callable[[NodeId, NodeId], int]]

#: Source id used for externally injected (kickstart) messages.
EXTERNAL = -1


class Machine:
    """A simulated hyperspace machine (topology + node program + event loop).

    Parameters
    ----------
    topology:
        Interconnect; also fixes each node's neighbour ordering.
    program:
        The :class:`NodeProgram` every node runs.
    trace:
        Optional pre-configured :class:`TraceRecorder` (e.g. with queue-depth
        recording on).  A default one is created when omitted.
    queue_policy / queue_capacity / queue_overflow:
        Inbox discipline; defaults match the paper (unbounded FIFO).
    latency:
        Extra in-flight steps per message: an int or ``f(src, dst) -> int``.
        Default 0 (delivered the following step).
    enforce_adjacency:
        Raise on sends to non-neighbours.  On by default; the fully connected
        baseline simply has every pair adjacent.
    faults:
        Optional :class:`FaultModel` for drop/duplicate injection.
    reliability:
        Opt-in layer-1.5 reliable delivery over the (possibly faulty)
        links: ``True`` for the default
        :class:`~repro.reliability.ReliabilityConfig`, or a configured
        instance.  Every send is then sequence-numbered, acknowledged and
        retransmitted until delivered exactly once in per-link order —
        see :mod:`repro.reliability` and ``docs/robustness.md``.  Off by
        default; when off, the send path is unchanged.
    seed:
        Seed for the machine's internal stream (random queue policy).
    size_fn:
        Optional message-size model for bandwidth accounting (see
        :mod:`repro.netsim.sizing`); default charges one unit per message.
    telemetry:
        Optional :class:`~repro.telemetry.TelemetryBus`; when given, the
        machine publishes layer-1 ``send`` / ``deliver`` / ``drop`` events
        and a per-step ``queued`` counter.  ``None`` (default) keeps every
        hot path behind a single ``is None`` check — the invariant the
        storm/flood microbench guard in ``docs/observability.md`` pins.
    """

    #: subclasses that own program initialisation elsewhere (the sharded
    #: coordinator runs ``program.init`` inside its workers) set this False
    _init_node_programs = True

    def __init__(
        self,
        topology: Topology,
        program: NodeProgram,
        *,
        trace: Optional[TraceRecorder] = None,
        queue_policy: str = "fifo",
        queue_capacity: Optional[int] = None,
        queue_overflow: str = "raise",
        latency: LatencyFn = 0,
        enforce_adjacency: bool = True,
        faults: FaultModel = ReliableLinks,
        reliability: Union[None, bool, "ReliabilityConfig"] = None,
        seed: int = 0,
        size_fn: Optional[Callable[[Any], int]] = None,
        telemetry: Optional["TelemetryBus"] = None,
    ) -> None:
        self.topology = topology
        self.program = program
        self._telemetry = telemetry
        self.trace = trace if trace is not None else TraceRecorder(topology.n_nodes)
        if self.trace.n_nodes != topology.n_nodes:
            raise SimulationError(
                f"trace sized for {self.trace.n_nodes} nodes, machine has "
                f"{topology.n_nodes}"
            )
        self._rng = random.Random(seed)
        self._inboxes: List[Inbox] = [
            make_inbox(queue_policy, self._rng, queue_capacity, queue_overflow)
            for _ in range(topology.n_nodes)
        ]
        #: ids of nodes with non-empty inboxes; kept sorted lazily — new
        #: ids are appended and the dirty flag triggers one sort at the
        #: start of the next step (instead of sorting a set every step)
        self._active: List[NodeId] = []
        self._active_dirty = False
        #: per-node inbox depth mirror; every push/pop goes through the
        #: machine, so tracking depths here avoids a Python-level __len__
        #: call per message on the hot path
        self._depths: List[int] = [0] * topology.n_nodes
        # The paper's default discipline (unbounded FIFO) needs none of the
        # Inbox wrapper's policy/overflow logic, so the hot path binds the
        # underlying deque methods directly (C level); any other policy or
        # a finite capacity goes through Inbox.push/Inbox.pop.
        self._unbounded_fifo = queue_policy == "fifo" and queue_capacity is None
        if self._unbounded_fifo:
            self._push_fns = [inbox._q.append for inbox in self._inboxes]
            self._pop_fns = [inbox._q.popleft for inbox in self._inboxes]
        else:
            self._push_fns = None
            self._pop_fns = [inbox.pop for inbox in self._inboxes]
        self._faults = faults
        self._size_fn = size_fn
        self._enforce_adjacency = enforce_adjacency
        self._full = topology.kind == "full"
        #: adjacency must be checked per send (non-full topology, not opted out)
        self._check_neighbours = enforce_adjacency and not self._full
        if isinstance(latency, int):
            if latency < 0:
                raise SimulationError(f"latency must be >= 0, got {latency}")
            self._latency_fn: Optional[Callable[[NodeId, NodeId], int]] = (
                None if latency == 0 else (lambda s, d: latency)
            )
        else:
            self._latency_fn = latency
        if reliability:
            from ..reliability import ReliabilityConfig, ReliableDelivery

            config = reliability if isinstance(reliability, ReliabilityConfig) else None
            self._reliability: Optional["ReliableDelivery"] = ReliableDelivery(
                self, config
            )
        else:
            self._reliability = None
        #: reliable zero-latency sends skip the fault/latency/protocol machinery
        self._fast_send = (
            faults.is_reliable
            and self._latency_fn is None
            and self._reliability is None
        )
        #: sends since the last step boundary, coalesced into one telemetry
        #: counter delta per step (the per-event record rides the bus ring
        #: only when a subscriber retains events)
        self._tel_sends = 0
        #: messages maturing at a future step: step -> [(dst, envelope)]
        self._in_flight: Dict[int, List[Tuple[NodeId, Envelope]]] = {}
        self._in_flight_count = 0
        self._queued_count = 0
        self.current_step = -1
        self._next_msg_id = 0
        self._halted = False
        #: nodes whose program asked to be polled at the start of next step
        self._poll_requests: set[NodeId] = set()
        self._has_on_step = hasattr(program, "on_step")
        # Build per-node contexts with bound send closures.
        self._contexts: List[NodeContext] = []
        self._neighbour_sets: List[frozenset[NodeId]] = []
        for node in range(topology.n_nodes):
            neigh = tuple(topology.neighbours(node))
            self._neighbour_sets.append(frozenset(neigh))
            ctx = NodeContext(node, neigh, self._make_send(node), self)
            self._contexts.append(ctx)
        if self._init_node_programs:
            for ctx in self._contexts:
                self.program.init(ctx)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _make_send(self, src: NodeId) -> Callable[[NodeId, Any], None]:
        # functools.partial dispatches at C level — cheaper per send than a
        # Python closure frame
        return partial(self._send_from, src)

    def _send_from(self, src: NodeId, dst: NodeId, payload: Any) -> None:
        if not (0 <= dst < self.topology.n_nodes):
            raise SimulationError(f"send to invalid node {dst} from node {src}")
        if src != EXTERNAL:
            if self._check_neighbours:
                if dst not in self._neighbour_sets[src]:
                    raise AdjacencyError(
                        f"node {src} attempted to send to non-neighbour {dst} "
                        f"(topology {self.topology.describe()})"
                    )
            elif self._full and src == dst:
                raise AdjacencyError(f"node {src} attempted to send to itself")
        size_fn = self._size_fn
        size = size_fn(payload) if size_fn is not None else 1
        self.trace.on_send(src, self.current_step, payload, size)
        tel = self._telemetry
        if tel is not None:
            # one machine-local int bump per send; the coalesced counter
            # delta is published at the step boundary.  The per-event tuple
            # is staged only when someone retains events.
            self._tel_sends += 1
            if tel.want_events:
                tel.record(
                    self.current_step, 1, "send", src,
                    None, {"dst": dst, "size": size},
                )
        if self._fast_send:
            # common path: reliable links, zero latency — exactly one copy,
            # deliverable next step (enqueue inlined: this runs once per
            # message in every simulation)
            msg_id = self._next_msg_id
            self._next_msg_id = msg_id + 1
            env = Envelope(src, dst, payload, self.current_step, msg_id)
            if self._unbounded_fifo:
                self._push_fns[dst](env)
            elif not self._inboxes[dst].push(env):
                self._record_drop(dst, "overflow")
                return
            self._queued_count += 1
            depth = self._depths[dst]
            self._depths[dst] = depth + 1
            if depth == 0:
                self._active.append(dst)
                self._active_dirty = True
            return
        self._send_slow(src, dst, payload)

    def _record_drop(self, dst: NodeId, reason: str) -> None:
        """Account one dropped message, attributed to ``dst`` at this step."""
        self.trace.on_drop(dst, self.current_step)
        tel = self._telemetry
        if tel is not None:
            tel.emit(1, "drop", self.current_step, dst, attrs={"reason": reason})

    def _send_slow(self, src: NodeId, dst: NodeId, payload: Any) -> None:
        """Fault-injection / link-latency send path (opt-in extensions)."""
        rel = self._reliability
        if rel is not None:
            rel.send(src, dst, payload)
            return
        copies = self._faults.copies_to_deliver()
        if copies == 0:
            self._record_drop(dst, "fault")
            return
        for _ in range(copies):
            env = Envelope(src, dst, payload, self.current_step, self._next_msg_id)
            self._next_msg_id += 1
            if self._latency_fn is not None:
                delay = self._latency_fn(src, dst) if src != EXTERNAL else 0
                if delay < 0:
                    raise SimulationError(f"negative latency {delay} for {src}->{dst}")
            else:
                delay = 0
            if delay == 0:
                self._enqueue(dst, env)
            else:
                mature = self.current_step + 1 + delay
                self._in_flight.setdefault(mature, []).append((dst, env))
                self._in_flight_count += 1

    def _enqueue(self, dst: NodeId, env: Envelope) -> None:
        if self._unbounded_fifo:
            self._push_fns[dst](env)
        elif not self._inboxes[dst].push(env):
            self._record_drop(dst, "overflow")
            return
        self._queued_count += 1
        depth = self._depths[dst]
        self._depths[dst] = depth + 1
        if depth == 0:
            self._active.append(dst)
            self._active_dirty = True

    def inject(self, node: NodeId, payload: Any) -> None:
        """Send a kickstart message from outside the machine to ``node``.

        This is the paper's "the backend kickstarts computations by sending
        EMPTY_MSG to a user-selected node".
        """
        self.topology.check_node(node)
        self._send_from(EXTERNAL, node, payload)

    def request_poll(self, node: NodeId) -> None:
        """Ask that ``program.on_step`` run for ``node`` at the next step.

        Used by node programs (e.g. the layer-2 scheduler) that keep local
        work queues outside the network: a node with pending local work
        registers itself, and the event loop polls it once at the start of
        the following step.  Programs without an ``on_step`` method cannot
        be polled.
        """
        if not self._has_on_step:
            raise SimulationError(
                f"program {type(self.program).__name__} has no on_step hook"
            )
        self.topology.check_node(node)
        self._poll_requests.add(node)

    def halt(self) -> None:
        """Request the event loop stop at the end of the current step.

        Applications call this (via their context's machine handle or an
        upper layer) when a final answer is known — e.g. the SAT solver's
        root invocation completing — so runs need not drain every
        speculative message before returning.
        """
        self._halted = True

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    @property
    def total_queued(self) -> int:
        """Messages currently queued in inboxes (excludes in-flight)."""
        return self._queued_count

    @property
    def is_quiescent(self) -> bool:
        """True when no messages are queued, in flight, or awaiting a poll
        (including unacknowledged frames held by the reliability layer)."""
        return (
            self._queued_count == 0
            and self._in_flight_count == 0
            and not self._poll_requests
            and (self._reliability is None or not self._reliability.pending)
        )

    @property
    def reliability(self) -> Optional["ReliableDelivery"]:
        """The layer-1.5 reliable-delivery engine, or None when disabled."""
        return self._reliability

    def state_of(self, node: NodeId) -> Any:
        """Application state of ``node`` (read-only inspection)."""
        self.topology.check_node(node)
        return self._contexts[node].state

    def queue_depths(self) -> List[int]:
        """Current inbox depth for every node."""
        return list(self._depths)

    def queue_depth_of(self, node: NodeId) -> int:
        """Current inbox depth of one node (O(1))."""
        self.topology.check_node(node)
        return self._depths[node]

    def step(self) -> int:
        """Execute one simulation time step; return messages delivered."""
        self.current_step += 1
        step = self.current_step
        # Land reliability-protocol frames first (they enqueue released
        # payloads and schedule retransmits), so protected messages are
        # deliverable within this step — same latency as an unprotected send.
        rel = self._reliability
        if rel is not None:
            rel.on_step(step)
        # Mature in-flight messages first: they were sent at least one full
        # step ago, so they are deliverable within this step.  The count
        # guard keeps the default (zero-latency) configuration from paying
        # a dict lookup per step.
        if self._in_flight_count:
            matured = self._in_flight.pop(step, None)
            if matured is not None:
                self._in_flight_count -= len(matured)
                for dst, env in matured:
                    self._enqueue(dst, env)
        # Poll nodes that requested a step callback (snapshot: re-requests
        # made during the callback land on the following step).
        if self._poll_requests:
            polled = sorted(self._poll_requests)
            self._poll_requests.clear()
            for node in polled:
                self.program.on_step(self._contexts[node])
        # Snapshot which queues may deliver this step (sends during the step
        # must wait until the next one).  The active list is only re-sorted
        # when nodes were added since the last step; handler order within a
        # step stays ascending node id.
        active = self._active
        if self._active_dirty:
            active.sort()
            self._active_dirty = False
        # The first n0 entries are this step's snapshot; sends made while
        # handling it append past n0.  Survivors compact in place below the
        # read cursor, then the drained gap is deleted — no list churn.
        n0 = len(active)
        tel = self._telemetry
        if n0:
            pop_fns = self._pop_fns
            contexts = self._contexts
            depths = self._depths
            on_message = self.program.on_message
            if tel is None or not tel.want_events:
                # Batched kernel: the snapshot slice *is* this step's
                # delivery set (one pop per non-empty-at-step-start queue,
                # ascending node id), so per-delivery trace bookkeeping is
                # hoisted into one on_deliver_batch call after the pass.
                delivered = active[:n0]
                write = 0
                for node in delivered:
                    env = pop_fns[node]()
                    depth = depths[node] - 1
                    depths[node] = depth
                    if depth:
                        active[write] = node
                        write += 1
                    on_message(contexts[node], env.src, env.payload)
                if write != n0:
                    del active[write:n0]
                self.trace.on_deliver_batch(delivered, step)
            else:
                # Faithful kernel: a subscriber retains events, so the
                # per-delivery record must interleave with handler sends to
                # keep the published stream causally ordered (the order the
                # trace-subsumption tests pin).
                on_deliver = self.trace.on_deliver
                record = tel.record
                write = 0
                for read in range(n0):
                    node = active[read]
                    env = pop_fns[node]()
                    depth = depths[node] - 1
                    depths[node] = depth
                    if depth:
                        active[write] = node
                        write += 1
                    on_deliver(node, step)
                    record(step, 1, "deliver", node)
                    on_message(contexts[node], env.src, env.payload)
                if write != n0:
                    del active[write:n0]
            self._queued_count -= n0
        # Flush deferred protocol acknowledgements (piggyback window closes
        # with the step; standalone acks keep the same next-step arrival as
        # the old ack-per-frame scheme).
        if rel is not None:
            rel.end_step()
        self.trace.on_step_end(
            step,
            self._queued_count,
            n0,
            self.queue_depths() if self.trace.record_queue_depths else None,
        )
        if tel is not None:
            sends = self._tel_sends
            if sends:
                self._tel_sends = 0
                tel.count(1, "send", sends)
            if n0:
                tel.count(1, "deliver", n0)
            tel.emit(
                1,
                "queued",
                step,
                attrs={"value": self._queued_count, "delivered": n0},
            )
            tel.flush()
        return n0

    def run(
        self,
        max_steps: int = 1_000_000,
        *,
        checkpoint_every: Optional[int] = None,
        checkpoint_sink: Optional[Callable[["Machine"], None]] = None,
    ) -> SimulationReport:
        """Run until quiescent, halted, or ``max_steps`` steps elapse.

        With ``checkpoint_every=k``, ``checkpoint_sink(self)`` is called at
        every k-th step boundary (after the step completed, before the
        next begins) — the hook the stack uses to snapshot every layer.
        The default (``None``) keeps the original tight loop: checkpointing
        off adds zero per-step cost on the batched kernel path.
        """
        if max_steps < 0:
            raise SimulationError(f"max_steps must be >= 0, got {max_steps}")
        executed = self.current_step + 1
        step = self.step
        rel = self._reliability
        if checkpoint_every is None:
            while (
                executed < max_steps
                and not self._halted
                and (
                    self._queued_count
                    or self._in_flight_count
                    or self._poll_requests
                    or (rel is not None and rel.pending)
                )
            ):
                step()
                executed += 1
            return self.report()
        if checkpoint_every < 1:
            raise SimulationError(
                f"checkpoint_every must be >= 1 or None, got {checkpoint_every}"
            )
        if checkpoint_sink is None:
            raise SimulationError("checkpoint_every requires a checkpoint_sink")
        while (
            executed < max_steps
            and not self._halted
            and (
                self._queued_count
                or self._in_flight_count
                or self._poll_requests
                or (rel is not None and rel.pending)
            )
        ):
            step()
            executed += 1
            # step numbering is absolute (resumes continue it), so a run
            # resumed from step k checkpoints at the same boundaries the
            # uninterrupted run would
            if (self.current_step + 1) % checkpoint_every == 0:
                checkpoint_sink(self)
        return self.report()

    def report(self) -> SimulationReport:
        """Snapshot the current trace into a :class:`SimulationReport`."""
        return SimulationReport(
            self.trace,
            steps=self.current_step + 1,
            quiescent=self.is_quiescent,
            topology=self.topology,
        )

    # ------------------------------------------------------------------
    # Snapshot / restore (repro.state protocol)
    # ------------------------------------------------------------------

    #: snapshot-schema version of the netsim layer state
    STATE_VERSION = 1

    def snapshot(self) -> "LayerState":
        """Capture layer-1 mutable state as a detached :class:`LayerState`.

        Covers the event-loop core (step counter, message-id counter, halt
        flag), every inbox's contents, in-flight (latent) messages, pending
        poll requests, the machine and fault-model RNG streams, and the
        trace recorder — everything needed to continue the exact schedule.
        Derived bookkeeping (active list, depth mirror, counters) is
        recomputed on restore.  Program/per-node state is *not* included:
        that belongs to the layers above (see ``docs/checkpointing.md``).
        """
        from ..state import LayerState

        faults_rng = self._faults._rng
        data = {
            "config": {
                "n_nodes": self.topology.n_nodes,
                "topology": self.topology.describe(),
                "unbounded_fifo": self._unbounded_fifo,
                "has_fault_rng": faults_rng is not None,
            },
            "current_step": self.current_step,
            "next_msg_id": self._next_msg_id,
            "halted": self._halted,
            "rng": self._rng.getstate(),
            "faults_rng": None if faults_rng is None else faults_rng.getstate(),
            "inboxes": [list(inbox._q) for inbox in self._inboxes],
            "in_flight": {
                step: list(pairs) for step, pairs in self._in_flight.items()
            },
            "poll_requests": sorted(self._poll_requests),
            "trace": self.trace.snapshot(),
        }
        # one deepcopy over the whole composite: detaches envelopes/payloads
        # from the live run while preserving sharing inside the snapshot
        return LayerState("netsim", self.STATE_VERSION, copy.deepcopy(data))

    def restore(self, state: "LayerState") -> None:
        """Install a :meth:`snapshot`-captured state into this machine.

        The machine must have been built with the same configuration
        (topology, queue discipline, fault/latency/reliability setup) —
        checkpoints store *state*, not code.  Raises
        :class:`~repro.errors.CheckpointError` on a detectable mismatch.
        """
        from ..state import CheckpointError, LayerState  # noqa: F401

        data = copy.deepcopy(state.require("netsim", self.STATE_VERSION))
        cfg = data["config"]
        if cfg["n_nodes"] != self.topology.n_nodes or cfg["topology"] != self.topology.describe():
            raise CheckpointError(
                f"checkpoint taken on {cfg['topology']} ({cfg['n_nodes']} nodes); "
                f"this machine is {self.topology.describe()} "
                f"({self.topology.n_nodes} nodes)"
            )
        if cfg["unbounded_fifo"] != self._unbounded_fifo:
            raise CheckpointError(
                "checkpoint and machine disagree on the inbox discipline"
            )
        faults_rng = self._faults._rng
        if cfg["has_fault_rng"] != (faults_rng is not None):
            raise CheckpointError(
                "checkpoint and machine disagree on fault injection"
            )
        self.current_step = data["current_step"]
        self._next_msg_id = data["next_msg_id"]
        self._halted = data["halted"]
        self._rng.setstate(data["rng"])
        if faults_rng is not None:
            faults_rng.setstate(data["faults_rng"])
        for node, envs in enumerate(data["inboxes"]):
            q = self._inboxes[node]._q
            q.clear()
            q.extend(envs)
            self._depths[node] = len(envs)
        # rebuilt ascending, so the next step needs no sort
        self._active = [n for n in range(self.topology.n_nodes) if self._depths[n]]
        self._active_dirty = False
        self._queued_count = sum(self._depths)
        self._in_flight = {
            step: list(pairs) for step, pairs in data["in_flight"].items()
        }
        self._in_flight_count = sum(len(p) for p in self._in_flight.values())
        self._poll_requests = set(data["poll_requests"])
        self._tel_sends = 0
        self.trace.restore(data["trace"])
