"""Canonical digests for cross-commit parity and checkpoint integrity.

Two distinct digests live here, used for two distinct guarantees:

* :func:`canonical_digest` — first 16 hex chars of the sha256 of the
  canonical-JSON encoding of a plain-data object.  The parity tests
  (``tests/netsim/test_step_kernel_parity.py``) pin these across commits
  to prove the batched step kernel never changed semantics, and the
  checkpoint layer (:mod:`repro.state`) uses the same encoding for its
  semantic *state digest* — the value the resume-parity fence compares
  between an interrupted and an uninterrupted run.
* :func:`payload_digest` — full sha256 of raw bytes, used by the on-disk
  checkpoint format to detect corruption/truncation of the serialized
  payload.

Both are stdlib-only and stable across interpreter runs (no reliance on
randomised ``hash()``).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_digest", "payload_digest"]


def canonical_digest(obj: Any, length: int = 16) -> str:
    """First ``length`` hex chars of the sha256 of canonical JSON.

    ``obj`` must be JSON-encodable plain data (the ``default=str`` escape
    hatch keeps numpy scalars and other stringifiable leaves working, as
    the original in-test helper did).  Keys are sorted, so dict insertion
    order never leaks into the digest.
    """
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True, default=str).encode()
    ).hexdigest()[:length]


def payload_digest(data: bytes) -> str:
    """Full sha256 hex digest of raw bytes (checkpoint integrity)."""
    return hashlib.sha256(data).hexdigest()
