"""Send-side fault injection (extension; not part of the paper's model).

The paper assumes perfectly reliable links.  :class:`FaultModel` lets tests
and ablations probe the stack's behaviour under message loss and duplication,
which layer 1's Figure-2 concerns ("buffering and reliability") would handle
on a real machine.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import SimulationError

__all__ = ["FaultModel", "ReliableLinks"]


class FaultModel:
    """Bernoulli drop/duplicate faults applied to every send.

    Parameters
    ----------
    drop_probability:
        Chance that a sent message silently disappears.
    duplicate_probability:
        Chance that a sent message is delivered twice.
    rng:
        Seeded random stream; required when either probability is non-zero
        so runs stay reproducible.
    """

    __slots__ = ("drop_probability", "duplicate_probability", "_rng")

    def __init__(
        self,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        for name, p in (
            ("drop_probability", drop_probability),
            ("duplicate_probability", duplicate_probability),
        ):
            if not (0.0 <= p <= 1.0):
                raise SimulationError(f"{name} must be in [0, 1], got {p}")
        if (drop_probability or duplicate_probability) and rng is None:
            raise SimulationError("a seeded rng is required for non-zero fault rates")
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self._rng = rng

    def copies_to_deliver(self) -> int:
        """How many copies of the next sent message reach the inbox (0/1/2)."""
        if self._rng is None:
            return 1
        if self.drop_probability and self._rng.random() < self.drop_probability:
            return 0
        if (
            self.duplicate_probability
            and self._rng.random() < self.duplicate_probability
        ):
            return 2
        return 1

    @property
    def is_reliable(self) -> bool:
        """True if this model never perturbs messages."""
        return self.drop_probability == 0.0 and self.duplicate_probability == 0.0


#: Shared no-fault model (the paper's assumption).
ReliableLinks = FaultModel()
