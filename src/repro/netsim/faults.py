"""Send-side fault injection (extension; not part of the paper's model).

The paper assumes perfectly reliable links.  :class:`FaultModel` lets tests
and ablations probe the stack's behaviour under message loss and duplication,
which layer 1's Figure-2 concerns ("buffering and reliability") would handle
on a real machine.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import SimulationError

__all__ = ["FaultModel", "ReliableLinks"]


class FaultModel:
    """Bernoulli drop/duplicate faults applied to every send.

    Parameters
    ----------
    drop_probability:
        Chance that a sent message silently disappears.
    duplicate_probability:
        Chance that a sent message is delivered twice.
    rng:
        Seeded random stream; required when either probability is non-zero
        so runs stay reproducible.

    Sampling order
    --------------
    Each call to :meth:`copies_to_deliver` draws the *drop* decision first
    and the *duplicate* decision second, and both draws are made whenever
    the corresponding probability is non-zero — even when the other
    decision already settled the outcome.  The two decisions are therefore
    independent Bernoulli variables, the per-message rng consumption is a
    constant of the configuration (not of the outcomes), and a dropped
    message can simultaneously be a would-be duplicate (the drop wins:
    zero copies).  Earlier revisions skipped the duplicate draw after a
    drop, which entangled the two streams — changing the duplicate rate
    perturbed *which* messages got dropped under the same seed.
    """

    __slots__ = ("drop_probability", "duplicate_probability", "_rng")

    def __init__(
        self,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        for name, p in (
            ("drop_probability", drop_probability),
            ("duplicate_probability", duplicate_probability),
        ):
            if not (0.0 <= p <= 1.0):
                raise SimulationError(f"{name} must be in [0, 1], got {p}")
        if (drop_probability or duplicate_probability) and rng is None:
            raise SimulationError("a seeded rng is required for non-zero fault rates")
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self._rng = rng

    def copies_to_deliver(self) -> int:
        """How many copies of the next sent message reach the inbox (0/1/2).

        Draws are independent and the drop decision dominates; see the
        class docstring ("Sampling order") for the exact contract.
        """
        rng = self._rng
        if rng is None:
            return 1
        dropped = self.drop_probability > 0.0 and rng.random() < self.drop_probability
        duplicated = (
            self.duplicate_probability > 0.0
            and rng.random() < self.duplicate_probability
        )
        if dropped:
            return 0
        return 2 if duplicated else 1

    @property
    def is_reliable(self) -> bool:
        """True if this model never perturbs messages."""
        return self.drop_probability == 0.0 and self.duplicate_probability == 0.0


#: Shared no-fault model (the paper's assumption).
ReliableLinks = FaultModel()
