"""Message envelope used by the layer-1 simulator.

An :class:`Envelope` records the routing metadata the simulator needs (source,
destination, send step, id) around an opaque application payload.  Payloads
are never inspected by layer 1.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Envelope", "EMPTY_MSG"]

#: The empty payload used by the paper's Listing 1 traversal example.
EMPTY_MSG: object = None


class Envelope:
    """A routed message: ``src -> dst`` carrying ``payload``.

    Attributes
    ----------
    src:
        Sending node id, or ``-1`` for messages injected from outside the
        machine (the backend "kickstarts computations by sending EMPTY_MSG
        to a user-selected node").
    dst:
        Destination node id.
    payload:
        Opaque application data.
    sent_step:
        Simulation step at which the message was sent (injections happen
        at step -1, before the clock starts).
    msg_id:
        Unique, monotonically increasing id assigned by the backend; used
        for deterministic tie-breaking and trace correlation.
    """

    __slots__ = ("src", "dst", "payload", "sent_step", "msg_id")

    def __init__(
        self, src: int, dst: int, payload: Any, sent_step: int, msg_id: int
    ) -> None:
        self.src = src
        self.dst = dst
        self.payload = payload
        self.sent_step = sent_step
        self.msg_id = msg_id

    def copy_as(self, msg_id: int) -> "Envelope":
        """Clone with a fresh id (used by duplication fault injection)."""
        return Envelope(self.src, self.dst, self.payload, self.sent_step, msg_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Envelope(#{self.msg_id} {self.src}->{self.dst} "
            f"@{self.sent_step} {self.payload!r})"
        )
