"""Node partitioners for the sharded simulation backend.

A partition splits a topology's node set into ``k`` disjoint shards for
:class:`~repro.netsim.sharded.ShardedMachine`.  Three strategies are
provided, in increasing order of cut quality (and cost):

* ``strip`` — contiguous node-id ranges.  The baseline: trivially
  balanced, oblivious to the interconnect, and what the shard-count
  knob alone would give you.
* ``grid`` — block decomposition over the topology's coordinate
  ``shape``: nodes are reordered block-major (a ``kr x kc`` tiling of
  the first two axes, chosen near-square) and the reordered sequence is
  cut into ``k`` equal runs.  On meshes whose extents the tiling
  divides, shards are exact rectangular blocks — the classic
  surface-to-volume win over strips (cf. the job/mesh mapping
  literature behind Figure 4's mapper comparison).
* ``greedy`` — local min-cut refinement: start from ``strip`` and
  accept single-node moves between shards only when they strictly
  reduce the edge cut and keep every shard size within the balanced
  band.  By construction its cut is never worse than ``strip``'s.

All three are deterministic: same topology, same ``k`` (and, for
``greedy``, same ``seed``) give the identical partition.  Every shard is
balanced within one node of ``n / k``.  The resulting ``edge_cut`` is
reported in telemetry by the sharded machine — it bounds the per-step
boundary traffic the coordinator must exchange.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Sequence

from ..errors import SimulationError
from ..topology import Topology

__all__ = [
    "PARTITIONERS",
    "edge_cut",
    "make_partition",
    "partition_greedy",
    "partition_grid_block",
    "partition_strip",
    "validate_partition",
]

#: A partition: ``parts[i]`` is the sorted list of node ids in shard ``i``.
Partition = List[List[int]]


def _check_shards(n_nodes: int, shards: int) -> None:
    if shards < 1:
        raise SimulationError(f"shards must be >= 1, got {shards}")
    if shards > n_nodes:
        raise SimulationError(
            f"cannot split {n_nodes} nodes into {shards} shards"
        )


def _strip_sizes(n_nodes: int, shards: int) -> List[int]:
    base, extra = divmod(n_nodes, shards)
    return [base + (1 if i < extra else 0) for i in range(shards)]


def _cut_in_order(order: Sequence[int], sizes: Sequence[int]) -> Partition:
    parts: Partition = []
    at = 0
    for size in sizes:
        parts.append(sorted(order[at : at + size]))
        at += size
    return parts


def partition_strip(topology: Topology, shards: int, seed: int = 0) -> Partition:
    """Contiguous node-id ranges, sizes balanced within one node."""
    n = topology.n_nodes
    _check_shards(n, shards)
    return _cut_in_order(range(n), _strip_sizes(n, shards))


def _block_factors(shards: int, rows: int, cols: int) -> "tuple[int, int]":
    """Factor ``shards`` into a ``kr x kc`` tiling matching the aspect ratio.

    Minimises the half-perimeter of the resulting blocks (the proxy for
    boundary length); ties break toward the smaller row count so the
    choice is deterministic.
    """
    best = (shards, 1)
    best_cost = float("inf")
    for kr in range(1, shards + 1):
        if shards % kr:
            continue
        kc = shards // kr
        if kr > rows or kc > cols:
            continue
        cost = rows / kr + cols / kc
        if cost < best_cost:
            best, best_cost = (kr, kc), cost
    if best_cost == float("inf"):
        # degenerate extents (e.g. a 1-d shape narrower than the tiling):
        # fall back to banding the first axis only
        best = (min(shards, rows), 1) if rows >= cols else (1, min(shards, cols))
    return best


def partition_grid_block(topology: Topology, shards: int, seed: int = 0) -> Partition:
    """Block decomposition over the topology's coordinate ``shape``.

    Nodes are keyed by their coarse block in a ``kr x kc`` tiling of the
    first two coordinate axes, ordered block-major, and the order is cut
    into ``k`` runs of balanced size — so shards stay within one node of
    each other even when the tiling does not divide the extents.  On a
    1-d shape this degenerates to ``strip``.
    """
    n = topology.n_nodes
    _check_shards(n, shards)
    shape = topology.shape
    rows = shape[0]
    cols = shape[1] if len(shape) > 1 else 1
    kr, kc = _block_factors(shards, rows, cols)

    def block_key(node: int) -> "tuple[int, int, int]":
        cs = topology.coords(node)
        r = cs[0]
        c = cs[1] if len(cs) > 1 else 0
        return (r * kr // rows, c * kc // max(cols, 1), node)

    order = sorted(topology.nodes(), key=block_key)
    return _cut_in_order(order, _strip_sizes(n, shards))


def partition_greedy(
    topology: Topology,
    shards: int,
    seed: int = 0,
    sweeps: int = 4,
) -> Partition:
    """Greedy min-cut refinement of the ``strip`` partition.

    Sweeps the nodes (visit order shuffled by ``seed``) and moves a node
    to a neighbouring shard when that strictly reduces the edge cut and
    both shard sizes stay inside the balanced band ``[floor(n/k),
    ceil(n/k)]``.  Stops after ``sweeps`` passes or the first pass with
    no improving move.  The cut is therefore monotonically non-increasing
    from ``strip``'s, and the output is a pure function of
    ``(topology, shards, seed)``.
    """
    n = topology.n_nodes
    _check_shards(n, shards)
    parts = partition_strip(topology, shards)
    if shards == 1:
        return parts
    part_of = [0] * n
    for si, nodes in enumerate(parts):
        for node in nodes:
            part_of[node] = si
    sizes = [len(nodes) for nodes in parts]
    floor_size, ceil_size = n // shards, -(-n // shards)
    adjacency = topology.adjacency_lists()
    rng = random.Random(seed)
    visit = list(range(n))
    for _ in range(max(1, sweeps)):
        rng.shuffle(visit)
        moved = False
        for node in visit:
            src = part_of[node]
            if sizes[src] - 1 < floor_size:
                continue
            # gain of moving to shard b = (neighbours in b) - (in src)
            local: Dict[int, int] = {}
            for nb in adjacency[node]:
                p = part_of[nb]
                local[p] = local.get(p, 0) + 1
            here = local.get(src, 0)
            best_dst, best_gain = -1, 0
            for dst in sorted(local):
                if dst == src or sizes[dst] + 1 > ceil_size:
                    continue
                gain = local[dst] - here
                if gain > best_gain:
                    best_dst, best_gain = dst, gain
            if best_dst >= 0:
                part_of[node] = best_dst
                sizes[src] -= 1
                sizes[best_dst] += 1
                moved = True
        if not moved:
            break
    refined: Partition = [[] for _ in range(shards)]
    for node in range(n):
        refined[part_of[node]].append(node)
    return refined


#: Registry of partitioner names -> functions.
PARTITIONERS: Dict[str, Callable[..., Partition]] = {
    "strip": partition_strip,
    "grid": partition_grid_block,
    "greedy": partition_greedy,
}


def make_partition(
    topology: Topology, shards: int, partitioner: str = "strip", seed: int = 0
) -> Partition:
    """Build and validate a partition by registry name."""
    try:
        fn = PARTITIONERS[partitioner]
    except KeyError:
        raise SimulationError(
            f"unknown partitioner {partitioner!r}; "
            f"expected one of {sorted(PARTITIONERS)}"
        ) from None
    parts = fn(topology, shards, seed=seed)
    validate_partition(topology, parts)
    return parts


def validate_partition(topology: Topology, parts: Partition) -> None:
    """Raise unless ``parts`` covers every node exactly once, balanced."""
    seen = sorted(node for shard in parts for node in shard)
    if seen != list(topology.nodes()):
        raise SimulationError(
            f"partition does not cover every node exactly once "
            f"({len(seen)} assignments over {topology.n_nodes} nodes)"
        )
    sizes = [len(shard) for shard in parts]
    if sizes and max(sizes) - min(sizes) > 1:
        raise SimulationError(f"partition is unbalanced: shard sizes {sizes}")


def edge_cut(topology: Topology, parts: Partition) -> int:
    """Number of topology edges whose endpoints land in different shards."""
    part_of = [0] * topology.n_nodes
    for si, nodes in enumerate(parts):
        for node in nodes:
            part_of[node] = si
    return sum(1 for a, b in topology.edges() if part_of[a] != part_of[b])
