"""Node program interface for the layer-1 simulator.

A :class:`NodeProgram` is the code every node runs: ``init`` builds the
per-node state and ``on_message`` transforms it when a message is delivered.
This mirrors the paper's §IV-A backend exactly — compare the paper's
Listing 1 with :func:`repro.apps.traversal.traversal_program`.

Two styles are supported:

* subclass :class:`NodeProgram` (used by the stacked layers), or
* wrap plain ``init`` / ``receive`` functions with :class:`FunctionalProgram`,
  whose ``receive`` signature matches the paper's listing:
  ``receive(node, state, sender, msg, send, neighbours)``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, Sequence, runtime_checkable

from ..topology import NodeId

__all__ = ["SendFn", "NodeContext", "NodeProgram", "FunctionalProgram"]

#: Signature of the send handler passed to node code: ``send(dst, payload)``.
SendFn = Callable[[NodeId, Any], None]


class NodeContext:
    """Per-node view of the machine handed to node programs.

    Attributes
    ----------
    node:
        This node's id.
    neighbours:
        Ordered tuple of adjacent node ids (order fixed by the topology).
    send:
        Enqueue ``payload`` for a neighbouring node.  Messages sent while
        handling step *t* cannot be delivered before step *t+1*.
    state:
        Arbitrary application state slot (set by ``init``).
    """

    __slots__ = ("node", "neighbours", "send", "state", "_machine")

    def __init__(
        self,
        node: NodeId,
        neighbours: Sequence[NodeId],
        send: SendFn,
        machine: "Any",
    ) -> None:
        self.node = node
        self.neighbours = tuple(neighbours)
        self.send = send
        self.state: Any = None
        self._machine = machine

    @property
    def step(self) -> int:
        """Current simulation step (``-1`` during ``init``)."""
        return self._machine.current_step

    @property
    def machine(self) -> Any:
        """The owning :class:`~repro.netsim.backend.Machine` (for services
        like :meth:`~repro.netsim.backend.Machine.request_poll` and
        :meth:`~repro.netsim.backend.Machine.halt`)."""
        return self._machine

    @property
    def n_nodes(self) -> int:
        """Total number of nodes in the machine."""
        return self._machine.topology.n_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeContext(node={self.node}, step={self.step})"


@runtime_checkable
class NodeProgram(Protocol):
    """Code run by every node of a simulated machine."""

    def init(self, ctx: NodeContext) -> None:
        """Initialise ``ctx.state``; called once per node before step 0."""
        ...

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        """Handle one delivered message (the paper's ``receive`` handler)."""
        ...


class FunctionalProgram:
    """Adapt paper-style ``init`` / ``receive`` functions to the protocol.

    ``init_fn(node) -> state`` and
    ``receive_fn(node, state, sender, msg, send, neighbours) -> state | None``
    — if ``receive_fn`` returns a non-``None`` value it replaces the state,
    otherwise in-place mutation is assumed (both styles appear in the paper's
    listings).
    """

    __slots__ = ("_init_fn", "_receive_fn")

    def __init__(
        self,
        init_fn: Optional[Callable[[NodeId], Any]],
        receive_fn: Callable[..., Any],
    ) -> None:
        self._init_fn = init_fn
        self._receive_fn = receive_fn

    def init(self, ctx: NodeContext) -> None:
        ctx.state = self._init_fn(ctx.node) if self._init_fn is not None else None

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        new_state = self._receive_fn(
            ctx.node, ctx.state, sender, payload, ctx.send, ctx.neighbours
        )
        if new_state is not None:
            ctx.state = new_state
