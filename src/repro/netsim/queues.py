"""Inbox queue implementations and pop policies.

The paper's backend uses plain FIFO queues of unbounded capacity ("inter-node
message queues were sufficiently large to accommodate all pushed messages").
FIFO/unbounded is the default here; LIFO and seeded-random pop orders plus
finite capacities are provided as documented extensions, used by the
ablation benches and by tests probing ordering assumptions.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Iterable, Iterator, List, Optional

from ..errors import QueueOverflowError, SimulationError
from .message import Envelope

__all__ = ["Inbox", "FifoInbox", "LifoInbox", "RandomInbox", "make_inbox"]


class Inbox:
    """Abstract per-node inbox."""

    __slots__ = ("capacity", "overflow")

    def __init__(self, capacity: Optional[int], overflow: str) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"inbox capacity must be >= 1, got {capacity}")
        if overflow not in ("raise", "drop"):
            raise SimulationError(f"overflow policy must be 'raise' or 'drop', got {overflow!r}")
        self.capacity = capacity
        self.overflow = overflow

    def push(self, env: Envelope) -> bool:
        """Enqueue; returns False if the message was dropped on overflow."""
        if self.capacity is not None and len(self) >= self.capacity:
            if self.overflow == "raise":
                raise QueueOverflowError(
                    f"inbox of node {env.dst} overflowed (capacity {self.capacity})"
                )
            return False
        self._store(env)
        return True

    def pop(self) -> Envelope:
        """Dequeue one message according to this inbox's policy."""
        raise NotImplementedError

    def _store(self, env: Envelope) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Envelope]:
        raise NotImplementedError


class FifoInbox(Inbox):
    """First-in first-out inbox — the paper's queue discipline."""

    __slots__ = ("_q",)

    def __init__(self, capacity: Optional[int] = None, overflow: str = "raise") -> None:
        super().__init__(capacity, overflow)
        self._q: deque[Envelope] = deque()

    def _store(self, env: Envelope) -> None:
        self._q.append(env)

    def pop(self) -> Envelope:
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)

    def __iter__(self) -> Iterator[Envelope]:
        return iter(self._q)


class LifoInbox(Inbox):
    """Last-in first-out inbox — depth-first-flavoured delivery order."""

    __slots__ = ("_q",)

    def __init__(self, capacity: Optional[int] = None, overflow: str = "raise") -> None:
        super().__init__(capacity, overflow)
        self._q: List[Envelope] = []

    def _store(self, env: Envelope) -> None:
        self._q.append(env)

    def pop(self) -> Envelope:
        return self._q.pop()

    def __len__(self) -> int:
        return len(self._q)

    def __iter__(self) -> Iterator[Envelope]:
        return iter(self._q)


class RandomInbox(Inbox):
    """Uniform-random pop order (seeded) — models unordered networks."""

    __slots__ = ("_q", "_rng")

    def __init__(
        self,
        rng: random.Random,
        capacity: Optional[int] = None,
        overflow: str = "raise",
    ) -> None:
        super().__init__(capacity, overflow)
        self._q: List[Envelope] = []
        self._rng = rng

    def _store(self, env: Envelope) -> None:
        self._q.append(env)

    def pop(self) -> Envelope:
        i = self._rng.randrange(len(self._q))
        self._q[i], self._q[-1] = self._q[-1], self._q[i]
        return self._q.pop()

    def __len__(self) -> int:
        return len(self._q)

    def __iter__(self) -> Iterator[Envelope]:
        return iter(self._q)


def make_inbox(
    policy: str,
    rng: random.Random,
    capacity: Optional[int] = None,
    overflow: str = "raise",
) -> Inbox:
    """Build an inbox for the given pop ``policy`` (fifo / lifo / random)."""
    if policy == "fifo":
        return FifoInbox(capacity, overflow)
    if policy == "lifo":
        return LifoInbox(capacity, overflow)
    if policy == "random":
        return RandomInbox(rng, capacity, overflow)
    raise SimulationError(f"unknown queue policy {policy!r}")
