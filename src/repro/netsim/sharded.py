"""Sharded multi-process simulation backend (bit-identical to serial).

:class:`ShardedMachine` splits the topology's nodes into K shards (see
:mod:`repro.netsim.partition`) and runs each shard's node handlers in a
persistent worker process, while keeping **every piece of layer-1 state on
the coordinator**: inboxes, in-flight messages, fault/latency machinery,
the reliability protocol, the trace recorder, message-id allocation and
the machine RNG.  Workers own only what the node *programs* store in
their contexts (layers 2-5).

The design is function shipping, not state exchange.  Each step runs the
same two phases as :meth:`repro.netsim.Machine.step`:

1. **poll round** — nodes that requested a step callback are dispatched
   to their owning shards; workers run ``program.on_step`` and return the
   side effects as *intents* (sends, poll requests, halt).
2. **delivery round** — the coordinator pops exactly one envelope per
   non-empty-at-step-start inbox (ascending node id, exactly the serial
   kernel's pops), ships ``(node, src, payload)`` triples to the owning
   shards, and workers run ``program.on_message``.

Returned send intents are replayed through the coordinator's real
``_send_from`` in the serial kernel's order (ascending node id, each
node's sends in execution order), so fault-RNG draws, message ids, trace
records and telemetry counters are produced by the *same code in the same
order* as a single-process run — which is what makes the global schedule,
verdicts and digests bit-identical by construction rather than by
accident.  The parity is pinned by ``tests/netsim/test_sharded.py``
against the digests of ``tests/netsim/test_step_kernel_parity.py``.

Determinism means the shard count is a *partitioning* choice, not a
semantic one: any K produces the same run, and a checkpoint taken under
one shard count resumes under any other (or serially) because no shard
information leaks into layer state.

Constraints (all raise :class:`~repro.errors.SimulationError` upfront):

* only the paper's default unbounded FIFO inbox discipline is supported
  (the pop-all-upfront delivery snapshot is provably order-equivalent to
  the serial kernel only for unbounded FIFO);
* programs must not read live coordinator state from inside handlers —
  ``queue_depth_of`` (queue-load work sharing) is rejected;
* worker programs must be picklable.  Pass a :class:`ShardProgramSpec`
  (a picklable *recipe*) for programs that close over unpicklable state;
  the ``auto`` backend falls back to the in-process cell otherwise.

Telemetry: layer-1 events are complete and exactly ordered (the
coordinator emits them).  Worker-side layer 2-5 events are collected on a
per-worker bus and relayed to the coordinator bus at drain points (end of
run, every checkpoint composition, :meth:`ShardedMachine.drain_telemetry`)
— counters, histograms and ``events_emitted`` match a serial run exactly;
only the fine-grained *interleaving* of the event stream may differ.  See
``docs/parallelism.md``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import AdjacencyError, SimulationError
from ..topology import NodeId, Topology
from .backend import Machine
from .partition import edge_cut, make_partition
from .program import NodeContext

__all__ = [
    "SHARDS_ENV_VAR",
    "ShardProgramSpec",
    "ShardWorkerError",
    "ShardedMachine",
    "resolve_shards",
]

#: Environment variable consulted when ``shards`` is not given explicitly
#: (the sharded sibling of the executor's ``REPRO_JOBS``).
SHARDS_ENV_VAR = "REPRO_SHARDS"


def resolve_shards(shards: Any = None) -> int:
    """Resolve a shard-count request to a concrete positive integer.

    ``None`` consults :data:`SHARDS_ENV_VAR` and defaults to 1 (serial).
    ``"auto"`` or ``0`` means one shard per available CPU.  Unlike
    :func:`repro.parallel.resolve_jobs`, an explicit count is *not*
    capped at the host's core count: shards partition the simulation
    deterministically — any K gives the identical run — so oversubscribing
    is a correctness-neutral layout choice (and what the cross-shard-count
    resume tests rely on).
    """
    if shards is None:
        raw = os.environ.get(SHARDS_ENV_VAR, "").strip()
        if not raw:
            return 1
        shards = raw
    if shards == "auto":
        return os.cpu_count() or 1
    try:
        n = int(shards)
    except (TypeError, ValueError):
        raise SimulationError(
            f"invalid shard count {shards!r}: expected an int or 'auto'"
        ) from None
    if n == 0:
        return os.cpu_count() or 1
    if n < 0:
        raise SimulationError(f"shard count must be >= 0 or 'auto', got {n}")
    return n


class ShardWorkerError(SimulationError):
    """A shard worker raised; carries the worker-side traceback."""

    def __init__(self, shard: int, worker_traceback: str) -> None:
        self.shard = shard
        self.worker_traceback = worker_traceback
        super().__init__(
            f"shard worker {shard} failed:\n{worker_traceback.rstrip()}"
        )


class ShardProgramSpec:
    """A picklable recipe for building a node program inside a worker.

    ``builder(*args, **kwargs)`` must return a fresh
    :class:`~repro.netsim.NodeProgram`; builder and arguments must be
    picklable (module-level callables pickle by reference).  When
    ``telemetry_kwarg`` is set, the worker passes its local bus under that
    keyword so layer 2-5 publishers inside the shard emit into the relay.

    Example::

        spec = ShardProgramSpec(make_solve_sat, "max_occurrence",
                                rng=random.Random(7), simplify="single")
        machine = ShardedMachine(topology, spec, shards=4)
    """

    __slots__ = ("builder", "args", "kwargs", "telemetry_kwarg")

    def __init__(
        self,
        builder: Callable[..., Any],
        *args: Any,
        telemetry_kwarg: Optional[str] = None,
        **kwargs: Any,
    ) -> None:
        if not callable(builder):
            raise SimulationError(f"program builder {builder!r} is not callable")
        self.builder = builder
        self.args = args
        self.kwargs = kwargs
        self.telemetry_kwarg = telemetry_kwarg

    def build(self, telemetry: Any = None) -> Any:
        kwargs = dict(self.kwargs)
        if self.telemetry_kwarg is not None:
            kwargs[self.telemetry_kwarg] = telemetry
        return self.builder(*self.args, **kwargs)

    def __getstate__(self):
        return (self.builder, self.args, self.kwargs, self.telemetry_kwarg)

    def __setstate__(self, state):
        self.builder, self.args, self.kwargs, self.telemetry_kwarg = state


class _EventCollector:
    """Worker-bus subscriber that retains events as relay-ready tuples."""

    needs_events = True

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Tuple[Any, ...]] = []

    def on_event(self, ev: Any) -> None:
        self.events.append((ev.step, ev.layer, ev.name, ev.node, ev.dur, ev.attrs))

    def drain(self) -> List[Tuple[Any, ...]]:
        out = self.events
        self.events = []
        return out


class _WorkerMachineFacade:
    """The ``ctx.machine`` a shard's node programs see.

    Mirrors the send-validation the serial machine performs (bounds,
    adjacency, full-topology self-send — same error types and messages)
    but records the side effects as intents instead of mutating queues;
    the coordinator replays them through the real send path.
    """

    __slots__ = (
        "topology",
        "current_step",
        "_full",
        "_check_neighbours",
        "_neighbour_sets",
        "_has_on_step",
        "_program_name",
        "sends",
        "polls",
        "halted",
    )

    def __init__(self, topology: Topology, enforce_adjacency: bool) -> None:
        self.topology = topology
        self.current_step = -1
        self._full = topology.kind == "full"
        self._check_neighbours = enforce_adjacency and not self._full
        self._neighbour_sets = [
            frozenset(topology.neighbours(n)) for n in topology.nodes()
        ]
        self._has_on_step = False
        self._program_name = "?"
        #: send intents in execution order: (src, dst, payload)
        self.sends: List[Tuple[NodeId, NodeId, Any]] = []
        self.polls: set = set()
        self.halted = False

    def set_program(self, program: Any) -> None:
        self._has_on_step = hasattr(program, "on_step")
        self._program_name = type(program).__name__

    def make_send(self, src: NodeId) -> Callable[[NodeId, Any], None]:
        sends = self.sends

        def send(dst: NodeId, payload: Any) -> None:
            if not (0 <= dst < self.topology.n_nodes):
                raise SimulationError(f"send to invalid node {dst} from node {src}")
            if self._check_neighbours:
                if dst not in self._neighbour_sets[src]:
                    raise AdjacencyError(
                        f"node {src} attempted to send to non-neighbour {dst} "
                        f"(topology {self.topology.describe()})"
                    )
            elif self._full and src == dst:
                raise AdjacencyError(f"node {src} attempted to send to itself")
            sends.append((src, dst, payload))

        return send

    def request_poll(self, node: NodeId) -> None:
        if not self._has_on_step:
            raise SimulationError(
                f"program {self._program_name} has no on_step hook"
            )
        self.topology.check_node(node)
        self.polls.add(node)

    def halt(self) -> None:
        self.halted = True

    def queue_depth_of(self, node: NodeId) -> int:
        raise SimulationError(
            "queue_depth_of is unavailable inside a shard worker (inbox "
            "state lives on the coordinator); queue-load work sharing is "
            "not supported by the sharded backend"
        )

    def queue_depths(self) -> List[int]:
        self.queue_depth_of(0)
        raise AssertionError("unreachable")  # pragma: no cover

    def take_intents(self) -> Tuple[List[Tuple[NodeId, NodeId, Any]], List[NodeId], bool]:
        # drain in place: the per-node send closures hold a reference to
        # this exact list, so rebinding ``self.sends`` would orphan them
        sends = self.sends[:]
        self.sends.clear()
        polls = sorted(self.polls)
        self.polls.clear()
        halted = self.halted
        self.halted = False
        return sends, polls, halted


class _ShardCore:
    """One shard's handler executor (shared by both backends)."""

    def __init__(
        self,
        topology: Topology,
        nodes: Sequence[NodeId],
        program: Any,
        enforce_adjacency: bool,
    ) -> None:
        self.facade = _WorkerMachineFacade(topology, enforce_adjacency)
        self.program = program
        self.facade.set_program(program)
        self.contexts: Dict[NodeId, NodeContext] = {}
        for node in nodes:
            neigh = tuple(topology.neighbours(node))
            self.contexts[node] = NodeContext(
                node, neigh, self.facade.make_send(node), self.facade
            )

    def init(self):
        init = self.program.init
        for node in sorted(self.contexts):
            init(self.contexts[node])
        return self.facade.take_intents()

    def poll(self, step: int, nodes: Sequence[NodeId]):
        self.facade.current_step = step
        on_step = self.program.on_step
        contexts = self.contexts
        for node in nodes:
            on_step(contexts[node])
        return self.facade.take_intents()

    def deliver(self, step: int, triples: Sequence[Tuple[NodeId, NodeId, Any]]):
        self.facade.current_step = step
        on_message = self.program.on_message
        contexts = self.contexts
        for node, src, payload in triples:
            on_message(contexts[node], src, payload)
        return self.facade.take_intents()

    def map_nodes(self, step: int, fn: Callable, pairs: Sequence[Tuple[NodeId, Any]]):
        self.facade.current_step = step
        out = []
        for node, arg in pairs:
            out.append((node, fn(self.program, self.contexts[node], arg)))
        sends, polls, halted = self.facade.take_intents()
        if sends or polls or halted:
            raise SimulationError(
                "map_nodes callbacks must not send, request polls, or halt"
            )
        return out


def _exception_if_picklable(exc: BaseException) -> Optional[BaseException]:
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return None


def _shard_worker_main(
    conn: Any,
    topology: Topology,
    nodes: Tuple[NodeId, ...],
    program_source: Any,
    enforce_adjacency: bool,
    telemetry_on: bool,
) -> None:
    """Entry point of one persistent shard worker process."""
    collector: Optional[_EventCollector] = None
    try:
        bus = None
        if telemetry_on:
            from ..telemetry import TelemetryBus

            bus = TelemetryBus()
            collector = bus.attach(_EventCollector())
        program = (
            program_source.build(bus)
            if isinstance(program_source, ShardProgramSpec)
            else program_source
        )
        core = _ShardCore(topology, nodes, program, enforce_adjacency)
        if telemetry_on:
            from ..telemetry.probe import install_probes, uninstall_probes

            # a forked worker may inherit the parent's installed probe bus
            uninstall_probes()
            facade = core.facade
            install_probes(bus, step_fn=lambda: facade.current_step)
        conn.send(("ok", core.init()))
    except BaseException as exc:  # noqa: BLE001 - relayed to the coordinator
        conn.send(("err", traceback.format_exc(), _exception_if_picklable(exc)))
        conn.close()
        return
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return
        kind = msg[0]
        if kind == "close":
            conn.send(("ok", None))
            conn.close()
            return
        try:
            if kind == "poll":
                result = core.poll(msg[1], msg[2])
            elif kind == "deliver":
                result = core.deliver(msg[1], msg[2])
            elif kind == "map":
                result = core.map_nodes(msg[1], msg[2], msg[3])
            elif kind == "telemetry":
                result = collector.drain() if collector is not None else []
            else:
                raise SimulationError(f"unknown shard request {kind!r}")
            conn.send(("ok", result))
        except BaseException as exc:  # noqa: BLE001 - relayed to the coordinator
            conn.send(("err", traceback.format_exc(), _exception_if_picklable(exc)))


class _InlineCell:
    """In-process shard cell (K=1 and the non-picklable fallback)."""

    def __init__(self, core: _ShardCore) -> None:
        self._core = core
        self.nodes = sorted(core.contexts)
        self._reply: Any = None

    def request(self, msg: Tuple[Any, ...]) -> None:
        kind = msg[0]
        if kind == "poll":
            self._reply = self._core.poll(msg[1], msg[2])
        elif kind == "deliver":
            self._reply = self._core.deliver(msg[1], msg[2])
        elif kind == "map":
            self._reply = self._core.map_nodes(msg[1], msg[2], msg[3])
        elif kind == "telemetry":
            # inline handlers publish straight to the coordinator bus
            self._reply = []
        else:  # pragma: no cover - coordinator never sends others
            raise SimulationError(f"unknown shard request {kind!r}")

    def response(self) -> Any:
        reply = self._reply
        self._reply = None
        return reply

    def close(self) -> None:
        pass


class _ProcessCell:
    """Coordinator-side handle of one persistent worker process."""

    def __init__(
        self,
        shard: int,
        ctx: Any,
        topology: Topology,
        nodes: Sequence[NodeId],
        program_source: Any,
        enforce_adjacency: bool,
        telemetry_on: bool,
    ) -> None:
        self.shard = shard
        self.nodes = sorted(nodes)
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker_main,
            args=(
                child,
                topology,
                tuple(self.nodes),
                program_source,
                enforce_adjacency,
                telemetry_on,
            ),
            daemon=True,
            name=f"repro-shard-{shard}",
        )
        self._proc.start()
        child.close()
        self._closed = False

    def request(self, msg: Tuple[Any, ...]) -> None:
        self._conn.send(msg)

    def response(self) -> Any:
        try:
            reply = self._conn.recv()
        except EOFError:
            raise ShardWorkerError(
                self.shard, "worker process exited without replying"
            ) from None
        if reply[0] == "ok":
            return reply[1]
        _tag, worker_tb, exc = reply
        if exc is not None:
            raise exc
        raise ShardWorkerError(self.shard, worker_tb)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._conn.send(("close",))
            self._conn.recv()
        except (OSError, EOFError, BrokenPipeError):
            pass
        try:
            self._conn.close()
        except OSError:
            pass
        self._proc.join(timeout=5)
        if self._proc.is_alive():  # pragma: no cover - defensive
            self._proc.terminate()
            self._proc.join(timeout=5)


def _shippable(payload: Any) -> bool:
    try:
        pickle.dumps(payload)
        return True
    except Exception:
        return False


class ShardedMachine(Machine):
    """A :class:`Machine` whose node handlers run in shard workers.

    Drop-in for :class:`Machine` wherever programs do not read live
    machine state from handlers: same constructor keywords, same
    :meth:`step`/:meth:`run`/:meth:`snapshot`/:meth:`restore`, same trace
    and digests.  Additional parameters:

    shards:
        Shard count request (``None`` → :data:`SHARDS_ENV_VAR` → 1;
        ``"auto"``/``0`` → CPU count).  Clamped to ``n_nodes``.
    partitioner:
        ``"strip"`` (default), ``"grid"``, or ``"greedy"`` — see
        :mod:`repro.netsim.partition`.  The resulting edge cut is exposed
        as :attr:`edge_cut` and reported on the telemetry bus as the
        ``l1.shard_edge_cut`` / ``l1.shard_count`` counters.
    shard_backend:
        ``"process"`` (persistent worker processes), ``"inline"``
        (in-process cells — the serial fallback with identical
        semantics), or ``"auto"`` (default: ``process`` when K > 1 and
        the program + topology pickle, else ``inline``).
    partition_seed:
        Seed for the ``greedy`` partitioner's visit order.
    mp_context:
        A :mod:`multiprocessing` context or start-method name
        (``"fork"``/``"spawn"``/``"forkserver"``); default is the
        platform default.  All shipped state is spawn-safe.

    Workers are persistent; call :meth:`close` (or use the machine as a
    context manager) to shut them down.  They are daemonic, so an
    unclosed machine cannot hang interpreter exit.
    """

    _init_node_programs = False

    def __init__(
        self,
        topology: Topology,
        program: Any,
        *,
        shards: Any = None,
        partitioner: str = "strip",
        shard_backend: str = "auto",
        partition_seed: int = 0,
        mp_context: Any = None,
        **machine_kwargs: Any,
    ) -> None:
        self._cells: List[Any] = []
        if shard_backend not in ("auto", "process", "inline"):
            raise SimulationError(
                f"shard_backend must be 'auto', 'process' or 'inline', "
                f"got {shard_backend!r}"
            )
        k = min(resolve_shards(shards), topology.n_nodes)
        source = program
        spec = program if isinstance(program, ShardProgramSpec) else None
        if shard_backend == "auto":
            backend = (
                "process"
                if k > 1 and _shippable((source, topology))
                else "inline"
            )
        else:
            backend = shard_backend
        telemetry = machine_kwargs.get("telemetry")
        if spec is not None:
            # the coordinator's local instance only provides program
            # *shape* (on_step presence, scheduler templates for layer
            # snapshots); in inline mode it also executes, so it gets the
            # real bus there
            local_program = spec.build(telemetry if backend == "inline" else None)
        else:
            local_program = program
        super().__init__(topology, local_program, **machine_kwargs)
        if not self._unbounded_fifo:
            raise SimulationError(
                "the sharded backend supports only the default unbounded "
                "FIFO inboxes (queue_policy='fifo', queue_capacity=None)"
            )
        self.shards = k
        self.shard_backend = backend
        self.partitioner = partitioner
        self.partition = make_partition(topology, k, partitioner, seed=partition_seed)
        self.edge_cut = edge_cut(topology, self.partition)
        #: owning cell index per node
        self._cell_of: List[int] = [0] * topology.n_nodes
        if backend == "inline":
            core = _ShardCore(
                topology, list(topology.nodes()), local_program,
                self._enforce_adjacency,
            )
            self._cells = [_InlineCell(core)]
        else:
            if isinstance(mp_context, str) or mp_context is None:
                mp_context = multiprocessing.get_context(mp_context)
            payload = spec if spec is not None else program
            if not _shippable((payload, topology)):
                raise SimulationError(
                    "shard_backend='process' needs a picklable program and "
                    "topology; wrap unpicklable programs in a ShardProgramSpec "
                    "or use shard_backend='inline'"
                )
            cells: List[Any] = []
            try:
                for shard, nodes in enumerate(self.partition):
                    cells.append(
                        _ProcessCell(
                            shard,
                            mp_context,
                            topology,
                            nodes,
                            payload,
                            self._enforce_adjacency,
                            telemetry is not None,
                        )
                    )
                self._cells = cells
                for node_list, index in (
                    (cell.nodes, i) for i, cell in enumerate(cells)
                ):
                    for node in node_list:
                        self._cell_of[node] = index
                self._replay_init(self._gather_init())
            except BaseException:
                self._cells = cells
                self.close()
                raise
        if backend == "inline":
            # the single inline cell owns every node (_cell_of stays 0)
            self._replay_init(self._gather_init())
        tel = self._telemetry
        if tel is not None:
            # counters, not events: events_emitted must stay bit-equal to a
            # serial run so checkpoints digest identically across backends
            tel.count(1, "shard_count", self.shards)
            tel.count(1, "shard_edge_cut", self.edge_cut)

    # -- worker lifecycle ------------------------------------------------

    def _gather_init(self):
        """Collect init-time intents (the handshake doubles as readiness)."""
        if self.shard_backend == "inline":
            return [self._cells[0]._core.init()]
        return [cell.response() for cell in self._cells]

    def _replay_init(self, replies) -> None:
        sends: List[Tuple[NodeId, NodeId, Any]] = []
        for cell_sends, polls, halted in replies:
            sends.extend(cell_sends)
            if polls:
                self._poll_requests.update(polls)
            if halted:
                self._halted = True
        # serial init runs nodes in ascending order, each node's sends
        # inline; a stable sort on the source node reproduces that order
        sends.sort(key=lambda intent: intent[0])
        send_from = self._send_from
        for src, dst, payload in sends:
            send_from(src, dst, payload)

    def close(self) -> None:
        """Shut down the shard workers (idempotent)."""
        cells = getattr(self, "_cells", None)
        if not cells:
            return
        self._cells = []
        for cell in cells:
            cell.close()

    def __enter__(self) -> "ShardedMachine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- dispatch --------------------------------------------------------

    def _dispatch(self, kind: str, step: int, per_cell: Dict[int, list]):
        """Ship one round to the owning cells; merge intents.

        Returns ``(groups, polls, halted)`` where ``groups`` maps source
        node to its send intents in execution order.
        """
        cells = self._cells
        order = sorted(per_cell)
        for index in order:
            cells[index].request((kind, step, per_cell[index]))
        groups: Dict[NodeId, List[Tuple[NodeId, Any]]] = {}
        polls: List[NodeId] = []
        halted = False
        for index in order:
            sends, cell_polls, cell_halted = cells[index].response()
            for src, dst, payload in sends:
                bucket = groups.get(src)
                if bucket is None:
                    groups[src] = [(dst, payload)]
                else:
                    bucket.append((dst, payload))
            polls.extend(cell_polls)
            halted = halted or cell_halted
        return groups, polls, halted

    def _group_by_cell(self, nodes: Sequence[NodeId]) -> Dict[int, List[NodeId]]:
        cell_of = self._cell_of
        per: Dict[int, List[NodeId]] = {}
        for node in nodes:
            index = cell_of[node]
            bucket = per.get(index)
            if bucket is None:
                per[index] = [node]
            else:
                bucket.append(node)
        return per

    # -- the event loop (mirrors Machine.step exactly) -------------------

    def step(self) -> int:
        """One simulation step; bit-identical side effects to serial.

        Every coordinator-side mutation below is the serial kernel's code
        in the serial kernel's order — only the handler *execution* moves
        into the shards, and their sends come back as intents replayed in
        ascending-node order (which is exactly where the serial loop would
        have made them).
        """
        self.current_step += 1
        step = self.current_step
        rel = self._reliability
        if rel is not None:
            rel.on_step(step)
        if self._in_flight_count:
            matured = self._in_flight.pop(step, None)
            if matured is not None:
                self._in_flight_count -= len(matured)
                for dst, env in matured:
                    self._enqueue(dst, env)
        # -- poll round (sends made here deliver within this step) -------
        if self._poll_requests:
            polled = sorted(self._poll_requests)
            self._poll_requests.clear()
            per_cell = self._group_by_cell(polled)
            groups, polls, halted = self._dispatch("poll", step, per_cell)
            send_from = self._send_from
            for node in polled:
                intents = groups.get(node)
                if intents:
                    for dst, payload in intents:
                        send_from(node, dst, payload)
            if polls:
                self._poll_requests.update(polls)
            if halted:
                self._halted = True
        # -- delivery round ----------------------------------------------
        active = self._active
        if self._active_dirty:
            active.sort()
            self._active_dirty = False
        n0 = len(active)
        tel = self._telemetry
        if n0:
            pop_fns = self._pop_fns
            depths = self._depths
            delivered = active[:n0]
            write = 0
            triples: List[Tuple[NodeId, NodeId, Any]] = []
            for node in delivered:
                env = pop_fns[node]()
                depth = depths[node] - 1
                depths[node] = depth
                if depth:
                    active[write] = node
                    write += 1
                triples.append((node, env.src, env.payload))
            if write != n0:
                del active[write:n0]
            per_cell: Dict[int, List[Tuple[NodeId, NodeId, Any]]] = {}
            cell_of = self._cell_of
            for triple in triples:
                index = cell_of[triple[0]]
                bucket = per_cell.get(index)
                if bucket is None:
                    per_cell[index] = [triple]
                else:
                    bucket.append(triple)
            groups, polls, halted = self._dispatch("deliver", step, per_cell)
            send_from = self._send_from
            if tel is None or not tel.want_events:
                # batched kernel order: all handler sends, then the batch
                # trace record — exactly Machine.step's batched path
                for node in delivered:
                    intents = groups.get(node)
                    if intents:
                        for dst, payload in intents:
                            send_from(node, dst, payload)
                self.trace.on_deliver_batch(delivered, step)
            else:
                # faithful kernel order: per node, deliver record then its
                # handler's sends, keeping the published stream causal
                on_deliver = self.trace.on_deliver
                record = tel.record
                for node in delivered:
                    on_deliver(node, step)
                    record(step, 1, "deliver", node)
                    intents = groups.get(node)
                    if intents:
                        for dst, payload in intents:
                            send_from(node, dst, payload)
            if polls:
                self._poll_requests.update(polls)
            if halted:
                self._halted = True
            self._queued_count -= n0
        if rel is not None:
            rel.end_step()
        self.trace.on_step_end(
            step,
            self._queued_count,
            n0,
            self.queue_depths() if self.trace.record_queue_depths else None,
        )
        if tel is not None:
            sends = self._tel_sends
            if sends:
                self._tel_sends = 0
                tel.count(1, "send", sends)
            if n0:
                tel.count(1, "deliver", n0)
            tel.emit(
                1,
                "queued",
                step,
                attrs={"value": self._queued_count, "delivered": n0},
            )
            tel.flush()
        return n0

    def run(self, *args: Any, **kwargs: Any):
        report = super().run(*args, **kwargs)
        self.drain_telemetry()
        return report

    # -- cross-shard services -------------------------------------------

    def map_nodes(
        self,
        fn: Callable[[Any, NodeContext, Any], Any],
        args: Optional[Dict[NodeId, Any]] = None,
    ) -> Dict[NodeId, Any]:
        """Run ``fn(program, ctx, arg)`` for every node inside its shard.

        ``fn`` must be a module-level (picklable-by-reference) callable and
        must not send, poll, or halt.  Returns ``{node: result}``.  This is
        the gather/scatter primitive the layer-2 scheduler uses to compose
        checkpoints: per-node state never leaves its worker except as the
        snapshot data ``fn`` returns.
        """
        step = self.current_step
        cells = self._cells
        for cell in cells:
            pairs = [
                (node, None if args is None else args.get(node))
                for node in cell.nodes
            ]
            cell.request(("map", step, fn, pairs))
        out: Dict[NodeId, Any] = {}
        for cell in cells:
            for node, result in cell.response():
                out[node] = result
        return out

    def drain_telemetry(self) -> int:
        """Relay collected worker events onto the coordinator bus.

        Called automatically at the end of :meth:`run` and by the stack
        before composing checkpoint layers; returns the number of events
        relayed.  Counters, histograms and ``events_emitted`` end up equal
        to a serial run's; only stream interleaving may differ.
        """
        tel = self._telemetry
        if tel is None or not self._cells:
            return 0
        from ..telemetry.events import TelemetryEvent

        cells = self._cells
        for cell in cells:
            cell.request(("telemetry",))
        relayed = 0
        for cell in cells:
            for step_, layer, name, node, dur, attrs in cell.response():
                tel.emit_event(TelemetryEvent(step_, layer, name, node, dur, attrs))
                relayed += 1
        return relayed

    def state_of(self, node: NodeId) -> Any:
        raise SimulationError(
            "node state lives inside shard workers; use "
            "ShardedMachine.map_nodes(fn) to read or update it in place"
        )
