"""Message-size models for bandwidth accounting (paper Figure 2, layer 1).

The simulator's time model charges one queue slot per message regardless of
size; this module adds the *bandwidth* dimension: a ``size_fn`` estimates
each payload's wire size, and the trace accumulates per-node and per-step
traffic so workloads can be compared by bytes moved, not just messages.

Sizes are abstract units (think words).  :func:`make_envelope_sizer` knows
how to unwrap the stack's own envelopes (scheduler packets, work/reply/
status/cancel messages) down to the application payload, which a
content sizer measures; unknown content falls back to
:func:`generic_content_size`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = [
    "SizeFn",
    "unit_size",
    "generic_content_size",
    "make_envelope_sizer",
    "HEADER_SIZE",
]

#: maps a layer-1 payload to its abstract wire size
SizeFn = Callable[[Any], int]

#: fixed per-envelope header charge (addresses, tickets, counters)
HEADER_SIZE = 2


def unit_size(payload: Any) -> int:
    """The default model: every message costs one unit."""
    return 1


def generic_content_size(content: Any) -> int:
    """Crude structural size: tuples/lists/dicts/sets count their elements
    recursively, everything else costs one unit."""
    if isinstance(content, (tuple, list, set, frozenset)):
        return 1 + sum(generic_content_size(c) for c in content)
    if isinstance(content, dict):
        return 1 + sum(
            generic_content_size(k) + generic_content_size(v)
            for k, v in content.items()
        )
    return 1


def make_envelope_sizer(
    content_size: Optional[Callable[[Any], int]] = None,
) -> SizeFn:
    """Build a :data:`SizeFn` that unwraps the stack's envelopes.

    ``content_size`` measures the application payload reached after
    unwrapping (default :func:`generic_content_size`).  Each envelope level
    adds :data:`HEADER_SIZE`; work/reply paths charge one unit per recorded
    hop.
    """
    measure = content_size if content_size is not None else generic_content_size

    def size_of(payload: Any) -> int:
        # imported lazily to keep netsim free of upward dependencies
        from ..mapping.envelopes import CancelMsg, ReplyMsg, StatusMsg, WorkMsg
        from ..sched.scheduler import Packet

        size = 0
        while True:
            if isinstance(payload, Packet):
                size += HEADER_SIZE
                payload = payload.payload
            elif isinstance(payload, WorkMsg):
                size += HEADER_SIZE + len(payload.path)
                payload = payload.payload
            elif isinstance(payload, ReplyMsg):
                size += HEADER_SIZE + len(payload.route)
                payload = payload.payload
            elif isinstance(payload, (StatusMsg, CancelMsg)):
                return size + HEADER_SIZE
            else:
                return size + measure(payload)

    return size_of
