"""Simulation instrumentation (paper §V-C).

The paper's profiling pipeline logs, for every run:

1. **Computation time** — "the number of simulation time steps between the
   first (trigger) and last messages";
2. **Interconnect activity** — "the total number of queued messages across
   the mesh versus time" (Figure 5 top row);
3. **Node activity** — "the total messages delivered to each node during the
   simulation" (Figure 5 bottom row heatmaps).

:class:`TraceRecorder` collects all three with O(1) Python-int work per event
(numpy conversion happens once, post-run), plus per-payload-type counters and
an optional per-step per-node queue-depth matrix for fine-grained analysis.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..topology import Topology

__all__ = ["TraceRecorder", "SimulationReport", "spatial_entropy", "gini"]


def _payload_kind(payload: Any) -> str:
    """Human-readable tag for per-type message counters."""
    if payload is None:
        return "empty"
    return type(payload).__name__


class TraceRecorder:
    """Accumulates simulation events; queried through :class:`SimulationReport`.

    Parameters
    ----------
    n_nodes:
        Machine size (for the node-activity histogram).
    record_queue_depths:
        If True, snapshot every node's queue depth at every step into a
        ``steps x n_nodes`` matrix.  Costs O(n_nodes) per step — off by
        default; the Figure 5 bench enables it for the unfolding heatmaps.
    """

    __slots__ = (
        "n_nodes",
        "record_queue_depths",
        "queued_series",
        "delivered_series",
        "node_delivered",
        "node_sent",
        "node_dropped",
        "sent_total",
        "delivered_total",
        "dropped_total",
        "traffic_total",
        "node_traffic",
        "first_activity_step",
        "last_activity_step",
        "payload_counts",
        "queue_depth_rows",
        "_kind_cache",
    )

    def __init__(self, n_nodes: int, record_queue_depths: bool = False) -> None:
        self.n_nodes = n_nodes
        self.record_queue_depths = record_queue_depths
        #: total messages sitting in queues at the end of each step
        self.queued_series: List[int] = []
        #: messages delivered during each step
        self.delivered_series: List[int] = []
        self.node_delivered = [0] * n_nodes
        self.node_sent = [0] * n_nodes
        self.node_dropped = [0] * n_nodes
        self.sent_total = 0
        self.delivered_total = 0
        self.dropped_total = 0
        #: abstract wire units moved (see repro.netsim.sizing)
        self.traffic_total = 0
        self.node_traffic = [0] * n_nodes
        self.first_activity_step: Optional[int] = None
        self.last_activity_step: Optional[int] = None
        self.payload_counts: Dict[str, int] = {}
        self.queue_depth_rows: List[List[int]] = []
        #: payload type -> kind tag; on_send runs once per message, so the
        #: type-name lookup is cached instead of recomputed
        self._kind_cache: Dict[type, str] = {}

    # -- event hooks (called by the backend) ---------------------------

    def on_send(self, src: int, step: int, payload: Any, size: int = 1) -> None:
        self.sent_total += 1
        self.traffic_total += size
        if 0 <= src < self.n_nodes:
            self.node_sent[src] += 1
            self.node_traffic[src] += size
        cls = payload.__class__
        kind = self._kind_cache.get(cls)
        if kind is None:
            kind = _payload_kind(payload)
            self._kind_cache[cls] = kind
        counts = self.payload_counts
        counts[kind] = counts.get(kind, 0) + 1
        if self.first_activity_step is None:
            self.first_activity_step = step
        self.last_activity_step = step

    def on_drop(self, dst: int = -1, step: int = -1) -> None:
        """Account one dropped message.

        ``dst`` is the node the message was addressed to and ``step`` the
        step it was dropped at, so reports can attribute losses (fault
        injection, queue overflow) spatially.  Both default to ``-1`` for
        backward compatibility with pre-telemetry callers; unattributed
        drops still count toward ``dropped_total``.
        """
        self.dropped_total += 1
        if 0 <= dst < self.n_nodes:
            self.node_dropped[dst] += 1
        if step >= 0:
            self.last_activity_step = step
            if self.first_activity_step is None:
                self.first_activity_step = step

    def on_deliver(self, dst: int, step: int) -> None:
        self.delivered_total += 1
        self.node_delivered[dst] += 1
        if self.first_activity_step is None:
            self.first_activity_step = step
        self.last_activity_step = step

    def on_deliver_batch(self, nodes: Sequence[int], step: int) -> None:
        """Bulk equivalent of :meth:`on_deliver` for one step's deliveries.

        The backend's batched kernel calls this once per step with the
        delivery snapshot instead of once per message.  ``nodes`` must be
        non-empty; the resulting counters are identical to calling
        :meth:`on_deliver` for each node in order.
        """
        self.delivered_total += len(nodes)
        node_delivered = self.node_delivered
        for dst in nodes:
            node_delivered[dst] += 1
        if self.first_activity_step is None:
            self.first_activity_step = step
        self.last_activity_step = step

    def on_step_end(
        self,
        step: int,
        total_queued: int,
        delivered_this_step: int,
        queue_depths: Optional[Sequence[int]] = None,
    ) -> None:
        self.queued_series.append(total_queued)
        self.delivered_series.append(delivered_this_step)
        if self.record_queue_depths and queue_depths is not None:
            self.queue_depth_rows.append(list(queue_depths))

    # -- snapshot / restore (repro.state protocol) ---------------------

    def snapshot(self) -> Dict[str, Any]:
        """Copy every accumulated counter/series into a detached dict.

        Configuration (``n_nodes``, ``record_queue_depths``) and the
        ``_kind_cache`` memo are not state: the former must match on
        restore, the latter rebuilds itself.
        """
        return {
            "n_nodes": self.n_nodes,
            "queued_series": list(self.queued_series),
            "delivered_series": list(self.delivered_series),
            "node_delivered": list(self.node_delivered),
            "node_sent": list(self.node_sent),
            "node_dropped": list(self.node_dropped),
            "sent_total": self.sent_total,
            "delivered_total": self.delivered_total,
            "dropped_total": self.dropped_total,
            "traffic_total": self.traffic_total,
            "node_traffic": list(self.node_traffic),
            "first_activity_step": self.first_activity_step,
            "last_activity_step": self.last_activity_step,
            "payload_counts": dict(self.payload_counts),
            "queue_depth_rows": [list(row) for row in self.queue_depth_rows],
        }

    def restore(self, data: Dict[str, Any]) -> None:
        """Install a :meth:`snapshot`-captured dict into this recorder."""
        if data["n_nodes"] != self.n_nodes:
            from ..errors import CheckpointError

            raise CheckpointError(
                f"trace snapshot covers {data['n_nodes']} nodes; "
                f"this recorder covers {self.n_nodes}"
            )
        self.queued_series = list(data["queued_series"])
        self.delivered_series = list(data["delivered_series"])
        self.node_delivered = list(data["node_delivered"])
        self.node_sent = list(data["node_sent"])
        self.node_dropped = list(data["node_dropped"])
        self.sent_total = data["sent_total"]
        self.delivered_total = data["delivered_total"]
        self.dropped_total = data["dropped_total"]
        self.traffic_total = data["traffic_total"]
        self.node_traffic = list(data["node_traffic"])
        self.first_activity_step = data["first_activity_step"]
        self.last_activity_step = data["last_activity_step"]
        self.payload_counts = dict(data["payload_counts"])
        self.queue_depth_rows = [list(row) for row in data["queue_depth_rows"]]
        self._kind_cache = {}


class SimulationReport:
    """Immutable summary of one simulation run.

    Exposes the paper's three metrics plus derived statistics used by the
    benchmark harness (performance, spatial spread measures, heatmaps).
    """

    def __init__(
        self,
        trace: TraceRecorder,
        steps: int,
        quiescent: bool,
        topology: Optional[Topology] = None,
    ) -> None:
        self._topology = topology
        #: steps actually executed by :meth:`Machine.run`
        self.steps = steps
        #: True if the run ended because no messages remained anywhere
        self.quiescent = quiescent
        self.sent_total = trace.sent_total
        self.delivered_total = trace.delivered_total
        self.dropped_total = trace.dropped_total
        self.payload_counts = dict(trace.payload_counts)
        self.queued_series = np.asarray(trace.queued_series, dtype=np.int64)
        self.delivered_series = np.asarray(trace.delivered_series, dtype=np.int64)
        self.node_delivered = np.asarray(trace.node_delivered, dtype=np.int64)
        self.node_sent = np.asarray(trace.node_sent, dtype=np.int64)
        #: messages dropped per addressed node (fault injection / overflow);
        #: drops recorded through the legacy no-argument ``on_drop()`` are
        #: unattributed and appear only in ``dropped_total``
        self.node_dropped = np.asarray(trace.node_dropped, dtype=np.int64)
        self.traffic_total = trace.traffic_total
        self.node_traffic = np.asarray(trace.node_traffic, dtype=np.int64)
        self.first_activity_step = trace.first_activity_step
        self.last_activity_step = trace.last_activity_step
        if trace.queue_depth_rows:
            self.queue_depths: Optional[np.ndarray] = np.asarray(
                trace.queue_depth_rows, dtype=np.int64
            )
        else:
            self.queue_depths = None

    # -- paper metrics ---------------------------------------------------

    @property
    def computation_time(self) -> int:
        """Steps between the first (trigger) and last messages (paper §V-C)."""
        if self.first_activity_step is None or self.last_activity_step is None:
            return 0
        return self.last_activity_step - self.first_activity_step

    @property
    def performance(self) -> float:
        """Figure 4's y-axis: ``1 / computation_time`` (inf-safe)."""
        t = self.computation_time
        return 1.0 / t if t > 0 else math.inf

    @property
    def interconnect_activity(self) -> np.ndarray:
        """Total queued messages per step (Figure 5 top-row series)."""
        return self.queued_series

    @property
    def node_activity(self) -> np.ndarray:
        """Total messages delivered per node (Figure 5 bottom-row data)."""
        return self.node_delivered

    def heatmap(self) -> np.ndarray:
        """Node activity reshaped to the machine's mesh shape (2D+ meshes)."""
        if self._topology is None:
            raise ValueError("report was built without a topology reference")
        shape = self._topology.shape
        coords = [self._topology.coords(n) for n in range(self._topology.n_nodes)]
        grid = np.zeros(shape, dtype=np.int64)
        for node, c in enumerate(coords):
            grid[c] = self.node_delivered[node]
        return grid

    # -- derived statistics ------------------------------------------------

    @property
    def mean_message_size(self) -> float:
        """Average wire units per message (1.0 under the default model)."""
        return self.traffic_total / self.sent_total if self.sent_total else 0.0

    @property
    def peak_queued(self) -> int:
        """Maximum total queued messages across any step."""
        return int(self.queued_series.max()) if self.queued_series.size else 0

    @property
    def active_node_count(self) -> int:
        """Number of nodes that received at least one message."""
        return int((self.node_delivered > 0).sum())

    @property
    def activity_entropy(self) -> float:
        """Shannon entropy (bits) of the delivered-message distribution.

        Higher = work spread more evenly across the mesh; used to quantify
        the "larger degree of spatial unfolding" of adaptive mapping (§V-E).
        """
        return spatial_entropy(self.node_delivered)

    @property
    def activity_gini(self) -> float:
        """Gini concentration of per-node activity (0 = even, →1 = one node)."""
        return gini(self.node_delivered)

    def summary(self) -> Dict[str, Any]:
        """Compact dict for benchmark tables and logs."""
        return {
            "steps": self.steps,
            "quiescent": self.quiescent,
            "computation_time": self.computation_time,
            "performance": self.performance,
            "sent": self.sent_total,
            "delivered": self.delivered_total,
            "dropped": self.dropped_total,
            "traffic": self.traffic_total,
            "peak_queued": self.peak_queued,
            "active_nodes": self.active_node_count,
            "activity_entropy": round(self.activity_entropy, 4),
            "activity_gini": round(self.activity_gini, 4),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimulationReport({self.summary()!r})"


def spatial_entropy(counts: Sequence[int]) -> float:
    """Shannon entropy in bits of a non-negative count histogram."""
    arr = np.asarray(counts, dtype=np.float64)
    total = arr.sum()
    if total <= 0:
        return 0.0
    p = arr[arr > 0] / total
    return float(-(p * np.log2(p)).sum())


def gini(counts: Sequence[int]) -> float:
    """Gini coefficient of a non-negative histogram (0 = uniform)."""
    arr = np.sort(np.asarray(counts, dtype=np.float64))
    n = arr.size
    total = arr.sum()
    if n == 0 or total <= 0:
        return 0.0
    # standard formula over sorted values
    index = np.arange(1, n + 1)
    return float((2.0 * (index * arr).sum() / (n * total)) - (n + 1.0) / n)
