"""Parallel sweep execution (host-level, outside the simulated machine).

The simulator itself is single-threaded and deterministic; what *is*
embarrassingly parallel is the benchmark harness above it — every
``(series, core count, problem)`` cell of a figure or ablation sweep is an
independent seeded simulation.  This package fans those cells out over a
process pool while keeping results bit-identical to a serial run:

* :mod:`repro.parallel.executor` — the generic pool (ordered results,
  chunked scheduling, ``REPRO_JOBS``, serial fallback, traceback-carrying
  :class:`WorkerError`);
* :mod:`repro.parallel.sat` — the SAT sweep cell used by the figure and
  ablation benches.
"""

from .executor import JOBS_ENV_VAR, WorkerError, resolve_jobs, run_tasks
from .sat import SatOutcome, SatTask, run_sat_task, solve_sat_tasks

__all__ = [
    "JOBS_ENV_VAR",
    "WorkerError",
    "resolve_jobs",
    "run_tasks",
    "SatOutcome",
    "SatTask",
    "run_sat_task",
    "solve_sat_tasks",
]
