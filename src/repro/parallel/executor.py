"""Process-pool execution of independent simulation tasks.

Every figure/ablation sweep in the benchmark harness is a grid of fully
independent, deterministic simulations — one per ``(series, core count,
problem)`` cell.  This module fans those cells out across host cores:

* task specs and results are plain picklable values, executed by a
  module-level worker function (so the pool can ship them by reference);
* results are merged **by task index, never completion order** — a seeded
  sweep returns bit-identical results whether it ran on 1 process or 16;
* ``jobs=1`` (the default) runs serially in-process with zero pool
  overhead, and any failure to spawn a pool degrades to the same serial
  path, so callers never need a fallback of their own;
* a worker exception is re-raised in the parent as :class:`WorkerError`
  carrying the remote traceback text instead of hanging the pool.

The worker count resolves as: explicit ``jobs`` argument, else the
``REPRO_JOBS`` environment variable, else 1 (serial).  ``0`` / ``"auto"``
mean "one worker per host core", and every resolution is capped at the
host core count — oversubscribed workers cannot run concurrently but
still pay full spawn-and-import warmup each.
"""

from __future__ import annotations

import os
import traceback
from typing import Callable, List, Optional, Sequence, TypeVar

from ..errors import SimulationError

__all__ = ["WorkerError", "resolve_jobs", "run_tasks", "JOBS_ENV_VAR"]

#: Environment variable consulted when no explicit ``jobs`` is given.
JOBS_ENV_VAR = "REPRO_JOBS"

T = TypeVar("T")
R = TypeVar("R")


class WorkerError(SimulationError):
    """A task failed inside a pool worker.

    The original exception cannot always unpickle across the process
    boundary, so the worker formats its traceback eagerly; it is available
    as :attr:`worker_traceback` and included in ``str(error)``.
    """

    def __init__(self, task_index: int, worker_traceback: str) -> None:
        self.task_index = task_index
        self.worker_traceback = worker_traceback
        super().__init__(
            f"task {task_index} failed in worker:\n{worker_traceback}"
        )


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count from the argument, ``REPRO_JOBS``, or 1.

    ``0`` (or ``REPRO_JOBS=auto``) means one worker per host core.
    Negative values are rejected.  The result never exceeds the host
    core count: extra workers cannot add concurrency, but each one
    still pays the full interpreter spawn + import warmup.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip().lower()
        if not raw:
            return 1
        if raw == "auto":
            jobs = 0
        else:
            try:
                jobs = int(raw)
            except ValueError:
                raise SimulationError(
                    f"{JOBS_ENV_VAR} must be an integer or 'auto', got {raw!r}"
                ) from None
    if jobs < 0:
        raise SimulationError(f"jobs must be >= 0, got {jobs}")
    cpus = os.cpu_count() or 1
    if jobs == 0:
        return cpus
    return min(jobs, cpus)


def _invoke(fn: Callable[[T], R], task: T) -> "tuple[bool, object]":
    """Worker-side shim: trap exceptions and ship the traceback as text."""
    try:
        return (True, fn(task))
    except BaseException:
        return (False, traceback.format_exc())


def _run_serial(fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
    return [fn(task) for task in tasks]


def _warn_serial_fallback(exc: BaseException, n_tasks: int) -> None:
    import warnings

    warnings.warn(
        f"process pool unavailable ({exc!r}); running {n_tasks} tasks serially",
        RuntimeWarning,
        stacklevel=3,
    )


def run_tasks(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    *,
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Run ``fn`` over every task, returning results in task order.

    Parameters
    ----------
    fn:
        A module-level (picklable-by-reference) function of one task.
    tasks:
        Picklable task specs.  Order defines result order.
    jobs:
        Worker processes; see :func:`resolve_jobs`.  ``1`` runs serially
        in-process (no pool, no pickling).
    chunksize:
        Tasks shipped to a worker per round trip.  Defaults to spreading
        tasks roughly four chunks per worker, which amortises IPC without
        starving the tail of the schedule.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if (
        jobs <= 1
        or len(tasks) <= 1
        # an explicit chunksize that swallows the whole task set would be
        # shipped to a single worker anyway — skip the pool spawn
        or (chunksize is not None and len(tasks) <= chunksize)
    ):
        return _run_serial(fn, tasks)
    jobs = min(jobs, len(tasks))
    if chunksize is None:
        chunksize = max(1, len(tasks) // (jobs * 4))
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError as exc:  # stripped-down interpreter, no _multiprocessing
        _warn_serial_fallback(exc, len(tasks))
        return _run_serial(fn, tasks)
    from functools import partial

    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(
                pool.map(partial(_invoke, fn), tasks, chunksize=chunksize)
            )
    except (OSError, PermissionError, BrokenProcessPool) as exc:
        # No /dev/shm, fork disallowed, restricted sandbox, ... — the sweep
        # still completes, just serially.
        _warn_serial_fallback(exc, len(tasks))
        return _run_serial(fn, tasks)
    results: List[R] = []
    for index, (ok, value) in enumerate(outcomes):
        if not ok:
            raise WorkerError(index, str(value))
        results.append(value)  # type: ignore[arg-type]
    return results
