"""Picklable SAT-sweep tasks for the parallel executor.

The figure and ablation benches all reduce to the same cell: solve one CNF
on one simulated machine with some knob settings and keep a handful of
scalar metrics.  :class:`SatTask` captures that cell as a value,
:func:`run_sat_task` executes it (in this process or a pool worker), and
:class:`SatOutcome` carries back only what the benches aggregate — scalars
plus the optional activity trace / heatmap arrays Figure 5 needs — instead
of the full report object graph.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

import numpy as np

from ..apps.sat import solve_on_machine
from ..apps.sat.cnf import CNF
from ..topology import Topology
from .executor import resolve_jobs, run_tasks

__all__ = ["SatTask", "SatOutcome", "run_sat_task", "solve_sat_tasks"]


class SatTask(NamedTuple):
    """One sweep cell: formula + machine + solver/stack knobs.

    Field defaults mirror :func:`repro.apps.sat.solve_on_machine`;
    ``collect_activity`` / ``collect_heatmap`` opt into the Figure-5
    arrays (omitted from the result otherwise to keep IPC cheap).
    """

    cnf: CNF
    topology: Topology
    mapper: str = "rr"
    status: Optional[int] = None
    heuristic: str = "max_occurrence"
    cancellation: bool = False
    hint_mode: Optional[str] = None
    simplify: str = "none"
    seed: int = 0
    max_steps: int = 1_000_000
    drain: bool = True
    share_threshold: Optional[int] = None
    sat_sizing: bool = False
    collect_activity: bool = False
    collect_heatmap: bool = False


class SatOutcome(NamedTuple):
    """The metrics one sweep cell contributes to its bench's aggregates."""

    computation_time: int
    sent_total: int
    delivered_total: int
    traffic_total: int
    peak_queued: int
    active_nodes: int
    satisfiable: bool
    verified: bool
    invocations: int
    completions: int
    activity: Optional[np.ndarray] = None
    heatmap: Optional[np.ndarray] = None


def run_sat_task(task: SatTask) -> SatOutcome:
    """Execute one sweep cell; the pool's worker function."""
    size_fn = None
    if task.sat_sizing:
        from ..apps.sat import sat_content_size
        from ..netsim import make_envelope_sizer

        size_fn = make_envelope_sizer(sat_content_size)
    res = solve_on_machine(
        task.cnf,
        task.topology,
        mapper=task.mapper,
        status=task.status,
        heuristic=task.heuristic,
        cancellation=task.cancellation,
        hint_mode=task.hint_mode,
        simplify=task.simplify,
        seed=task.seed,
        max_steps=task.max_steps,
        drain=task.drain,
        share_threshold=task.share_threshold,
        size_fn=size_fn,
    )
    report = res.report
    stats = res.engine_stats
    return SatOutcome(
        computation_time=report.computation_time,
        sent_total=report.sent_total,
        delivered_total=report.delivered_total,
        traffic_total=report.traffic_total,
        peak_queued=report.peak_queued,
        active_nodes=report.active_node_count,
        satisfiable=res.satisfiable,
        verified=res.verified,
        invocations=stats.invocations if stats is not None else 0,
        completions=stats.completions if stats is not None else 0,
        activity=report.interconnect_activity if task.collect_activity else None,
        heatmap=report.heatmap() if task.collect_heatmap else None,
    )


def solve_sat_tasks(
    tasks: Sequence[SatTask],
    *,
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> "list[SatOutcome]":
    """Run a batch of sweep cells, results in task order (deterministic).

    Unless overridden, cells ship in chunks of roughly *two per worker*:
    sweep cells are coarse (each is a whole simulation), so per-trip IPC
    and pool warmup dominate over tail balance, and fewer-but-larger
    chunks amortise both better than the executor's generic default.
    """
    tasks = list(tasks)
    if chunksize is None:
        workers = resolve_jobs(jobs)
        if workers > 1:
            chunksize = max(1, -(-len(tasks) // (workers * 2)))
    return run_tasks(run_sat_task, tasks, jobs=jobs, chunksize=chunksize)
