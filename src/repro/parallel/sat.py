"""Picklable SAT-sweep tasks for the parallel executor.

The figure and ablation benches all reduce to the same cell: solve one CNF
on one simulated machine with some knob settings and keep a handful of
scalar metrics.  :class:`SatTask` captures that cell as a value,
:func:`run_sat_task` executes it (in this process or a pool worker), and
:class:`SatOutcome` carries back only what the benches aggregate — scalars
plus the optional activity trace / heatmap arrays Figure 5 needs — instead
of the full report object graph.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

import numpy as np

from ..apps.sat.cnf import CNF
from ..topology import Topology
from .executor import resolve_jobs, run_tasks

__all__ = ["SatTask", "SatOutcome", "run_sat_task", "solve_sat_tasks"]


class SatTask(NamedTuple):
    """One sweep cell: formula + machine + solver/stack knobs.

    Field defaults mirror :func:`repro.apps.sat.solve_on_machine`;
    ``collect_activity`` / ``collect_heatmap`` opt into the Figure-5
    arrays (omitted from the result otherwise to keep IPC cheap).
    """

    cnf: CNF
    topology: Topology
    mapper: str = "rr"
    status: Optional[int] = None
    heuristic: str = "max_occurrence"
    cancellation: bool = False
    hint_mode: Optional[str] = None
    simplify: str = "none"
    seed: int = 0
    max_steps: int = 1_000_000
    drain: bool = True
    share_threshold: Optional[int] = None
    sat_sizing: bool = False
    collect_activity: bool = False
    collect_heatmap: bool = False

    def to_runspec(self):
        """The canonical :class:`repro.engine.RunSpec` for this cell.

        The topology rides along as an *object* (sweeps build exotic
        meshes directly), so :func:`run_sat_task` passes it to
        :func:`~repro.engine.execute` explicitly; the spec's topology
        string is best-effort via :func:`~repro.topology.spec_of`.
        """
        from ..engine import RunSpec
        from ..topology import spec_of

        return RunSpec(
            workload="sat",
            workload_params={
                "clauses": [list(c) for c in self.cnf.clauses],
                "num_vars": self.cnf.num_vars,
            },
            topology=spec_of(self.topology),
            mapper=self.mapper,
            status=self.status,
            heuristic=self.heuristic,
            cancellation=self.cancellation,
            hint_mode=self.hint_mode,
            simplify=self.simplify,
            seed=self.seed,
            max_steps=self.max_steps,
            drain=self.drain,
            share_threshold=self.share_threshold,
            sat_sizing=self.sat_sizing,
        )


class SatOutcome(NamedTuple):
    """The metrics one sweep cell contributes to its bench's aggregates."""

    computation_time: int
    sent_total: int
    delivered_total: int
    traffic_total: int
    peak_queued: int
    active_nodes: int
    satisfiable: bool
    verified: bool
    invocations: int
    completions: int
    activity: Optional[np.ndarray] = None
    heatmap: Optional[np.ndarray] = None


def run_sat_task(task: SatTask) -> SatOutcome:
    """Execute one sweep cell; the pool's worker function."""
    from ..engine import execute

    run = execute(task.to_runspec(), topology=task.topology)
    report = run.report
    stats = run.engine_stats
    satisfiable = bool(run.verdict["sat"])
    if satisfiable:
        model = dict(run.verdict["assignment"])
        verified = task.cnf.is_satisfied_by(model)
    else:
        verified = True  # UNSAT verdicts are verified against dpll elsewhere
    return SatOutcome(
        computation_time=report.computation_time,
        sent_total=report.sent_total,
        delivered_total=report.delivered_total,
        traffic_total=report.traffic_total,
        peak_queued=report.peak_queued,
        active_nodes=report.active_node_count,
        satisfiable=satisfiable,
        verified=verified,
        invocations=stats.invocations if stats is not None else 0,
        completions=stats.completions if stats is not None else 0,
        activity=report.interconnect_activity if task.collect_activity else None,
        heatmap=report.heatmap() if task.collect_heatmap else None,
    )


def solve_sat_tasks(
    tasks: Sequence[SatTask],
    *,
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> "list[SatOutcome]":
    """Run a batch of sweep cells, results in task order (deterministic).

    Unless overridden, cells ship in chunks of roughly *two per worker*:
    sweep cells are coarse (each is a whole simulation), so per-trip IPC
    and pool warmup dominate over tail balance, and fewer-but-larger
    chunks amortise both better than the executor's generic default.
    """
    tasks = list(tasks)
    if chunksize is None:
        workers = resolve_jobs(jobs)
        if workers > 1:
            chunksize = max(1, -(-len(tasks) // (workers * 2)))
    return run_tasks(run_sat_task, tasks, jobs=jobs, chunksize=chunksize)
