"""Layer 4 — continuation-based fork-join recursion (paper §IV-C).

Public surface:

* :class:`RecursionEngine` — hosts a generator function as a distributed
  recursion on top of layer 3.
* Yield ops: :class:`Call`, :class:`Sync`, :class:`Result`, :class:`Choice`
  (and the paper's literal ``[is_valid, Call, ...]`` list form).
* :class:`EngineStats` — per-node layer-4 counters.
"""

from .engine import EngineStats, RecursionEngine, RecursiveFunction
from .ops import Call, Choice, Result, Sync, coerce_op
from .records import CallRecord, Invocation

__all__ = [
    "RecursionEngine",
    "RecursiveFunction",
    "EngineStats",
    "Call",
    "Sync",
    "Result",
    "Choice",
    "coerce_op",
    "CallRecord",
    "Invocation",
]
