"""Layer 4: the recursion-to-message-passing conversion engine (paper §IV-C).

:class:`RecursionEngine` is a layer-3 :class:`~repro.mapping.MappedApp`
hosting a user *generator function*.  It intercepts recursive subcalls and
converts them to layer-3 messages behind the scenes:

1. incoming work instantiates the generator and drives it;
2. a yielded :class:`~repro.recursion.ops.Call` is shipped to a
   mapper-chosen node and its ticket parked in a call record;
3. a yielded :class:`~repro.recursion.ops.Sync` suspends the generator (the
   continuation) until all parked tickets have results;
4. a yielded :class:`~repro.recursion.ops.Result` (or a plain ``return``)
   replies to the parent node, quoting the original ticket.

Choice groups (``yield [is_valid, Call(a), Call(b)]``) resume on the first
valid evaluation.  With ``cancellation=True`` (extension; the paper merely
*ignores* losing evaluations) the engine actively propagates
:class:`~repro.mapping.CancelMsg` down abandoned speculative subtrees,
cascading through their own outstanding subcalls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, Optional, Tuple

from ..errors import ProtocolError, RecursionLayerError
from ..mapping import MappingContext, ReplyHandle, Ticket
from ..telemetry.probe import set_probe_node
from .ops import Call, Choice, Result, Sync, coerce_op
from .records import CallRecord, Invocation

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..telemetry import TelemetryBus

__all__ = ["RecursionEngine", "RecursiveFunction", "EngineStats"]

#: A layer-5 application: a generator function of one argument.
RecursiveFunction = Callable[[Any], Generator[Any, Any, Any]]


class EngineStats:
    """Per-node layer-4 counters (aggregated by the stack for profiling)."""

    __slots__ = (
        "invocations",
        "completions",
        "calls_made",
        "syncs",
        "choice_groups",
        "choice_wins",
        "choice_exhausted",
        "cancels_sent",
        "cancels_received",
        "late_replies",
        "dup_work",
    )

    def __init__(self) -> None:
        self.invocations = 0
        self.completions = 0
        self.calls_made = 0
        self.syncs = 0
        self.choice_groups = 0
        self.choice_wins = 0
        self.choice_exhausted = 0
        self.cancels_sent = 0
        self.cancels_received = 0
        self.late_replies = 0
        #: duplicate deliveries of the same work item, suppressed (layer-1
        #: duplication faults reaching layer 4 unprotected)
        self.dup_work = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reports."""
        return {name: getattr(self, name) for name in self.__slots__}

    def merge(self, other: "EngineStats") -> None:
        """Accumulate ``other`` into this instance."""
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


class _EngineState:
    """Per-node engine state (lives in the layer-3 state slot)."""

    __slots__ = ("invocations", "pending", "by_reply_ticket", "next_inv_id", "stats")

    def __init__(self) -> None:
        #: live invocations by local id
        self.invocations: Dict[int, Invocation] = {}
        #: outstanding subcall tickets -> (invocation, call record)
        self.pending: Dict[Ticket, Tuple[Invocation, CallRecord]] = {}
        #: incoming-work ticket -> invocation (for cancellation lookups)
        self.by_reply_ticket: Dict[Ticket, Invocation] = {}
        self.next_inv_id = 0
        self.stats = EngineStats()


class RecursionEngine:
    """Host ``fn`` (a generator function) as a distributed recursion.

    Parameters
    ----------
    fn:
        The layer-5 application.  Called as ``fn(args)`` for each delegated
        sub-problem; must yield layer-4 ops (see :mod:`repro.recursion.ops`).
    cancellation:
        If True, losing evaluations of a choice group — and, transitively,
        their own outstanding subcalls — are actively cancelled instead of
        merely ignored.
    telemetry:
        Optional :class:`~repro.telemetry.TelemetryBus`; when given, the
        engine publishes layer-4 events — an ``invocation`` span per
        completed activation plus ``call`` / ``choice`` / ``sync`` /
        ``result`` / ``choice_win`` / ``choice_exhausted`` / ``cancelled``
        / ``late_reply`` / ``dup_work`` instants — and keeps the layer-5
        probe node
        current while driving user generators.
    """

    def __init__(
        self,
        fn: RecursiveFunction,
        cancellation: bool = False,
        telemetry: Optional["TelemetryBus"] = None,
    ) -> None:
        if not callable(fn):
            raise RecursionLayerError(f"fn must be callable, got {fn!r}")
        self.fn = fn
        self.cancellation = cancellation
        self._telemetry = telemetry

    # -- MappedApp protocol ----------------------------------------------

    def init(self, mctx: MappingContext) -> None:
        mctx.state = _EngineState()

    def on_work(
        self,
        mctx: MappingContext,
        reply: Optional[ReplyHandle],
        payload: Any,
        hint: Optional[float],
    ) -> None:
        st: _EngineState = mctx.state
        if reply is not None and reply.ticket in st.by_reply_ticket:
            # Idempotence under duplicated links: the same work item arrived
            # twice (layer-1 duplication without the reliability layer).
            # Executing it again would double-reply the same ticket; the
            # parent would shrug the second off as a late reply, but the
            # wasted subtree can be large — suppress at the door instead.
            st.stats.dup_work += 1
            if self._telemetry is not None:
                self._telemetry.emit(
                    4,
                    "dup_work",
                    mctx.step,
                    mctx.node,
                    attrs={"ticket": str(reply.ticket)},
                )
            return
        gen = self.fn(payload)
        if not hasattr(gen, "send"):
            raise ProtocolError(
                f"{getattr(self.fn, '__name__', self.fn)!r} must be a generator "
                "function (it returned a non-generator)"
            )
        inv = Invocation(st.next_inv_id, gen, reply, start_step=mctx.step, args=payload)
        st.next_inv_id += 1
        st.invocations[inv.inv_id] = inv
        if reply is not None:
            st.by_reply_ticket[reply.ticket] = inv
        st.stats.invocations += 1
        self._advance(mctx, st, inv, first=True)

    def on_reply(self, mctx: MappingContext, ticket: Ticket, payload: Any) -> None:
        st: _EngineState = mctx.state
        tel = self._telemetry
        entry = st.pending.pop(ticket, None)
        if entry is None:
            # evaluation for a retired/cancelled subcall; drop it
            st.stats.late_replies += 1
            if tel is not None:
                tel.emit(
                    4,
                    "late_reply",
                    mctx.step,
                    mctx.node,
                    attrs={"ticket": str(ticket)},
                )
            return
        inv, record = entry
        resolved_now = record.deliver(ticket, payload)
        if resolved_now and record.is_choice:
            if record.value is None:
                st.stats.choice_exhausted += 1
                if tel is not None:
                    tel.emit(
                        4,
                        "choice_exhausted",
                        mctx.step,
                        mctx.node,
                        attrs={"inv": inv.inv_id},
                    )
            else:
                st.stats.choice_wins += 1
                if tel is not None:
                    tel.emit(
                        4,
                        "choice_win",
                        mctx.step,
                        mctx.node,
                        attrs={"inv": inv.inv_id, "ticket": str(ticket)},
                    )
                # losing evaluations are no longer needed
                for t in record.outstanding():
                    st.pending.pop(t, None)
                    if self.cancellation:
                        mctx.cancel(t)
                        st.stats.cancels_sent += 1
        if inv.done or inv.cancelled:
            return
        if inv.waiting_sync and inv.batch_resolved():
            value = inv.sync_value()
            inv.waiting_sync = False
            inv.batch = []
            self._advance(mctx, st, inv, resume_value=value)

    def on_cancel(self, mctx: MappingContext, ticket: Ticket) -> None:
        st: _EngineState = mctx.state
        inv = st.by_reply_ticket.pop(ticket, None)
        st.stats.cancels_received += 1
        if inv is None or inv.done or inv.cancelled:
            return
        self._cancel_invocation(mctx, st, inv)

    # -- generator driving --------------------------------------------------

    def _advance(
        self,
        mctx: MappingContext,
        st: _EngineState,
        inv: Invocation,
        first: bool = False,
        resume_value: Any = None,
    ) -> None:
        """Drive ``inv``'s generator until it suspends or finishes."""
        tel = self._telemetry
        if tel is not None:
            # keep the layer-5 probe clock pointed at the node whose
            # generator is about to run (generators have no ctx handle)
            set_probe_node(mctx.node)
        to_send: Any = None if first else resume_value
        gen = inv.gen
        sent_log = inv.sent_log
        while True:
            try:
                # log before sending: replaying the log against a fresh
                # generator reproduces this exact suspension point after a
                # checkpoint restore (see snapshot_app_state)
                sent_log.append(to_send)
                yielded = gen.send(to_send)
            except StopIteration as stop:
                # `return value` sugar for `yield Result(value)`
                self._finish(mctx, st, inv, stop.value)
                return
            op = coerce_op(yielded)
            if isinstance(op, Call):
                to_send = self._issue_call(mctx, st, inv, op)
            elif isinstance(op, Choice):
                record = CallRecord([], op.is_valid)
                for call in op.calls:
                    ticket = mctx.call(call.args, call.hint)
                    record.tickets.append(ticket)
                    st.pending[ticket] = (inv, record)
                    st.stats.calls_made += 1
                inv.batch.append(record)
                st.stats.choice_groups += 1
                if tel is not None:
                    tel.emit(
                        4,
                        "choice",
                        mctx.step,
                        mctx.node,
                        attrs={"inv": inv.inv_id, "calls": len(op.calls)},
                    )
                to_send = tuple(record.tickets)
            elif isinstance(op, Sync):
                st.stats.syncs += 1
                if inv.batch_resolved():
                    to_send = inv.sync_value()
                    inv.batch = []
                    continue
                inv.waiting_sync = True
                if tel is not None:
                    tel.emit(
                        4,
                        "sync",
                        mctx.step,
                        mctx.node,
                        attrs={
                            "inv": inv.inv_id,
                            "pending": len(inv.outstanding_tickets()),
                        },
                    )
                return
            elif isinstance(op, Result):
                self._finish(mctx, st, inv, op.value)
                gen.close()
                return

    def _issue_call(
        self,
        mctx: MappingContext,
        st: _EngineState,
        inv: Invocation,
        op: Call,
    ) -> Ticket:
        ticket = mctx.call(op.args, op.hint)
        record = CallRecord([ticket], None)
        st.pending[ticket] = (inv, record)
        inv.batch.append(record)
        st.stats.calls_made += 1
        tel = self._telemetry
        if tel is not None:
            tel.emit(
                4,
                "call",
                mctx.step,
                mctx.node,
                attrs={"inv": inv.inv_id, "ticket": str(ticket)},
            )
        return ticket

    def _finish(
        self, mctx: MappingContext, st: _EngineState, inv: Invocation, value: Any
    ) -> None:
        if inv.done or inv.cancelled:
            # idempotent completion: a second Result for an already-finished
            # invocation must not reply (and double-count) again
            return
        inv.done = True
        st.stats.completions += 1
        # retire any still-outstanding speculative subcalls
        for t in inv.outstanding_tickets():
            st.pending.pop(t, None)
            if self.cancellation:
                mctx.cancel(t)
                st.stats.cancels_sent += 1
        st.invocations.pop(inv.inv_id, None)
        if inv.reply is not None:
            st.by_reply_ticket.pop(inv.reply.ticket, None)
        tel = self._telemetry
        if tel is not None:
            step = mctx.step
            start = inv.start_step if inv.start_step >= 0 else step
            tel.emit(
                4,
                "invocation",
                start,
                mctx.node,
                dur=max(step - start, 0),
                attrs={"inv": inv.inv_id},
            )
            tel.emit(4, "result", step, mctx.node, attrs={"inv": inv.inv_id})
        mctx.reply(inv.reply, value)

    def _cancel_invocation(
        self, mctx: MappingContext, st: _EngineState, inv: Invocation
    ) -> None:
        inv.cancelled = True
        for t in inv.outstanding_tickets():
            st.pending.pop(t, None)
            mctx.cancel(t)
            st.stats.cancels_sent += 1
        st.invocations.pop(inv.inv_id, None)
        inv.gen.close()
        tel = self._telemetry
        if tel is not None:
            tel.emit(
                4,
                "cancelled",
                mctx.step,
                mctx.node,
                attrs={"inv": inv.inv_id},
            )

    # -- snapshot / restore (repro.state protocol) --------------------------

    def snapshot_app_state(self, st: Any) -> Dict[str, Any]:
        """Layer-3 hook: capture one node's engine state, generators included.

        Live generators cannot be serialized, so each invocation is stored
        as its creation arguments plus its *sent log* — every value the
        engine has sent into the generator so far.  Both the engine and the
        hosted function are deterministic, so replaying the log against a
        fresh ``fn(args)`` generator reproduces the exact suspension point
        on restore.  Ticket-indexed maps are stored positionally
        (invocation id + call-record index) and relinked on restore.
        """
        if not isinstance(st, _EngineState):
            raise RecursionLayerError("state does not belong to a RecursionEngine")
        from ..errors import CheckpointError

        invs = []
        for inv in st.invocations.values():
            if not inv.waiting_sync:
                raise CheckpointError(
                    f"invocation #{inv.inv_id} is mid-drive (not suspended "
                    "at a Sync); snapshots are only taken at step boundaries"
                )
            invs.append(
                {
                    "inv_id": inv.inv_id,
                    "args": inv.args,
                    "reply": inv.reply,
                    "start_step": inv.start_step,
                    "sent_log": list(inv.sent_log),
                    "batch": [
                        {
                            "tickets": list(rec.tickets),
                            "is_valid": rec.is_valid,
                            "results": dict(rec.results),
                            "resolved": rec.resolved,
                            "value": rec.value,
                        }
                        for rec in inv.batch
                    ],
                }
            )
        pending = []
        for ticket, (inv, rec) in st.pending.items():
            try:
                idx = inv.batch.index(rec)  # CallRecord compares by identity
            except ValueError as exc:
                raise CheckpointError(
                    f"pending ticket {ticket} references a call record "
                    f"outside invocation #{inv.inv_id}'s current batch"
                ) from exc
            pending.append((ticket, inv.inv_id, idx))
        return {
            "invocations": invs,
            "pending": pending,
            "by_reply_ticket": [
                (ticket, inv.inv_id) for ticket, inv in st.by_reply_ticket.items()
            ],
            "next_inv_id": st.next_inv_id,
            "stats": st.stats,
        }

    def restore_app_state(self, mctx: MappingContext, data: Dict[str, Any]) -> None:
        """Layer-3 hook: rebuild the engine state, replaying each generator.

        Replay drives ``fn(args)`` through the captured sent log, discarding
        the (identical) yields; a generator that finishes early — e.g. a
        non-deterministic hosted function — is a protocol violation reported
        as :class:`~repro.errors.CheckpointError`.
        """
        from ..errors import CheckpointError

        st = _EngineState()
        st.next_inv_id = data["next_inv_id"]
        st.stats = data["stats"]
        for idata in data["invocations"]:
            gen = self.fn(idata["args"])
            inv = Invocation(
                idata["inv_id"],
                gen,
                idata["reply"],
                start_step=idata["start_step"],
                args=idata["args"],
            )
            inv.waiting_sync = True
            inv.sent_log = list(idata["sent_log"])
            try:
                for value in inv.sent_log:
                    gen.send(value)
            except StopIteration as exc:
                raise CheckpointError(
                    f"invocation #{inv.inv_id} finished during replay — the "
                    "hosted function is not deterministic, so this run "
                    "cannot be resumed from a checkpoint"
                ) from exc
            inv.batch = [
                CallRecord(list(r["tickets"]), r["is_valid"]) for r in idata["batch"]
            ]
            for rec, r in zip(inv.batch, idata["batch"]):
                rec.results = dict(r["results"])
                rec.resolved = r["resolved"]
                rec.value = r["value"]
            st.invocations[inv.inv_id] = inv
        for ticket, inv_id, idx in data["pending"]:
            try:
                inv = st.invocations[inv_id]
                st.pending[ticket] = (inv, inv.batch[idx])
            except (KeyError, IndexError) as exc:
                raise CheckpointError(
                    f"pending ticket {ticket} references missing invocation "
                    f"#{inv_id} (record {idx})"
                ) from exc
        for ticket, inv_id in data["by_reply_ticket"]:
            try:
                st.by_reply_ticket[ticket] = st.invocations[inv_id]
            except KeyError as exc:
                raise CheckpointError(
                    f"reply ticket {ticket} references missing invocation #{inv_id}"
                ) from exc
        mctx.state = st

    # -- inspection ---------------------------------------------------------

    @staticmethod
    def stats_of(app_state: Any) -> EngineStats:
        """Engine statistics held in a node's layer-4 state."""
        if not isinstance(app_state, _EngineState):
            raise RecursionLayerError("state does not belong to a RecursionEngine")
        return app_state.stats

    @staticmethod
    def live_invocations_of(app_state: Any) -> int:
        """Number of live (suspended or running) invocations on a node."""
        if not isinstance(app_state, _EngineState):
            raise RecursionLayerError("state does not belong to a RecursionEngine")
        return len(app_state.invocations)

    @staticmethod
    def load_probe(pctx: Any, app_state: Any) -> int:
        """Layer-3 load metric for work sharing: live invocations held here.

        Passed as ``load_fn`` to :class:`~repro.mapping.MappingService` so
        an overloaded node can push incoming work onward (extension; paper
        Figure 2's "work sharing/stealing").  Note that in the
        one-pop-per-step machine this overstates pressure — suspended
        invocations cost nothing — so
        :func:`repro.mapping.queue_depth_load` is usually the better probe.
        """
        if not isinstance(app_state, _EngineState):
            return 0
        return len(app_state.invocations)
