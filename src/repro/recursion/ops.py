"""Layer-4 yield operations (paper §IV-C, Figure 3).

Applications hosted by the recursion layer are Python generator functions —
the "lightweight form of user-managed threads" the paper builds on ("we use
a ``yield`` operator as a mechanism for communication between layer 4 and
application code").  The values an application may yield:

* :class:`Call` — delegate a subcall; the yield evaluates to the subcall's
  :class:`~repro.mapping.tickets.Ticket` and execution continues immediately;
* :class:`Sync` — block until all calls made since the previous sync have
  results; the yield evaluates to the result (one call) or a tuple of
  results (several calls), in issue order;
* :class:`Result` — terminate this invocation, returning the value to the
  parent (``return value`` from the generator is accepted as sugar);
* :class:`Choice` — the non-deterministic form: several calls plus an
  ``is_valid`` predicate.  The next sync evaluates to the first returned
  result satisfying ``is_valid`` (remaining evaluations are ignored — or
  actively cancelled when the engine runs with cancellation on), or ``None``
  if every evaluation came back invalid.  The paper's literal list syntax
  ``yield [is_valid, Call(a), Call(b)]`` is accepted as an alias.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from ..errors import ProtocolError

__all__ = ["Call", "Sync", "Result", "Choice", "coerce_op"]


class Call:
    """Delegate ``args`` as a subcall to a mapper-chosen node.

    ``hint`` is the optional cross-layer size estimate passed down to the
    mapping layer (paper §III-B3).
    """

    __slots__ = ("args", "hint")

    def __init__(self, args: Any, hint: Optional[float] = None) -> None:
        self.args = args
        self.hint = hint

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Call({self.args!r})" if self.hint is None else f"Call({self.args!r}, hint={self.hint})"


class Sync:
    """Wait for the results of all calls made since the previous sync."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Sync()"


class Result:
    """Terminate the invocation and return ``value`` to the parent."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Result({self.value!r})"


class Choice:
    """Non-deterministic choice over several concurrent subcalls.

    The engine issues every call; the invocation's next :class:`Sync`
    resumes as soon as one evaluation ``e`` with ``is_valid(e)`` true is
    returned (yielding ``e``), or with ``None`` once all evaluations have
    come back invalid.
    """

    __slots__ = ("is_valid", "calls")

    def __init__(self, is_valid: Callable[[Any], bool], *calls: Call) -> None:
        if not callable(is_valid):
            raise ProtocolError(f"Choice needs a callable is_valid, got {is_valid!r}")
        if not calls:
            raise ProtocolError("Choice needs at least one Call")
        for c in calls:
            if not isinstance(c, Call):
                raise ProtocolError(f"Choice accepts Call objects only, got {c!r}")
        self.is_valid = is_valid
        self.calls: Tuple[Call, ...] = calls

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Choice({self.is_valid!r}, {len(self.calls)} calls)"


def coerce_op(yielded: Any) -> Any:
    """Normalise a yielded value to one of the four op classes.

    Accepts the paper's literal list form ``[is_valid, Call, Call, ...]``
    (any sequence whose head is callable and tail is all ``Call``) and turns
    it into a :class:`Choice`.  Anything unrecognised raises
    :class:`~repro.errors.ProtocolError`.
    """
    if isinstance(yielded, (Call, Sync, Result, Choice)):
        return yielded
    if isinstance(yielded, (list, tuple)) and yielded:
        head, *tail = yielded
        if callable(head) and tail and all(isinstance(c, Call) for c in tail):
            return Choice(head, *tail)
    raise ProtocolError(
        f"application yielded unsupported value {yielded!r}; expected Call, "
        "Sync, Result, Choice or [is_valid, Call, ...]"
    )
