"""Call records and invocation bookkeeping (paper Figure 3).

"Layer 4 maintains a record of invoked calls (call records). [...] The
ticket number issued by layer 3 is stored in call records, alongside an
empty slot for a pending computation result."

A :class:`CallRecord` covers either a single subcall or a whole
non-deterministic choice group (the paper stores "all tickets in the same
call record" for choices).  An :class:`Invocation` is one suspended/running
activation of the user's recursive function on this node.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..mapping import ReplyHandle, Ticket

__all__ = ["CallRecord", "Invocation"]


class CallRecord:
    """Result slot(s) for one subcall or one choice group."""

    __slots__ = ("tickets", "is_valid", "results", "resolved", "value")

    def __init__(
        self, tickets: List[Ticket], is_valid: Optional[Callable[[Any], bool]]
    ) -> None:
        self.tickets = tickets
        #: None for plain calls; the choice predicate otherwise
        self.is_valid = is_valid
        self.results: Dict[Ticket, Any] = {}
        self.resolved = False
        self.value: Any = None

    @property
    def is_choice(self) -> bool:
        """True for choice groups (several tickets + predicate)."""
        return self.is_valid is not None

    def deliver(self, ticket: Ticket, payload: Any) -> bool:
        """Record one evaluation; return True if this resolved the record.

        Plain records resolve on their (single) result.  Choice records
        resolve on the first valid evaluation, or — with ``None`` as value —
        once every evaluation has arrived invalid.
        """
        self.results[ticket] = payload
        if self.resolved:
            return False
        if self.is_valid is None:
            self.resolved = True
            self.value = payload
            return True
        if self.is_valid(payload):
            self.resolved = True
            self.value = payload
            return True
        if len(self.results) == len(self.tickets):
            self.resolved = True
            self.value = None
            return True
        return False

    def outstanding(self) -> List[Ticket]:
        """Tickets whose evaluations have not arrived yet."""
        return [t for t in self.tickets if t not in self.results]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"={self.value!r}" if self.resolved else f" {len(self.results)}/{len(self.tickets)}"
        return f"CallRecord({self.tickets}{state})"


class Invocation:
    """One activation of the recursive function hosted on a node."""

    __slots__ = (
        "inv_id",
        "gen",
        "reply",
        "batch",
        "waiting_sync",
        "done",
        "cancelled",
        "start_step",
        "args",
        "sent_log",
    )

    def __init__(
        self,
        inv_id: int,
        gen: Generator[Any, Any, Any],
        reply: Optional[ReplyHandle],
        start_step: int = -1,
        args: Any = None,
    ) -> None:
        self.inv_id = inv_id
        self.gen = gen
        #: where the final result goes (None = external/root invocation)
        self.reply = reply
        #: call records created since the last sync, in issue order
        self.batch: List[CallRecord] = []
        self.waiting_sync = False
        self.done = False
        self.cancelled = False
        #: simulation step the invocation started on (-1 = unknown); the
        #: telemetry layer turns (start_step, finish step) into a span
        self.start_step = start_step
        #: the payload the generator was invoked with, kept so a checkpoint
        #: can re-create ``gen`` (generators cannot be serialized)
        self.args = args
        #: every value sent into ``gen`` so far, in order; replaying the
        #: log against a fresh generator reproduces its suspension point
        #: exactly (the engine and the generator are both deterministic)
        self.sent_log: List[Any] = []

    def batch_resolved(self) -> bool:
        """True if every record in the current batch has a value."""
        return all(rec.resolved for rec in self.batch)

    def sync_value(self) -> Any:
        """Value a pending :class:`~repro.recursion.ops.Sync` resumes with.

        One record → its value; several → a tuple in issue order (matching
        the paper's ``result1, result2 <- yield Sync()``); an empty batch
        (sync with no preceding calls) → an empty tuple.
        """
        if len(self.batch) == 1:
            return self.batch[0].value
        return tuple(rec.value for rec in self.batch)

    def outstanding_tickets(self) -> List[Ticket]:
        """All unresolved tickets across the current batch."""
        out: List[Ticket] = []
        for rec in self.batch:
            out.extend(rec.outstanding())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f
            for f, on in (
                ("W", self.waiting_sync),
                ("D", self.done),
                ("C", self.cancelled),
            )
            if on
        )
        return f"Invocation(#{self.inv_id}{' ' + flags if flags else ''})"
