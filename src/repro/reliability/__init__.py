"""Layer 1.5 — reliable delivery over lossy links (paper Figure 2's
"link state, buffering and reliability" concern, made concrete).

The paper's layer 1 owns reliability on a real hyperspace machine; the
simulated backend is perfectly reliable by default, so the concern only
becomes visible when a :class:`~repro.netsim.FaultModel` injects message
drops and duplicates.  This package restores the contract the upper layers
assume — **every logical send is delivered exactly once, in per-link FIFO
order** — with a classic sliding-window protocol pinned to the simulator's
discrete clock:

* per directed link ``(src, dst)``: monotonically increasing sequence
  numbers stamped on every outgoing payload;
* receive side: in-order release, out-of-order buffering, duplicate
  suppression, and a cumulative acknowledgement after every data frame;
* send side: unacknowledged frames are retransmitted when their timer
  (measured in simulation steps) expires, with exponential backoff and a
  configurable retry cap.

The protocol is opt-in (``Machine(..., reliability=True)`` or via
``HyperspaceStack(reliable=True)``); switched off, the layer-1 fast send
path is byte-identical to the unprotected machine.  See
``docs/robustness.md`` for the design walkthrough and the chaos-test
harness built on top of it.
"""

from .frames import AckFrame, DataFrame
from .protocol import LinkLayerStats, ReliabilityConfig, ReliableDelivery

__all__ = [
    "AckFrame",
    "DataFrame",
    "LinkLayerStats",
    "ReliabilityConfig",
    "ReliableDelivery",
]
