"""Link-level wire format of the reliability protocol.

Frames are what actually crosses the (possibly lossy) channel when the
protocol is enabled.  They never enter node inboxes and are invisible to
node programs: a :class:`DataFrame` that clears duplicate suppression
releases its carried :class:`~repro.netsim.message.Envelope` into the
destination inbox unchanged, and :class:`AckFrame` traffic terminates at
the sender's link endpoint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netsim.message import Envelope

__all__ = ["DataFrame", "AckFrame"]


class DataFrame:
    """One payload-bearing frame: a sequence number plus the envelope.

    Retransmissions reuse the *same* frame object (same envelope, same
    ``msg_id``), so a payload released to the inbox is indistinguishable
    from one sent over a reliable link.
    """

    __slots__ = ("seq", "env")

    def __init__(self, seq: int, env: "Envelope") -> None:
        self.seq = seq
        self.env = env

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataFrame(seq={self.seq}, {self.env!r})"


class AckFrame:
    """Cumulative acknowledgement: every seq ``<= cum`` has been received.

    Sent by the receiving link endpoint after *every* arriving data frame
    — including suppressed duplicates, which is how the protocol recovers
    from lost acknowledgements.
    """

    __slots__ = ("cum",)

    def __init__(self, cum: int) -> None:
        self.cum = cum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AckFrame(cum={self.cum})"
