"""Link-level wire format of the reliability protocol.

Frames are what actually crosses the (possibly lossy) channel when the
protocol is enabled.  They never enter node inboxes and are invisible to
node programs: a :class:`DataFrame` that clears duplicate suppression
releases its carried :class:`~repro.netsim.message.Envelope` into the
destination inbox unchanged, and :class:`AckFrame` traffic terminates at
the sender's link endpoint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netsim.message import Envelope

__all__ = ["DataFrame", "AckFrame"]


class DataFrame:
    """One payload-bearing frame: a sequence number plus the envelope.

    Retransmissions reuse the *same* frame object (same envelope, same
    ``msg_id``), so a payload released to the inbox is indistinguishable
    from one sent over a reliable link.

    The frame doubles as the sender's retransmit record: ``due`` (the step
    its timer fires) and ``retries`` live directly on the frame, so the
    clean-link send path allocates exactly one protocol object per message.

    ``ack`` piggybacks a cumulative acknowledgement for the *reverse*
    direction of the link (``-1`` = none): when the sending endpoint owes
    the destination an ack for data it received, the ack rides the next
    data frame instead of a standalone :class:`AckFrame`.  A retransmitted
    frame re-carries whatever ack it was stamped with — cumulative acks are
    idempotent, so a stale one is harmless.
    """

    __slots__ = ("seq", "env", "ack", "due", "retries")

    def __init__(self, seq: int, env: "Envelope", ack: int = -1) -> None:
        self.seq = seq
        self.env = env
        self.ack = ack
        self.due = 0
        self.retries = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        piggy = f", ack={self.ack}" if self.ack >= 0 else ""
        return f"DataFrame(seq={self.seq}{piggy}, {self.env!r})"


class AckFrame:
    """Cumulative acknowledgement: every seq ``<= cum`` has been received.

    Standalone ack frames are the fallback for links with no reverse data
    traffic: the receiving endpoint notes which links it owes an ack after
    each arriving data frame (duplicates included — that is how the
    protocol recovers from lost acknowledgements) and flushes one
    cumulative :class:`AckFrame` per owed link at the end of the step,
    unless a reverse-direction data frame already carried it.
    """

    __slots__ = ("cum",)

    def __init__(self, cum: int) -> None:
        self.cum = cum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AckFrame(cum={self.cum})"
