"""The reliable-delivery protocol engine (see package docstring).

:class:`ReliableDelivery` is owned by a :class:`~repro.netsim.Machine` and
models every link's NIC state centrally (the machine simulates all nodes
anyway).  It sits *between* the send call and the destination inbox:

* ``send(src, dst, payload)`` stamps the payload with the link's next
  sequence number, parks the frame in the sender-side retransmit buffer,
  arms its timer and transmits it through the machine's
  :class:`~repro.netsim.FaultModel` / latency channel — piggybacking any
  cumulative acknowledgement owed to ``dst`` on the frame itself;
* ``on_step(step)`` — called by the machine at the start of every step —
  lands frames whose flight time has elapsed (releasing in-order payloads
  into inboxes) and fires exactly the retransmit timers due at ``step``;
* ``end_step()`` — called by the machine at the end of every step —
  flushes one standalone cumulative ack per link that received data this
  step and did not get to piggyback it.  Standalone acks leave in the same
  step the data arrived, so ack round-trip timing matches the old
  ack-per-frame scheme exactly; there are just fewer ack frames.

Hot-path structure (the on_clean overhead budget):

* the retransmit scan is a **timer wheel** (``_timers``: due step -> flat
  ``[link, seq, link, seq, ...]`` list).  A step with no due timers costs
  one dict lookup; acked frames leave stale wheel entries that are
  discarded O(1) when their bucket fires (``unacked`` lookup miss) — no
  per-step walk over links, no per-link list allocation.  On clean
  zero-latency links the timer can provably never fire (the ack always
  lands first, since arrivals are processed before timers), so it is not
  armed at all;
* the sender-side retransmit record lives *on* the
  :class:`~repro.reliability.frames.DataFrame` (``due`` / ``retries``
  slots), so a clean-link send allocates one envelope and one frame —
  nothing else;
* in-flight frames are flat ``[src, dst, frame, ...]`` buckets keyed by
  arrival step (no per-frame tuples);
* acknowledgements are cumulative and **coalesced**: at most one ack
  crosses each link per step (piggybacked on reverse data when possible),
  instead of one ack frame per arriving data frame.

Because frames bypass inboxes, the protocol never consumes a node's
one-pop-per-step delivery budget with control traffic, and the program-visible
semantics of a faulty-but-protected machine match the reliable machine
exactly: each payload is enqueued exactly once, in per-link send order.
Timing differs (a dropped frame delays its payload by the retransmit
timeout), so *step counts* are not preserved — *verdicts* are.

All protocol state is deterministic: frame arrival order is append order,
timer buckets fire in arming order, ack flush order is the order links
first received data in the step, and every random draw comes from the
machine's seeded fault model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..errors import ReliabilityError
from ..netsim.message import Envelope
from .frames import AckFrame, DataFrame

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..netsim.backend import Machine

__all__ = ["ReliabilityConfig", "ReliableDelivery", "LinkLayerStats"]

#: directed link key
LinkKey = Tuple[int, int]


class ReliabilityConfig:
    """Tunables of the retransmission protocol.

    Parameters
    ----------
    timeout:
        Steps to wait for an acknowledgement before the first
        retransmission.  Must cover a frame's round trip (2 steps on a
        zero-latency link) or every message is retransmitted once for free.
    backoff:
        Exponential backoff factor: retry *n* waits
        ``timeout * backoff**n`` steps (capped at ``max_timeout``).
    max_timeout:
        Upper bound on the per-retry wait.
    retry_limit:
        Maximum retransmissions per frame.  A frame still unacknowledged
        after the cap is handled per ``on_exhausted``.
    on_exhausted:
        ``"raise"`` (default) aborts the run with
        :class:`~repro.errors.ReliabilityError` — the loud option, for
        catching a cap that is too small for the configured loss rate;
        ``"drop"`` gives the message up, recording an end-to-end drop in
        the trace (reason ``retry_exhausted``).
    """

    __slots__ = ("timeout", "backoff", "max_timeout", "retry_limit", "on_exhausted")

    def __init__(
        self,
        timeout: int = 4,
        backoff: float = 2.0,
        max_timeout: int = 64,
        retry_limit: int = 12,
        on_exhausted: str = "raise",
    ) -> None:
        if timeout < 1:
            raise ReliabilityError(f"timeout must be >= 1 step, got {timeout}")
        if backoff < 1.0:
            raise ReliabilityError(f"backoff must be >= 1.0, got {backoff}")
        if max_timeout < timeout:
            raise ReliabilityError(
                f"max_timeout ({max_timeout}) must be >= timeout ({timeout})"
            )
        if retry_limit < 0:
            raise ReliabilityError(f"retry_limit must be >= 0, got {retry_limit}")
        if on_exhausted not in ("raise", "drop"):
            raise ReliabilityError(
                f"on_exhausted must be 'raise' or 'drop', got {on_exhausted!r}"
            )
        self.timeout = timeout
        self.backoff = backoff
        self.max_timeout = max_timeout
        self.retry_limit = retry_limit
        self.on_exhausted = on_exhausted


class LinkLayerStats:
    """Protocol counters, always maintained while the layer is enabled.

    Telemetry mirrors these as events (``retransmit`` / ``ack`` /
    ``dedup``); the counters make them inspectable without a bus.

    Since acks are cumulative and coalesced (at most one per link per
    step, piggybacked on reverse data when possible), ``acks_sent`` counts
    standalone ack *frames*, ``acks_piggybacked`` counts acks carried on
    data frames, and ``acks_received`` counts cumulative-ack applications
    at the sending endpoint (both kinds, duplicates included).
    """

    __slots__ = (
        "data_sent",
        "delivered",
        "retransmits",
        "acks_sent",
        "acks_piggybacked",
        "acks_received",
        "dups_suppressed",
        "frames_lost",
        "exhausted",
    )

    def __init__(self) -> None:
        self.data_sent = 0
        self.delivered = 0
        self.retransmits = 0
        self.acks_sent = 0
        self.acks_piggybacked = 0
        self.acks_received = 0
        self.dups_suppressed = 0
        self.frames_lost = 0
        self.exhausted = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reports and tests."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"LinkLayerStats({body})"


class _SenderLink:
    """Send half of a directed link: next seq + retransmit buffer.

    ``unacked`` maps seq -> :class:`DataFrame` (the frame *is* the
    retransmit record); insertion order is ascending sequence number,
    which makes cumulative-ack retirement a prefix pop.
    """

    __slots__ = ("src", "dst", "next_seq", "unacked")

    def __init__(self, src: int, dst: int) -> None:
        self.src = src
        self.dst = dst
        self.next_seq = 0
        self.unacked: Dict[int, DataFrame] = {}


class _ReceiverLink:
    """Receive half of a directed link: in-order cursor + reorder buffer."""

    __slots__ = ("expected", "buffer")

    def __init__(self) -> None:
        self.expected = 0
        self.buffer: Dict[int, "Envelope"] = {}


class ReliableDelivery:
    """Per-machine reliability engine; see the module docstring.

    Built by :class:`~repro.netsim.Machine` when constructed with
    ``reliability=True`` (default config) or a :class:`ReliabilityConfig`.
    Exposed as ``machine.reliability`` for inspection.
    """

    __slots__ = (
        "_machine",
        "config",
        "stats",
        "_senders",
        "_receivers",
        "_frames",
        "_frames_in_flight",
        "_unacked_total",
        "_timers",
        "_ack_owed",
        "_reliable_links",
        "_latency_fn",
        "_skip_timers",
        "_virtual",
        "_retire",
    )

    def __init__(self, machine: "Machine", config: Optional[ReliabilityConfig] = None):
        self._machine = machine
        self.config = config if config is not None else ReliabilityConfig()
        self.stats = LinkLayerStats()
        self._senders: Dict[LinkKey, _SenderLink] = {}
        self._receivers: Dict[LinkKey, _ReceiverLink] = {}
        #: frames in flight: arrival step -> flat [src, dst, frame, ...]
        self._frames: Dict[int, List[Any]] = {}
        self._frames_in_flight = 0
        self._unacked_total = 0
        #: timer wheel: due step -> flat [link, seq, link, seq, ...];
        #: entries whose frame was acked or rescheduled are skipped when
        #: the bucket fires (the frame's ``due`` is authoritative)
        self._timers: Dict[int, List[Any]] = {}
        #: links owed a cumulative ack this step: (receiver, sender) ->
        #: _ReceiverLink (framed mode) or arrival count (virtual mode);
        #: drained by piggybacking or ``end_step``
        self._ack_owed: Dict[LinkKey, Any] = {}
        # Cached channel properties (fixed for the machine's lifetime):
        # clean links skip the fault-model draw per frame entirely.
        self._reliable_links = machine._faults.is_reliable
        self._latency_fn = machine._latency_fn
        # On a clean zero-latency link the ack for a frame sent at step t
        # arrives at t+2, and arrivals are processed before timers, so the
        # earliest timer (due t+2 at timeout=1) is always stale when its
        # bucket fires.  The timer can provably never fire — skip arming
        # it.  (With latency the round trip can exceed the timeout and
        # spurious retransmits are real behaviour, so timers stay on.)
        self._skip_timers = self._reliable_links and self._latency_fn is None
        # On a clean zero-latency link with no telemetry bus the whole
        # frame lifecycle is deterministic, so it is *virtualized*: the
        # envelope itself travels the flight bucket (no DataFrame), acks
        # reduce to per-link arrival counters in ``_ack_owed`` (int, not
        # _ReceiverLink), and retirement becomes a scheduled counter
        # decrement in ``_retire`` ({step: [frames, acks]}).  Every stat
        # and the ``pending`` zero/non-zero sequence are identical to the
        # framed protocol; only ``link_state`` loses its mid-run per-link
        # breakdown (it reports from the frame-level dicts, which the
        # virtual path never populates).
        self._virtual = self._skip_timers and machine._telemetry is None
        self._retire: Dict[int, List[int]] = {}

    # -- machine-facing surface -----------------------------------------

    @property
    def pending(self) -> int:
        """Outstanding protocol work: unacked frames + frames in flight.

        The machine keeps stepping while this is non-zero, so a run only
        goes quiescent once every payload is delivered *and* acknowledged.
        (``end_step`` leaves no deferred acks behind: every owed ack is in
        flight by the time the machine checks quiescence.)
        """
        return self._unacked_total + self._frames_in_flight

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Accept one logical send from the machine's send path."""
        m = self._machine
        step = m.current_step
        if self._virtual:
            # virtual clean path (see __init__): the envelope IS the frame
            env = Envelope(src, dst, payload, step, m._next_msg_id)
            m._next_msg_id += 1
            stats = self.stats
            stats.data_sent += 1
            self._unacked_total += 1
            owed = self._ack_owed
            if owed:
                n = owed.pop((src, dst), None)
                if n is not None:
                    # piggyback: the ack we owe dst rides this frame and
                    # lands (retiring dst's n frames) next step — the same
                    # step a standalone end-of-step ack would land
                    stats.acks_piggybacked += 1
                    retire = self._retire
                    b = retire.get(step + 1)
                    if b is None:
                        b = retire[step + 1] = [0, 0]
                    b[0] += n
                    b[1] += 1
            frames = self._frames
            key = step + 1
            fbucket = frames.get(key)
            if fbucket is None:
                fbucket = frames[key] = []
            fbucket.append(src)
            fbucket.append(dst)
            fbucket.append(env)
            self._frames_in_flight += 1
            return
        link = self._senders.get((src, dst))
        if link is None:
            link = self._senders[(src, dst)] = _SenderLink(src, dst)
        seq = link.next_seq
        link.next_seq = seq + 1
        env = Envelope(src, dst, payload, step, m._next_msg_id)
        m._next_msg_id += 1
        frame = DataFrame(seq, env)
        owed = self._ack_owed
        if owed:
            rl = owed.pop((src, dst), None)
            if rl is not None:
                # piggyback the cumulative ack we owe dst on this frame
                cum = rl.expected - 1
                frame.ack = cum
                self.stats.acks_piggybacked += 1
                tel = m._telemetry
                if tel is not None:
                    tel.count(1, "ack")
                    if tel.want_events:
                        tel.record(
                            step, 1, "ack", src,
                            None, {"dst": dst, "cum": cum, "piggyback": True},
                        )
        link.unacked[seq] = frame
        self._unacked_total += 1
        self.stats.data_sent += 1
        if self._skip_timers:
            # Clean zero-latency link: no timer to arm (see __init__) and
            # the channel is trivial — one copy, one-step flight.  Inline
            # the transmit to keep the per-message cost at two dict ops
            # and three list appends.
            frames = self._frames
            key = step + 1
            fbucket = frames.get(key)
            if fbucket is None:
                fbucket = frames[key] = []
            fbucket.append(src)
            fbucket.append(dst)
            fbucket.append(frame)
            self._frames_in_flight += 1
            return
        due = step + 1 + self.config.timeout
        frame.due = due
        timers = self._timers
        bucket = timers.get(due)
        if bucket is None:
            bucket = timers[due] = []
        bucket.append(link)
        bucket.append(seq)
        self._transmit(src, dst, frame)

    def on_step(self, step: int) -> None:
        """Land matured frames, then fire the retransmit timers due now.

        Called by the machine at the start of every step, before the
        delivery snapshot — payloads released here are deliverable within
        the same step, matching the latency of an unprotected send.
        """
        if self._virtual:
            if self._frames_in_flight:
                arrivals = self._frames.pop(step, None)
                if arrivals is not None:
                    n = len(arrivals) // 3
                    self._frames_in_flight -= n
                    self.stats.delivered += n
                    owed = self._ack_owed
                    owed_get = owed.get
                    enqueue = self._machine._enqueue
                    it = iter(arrivals)
                    for src, dst, env in zip(it, it, it):
                        enqueue(dst, env)
                        k = (dst, src)
                        owed[k] = owed_get(k, 0) + 1
            if self._retire:
                b = self._retire.pop(step, None)
                if b is not None:
                    self._unacked_total -= b[0]
                    self.stats.acks_received += b[1]
            return
        if self._frames_in_flight:
            arrivals = self._frames.pop(step, None)
            if arrivals is not None:
                self._frames_in_flight -= len(arrivals) // 3
                it = iter(arrivals)
                for src, dst, frame in zip(it, it, it):
                    if type(frame) is DataFrame:
                        self._on_data(src, dst, frame, step)
                    else:
                        self._on_ack(src, dst, frame, step)
        if self._timers:
            bucket = self._timers.pop(step, None)
            if bucket is not None:
                self._fire_timers(bucket, step)

    def end_step(self) -> None:
        """Flush deferred acknowledgements at the step boundary.

        One cumulative :class:`AckFrame` per link that received data this
        step and did not piggyback its ack on reverse traffic.  The ack
        leaves in the same step the data arrived (arrival next step), so
        round-trip timing is identical to acking each frame on arrival.
        """
        owed = self._ack_owed
        if not owed:
            return
        if self._virtual:
            # one standalone cumulative ack per owed link, as counters:
            # each retires that link's arrivals from this step, next step
            stats = self.stats
            stats.acks_sent += len(owed)
            retire = self._retire
            key = self._machine.current_step + 1
            b = retire.get(key)
            if b is None:
                b = retire[key] = [0, 0]
            nf = 0
            for n in owed.values():
                nf += n
            b[0] += nf
            b[1] += len(owed)
            owed.clear()
            return
        m = self._machine
        step = m.current_step
        tel = m._telemetry
        stats = self.stats
        if self._skip_timers:
            # clean zero-latency links: all acks land next step — share
            # one flight bucket and skip the per-frame channel call
            frames = self._frames
            key = step + 1
            fbucket = frames.get(key)
            if fbucket is None:
                fbucket = frames[key] = []
            for (src, dst), rl in owed.items():
                cum = rl.expected - 1
                stats.acks_sent += 1
                if tel is not None:
                    tel.count(1, "ack")
                    if tel.want_events:
                        tel.record(step, 1, "ack", src, None, {"dst": dst, "cum": cum})
                fbucket.append(src)
                fbucket.append(dst)
                fbucket.append(AckFrame(cum))
            self._frames_in_flight += len(owed)
            owed.clear()
            return
        for (src, dst), rl in owed.items():
            cum = rl.expected - 1
            stats.acks_sent += 1
            if tel is not None:
                tel.count(1, "ack")
                if tel.want_events:
                    tel.record(step, 1, "ack", src, None, {"dst": dst, "cum": cum})
            self._transmit(src, dst, AckFrame(cum))
        owed.clear()

    # -- channel ---------------------------------------------------------

    def _transmit(self, src: int, dst: int, frame: Any) -> None:
        """Push one frame through the lossy/latent channel."""
        m = self._machine
        if self._reliable_links:
            copies = 1
        else:
            copies = m._faults.copies_to_deliver()
            if copies == 0:
                self.stats.frames_lost += 1
                tel = m._telemetry
                if tel is not None:
                    tel.emit(1, "drop", m.current_step, dst, attrs={"reason": "link"})
                return
        latency_fn = self._latency_fn
        # external endpoints (src/dst -1) have no physical link to model
        delay = 0 if (latency_fn is None or src < 0 or dst < 0) else latency_fn(src, dst)
        frames = self._frames
        key = m.current_step + 1 + delay
        bucket = frames.get(key)
        if bucket is None:
            bucket = frames[key] = []
        bucket.append(src)
        bucket.append(dst)
        bucket.append(frame)
        if copies > 1:
            for _ in range(copies - 1):
                bucket.append(src)
                bucket.append(dst)
                bucket.append(frame)
        self._frames_in_flight += copies

    # -- receive side -----------------------------------------------------

    def _on_data(self, src: int, dst: int, frame: DataFrame, step: int) -> None:
        cum = frame.ack
        if cum >= 0:
            # piggybacked ack for the reverse direction: data we (dst)
            # sent to src earlier is being acknowledged
            self._apply_cum_ack(dst, src, cum, step)
        rl = self._receivers.get((src, dst))
        if rl is None:
            rl = self._receivers[(src, dst)] = _ReceiverLink()
        seq = frame.seq
        expected = rl.expected
        stats = self.stats
        if seq == expected:
            stats.delivered += 1
            enqueue = self._machine._enqueue
            enqueue(dst, frame.env)
            expected += 1
            buffer = rl.buffer
            if buffer:
                # a gap just closed: drain buffered successors in order
                while expected in buffer:
                    stats.delivered += 1
                    enqueue(dst, buffer.pop(expected))
                    expected += 1
            rl.expected = expected
        elif seq > expected:
            if seq in rl.buffer:
                self._suppress(src, dst, seq, step)
            else:
                rl.buffer[seq] = frame.env
        else:
            self._suppress(src, dst, seq, step)
        # Defer the cumulative ack to the step boundary (or to a
        # reverse-direction data frame sent this step, which piggybacks
        # it).  Duplicates re-arm the owed entry, so a lost ack is still
        # repaired by the retransmission it provokes.
        self._ack_owed[(dst, src)] = rl

    def _suppress(self, src: int, dst: int, seq: int, step: int) -> None:
        self.stats.dups_suppressed += 1
        tel = self._machine._telemetry
        if tel is not None:
            tel.count(1, "dedup")
            if tel.want_events:
                tel.record(step, 1, "dedup", dst, None, {"src": src, "seq": seq})

    # -- send side ---------------------------------------------------------

    def _on_ack(self, src: int, dst: int, frame: AckFrame, step: int) -> None:
        # the ack travelled receiver -> sender, so the sender link is (dst, src)
        self._apply_cum_ack(dst, src, frame.cum, step)

    def _apply_cum_ack(self, src: int, dst: int, cum: int, step: int) -> None:
        """Retire every frame with seq <= ``cum`` on sender link src->dst."""
        self.stats.acks_received += 1
        link = self._senders.get((src, dst))
        if link is None:  # pragma: no cover - defensive; acks imply a sender
            return
        unacked = link.unacked
        if not unacked:
            return
        tel = self._machine._telemetry
        if next(reversed(unacked)) <= cum:
            # the cumulative ack covers the whole buffer (the common case
            # on a clean link): retire it wholesale
            n = len(unacked)
            if tel is None:
                unacked.clear()
                self._unacked_total -= n
                return
            if self._skip_timers and not tel.want_events:
                # clean links never retransmit, so every retry count is 0:
                # one coalesced observation replaces n identical ones
                unacked.clear()
                self._unacked_total -= n
                tel.observe(1, "link_retries", 0, n)
                return
        retired = 0
        while unacked:
            seq = next(iter(unacked))
            if seq > cum:
                break
            frame_ = unacked.pop(seq)
            retired += 1
            if tel is not None:
                # span observation: value = retransmissions this frame
                # needed, so the metrics dump grows a retry-count
                # histogram (l1.link_retries.steps)
                tel.observe(1, "link_retries", frame_.retries)
                if tel.want_events:
                    tel.record(
                        step, 1, "link_retries", src,
                        frame_.retries, {"dst": dst, "seq": seq},
                    )
        if retired:
            self._unacked_total -= retired

    def _fire_timers(self, bucket: List[Any], step: int) -> None:
        """Handle one timer-wheel bucket: retransmit or give up."""
        cfg = self.config
        stats = self.stats
        m = self._machine
        timers = self._timers
        for i in range(0, len(bucket), 2):
            link: _SenderLink = bucket[i]
            seq: int = bucket[i + 1]
            frame = link.unacked.get(seq)
            if frame is None or frame.due != step:
                # already acked, or rescheduled by an earlier backoff
                continue
            tel = m._telemetry
            if frame.retries >= cfg.retry_limit:
                stats.exhausted += 1
                src, dst = link.src, link.dst
                if cfg.on_exhausted == "raise":
                    raise ReliabilityError(
                        f"link {src}->{dst} gave up on seq {seq} after "
                        f"{frame.retries} retransmissions (retry_limit="
                        f"{cfg.retry_limit}); raise the cap or lower the "
                        f"fault rate"
                    )
                del link.unacked[seq]
                self._unacked_total -= 1
                m._record_drop(dst, "retry_exhausted")
                if tel is not None:
                    tel.observe(1, "link_retries", frame.retries)
                    if tel.want_events:
                        tel.record(
                            step, 1, "link_retries", src, frame.retries,
                            {"dst": dst, "seq": seq, "gave_up": True},
                        )
                continue
            retries = frame.retries + 1
            frame.retries = retries
            stats.retransmits += 1
            wait = cfg.timeout * (cfg.backoff ** retries)
            due = step + max(1, min(int(wait), cfg.max_timeout))
            frame.due = due
            nbucket = timers.get(due)
            if nbucket is None:
                nbucket = timers[due] = []
            nbucket.append(link)
            nbucket.append(seq)
            if tel is not None:
                tel.count(1, "retransmit")
                if tel.want_events:
                    tel.record(
                        step, 1, "retransmit", link.src,
                        None, {"dst": link.dst, "seq": seq, "retry": retries},
                    )
            self._transmit(link.src, link.dst, frame)

    # -- snapshot / restore (repro.state protocol) -------------------------

    #: snapshot-schema version of the reliability layer state
    STATE_VERSION = 1

    def snapshot(self) -> "LayerState":
        """Capture the protocol's mutable state as a detached ``LayerState``.

        One :func:`copy.deepcopy` over the composed dict keeps the internal
        aliasing intact — ``_ack_owed`` values are the *same*
        :class:`_ReceiverLink` objects held by ``_receivers``, timer-wheel
        buckets hold the same :class:`_SenderLink` objects as ``_senders``,
        and an in-flight retransmission is the same :class:`DataFrame` as
        its retransmit-buffer entry.  Channel configuration (fault model,
        latency, virtualization) is derived from the owning machine and is
        recorded only as a ``virtual`` compatibility flag.
        """
        import copy

        from ..state import LayerState

        data = {
            "virtual": self._virtual,
            "stats": self.stats,
            "senders": self._senders,
            "receivers": self._receivers,
            "frames": self._frames,
            "frames_in_flight": self._frames_in_flight,
            "unacked_total": self._unacked_total,
            "timers": self._timers,
            "ack_owed": self._ack_owed,
            "retire": self._retire,
        }
        return LayerState("reliability", self.STATE_VERSION, copy.deepcopy(data))

    def restore(self, state: "LayerState") -> None:
        """Install a :meth:`snapshot`-captured state into this engine.

        The engine must run in the same mode (framed vs virtualized, which
        follows from the machine's fault/latency/telemetry configuration)
        as the one that took the snapshot.
        """
        import copy

        from ..errors import CheckpointError
        from ..state import LayerState  # noqa: F401

        data = copy.deepcopy(state.require("reliability", self.STATE_VERSION))
        if data["virtual"] != self._virtual:
            raise CheckpointError(
                "checkpoint and machine disagree on the reliability mode "
                f"(snapshot virtual={data['virtual']}, this engine "
                f"virtual={self._virtual}); rebuild the stack with the "
                "original fault/latency/telemetry configuration"
            )
        self.stats = data["stats"]
        self._senders = data["senders"]
        self._receivers = data["receivers"]
        self._frames = data["frames"]
        self._frames_in_flight = data["frames_in_flight"]
        self._unacked_total = data["unacked_total"]
        self._timers = data["timers"]
        self._ack_owed = data["ack_owed"]
        self._retire = data["retire"]

    # -- inspection --------------------------------------------------------

    def link_state(self) -> Dict[str, Dict[str, int]]:
        """Debug snapshot: per-link unacked / buffered counts (non-empty only)."""
        out: Dict[str, Dict[str, int]] = {}
        for (src, dst), link in self._senders.items():
            if link.unacked:
                out.setdefault(f"{src}->{dst}", {})["unacked"] = len(link.unacked)
        for (src, dst), rl in self._receivers.items():
            if rl.buffer:
                out.setdefault(f"{src}->{dst}", {})["buffered"] = len(rl.buffer)
        return out
