"""The reliable-delivery protocol engine (see package docstring).

:class:`ReliableDelivery` is owned by a :class:`~repro.netsim.Machine` and
models every link's NIC state centrally (the machine simulates all nodes
anyway).  It sits *between* the send call and the destination inbox:

* ``send(src, dst, payload)`` stamps the payload with the link's next
  sequence number, parks it in the sender-side retransmit buffer and
  transmits a :class:`~repro.reliability.frames.DataFrame` through the
  machine's :class:`~repro.netsim.FaultModel` / latency channel;
* ``on_step(step)`` — called by the machine at the start of every step —
  lands frames whose flight time has elapsed (releasing in-order payloads
  into inboxes and emitting cumulative acks) and retransmits every frame
  whose timer expired.

Because frames bypass inboxes, the protocol never consumes a node's
one-pop-per-step delivery budget with control traffic, and the program-visible
semantics of a faulty-but-protected machine match the reliable machine
exactly: each payload is enqueued exactly once, in per-link send order.
Timing differs (a dropped frame delays its payload by the retransmit
timeout), so *step counts* are not preserved — *verdicts* are.

All protocol state is deterministic: frame arrival order is append order,
retransmit scans walk links in creation order, and every random draw comes
from the machine's seeded fault model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

from ..errors import ReliabilityError
from ..netsim.message import Envelope
from .frames import AckFrame, DataFrame

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..netsim.backend import Machine

__all__ = ["ReliabilityConfig", "ReliableDelivery", "LinkLayerStats"]

#: directed link key
LinkKey = Tuple[int, int]


class ReliabilityConfig:
    """Tunables of the retransmission protocol.

    Parameters
    ----------
    timeout:
        Steps to wait for an acknowledgement before the first
        retransmission.  Must cover a frame's round trip (2 steps on a
        zero-latency link) or every message is retransmitted once for free.
    backoff:
        Exponential backoff factor: retry *n* waits
        ``timeout * backoff**n`` steps (capped at ``max_timeout``).
    max_timeout:
        Upper bound on the per-retry wait.
    retry_limit:
        Maximum retransmissions per frame.  A frame still unacknowledged
        after the cap is handled per ``on_exhausted``.
    on_exhausted:
        ``"raise"`` (default) aborts the run with
        :class:`~repro.errors.ReliabilityError` — the loud option, for
        catching a cap that is too small for the configured loss rate;
        ``"drop"`` gives the message up, recording an end-to-end drop in
        the trace (reason ``retry_exhausted``).
    """

    __slots__ = ("timeout", "backoff", "max_timeout", "retry_limit", "on_exhausted")

    def __init__(
        self,
        timeout: int = 4,
        backoff: float = 2.0,
        max_timeout: int = 64,
        retry_limit: int = 12,
        on_exhausted: str = "raise",
    ) -> None:
        if timeout < 1:
            raise ReliabilityError(f"timeout must be >= 1 step, got {timeout}")
        if backoff < 1.0:
            raise ReliabilityError(f"backoff must be >= 1.0, got {backoff}")
        if max_timeout < timeout:
            raise ReliabilityError(
                f"max_timeout ({max_timeout}) must be >= timeout ({timeout})"
            )
        if retry_limit < 0:
            raise ReliabilityError(f"retry_limit must be >= 0, got {retry_limit}")
        if on_exhausted not in ("raise", "drop"):
            raise ReliabilityError(
                f"on_exhausted must be 'raise' or 'drop', got {on_exhausted!r}"
            )
        self.timeout = timeout
        self.backoff = backoff
        self.max_timeout = max_timeout
        self.retry_limit = retry_limit
        self.on_exhausted = on_exhausted


class LinkLayerStats:
    """Protocol counters, always maintained while the layer is enabled.

    Telemetry mirrors these as events (``retransmit`` / ``ack`` /
    ``dedup``); the counters make them inspectable without a bus.
    """

    __slots__ = (
        "data_sent",
        "delivered",
        "retransmits",
        "acks_sent",
        "acks_received",
        "dups_suppressed",
        "frames_lost",
        "exhausted",
    )

    def __init__(self) -> None:
        self.data_sent = 0
        self.delivered = 0
        self.retransmits = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.dups_suppressed = 0
        self.frames_lost = 0
        self.exhausted = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reports and tests."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"LinkLayerStats({body})"


class _Pending:
    """Sender-side record of one unacknowledged frame."""

    __slots__ = ("frame", "retries", "due")

    def __init__(self, frame: DataFrame, due: int) -> None:
        self.frame = frame
        self.retries = 0
        self.due = due


class _SenderLink:
    """Send half of a directed link: next seq + retransmit buffer.

    ``unacked`` maps seq -> :class:`_Pending`; insertion order is ascending
    sequence number, which makes cumulative-ack retirement a prefix pop.
    """

    __slots__ = ("next_seq", "unacked")

    def __init__(self) -> None:
        self.next_seq = 0
        self.unacked: Dict[int, _Pending] = {}


class _ReceiverLink:
    """Receive half of a directed link: in-order cursor + reorder buffer."""

    __slots__ = ("expected", "buffer")

    def __init__(self) -> None:
        self.expected = 0
        self.buffer: Dict[int, "Envelope"] = {}


class ReliableDelivery:
    """Per-machine reliability engine; see the module docstring.

    Built by :class:`~repro.netsim.Machine` when constructed with
    ``reliability=True`` (default config) or a :class:`ReliabilityConfig`.
    Exposed as ``machine.reliability`` for inspection.
    """

    __slots__ = (
        "_machine",
        "config",
        "stats",
        "_senders",
        "_receivers",
        "_frames",
        "_frames_in_flight",
        "_unacked_total",
    )

    def __init__(self, machine: "Machine", config: Optional[ReliabilityConfig] = None):
        self._machine = machine
        self.config = config if config is not None else ReliabilityConfig()
        self.stats = LinkLayerStats()
        self._senders: Dict[LinkKey, _SenderLink] = {}
        self._receivers: Dict[LinkKey, _ReceiverLink] = {}
        #: frames in flight: arrival step -> [(src, dst, frame)]
        self._frames: Dict[int, List[Tuple[int, int, Union[DataFrame, AckFrame]]]] = {}
        self._frames_in_flight = 0
        self._unacked_total = 0

    # -- machine-facing surface -----------------------------------------

    @property
    def pending(self) -> int:
        """Outstanding protocol work: unacked frames + frames in flight.

        The machine keeps stepping while this is non-zero, so a run only
        goes quiescent once every payload is delivered *and* acknowledged.
        """
        return self._unacked_total + self._frames_in_flight

    def send(self, src: int, dst: int, payload: Any) -> None:
        """Accept one logical send from the machine's send path."""
        m = self._machine
        link = self._senders.get((src, dst))
        if link is None:
            link = self._senders[(src, dst)] = _SenderLink()
        seq = link.next_seq
        link.next_seq = seq + 1
        env = Envelope(src, dst, payload, m.current_step, m._next_msg_id)
        m._next_msg_id += 1
        frame = DataFrame(seq, env)
        link.unacked[seq] = _Pending(frame, m.current_step + 1 + self.config.timeout)
        self._unacked_total += 1
        self.stats.data_sent += 1
        self._transmit(src, dst, frame)

    def on_step(self, step: int) -> None:
        """Land matured frames, then retransmit everything overdue.

        Called by the machine at the start of every step, before the
        delivery snapshot — payloads released here are deliverable within
        the same step, matching the latency of an unprotected send.
        """
        arrivals = self._frames.pop(step, None)
        if arrivals is not None:
            self._frames_in_flight -= len(arrivals)
            for src, dst, frame in arrivals:
                if type(frame) is DataFrame:
                    self._on_data(src, dst, frame, step)
                else:
                    self._on_ack(src, dst, frame, step)
        self._retransmit_due(step)

    # -- channel ---------------------------------------------------------

    def _transmit(
        self, src: int, dst: int, frame: Union[DataFrame, AckFrame]
    ) -> None:
        """Push one frame through the lossy/latent channel."""
        m = self._machine
        copies = m._faults.copies_to_deliver()
        if copies == 0:
            self.stats.frames_lost += 1
            tel = m._telemetry
            if tel is not None:
                tel.emit(1, "drop", m.current_step, dst, attrs={"reason": "link"})
            return
        latency_fn = m._latency_fn
        # external endpoints (src/dst -1) have no physical link to model
        delay = 0 if (latency_fn is None or src < 0 or dst < 0) else latency_fn(src, dst)
        bucket = self._frames.setdefault(m.current_step + 1 + delay, [])
        for _ in range(copies):
            bucket.append((src, dst, frame))
        self._frames_in_flight += copies

    # -- receive side -----------------------------------------------------

    def _on_data(self, src: int, dst: int, frame: DataFrame, step: int) -> None:
        rl = self._receivers.get((src, dst))
        if rl is None:
            rl = self._receivers[(src, dst)] = _ReceiverLink()
        seq = frame.seq
        tel = self._machine._telemetry
        if seq == rl.expected:
            self._release(dst, frame.env)
            rl.expected += 1
            # a gap just closed: drain any buffered successors in order
            buffer = rl.buffer
            while rl.expected in buffer:
                self._release(dst, buffer.pop(rl.expected))
                rl.expected += 1
        elif seq > rl.expected:
            if seq in rl.buffer:
                self._suppress(src, dst, seq, step)
            else:
                rl.buffer[seq] = frame.env
        else:
            self._suppress(src, dst, seq, step)
        # Cumulative ack after every data frame — duplicates included, so a
        # lost ack is repaired by the retransmission it provokes.
        cum = rl.expected - 1
        self.stats.acks_sent += 1
        if tel is not None:
            tel.emit(1, "ack", step, dst, attrs={"dst": src, "cum": cum})
        self._transmit(dst, src, AckFrame(cum))

    def _release(self, dst: int, env: "Envelope") -> None:
        """Hand one in-order payload to the destination inbox."""
        self.stats.delivered += 1
        self._machine._enqueue(dst, env)

    def _suppress(self, src: int, dst: int, seq: int, step: int) -> None:
        self.stats.dups_suppressed += 1
        tel = self._machine._telemetry
        if tel is not None:
            tel.emit(1, "dedup", step, dst, attrs={"src": src, "seq": seq})

    # -- send side ---------------------------------------------------------

    def _on_ack(self, src: int, dst: int, frame: AckFrame, step: int) -> None:
        # the ack travelled receiver -> sender, so the sender link is (dst, src)
        link = self._senders.get((dst, src))
        self.stats.acks_received += 1
        if link is None:  # pragma: no cover - defensive; acks imply a sender
            return
        unacked = link.unacked
        cum = frame.cum
        tel = self._machine._telemetry
        while unacked:
            seq = next(iter(unacked))
            if seq > cum:
                break
            entry = unacked.pop(seq)
            self._unacked_total -= 1
            if tel is not None:
                # span event: dur = retransmissions this frame needed, so the
                # metrics dump grows a retry-count histogram
                # (l1.link_retries.steps)
                tel.emit(
                    1,
                    "link_retries",
                    step,
                    dst,
                    dur=entry.retries,
                    attrs={"dst": src, "seq": seq},
                )

    def _retransmit_due(self, step: int) -> None:
        cfg = self.config
        stats = self.stats
        tel = self._machine._telemetry
        for (src, dst), link in self._senders.items():
            unacked = link.unacked
            if not unacked:
                continue
            for seq in list(unacked):
                entry = unacked[seq]
                if entry.due > step:
                    continue
                if entry.retries >= cfg.retry_limit:
                    stats.exhausted += 1
                    if cfg.on_exhausted == "raise":
                        raise ReliabilityError(
                            f"link {src}->{dst} gave up on seq {seq} after "
                            f"{entry.retries} retransmissions (retry_limit="
                            f"{cfg.retry_limit}); raise the cap or lower the "
                            f"fault rate"
                        )
                    del unacked[seq]
                    self._unacked_total -= 1
                    self._machine._record_drop(dst, "retry_exhausted")
                    if tel is not None:
                        tel.emit(
                            1,
                            "link_retries",
                            step,
                            src,
                            dur=entry.retries,
                            attrs={"dst": dst, "seq": seq, "gave_up": True},
                        )
                    continue
                entry.retries += 1
                stats.retransmits += 1
                wait = cfg.timeout * (cfg.backoff ** entry.retries)
                entry.due = step + max(1, min(int(wait), cfg.max_timeout))
                if tel is not None:
                    tel.emit(
                        1,
                        "retransmit",
                        step,
                        src,
                        attrs={"dst": dst, "seq": seq, "retry": entry.retries},
                    )
                self._transmit(src, dst, entry.frame)

    # -- inspection --------------------------------------------------------

    def link_state(self) -> Dict[str, Dict[str, int]]:
        """Debug snapshot: per-link unacked / buffered counts (non-empty only)."""
        out: Dict[str, Dict[str, int]] = {}
        for (src, dst), link in self._senders.items():
            if link.unacked:
                out.setdefault(f"{src}->{dst}", {})["unacked"] = len(link.unacked)
        for (src, dst), rl in self._receivers.items():
            if rl.buffer:
                out.setdefault(f"{src}->{dst}", {})["buffered"] = len(rl.buffer)
        return out
