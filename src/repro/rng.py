"""Deterministic random-stream management.

Every stochastic component of the stack (problem generators, tie-breaking
mappers, branching heuristics) draws from its own named substream derived
from a single master seed.  This makes a whole simulation a pure function of
``(topology, program, seed)`` — a property the test-suite and the benchmark
harness both rely on for reproducibility.

The derivation is a stable hash of ``(master_seed, name)`` — independent of
Python's randomised ``hash()`` — so substreams are reproducible across
processes and Python versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["derive_seed", "substream", "SeedSequence"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a label.

    Uses BLAKE2b over the decimal seed and the label, so the mapping is
    stable across interpreter runs (unlike built-in ``hash``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(master_seed)).encode("ascii"))
    h.update(b"/")
    h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest(), "big")


def substream(master_seed: int, name: str) -> random.Random:
    """Return a fresh :class:`random.Random` seeded for substream ``name``."""
    return random.Random(derive_seed(master_seed, name))


class SeedSequence:
    """A factory handing out independent named random streams.

    Example
    -------
    >>> seeds = SeedSequence(42)
    >>> gen_rng = seeds.stream("sat-generator")
    >>> map_rng = seeds.stream("mapper")
    >>> seeds.stream("sat-generator").random() == gen_rng.random()
    True
    """

    __slots__ = ("master_seed",)

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)

    def stream(self, name: str) -> random.Random:
        """Return a fresh stream for ``name`` (same name → same stream)."""
        return substream(self.master_seed, name)

    def seed_for(self, name: str) -> int:
        """Return the integer seed that :meth:`stream` would use."""
        return derive_seed(self.master_seed, name)

    def spawn(self, name: str) -> "SeedSequence":
        """Return a child sequence rooted at the derived seed for ``name``."""
        return SeedSequence(derive_seed(self.master_seed, name))

    def indexed(self, name: str, count: int) -> Iterator[random.Random]:
        """Yield ``count`` independent streams named ``name[0..count)``."""
        for i in range(count):
            yield self.stream(f"{name}[{i}]")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SeedSequence({self.master_seed})"
