"""Layer 2 — node-level process scheduling (paper §III-A2).

Public surface:

* :class:`SchedulerProgram` — hosts process templates on every node.
* :class:`Process` / :class:`FunctionalProcess` / :class:`ProcessContext` /
  :class:`Address` — the process-level programming interface.
* Scheduling policies: round-robin (default), priority, FIFO, random.
"""

from .policies import (
    FifoPolicy,
    PriorityPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    make_policy,
)
from .process import Address, FunctionalProcess, Process, ProcessContext
from .scheduler import Packet, SchedulerProgram

__all__ = [
    "SchedulerProgram",
    "Packet",
    "Process",
    "FunctionalProcess",
    "ProcessContext",
    "Address",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "PriorityPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "make_policy",
]
