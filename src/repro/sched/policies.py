"""Node-level scheduling policies (paper Figure 2, layer 2 concerns).

When several processes on one node have pending local messages, a policy
decides which process runs next.  The paper's layer-2 concern list names
"round-robin" and "preemptive" as possible implementations; here a policy is
a pure selection rule and "preemption" granularity is modelled by the
scheduler's per-step message budget.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Protocol, Sequence

from ..errors import SchedulingError

__all__ = [
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "PriorityPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "make_policy",
]


class SchedulingPolicy(Protocol):
    """Selects the next runnable pid among those with pending messages."""

    def select(self, runnable: Sequence[int]) -> int:
        """Return one pid from ``runnable`` (non-empty, ascending order)."""
        ...


class RoundRobinPolicy:
    """Cycle fairly through runnable processes (default).

    Remembers the last pid run and picks the next runnable pid in cyclic
    ascending order, so no runnable process starves.
    """

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last = -1

    def select(self, runnable: Sequence[int]) -> int:
        if not runnable:
            raise SchedulingError("select() called with no runnable process")
        for pid in runnable:
            if pid > self._last:
                self._last = pid
                return pid
        self._last = runnable[0]
        return runnable[0]


class PriorityPolicy:
    """Always run the runnable process with the highest priority.

    Priorities default to 0; ties break toward the lower pid.
    """

    __slots__ = ("_priorities",)

    def __init__(self, priorities: Optional[Dict[int, int]] = None) -> None:
        self._priorities = dict(priorities or {})

    def set_priority(self, pid: int, priority: int) -> None:
        """Assign ``priority`` to ``pid`` (higher runs first)."""
        self._priorities[pid] = priority

    def select(self, runnable: Sequence[int]) -> int:
        if not runnable:
            raise SchedulingError("select() called with no runnable process")
        return max(runnable, key=lambda pid: (self._priorities.get(pid, 0), -pid))


class FifoPolicy:
    """Run the process whose oldest pending message arrived first.

    The scheduler feeds arrival order through ``runnable`` (it passes pids
    sorted by oldest pending arrival when this policy is active), so FIFO
    simply takes the head.
    """

    __slots__ = ()

    #: scheduler hint: order ``runnable`` by arrival, not pid
    order_by_arrival = True

    def select(self, runnable: Sequence[int]) -> int:
        if not runnable:
            raise SchedulingError("select() called with no runnable process")
        return runnable[0]


class RandomPolicy:
    """Pick a runnable process uniformly at random (seeded)."""

    __slots__ = ("_rng",)

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def select(self, runnable: Sequence[int]) -> int:
        if not runnable:
            raise SchedulingError("select() called with no runnable process")
        return runnable[self._rng.randrange(len(runnable))]


def make_policy(name: str, rng: Optional[random.Random] = None) -> SchedulingPolicy:
    """Build a policy by name: ``round_robin`` / ``priority`` / ``fifo`` / ``random``."""
    if name == "round_robin":
        return RoundRobinPolicy()
    if name == "priority":
        return PriorityPolicy()
    if name == "fifo":
        return FifoPolicy()
    if name == "random":
        if rng is None:
            raise SchedulingError("random policy needs a seeded rng")
        return RandomPolicy(rng)
    raise SchedulingError(f"unknown scheduling policy {name!r}")
