"""Layer 2 process abstraction (paper §III-A2).

"This layer maintains a number of concurrent processes that communicate via
the message passing functions provided by layer 1.  Each process has a state
that is initialized at startup and then transformed by a handler function
when a message is received."

Processes are addressed by ``(node, pid)`` pairs; :class:`ProcessContext`
lets a process send to any process on its own node (local, no network) or to
processes on *neighbouring* nodes (via layer 1).
"""

from __future__ import annotations

from typing import Any, Callable, NamedTuple, Optional, Protocol, Sequence, runtime_checkable

from ..topology import NodeId

__all__ = ["Address", "ProcessContext", "Process", "FunctionalProcess"]


class Address(NamedTuple):
    """Global process address."""

    node: NodeId
    pid: int


class ProcessContext:
    """Per-process view of the machine.

    Attributes
    ----------
    address:
        This process's ``(node, pid)``.
    neighbours:
        Adjacent node ids (topology order).
    send:
        ``send(dst_address, payload)`` — local if ``dst.node`` equals this
        node, otherwise routed over the mesh (destination must be adjacent).
    state:
        Arbitrary process state slot.
    """

    __slots__ = ("address", "neighbours", "send", "state", "_scheduler_ctx")

    def __init__(
        self,
        address: Address,
        neighbours: Sequence[NodeId],
        send: Callable[[Address, Any], None],
        scheduler_ctx: Any,
    ) -> None:
        self.address = address
        self.neighbours = tuple(neighbours)
        self.send = send
        self.state: Any = None
        self._scheduler_ctx = scheduler_ctx

    @property
    def node(self) -> NodeId:
        """Node this process lives on."""
        return self.address.node

    @property
    def pid(self) -> int:
        """Process id, unique within the node."""
        return self.address.pid

    @property
    def step(self) -> int:
        """Current simulation step."""
        return self._scheduler_ctx.step

    @property
    def machine(self) -> Any:
        """The owning machine (for ``halt`` and inspection services)."""
        return self._scheduler_ctx.machine

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessContext({self.address})"


@runtime_checkable
class Process(Protocol):
    """Code run by one layer-2 process.

    A single :class:`Process` instance may serve every node (stateless
    templates storing everything in ``ctx.state``) or be instantiated per
    node — the scheduler only ever calls these two methods.
    """

    def init(self, ctx: ProcessContext) -> None:
        """Initialise ``ctx.state``; called once at machine startup."""
        ...

    def on_message(self, ctx: ProcessContext, sender: Optional[Address], payload: Any) -> None:
        """Handle one delivered message.

        ``sender`` is ``None`` for externally injected (kickstart) messages.
        """
        ...


class FunctionalProcess:
    """Adapt plain functions to the :class:`Process` protocol."""

    __slots__ = ("_init_fn", "_handler")

    def __init__(
        self,
        handler: Callable[[ProcessContext, Optional[Address], Any], None],
        init_fn: Optional[Callable[[ProcessContext], None]] = None,
    ) -> None:
        self._handler = handler
        self._init_fn = init_fn

    def init(self, ctx: ProcessContext) -> None:
        if self._init_fn is not None:
            self._init_fn(ctx)

    def on_message(
        self, ctx: ProcessContext, sender: Optional[Address], payload: Any
    ) -> None:
        self._handler(ctx, sender, payload)
