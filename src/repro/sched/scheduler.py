"""Layer 2: the node-level process scheduler.

:class:`SchedulerProgram` is a layer-1 :class:`~repro.netsim.NodeProgram`
that hosts the same set of process templates on every node (SPMD style).
It is responsible for "scheduling if processes are more numerous than
hardware threads" (paper §III-A2):

* network messages arriving at a node are demultiplexed to the addressed
  process;
* processes on one node exchange *local* messages without touching the
  network;
* when several processes have pending local messages, a
  :class:`~repro.sched.policies.SchedulingPolicy` picks who runs, limited by
  a per-step message ``budget`` (the preemption-granularity analogue).

With the default ``budget=None`` every pending message is handled in the
step it becomes deliverable (run-to-completion), which is what the solver
stack uses; finite budgets exercise genuinely interleaved schedules.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import SchedulingError
from ..netsim import NodeContext
from ..topology import NodeId
from .policies import SchedulingPolicy
from .process import Address, Process, ProcessContext

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..telemetry import TelemetryBus

__all__ = ["SchedulerProgram", "Packet"]


class Packet:
    """Wire format for inter-node process messages."""

    __slots__ = ("dst_pid", "src_pid", "payload")

    def __init__(self, dst_pid: int, src_pid: int, payload: Any) -> None:
        self.dst_pid = dst_pid
        self.src_pid = src_pid
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Packet(pid {self.src_pid}->{self.dst_pid}: {self.payload!r})"


class _NodeSched:
    """Per-node scheduler bookkeeping (stored in the layer-1 state slot)."""

    __slots__ = (
        "proc_ctxs",
        "queues",
        "policy",
        "budget_step",
        "budget_used",
        "arrival_seq",
        "poll_pending",
        "last_pid",
    )

    def __init__(self, proc_ctxs: List[ProcessContext], policy: SchedulingPolicy):
        self.proc_ctxs = proc_ctxs
        self.queues: Dict[int, Deque[Tuple[Optional[Address], Any, int]]] = {
            ctx.pid: deque() for ctx in proc_ctxs
        }
        self.policy = policy
        self.budget_step = -2  # step the budget counter refers to
        self.budget_used = 0
        self.arrival_seq = 0
        self.poll_pending = False
        #: pid that ran most recently on this node (-1 = none yet); only
        #: consulted when telemetry is on, to spot context switches
        self.last_pid = -1


class SchedulerProgram:
    """Host ``processes`` on every node of a machine.

    Parameters
    ----------
    processes:
        Process templates; the template at index *i* serves pid *i* on every
        node.  Templates are shared objects — all per-node state must live
        in ``ctx.state`` (the contexts are per ``(node, pid)``).
    policy_factory:
        Builds one fresh policy instance per node (policies are stateful).
        Defaults to round-robin.
    budget:
        Max messages a node may process per step, or ``None`` for unlimited
        (run-to-completion, the default).
    telemetry:
        Optional :class:`~repro.telemetry.TelemetryBus`; when given, the
        scheduler publishes layer-2 ``context_switch`` events, a per-drain
        ``run_queue`` depth counter and ``budget_exhausted`` markers.
    """

    def __init__(
        self,
        processes: Sequence[Process],
        policy_factory: Optional[Callable[[], SchedulingPolicy]] = None,
        budget: Optional[int] = None,
        telemetry: Optional["TelemetryBus"] = None,
    ) -> None:
        if not processes:
            raise SchedulingError("scheduler needs at least one process template")
        if budget is not None and budget < 1:
            raise SchedulingError(f"budget must be >= 1 or None, got {budget}")
        self._templates = list(processes)
        if policy_factory is None:
            from .policies import RoundRobinPolicy

            policy_factory = RoundRobinPolicy
        self._policy_factory = policy_factory
        self._budget = budget
        self._telemetry = telemetry

    # -- layer-1 NodeProgram interface ----------------------------------

    def init(self, ctx: NodeContext) -> None:
        proc_ctxs: List[ProcessContext] = []
        for pid in range(len(self._templates)):
            addr = Address(ctx.node, pid)
            pctx = ProcessContext(
                addr, ctx.neighbours, self._make_send(ctx, addr), ctx
            )
            proc_ctxs.append(pctx)
        ctx.state = _NodeSched(proc_ctxs, self._policy_factory())
        for pid, template in enumerate(self._templates):
            template.init(proc_ctxs[pid])

    def on_message(self, ctx: NodeContext, sender: NodeId, payload: Any) -> None:
        sched: _NodeSched = ctx.state
        if isinstance(payload, Packet):
            src = Address(sender, payload.src_pid) if sender >= 0 else None
            self._enqueue(ctx, sched, payload.dst_pid, src, payload.payload)
        else:
            # Raw (kickstart) payloads go to pid 0 with no sender address.
            self._enqueue(ctx, sched, 0, None, payload)
        self._drain(ctx, sched)

    def on_step(self, ctx: NodeContext) -> None:
        sched: _NodeSched = ctx.state
        sched.poll_pending = False
        self._drain(ctx, sched)

    # -- internals -------------------------------------------------------

    def _make_send(self, node_ctx: NodeContext, src: Address):
        def send(dst: Address, payload: Any) -> None:
            dst = Address(*dst)
            if dst.pid < 0 or dst.pid >= len(self._templates):
                raise SchedulingError(f"no process with pid {dst.pid}")
            if dst.node == src.node:
                sched: _NodeSched = node_ctx.state
                self._enqueue(node_ctx, sched, dst.pid, src, payload)
                self._schedule_poll(node_ctx, sched)
            else:
                node_ctx.send(dst.node, Packet(dst.pid, src.pid, payload))

        return send

    def _enqueue(
        self,
        ctx: NodeContext,
        sched: _NodeSched,
        pid: int,
        sender: Optional[Address],
        payload: Any,
    ) -> None:
        queue = sched.queues.get(pid)
        if queue is None:
            raise SchedulingError(f"node {ctx.node} has no process {pid}")
        queue.append((sender, payload, sched.arrival_seq))
        sched.arrival_seq += 1

    def _schedule_poll(self, ctx: NodeContext, sched: _NodeSched) -> None:
        if not sched.poll_pending:
            sched.poll_pending = True
            ctx.machine.request_poll(ctx.node)

    def _runnable(self, sched: _NodeSched) -> List[int]:
        pids = [pid for pid, q in sched.queues.items() if q]
        if getattr(sched.policy, "order_by_arrival", False):
            pids.sort(key=lambda pid: sched.queues[pid][0][2])
        else:
            pids.sort()
        return pids

    def _drain(self, ctx: NodeContext, sched: _NodeSched) -> None:
        step = ctx.step
        tel = self._telemetry
        if sched.budget_step != step:
            sched.budget_step = step
            sched.budget_used = 0
        if tel is not None:
            tel.emit(
                2,
                "run_queue",
                step,
                ctx.node,
                attrs={"value": sum(len(q) for q in sched.queues.values())},
            )
        while True:
            runnable = self._runnable(sched)
            if not runnable:
                return
            if self._budget is not None and sched.budget_used >= self._budget:
                # Out of budget: finish remaining work on a later step.
                if tel is not None:
                    tel.emit(
                        2,
                        "budget_exhausted",
                        step,
                        ctx.node,
                        attrs={"pending": sum(len(q) for q in sched.queues.values())},
                    )
                self._schedule_poll(ctx, sched)
                return
            pid = sched.policy.select(runnable)
            sender, payload, _seq = sched.queues[pid].popleft()
            sched.budget_used += 1
            if tel is not None and pid != sched.last_pid:
                tel.emit(
                    2,
                    "context_switch",
                    step,
                    ctx.node,
                    attrs={"from_pid": sched.last_pid, "to_pid": pid},
                )
                sched.last_pid = pid
            self._templates[pid].on_message(sched.proc_ctxs[pid], sender, payload)

    # -- snapshot / restore (repro.state protocol) -----------------------

    #: snapshot-schema version of the scheduler layer state
    STATE_VERSION = 1

    def _snapshot_node(self, sched: _NodeSched) -> Dict[str, Any]:
        """Capture one node's scheduler bookkeeping + per-process state."""
        procs: Dict[int, Tuple[str, Any]] = {}
        for pid, template in enumerate(self._templates):
            pstate = sched.proc_ctxs[pid].state
            hook = getattr(template, "snapshot_process_state", None)
            if hook is not None:
                procs[pid] = ("hook", hook(pstate))
            else:
                procs[pid] = ("raw", pstate)
        return {
            "queues": {pid: list(q) for pid, q in sched.queues.items()},
            "policy": sched.policy,
            "budget_step": sched.budget_step,
            "budget_used": sched.budget_used,
            "arrival_seq": sched.arrival_seq,
            "poll_pending": sched.poll_pending,
            "last_pid": sched.last_pid,
            "procs": procs,
        }

    def _restore_node(self, sched: _NodeSched, ndata: Dict[str, Any]) -> None:
        """Install one node's captured state (inverse of _snapshot_node)."""
        from ..state import CheckpointError

        for pid, q in sched.queues.items():
            q.clear()
            q.extend(ndata["queues"].get(pid, ()))
        sched.policy = ndata["policy"]
        sched.budget_step = ndata["budget_step"]
        sched.budget_used = ndata["budget_used"]
        sched.arrival_seq = ndata["arrival_seq"]
        sched.poll_pending = ndata["poll_pending"]
        sched.last_pid = ndata["last_pid"]
        for pid, (kind, pdata) in ndata["procs"].items():
            pctx = sched.proc_ctxs[pid]
            template = self._templates[pid]
            hook = getattr(template, "restore_process_state", None)
            if kind == "hook":
                if hook is None:
                    raise CheckpointError(
                        f"process template {type(template).__name__} "
                        "cannot restore a hook-captured state"
                    )
                hook(pctx, pdata)
            else:
                pctx.state = pdata

    def snapshot(self, machine: Any) -> Any:
        """Capture every node's scheduler state as a detached ``LayerState``.

        The scheduler is a template: its per-node state lives in the
        machine's node-state slots, so the machine is the explicit handle.
        Per-process state is delegated to the template when it implements
        the ``snapshot_process_state(state)`` hook (layer 3 does, carrying
        layers 4-5 inside); hookless templates are captured by raw
        deepcopy.  Either way one final :func:`copy.deepcopy` over the
        whole composite detaches the snapshot from the live run.

        On a sharded machine the per-node captures are gathered from the
        owning shard workers through ``machine.map_nodes`` — the snapshot
        data (and therefore the checkpoint digest) is identical either
        way, which is what lets a checkpoint hop between shard counts.
        """
        import copy

        from ..state import LayerState

        n_nodes = machine.topology.n_nodes
        map_nodes = getattr(machine, "map_nodes", None)
        if map_nodes is not None:
            per_node = map_nodes(_snapshot_node_rpc)
            nodes = [per_node[node] for node in range(n_nodes)]
        else:
            nodes = [
                self._snapshot_node(machine.state_of(node))
                for node in range(n_nodes)
            ]
        data = {
            "n_nodes": n_nodes,
            "n_processes": len(self._templates),
            "nodes": nodes,
        }
        return LayerState("sched", self.STATE_VERSION, copy.deepcopy(data))

    def restore(self, machine: Any, state: Any) -> None:
        """Install a :meth:`snapshot`-captured state into ``machine``.

        The machine must already be initialised with this scheduler (same
        templates, same process count) — contexts and send closures are
        kept; queues, policies, budgets and per-process state are replaced.
        """
        import copy

        from ..state import CheckpointError, LayerState  # noqa: F401

        data = copy.deepcopy(state.require("sched", self.STATE_VERSION))
        if data["n_nodes"] != machine.topology.n_nodes:
            raise CheckpointError(
                f"scheduler snapshot covers {data['n_nodes']} nodes; "
                f"this machine has {machine.topology.n_nodes}"
            )
        if data["n_processes"] != len(self._templates):
            raise CheckpointError(
                f"scheduler snapshot hosts {data['n_processes']} processes "
                f"per node; this program hosts {len(self._templates)}"
            )
        map_nodes = getattr(machine, "map_nodes", None)
        if map_nodes is not None:
            # scatter: each node's capture is restored inside its shard
            map_nodes(
                _restore_node_rpc,
                {node: ndata for node, ndata in enumerate(data["nodes"])},
            )
            return
        for node, ndata in enumerate(data["nodes"]):
            self._restore_node(machine.state_of(node), ndata)

    # -- inspection helpers ----------------------------------------------

    def process_state(self, machine: Any, node: NodeId, pid: int = 0) -> Any:
        """Read the state of process ``pid`` on ``node`` of a machine."""
        sched: _NodeSched = machine.state_of(node)
        try:
            return sched.proc_ctxs[pid].state
        except IndexError as exc:
            raise SchedulingError(f"no process {pid} on node {node}") from exc

    @property
    def n_processes(self) -> int:
        """Number of process templates per node."""
        return len(self._templates)


# -- sharded-machine RPC callbacks (module-level: picklable by reference) --


def _snapshot_node_rpc(program: SchedulerProgram, ctx: NodeContext, arg: Any) -> Any:
    """Capture one node's scheduler state inside its shard worker."""
    return program._snapshot_node(ctx.state)


def _restore_node_rpc(program: SchedulerProgram, ctx: NodeContext, ndata: Any) -> None:
    """Install one node's captured scheduler state inside its shard."""
    program._restore_node(ctx.state, ndata)
