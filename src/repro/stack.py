"""The assembled five-layer stack (the paper's core contribution).

:class:`HyperspaceStack` wires the layers together:

=====  =======================================  =========================
layer  module                                   role
=====  =======================================  =========================
1      :class:`repro.netsim.Machine`            simulated message passing
2      :class:`repro.sched.SchedulerProgram`    node-level scheduling
3      :class:`repro.mapping.MappingService`    ticketed sends + mapping
4      :class:`repro.recursion.RecursionEngine` continuations
5      your generator function                  problem logic
=====  =======================================  =========================

and exposes the layer-5 experience: hand it a recursive generator function
and an argument, get back the result plus a full profiling report::

    from repro import HyperspaceStack, Torus
    from repro.apps.sumrec import calculate_sum

    stack = HyperspaceStack(Torus((8, 8)), mapper="lbn")
    result, report = stack.run_recursive(calculate_sum, 10)

Ticket-style (layer-3) applications run through :meth:`run_ticketed`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple, Union

from .errors import SimulationError
from .mapping import (
    MappedApp,
    MapperFactory,
    MappingService,
    StatusPolicyFactory,
    make_mapper_factory,
    make_status_factory,
)
from .netsim import FaultModel, Machine, ReliableLinks, SimulationReport, TraceRecorder
from .recursion import EngineStats, RecursionEngine, RecursiveFunction
from .reliability import ReliabilityConfig
from .rng import substream
from .sched import SchedulerProgram
from .telemetry import TelemetryBus
from .telemetry.probe import install_probes, uninstall_probes
from .topology import NodeId, Topology

__all__ = ["HyperspaceStack", "StackRun"]

#: mapper argument: a registry name ("rr", "lbn", "random", "hint") or factory
MapperSpec = Union[str, MapperFactory]
#: status argument: None/"off", an int threshold, or a policy factory
StatusSpec = Union[None, str, int, StatusPolicyFactory]


class StackRun:
    """Everything observable about one completed stack run."""

    __slots__ = ("machine", "report", "results", "engine_stats", "scheduler")

    def __init__(
        self,
        machine: Machine,
        report: SimulationReport,
        results: List[Any],
        engine_stats: Optional[EngineStats],
        scheduler: SchedulerProgram,
    ) -> None:
        self.machine = machine
        self.report = report
        #: external results delivered at the trigger node (usually length 1)
        self.results = results
        #: aggregated layer-4 counters (None for ticket-style runs)
        self.engine_stats = engine_stats
        self.scheduler = scheduler

    @property
    def result(self) -> Any:
        """The (single) root result, or None if the run did not finish."""
        return self.results[0] if self.results else None


class HyperspaceStack:
    """A configured hyperspace machine ready to run combinatorial solvers.

    Parameters
    ----------
    topology:
        The machine's interconnect.
    mapper:
        Layer-3 mapping algorithm: ``"rr"`` (round robin, default),
        ``"lbn"`` (least busy neighbour), ``"random"``, ``"hint"``, or a
        custom per-node mapper factory.
    status:
        Explicit-status policy for adaptive mapping: ``None`` (piggyback
        only), an integer broadcast threshold, or a factory.
    cancellation:
        Layer-4 extension: actively cancel losing speculative subtrees.
    forward_hops:
        Layer-3 extension: extra hops work travels before executing.
    share_threshold:
        Layer-3 work-sharing extension (paper Figure 2's "work
        sharing/stealing"): a node already holding at least this many live
        invocations pushes newly arriving work onward to a mapper-chosen
        neighbour instead of executing it.  ``None`` (default) disables
        sharing.  The load metric is selected by ``share_load``:
        ``"queue"`` (default, inbox backlog) or ``"invocations"``.
    seed:
        Master seed for all per-node random streams.
    scheduler_budget:
        Max messages a node handles per step (None = run to completion).
    queue_policy / queue_capacity:
        Layer-1 inbox configuration (defaults: unbounded FIFO, as in the
        paper).
    record_queue_depths:
        Store the per-step per-node queue-depth matrix (needed only for
        fine-grained unfolding analyses; costs O(n_nodes) per step).
    size_fn:
        Optional layer-1 message-size model for bandwidth accounting
        (see :mod:`repro.netsim.sizing`).
    latency:
        Optional layer-1 per-link latency: an int or ``f(src, dst) -> int``
        — e.g. :func:`repro.topology.embedding_latency` to run this
        topology virtualised on a host machine.
    drop / duplicate:
        Layer-1 link fault rates (Bernoulli per send; the fault stream is
        seeded from ``seed``, so runs stay reproducible).  Defaults 0.0 —
        the paper's perfectly reliable links.
    reliable:
        Enable the layer-1.5 reliable-delivery protocol
        (:mod:`repro.reliability`): ``True`` for the default retransmit
        configuration or a :class:`~repro.reliability.ReliabilityConfig`.
        With it on, the stack's verdicts are immune to the configured
        ``drop``/``duplicate`` rates; off (default), faults reach the
        upper layers unprotected.
    telemetry:
        Cross-layer observability: ``None`` (default, zero overhead), an
        existing :class:`~repro.telemetry.TelemetryBus`, or ``True`` to
        create a fresh bus.  The bus is threaded through every layer and
        exposed as :attr:`telemetry`; layer-5 probes are installed for the
        duration of each run.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        mapper: MapperSpec = "rr",
        status: StatusSpec = None,
        cancellation: bool = False,
        forward_hops: int = 0,
        share_threshold: Optional[int] = None,
        share_load: str = "queue",
        seed: int = 0,
        scheduler_budget: Optional[int] = None,
        queue_policy: str = "fifo",
        queue_capacity: Optional[int] = None,
        record_queue_depths: bool = False,
        size_fn=None,
        latency=0,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reliable: Union[bool, ReliabilityConfig] = False,
        telemetry: Union[None, bool, TelemetryBus] = None,
    ) -> None:
        self.topology = topology
        self.mapper_factory: MapperFactory = (
            make_mapper_factory(mapper) if isinstance(mapper, str) else mapper
        )
        if status is None or isinstance(status, (str, int)):
            self.status_factory: StatusPolicyFactory = make_status_factory(status)
        else:
            self.status_factory = status
        self.cancellation = cancellation
        self.forward_hops = forward_hops
        self.share_threshold = share_threshold
        if share_load not in ("queue", "invocations"):
            raise ValueError(f"share_load must be 'queue' or 'invocations', got {share_load!r}")
        self.share_load = share_load
        self.seed = seed
        self.scheduler_budget = scheduler_budget
        self.queue_policy = queue_policy
        self.queue_capacity = queue_capacity
        self.record_queue_depths = record_queue_depths
        self.size_fn = size_fn
        self.latency = latency
        self.drop = drop
        self.duplicate = duplicate
        self.reliable = reliable
        if telemetry is True:
            telemetry = TelemetryBus()
        elif telemetry is False:
            telemetry = None
        #: the cross-layer event bus, or None when observability is off
        self.telemetry: Optional[TelemetryBus] = telemetry
        #: populated by the most recent run_* call
        self.last_run: Optional[StackRun] = None

    # ------------------------------------------------------------------

    def _build(
        self,
        app: MappedApp,
        halt_on_result: bool,
        load_fn=None,
    ) -> Tuple[Machine, SchedulerProgram, MappingService]:
        service = MappingService(
            app,
            self.mapper_factory,
            self.status_factory,
            seed=self.seed,
            forward_hops=self.forward_hops,
            halt_on_result=halt_on_result,
            share_threshold=self.share_threshold,
            load_fn=load_fn if self.share_threshold is not None else None,
            telemetry=self.telemetry,
        )
        scheduler = SchedulerProgram(
            [service], budget=self.scheduler_budget, telemetry=self.telemetry
        )
        trace = TraceRecorder(
            self.topology.n_nodes, record_queue_depths=self.record_queue_depths
        )
        if self.drop or self.duplicate:
            # fresh fault stream per build: repeated runs on one stack
            # instance see identical fault schedules
            faults = FaultModel(
                self.drop, self.duplicate, rng=substream(self.seed, "l1-faults")
            )
        else:
            faults = ReliableLinks
        machine = Machine(
            self.topology,
            scheduler,
            trace=trace,
            queue_policy=self.queue_policy,
            queue_capacity=self.queue_capacity,
            seed=self.seed,
            size_fn=self.size_fn,
            latency=self.latency,
            faults=faults,
            reliability=self.reliable,
            telemetry=self.telemetry,
        )
        return machine, scheduler, service

    def _collect(
        self,
        machine: Machine,
        scheduler: SchedulerProgram,
        trigger_node: NodeId,
        engine: Optional[RecursionEngine],
    ) -> StackRun:
        state = scheduler.process_state(machine, trigger_node)
        results = list(MappingService.results_of(state))
        engine_stats: Optional[EngineStats] = None
        if engine is not None:
            engine_stats = EngineStats()
            for node in self.topology.nodes():
                node_state = scheduler.process_state(machine, node)
                engine_stats.merge(
                    RecursionEngine.stats_of(MappingService.app_state_of(node_state))
                )
        run = StackRun(machine, machine.report(), results, engine_stats, scheduler)
        self.last_run = run
        return run

    # ------------------------------------------------------------------

    def run_recursive(
        self,
        fn: RecursiveFunction,
        args: Any,
        *,
        trigger_node: NodeId = 0,
        max_steps: int = 1_000_000,
        strict: bool = True,
        halt_on_result: bool = True,
    ) -> Tuple[Any, SimulationReport]:
        """Run a layer-5 recursive application to completion.

        ``fn(args)`` becomes the root invocation on ``trigger_node``.  With
        ``halt_on_result`` (default) the machine stops as soon as the root
        result is delivered; with ``halt_on_result=False`` it keeps running
        until quiescent — draining ignored speculative work, which is the
        paper's measurement protocol ("steps between the first (trigger)
        and last messages").  Returns ``(result, report)``; the full
        :class:`StackRun` (engine statistics, machine handle) is available
        as :attr:`last_run`.

        With ``strict`` (default) a run that exhausts ``max_steps`` without
        producing the root result raises :class:`SimulationError`; pass
        ``strict=False`` to get ``(None, report)`` instead.
        """
        engine = RecursionEngine(
            fn, cancellation=self.cancellation, telemetry=self.telemetry
        )
        from .mapping import queue_depth_load

        load_fn = (
            queue_depth_load
            if self.share_load == "queue"
            else RecursionEngine.load_probe
        )
        machine, scheduler, _service = self._build(
            engine, halt_on_result=halt_on_result, load_fn=load_fn
        )
        machine.inject(trigger_node, args)
        bus = self.telemetry
        if bus is not None:
            install_probes(bus, step_fn=lambda: machine.current_step)
            try:
                report = machine.run(max_steps=max_steps)
            finally:
                uninstall_probes()
        else:
            report = machine.run(max_steps=max_steps)
        run = self._collect(machine, scheduler, trigger_node, engine)
        if strict and not run.results:
            raise SimulationError(
                f"run did not complete within {max_steps} steps "
                f"(topology {self.topology.describe()}, fn "
                f"{getattr(fn, '__name__', fn)!r})"
            )
        return run.result, run.report

    def run_ticketed(
        self,
        app: MappedApp,
        trigger: Any,
        *,
        trigger_node: NodeId = 0,
        max_steps: int = 1_000_000,
        halt_on_result: bool = False,
    ) -> Tuple[List[Any], SimulationReport]:
        """Run a layer-3 (ticket-style) application.

        The raw ``trigger`` payload is injected at ``trigger_node`` and the
        machine runs until quiescent (or until the first external result if
        ``halt_on_result``).  Returns ``(results, report)`` where results
        are the external replies collected at the trigger node.
        """
        machine, scheduler, _service = self._build(app, halt_on_result=halt_on_result)
        machine.inject(trigger_node, trigger)
        machine.run(max_steps=max_steps)
        run = self._collect(machine, scheduler, trigger_node, engine=None)
        return run.results, run.report
