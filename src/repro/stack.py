"""The assembled five-layer stack (the paper's core contribution).

:class:`HyperspaceStack` wires the layers together:

=====  =======================================  =========================
layer  module                                   role
=====  =======================================  =========================
1      :class:`repro.netsim.Machine`            simulated message passing
2      :class:`repro.sched.SchedulerProgram`    node-level scheduling
3      :class:`repro.mapping.MappingService`    ticketed sends + mapping
4      :class:`repro.recursion.RecursionEngine` continuations
5      your generator function                  problem logic
=====  =======================================  =========================

and exposes the layer-5 experience: hand it a recursive generator function
and an argument, get back the result plus a full profiling report::

    from repro import HyperspaceStack, Torus
    from repro.apps.sumrec import calculate_sum

    stack = HyperspaceStack(Torus((8, 8)), mapper="lbn")
    result, report = stack.run_recursive(calculate_sum, 10)

Ticket-style (layer-3) applications run through :meth:`run_ticketed`.

Runs are checkpointable: pass ``checkpoint_every`` (plus a directory or a
sink callable) to :meth:`run_recursive` to capture the entire stack's state
— every layer, via the uniform snapshot/restore protocol of
:mod:`repro.state` — at regular step boundaries, and resume an interrupted
run with :meth:`resume_recursive`.  See ``docs/checkpointing.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .errors import SimulationError
from .mapping import (
    MappedApp,
    MapperFactory,
    MappingService,
    StatusPolicyFactory,
    make_mapper_factory,
    make_status_factory,
)
from .netsim import (
    FaultModel,
    Machine,
    ReliableLinks,
    ShardProgramSpec,
    ShardedMachine,
    SimulationReport,
    TraceRecorder,
    resolve_shards,
)
from .recursion import EngineStats, RecursionEngine, RecursiveFunction
from .reliability import ReliabilityConfig
from .rng import substream
from .sched import SchedulerProgram
from .telemetry import TelemetryBus
from .telemetry.probe import install_probes, uninstall_probes
from .topology import NodeId, Topology

__all__ = ["HyperspaceStack", "StackRun"]

#: mapper argument: a registry name ("rr", "lbn", "random", "hint") or factory
MapperSpec = Union[str, MapperFactory]
#: status argument: None/"off", an int threshold, or a policy factory
StatusSpec = Union[None, str, int, StatusPolicyFactory]


def _build_stack_program(cfg: Dict[str, Any], telemetry=None) -> SchedulerProgram:
    """Rebuild the layer 2-4 program tower from a picklable config.

    This is the :class:`~repro.netsim.ShardProgramSpec` builder the
    sharded backend ships to its workers: each worker reconstructs an
    identical engine → mapping service → scheduler chain (same seeds,
    same per-node substreams), wired to the worker's local telemetry bus.
    The coordinator calls it too (with ``telemetry=None`` under the
    process backend) so layer snapshots see the same template shape.
    """
    fn_source = cfg["fn_source"]
    fn = fn_source.build() if isinstance(fn_source, ShardProgramSpec) else fn_source
    engine = RecursionEngine(
        fn, cancellation=cfg["cancellation"], telemetry=telemetry
    )
    mapper = cfg["mapper"]
    mapper_factory = make_mapper_factory(mapper) if isinstance(mapper, str) else mapper
    status = cfg["status"]
    if status is None or isinstance(status, (str, int)):
        status_factory = make_status_factory(status)
    else:
        status_factory = status
    service = MappingService(
        engine,
        mapper_factory,
        status_factory,
        seed=cfg["seed"],
        forward_hops=cfg["forward_hops"],
        halt_on_result=cfg["halt_on_result"],
        telemetry=telemetry,
    )
    return SchedulerProgram([service], budget=cfg["budget"], telemetry=telemetry)


def _collect_node_rpc(program: SchedulerProgram, ctx, arg) -> Tuple[List[Any], Any]:
    """Gather one node's external results + layer-4 stats from its shard."""
    state = ctx.state.proc_ctxs[0].state
    return (
        list(MappingService.results_of(state)),
        RecursionEngine.stats_of(MappingService.app_state_of(state)),
    )


class StackRun:
    """Everything observable about one completed stack run."""

    __slots__ = ("machine", "report", "results", "engine_stats", "scheduler")

    def __init__(
        self,
        machine: Machine,
        report: SimulationReport,
        results: List[Any],
        engine_stats: Optional[EngineStats],
        scheduler: SchedulerProgram,
    ) -> None:
        self.machine = machine
        self.report = report
        #: external results delivered at the trigger node (usually length 1)
        self.results = results
        #: aggregated layer-4 counters (None for ticket-style runs)
        self.engine_stats = engine_stats
        self.scheduler = scheduler

    @property
    def result(self) -> Any:
        """The (single) root result, or None if the run did not finish."""
        return self.results[0] if self.results else None


class HyperspaceStack:
    """A configured hyperspace machine ready to run combinatorial solvers.

    Parameters
    ----------
    topology:
        The machine's interconnect.
    mapper:
        Layer-3 mapping algorithm: ``"rr"`` (round robin, default),
        ``"lbn"`` (least busy neighbour), ``"random"``, ``"hint"``, or a
        custom per-node mapper factory.
    status:
        Explicit-status policy for adaptive mapping: ``None`` (piggyback
        only), an integer broadcast threshold, or a factory.
    cancellation:
        Layer-4 extension: actively cancel losing speculative subtrees.
    forward_hops:
        Layer-3 extension: extra hops work travels before executing.
    share_threshold:
        Layer-3 work-sharing extension (paper Figure 2's "work
        sharing/stealing"): a node already holding at least this many live
        invocations pushes newly arriving work onward to a mapper-chosen
        neighbour instead of executing it.  ``None`` (default) disables
        sharing.  The load metric is selected by ``share_load``:
        ``"queue"`` (default, inbox backlog) or ``"invocations"``.
    seed:
        Master seed for all per-node random streams.
    scheduler_budget:
        Max messages a node handles per step (None = run to completion).
    queue_policy / queue_capacity:
        Layer-1 inbox configuration (defaults: unbounded FIFO, as in the
        paper).
    record_queue_depths:
        Store the per-step per-node queue-depth matrix (needed only for
        fine-grained unfolding analyses; costs O(n_nodes) per step).
    size_fn:
        Optional layer-1 message-size model for bandwidth accounting
        (see :mod:`repro.netsim.sizing`).
    latency:
        Optional layer-1 per-link latency: an int or ``f(src, dst) -> int``
        — e.g. :func:`repro.topology.embedding_latency` to run this
        topology virtualised on a host machine.
    drop / duplicate:
        Layer-1 link fault rates (Bernoulli per send; the fault stream is
        seeded from ``seed``, so runs stay reproducible).  Defaults 0.0 —
        the paper's perfectly reliable links.
    reliable:
        Enable the layer-1.5 reliable-delivery protocol
        (:mod:`repro.reliability`): ``True`` for the default retransmit
        configuration or a :class:`~repro.reliability.ReliabilityConfig`.
        With it on, the stack's verdicts are immune to the configured
        ``drop``/``duplicate`` rates; off (default), faults reach the
        upper layers unprotected.
    telemetry:
        Cross-layer observability: ``None`` (default, zero overhead), an
        existing :class:`~repro.telemetry.TelemetryBus`, or ``True`` to
        create a fresh bus.  The bus is threaded through every layer and
        exposed as :attr:`telemetry`; layer-5 probes are installed for the
        duration of each run.
    shards:
        Run the layer-1 backend sharded across worker processes
        (:class:`~repro.netsim.ShardedMachine`): an int, ``"auto"`` (one
        shard per CPU), or ``None`` (default) to consult ``REPRO_SHARDS``
        and fall back to the serial machine.  Sharded runs are
        bit-identical to serial ones — same schedule, verdicts, digests
        and telemetry counters; see ``docs/parallelism.md``.  Work sharing
        (``share_threshold``) and :meth:`run_ticketed` require the serial
        backend.
    shard_partitioner:
        Node partitioning strategy for sharded runs: ``"strip"``
        (default), ``"grid"``, or ``"greedy"`` — see
        :mod:`repro.netsim.partition`.
    shard_backend:
        ``"auto"`` (default), ``"process"``, or ``"inline"`` — forwarded
        to :class:`~repro.netsim.ShardedMachine`.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        mapper: MapperSpec = "rr",
        status: StatusSpec = None,
        cancellation: bool = False,
        forward_hops: int = 0,
        share_threshold: Optional[int] = None,
        share_load: str = "queue",
        seed: int = 0,
        scheduler_budget: Optional[int] = None,
        queue_policy: str = "fifo",
        queue_capacity: Optional[int] = None,
        record_queue_depths: bool = False,
        size_fn=None,
        latency=0,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reliable: Union[bool, ReliabilityConfig] = False,
        telemetry: Union[None, bool, TelemetryBus] = None,
        shards: Any = None,
        shard_partitioner: str = "strip",
        shard_backend: str = "auto",
    ) -> None:
        self.topology = topology
        #: raw mapper/status specs, kept for shipping to shard workers
        self._mapper_spec: MapperSpec = mapper
        self._status_spec: StatusSpec = status
        self.mapper_factory: MapperFactory = (
            make_mapper_factory(mapper) if isinstance(mapper, str) else mapper
        )
        if status is None or isinstance(status, (str, int)):
            self.status_factory: StatusPolicyFactory = make_status_factory(status)
        else:
            self.status_factory = status
        self.cancellation = cancellation
        self.forward_hops = forward_hops
        self.share_threshold = share_threshold
        if share_load not in ("queue", "invocations"):
            raise ValueError(f"share_load must be 'queue' or 'invocations', got {share_load!r}")
        self.share_load = share_load
        self.seed = seed
        self.scheduler_budget = scheduler_budget
        self.queue_policy = queue_policy
        self.queue_capacity = queue_capacity
        self.record_queue_depths = record_queue_depths
        self.size_fn = size_fn
        self.latency = latency
        self.drop = drop
        self.duplicate = duplicate
        self.reliable = reliable
        if telemetry is True:
            telemetry = TelemetryBus()
        elif telemetry is False:
            telemetry = None
        #: the cross-layer event bus, or None when observability is off
        self.telemetry: Optional[TelemetryBus] = telemetry
        #: shard count resolved once (explicit arg, then REPRO_SHARDS, then 1)
        self.shards = min(resolve_shards(shards), topology.n_nodes)
        self.shard_partitioner = shard_partitioner
        self.shard_backend = shard_backend
        if self.shards > 1 and self.share_threshold is not None:
            raise SimulationError(
                "work sharing (share_threshold) reads live inbox depths and "
                "is not supported with shards > 1"
            )
        #: populated by the most recent run_* call
        self.last_run: Optional[StackRun] = None

    # ------------------------------------------------------------------

    def _build_faults(self):
        if self.drop or self.duplicate:
            # fresh fault stream per build: repeated runs on one stack
            # instance see identical fault schedules
            return FaultModel(
                self.drop, self.duplicate, rng=substream(self.seed, "l1-faults")
            )
        return ReliableLinks

    def _build_sharded(
        self, fn_source: Any, halt_on_result: bool
    ) -> Tuple[ShardedMachine, SchedulerProgram, MappingService]:
        """Assemble the stack on the sharded backend.

        ``fn_source`` is the layer-5 function itself (must pickle) or a
        :class:`~repro.netsim.ShardProgramSpec` recipe for it; each worker
        rebuilds the full layer 2-4 tower via :func:`_build_stack_program`.
        """
        cfg = {
            "fn_source": fn_source,
            "cancellation": self.cancellation,
            "mapper": self._mapper_spec,
            "status": self._status_spec,
            "seed": self.seed,
            "forward_hops": self.forward_hops,
            "halt_on_result": halt_on_result,
            "budget": self.scheduler_budget,
        }
        spec = ShardProgramSpec(_build_stack_program, cfg, telemetry_kwarg="telemetry")
        trace = TraceRecorder(
            self.topology.n_nodes, record_queue_depths=self.record_queue_depths
        )
        machine = ShardedMachine(
            self.topology,
            spec,
            shards=self.shards,
            partitioner=self.shard_partitioner,
            shard_backend=self.shard_backend,
            trace=trace,
            queue_policy=self.queue_policy,
            queue_capacity=self.queue_capacity,
            seed=self.seed,
            size_fn=self.size_fn,
            latency=self.latency,
            faults=self._build_faults(),
            reliability=self.reliable,
            telemetry=self.telemetry,
        )
        scheduler: SchedulerProgram = machine.program
        service: MappingService = scheduler._templates[0]
        return machine, scheduler, service

    def _build(
        self,
        app: MappedApp,
        halt_on_result: bool,
        load_fn=None,
    ) -> Tuple[Machine, SchedulerProgram, MappingService]:
        service = MappingService(
            app,
            self.mapper_factory,
            self.status_factory,
            seed=self.seed,
            forward_hops=self.forward_hops,
            halt_on_result=halt_on_result,
            share_threshold=self.share_threshold,
            load_fn=load_fn if self.share_threshold is not None else None,
            telemetry=self.telemetry,
        )
        scheduler = SchedulerProgram(
            [service], budget=self.scheduler_budget, telemetry=self.telemetry
        )
        trace = TraceRecorder(
            self.topology.n_nodes, record_queue_depths=self.record_queue_depths
        )
        faults = self._build_faults()
        machine = Machine(
            self.topology,
            scheduler,
            trace=trace,
            queue_policy=self.queue_policy,
            queue_capacity=self.queue_capacity,
            seed=self.seed,
            size_fn=self.size_fn,
            latency=self.latency,
            faults=faults,
            reliability=self.reliable,
            telemetry=self.telemetry,
        )
        return machine, scheduler, service

    def _collect(
        self,
        machine: Machine,
        scheduler: SchedulerProgram,
        trigger_node: NodeId,
        engine: Optional[RecursionEngine],
    ) -> StackRun:
        map_nodes = getattr(machine, "map_nodes", None)
        if map_nodes is not None:
            # sharded: node state lives in the workers; one gather returns
            # (results, engine stats) per node
            per_node = map_nodes(_collect_node_rpc)
            results = list(per_node[trigger_node][0])
            engine_stats = None
            if engine is not None:
                engine_stats = EngineStats()
                for node in self.topology.nodes():
                    engine_stats.merge(per_node[node][1])
            run = StackRun(machine, machine.report(), results, engine_stats, scheduler)
            self.last_run = run
            return run
        state = scheduler.process_state(machine, trigger_node)
        results = list(MappingService.results_of(state))
        engine_stats: Optional[EngineStats] = None
        if engine is not None:
            engine_stats = EngineStats()
            for node in self.topology.nodes():
                node_state = scheduler.process_state(machine, node)
                engine_stats.merge(
                    RecursionEngine.stats_of(MappingService.app_state_of(node_state))
                )
        run = StackRun(machine, machine.report(), results, engine_stats, scheduler)
        self.last_run = run
        return run

    # -- checkpointing (repro.state protocol) --------------------------

    def _compose_layers(
        self, machine: Machine, scheduler: SchedulerProgram
    ) -> Dict[str, Any]:
        """Snapshot every active layer of a built machine, keyed by name."""
        drain = getattr(machine, "drain_telemetry", None)
        if drain is not None:
            # relay pending worker events first so the telemetry layer's
            # events_emitted matches a serial run's at this boundary
            drain()
        layers: Dict[str, Any] = {
            "netsim": machine.snapshot(),
            "sched": scheduler.snapshot(machine),
        }
        if machine.reliability is not None:
            layers["reliability"] = machine.reliability.snapshot()
        if self.telemetry is not None:
            layers["telemetry"] = self.telemetry.snapshot()
        return layers

    def _compose_checkpoint(
        self,
        machine: Machine,
        scheduler: SchedulerProgram,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "StackCheckpoint":
        from .state import StackCheckpoint

        full_meta: Dict[str, Any] = {
            "step": machine.current_step,
            "topology": self.topology.describe(),
            "n_nodes": self.topology.n_nodes,
            "seed": self.seed,
        }
        if meta:
            full_meta.update(meta)
        return StackCheckpoint.build(self._compose_layers(machine, scheduler), full_meta)

    def _restore_layers(
        self, machine: Machine, scheduler: SchedulerProgram, ckpt: "StackCheckpoint"
    ) -> None:
        """Install a checkpoint into a freshly built, identically configured
        machine/scheduler pair.

        The layer order matters only in that the scheduler restore reaches
        layers 3-5 through contexts the machine restore must not disturb —
        both operate on the already-initialised stack, replacing state, not
        structure.  Reliability state is strict (protected runs cannot
        resume unprotected, or vice versa); telemetry is assembly-local and
        restored only when a bus is attached on both sides.
        """
        from .errors import CheckpointError

        layers = ckpt.layers()
        for required in ("netsim", "sched"):
            if required not in layers:
                raise CheckpointError(
                    f"checkpoint is missing the {required!r} layer state"
                )
        machine.restore(layers["netsim"])
        scheduler.restore(machine, layers["sched"])
        if machine.reliability is not None:
            if "reliability" not in layers:
                raise CheckpointError(
                    "this stack runs the reliability layer but the "
                    "checkpoint carries no reliability state"
                )
            machine.reliability.restore(layers["reliability"])
        elif "reliability" in layers:
            raise CheckpointError(
                "checkpoint carries reliability state but this stack "
                "runs without the reliability layer"
            )
        if self.telemetry is not None and "telemetry" in layers:
            self.telemetry.restore(layers["telemetry"])

    def snapshot(self, meta: Optional[Dict[str, Any]] = None) -> "StackCheckpoint":
        """Checkpoint the most recent run's final state.

        Mostly useful for inspection and tests; mid-run checkpoints come
        from ``checkpoint_every``.  ``meta`` entries are merged into the
        checkpoint's self-describing header.
        """
        from .errors import CheckpointError

        if self.last_run is None:
            raise CheckpointError("nothing to snapshot: no run has completed yet")
        return self._compose_checkpoint(
            self.last_run.machine, self.last_run.scheduler, meta
        )

    # ------------------------------------------------------------------

    def run_recursive(
        self,
        fn: RecursiveFunction,
        args: Any,
        *,
        trigger_node: NodeId = 0,
        max_steps: int = 1_000_000,
        strict: bool = True,
        halt_on_result: bool = True,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Union[None, str, Path] = None,
        checkpoint_sink: Optional[Callable[["StackCheckpoint"], None]] = None,
        checkpoint_meta: Optional[Dict[str, Any]] = None,
        resume_from: Union[None, str, Path, "StackCheckpoint"] = None,
        fn_spec: Optional[ShardProgramSpec] = None,
    ) -> Tuple[Any, SimulationReport]:
        """Run a layer-5 recursive application to completion.

        ``fn(args)`` becomes the root invocation on ``trigger_node``.  With
        ``halt_on_result`` (default) the machine stops as soon as the root
        result is delivered; with ``halt_on_result=False`` it keeps running
        until quiescent — draining ignored speculative work, which is the
        paper's measurement protocol ("steps between the first (trigger)
        and last messages").  Returns ``(result, report)``; the full
        :class:`StackRun` (engine statistics, machine handle) is available
        as :attr:`last_run`.

        With ``strict`` (default) a run that exhausts ``max_steps`` without
        producing the root result raises :class:`SimulationError`; pass
        ``strict=False`` to get ``(None, report)`` instead.

        Checkpointing: with ``checkpoint_every=k`` the whole stack's state
        is captured after every step whose (absolute) number is a multiple
        of ``k`` and handed to ``checkpoint_sink`` and/or written to
        ``checkpoint_dir`` as ``checkpoint-<step>.ckpt``.  ``resume_from``
        (a path or a loaded :class:`~repro.state.StackCheckpoint`) installs
        a previous checkpoint instead of injecting ``args`` — ``fn`` and
        the stack configuration must match the original run, and ``fn``
        must be deterministic (its generators are replayed; see
        ``docs/checkpointing.md``).  ``max_steps`` bounds the *absolute*
        step counter — a resumed run gets the same total budget as the
        uninterrupted run it continues, not a fresh one.  With
        ``checkpoint_every=None`` (default) the run loop is byte-for-byte
        the uninstrumented one — checkpointing off costs nothing.

        With ``shards > 1`` (constructor/``REPRO_SHARDS``) the run executes
        on the sharded backend.  ``fn`` itself must then be picklable, or
        ``fn_spec`` must supply a picklable
        :class:`~repro.netsim.ShardProgramSpec` recipe rebuilding it
        (needed for closures such as the SAT solver's); checkpoints taken
        sharded resume serially and vice versa.
        """
        from .errors import CheckpointError

        if checkpoint_every is None and (
            checkpoint_dir is not None or checkpoint_sink is not None
        ):
            raise CheckpointError(
                "checkpoint_dir/checkpoint_sink need checkpoint_every"
            )
        if checkpoint_every is not None and checkpoint_dir is None and checkpoint_sink is None:
            raise CheckpointError(
                "checkpoint_every needs a destination: checkpoint_dir "
                "and/or checkpoint_sink"
            )
        if self.shards > 1:
            machine, scheduler, service = self._build_sharded(
                fn_spec if fn_spec is not None else fn,
                halt_on_result=halt_on_result,
            )
            engine = service.app
        else:
            engine = RecursionEngine(
                fn, cancellation=self.cancellation, telemetry=self.telemetry
            )
            from .mapping import queue_depth_load

            load_fn = (
                queue_depth_load
                if self.share_load == "queue"
                else RecursionEngine.load_probe
            )
            machine, scheduler, _service = self._build(
                engine, halt_on_result=halt_on_result, load_fn=load_fn
            )
        if resume_from is not None:
            from .state import StackCheckpoint, load_checkpoint

            ckpt = (
                resume_from
                if isinstance(resume_from, StackCheckpoint)
                else load_checkpoint(resume_from)
            )
            self._restore_layers(machine, scheduler, ckpt)
        else:
            machine.inject(trigger_node, args)
        machine_sink = None
        if checkpoint_every is not None:
            ckpt_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None

            def machine_sink(m: Machine) -> None:
                ckpt = self._compose_checkpoint(m, scheduler, checkpoint_meta)
                if ckpt_dir is not None:
                    from .state import save_checkpoint

                    save_checkpoint(
                        ckpt_dir / f"checkpoint-{m.current_step + 1:08d}.ckpt", ckpt
                    )
                if checkpoint_sink is not None:
                    checkpoint_sink(ckpt)

        bus = self.telemetry
        if bus is not None:
            install_probes(bus, step_fn=lambda: machine.current_step)
            try:
                report = machine.run(
                    max_steps=max_steps,
                    checkpoint_every=checkpoint_every,
                    checkpoint_sink=machine_sink,
                )
            finally:
                uninstall_probes()
        else:
            report = machine.run(
                max_steps=max_steps,
                checkpoint_every=checkpoint_every,
                checkpoint_sink=machine_sink,
            )
        run = self._collect(machine, scheduler, trigger_node, engine)
        if strict and not run.results:
            raise SimulationError(
                f"run did not complete within {max_steps} steps "
                f"(topology {self.topology.describe()}, fn "
                f"{getattr(fn, '__name__', fn)!r})"
            )
        return run.result, run.report

    def resume_recursive(
        self,
        fn: RecursiveFunction,
        checkpoint: Union[str, Path, "StackCheckpoint"],
        **kwargs: Any,
    ) -> Tuple[Any, SimulationReport]:
        """Resume a checkpointed :meth:`run_recursive` run.

        Sugar for ``run_recursive(fn, None, resume_from=checkpoint, ...)``.
        The stack must be configured identically to the one that produced
        the checkpoint (topology, mapper, seed, faults, reliability, ...);
        detectable mismatches raise :class:`~repro.errors.CheckpointError`.
        All :meth:`run_recursive` keyword arguments are accepted, including
        ``checkpoint_every`` to keep checkpointing the resumed run.
        """
        return self.run_recursive(fn, None, resume_from=checkpoint, **kwargs)

    def run_ticketed(
        self,
        app: MappedApp,
        trigger: Any,
        *,
        trigger_node: NodeId = 0,
        max_steps: int = 1_000_000,
        halt_on_result: bool = False,
    ) -> Tuple[List[Any], SimulationReport]:
        """Run a layer-3 (ticket-style) application.

        The raw ``trigger`` payload is injected at ``trigger_node`` and the
        machine runs until quiescent (or until the first external result if
        ``halt_on_result``).  Returns ``(results, report)`` where results
        are the external replies collected at the trigger node.
        """
        if self.shards > 1:
            raise SimulationError(
                "run_ticketed supports only the serial backend; "
                f"this stack is configured with shards={self.shards}"
            )
        machine, scheduler, _service = self._build(app, halt_on_result=halt_on_result)
        machine.inject(trigger_node, trigger)
        machine.run(max_steps=max_steps)
        run = self._collect(machine, scheduler, trigger_node, engine=None)
        return run.results, run.report
