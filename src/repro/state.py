"""Explicit layer state: the snapshot/restore protocol and checkpoint format.

Every stateful layer of the stack exposes a uniform pair of methods::

    snapshot() -> LayerState      # capture all mutable state, detached
    restore(state: LayerState)    # install a previously captured state

(template-style layers whose per-node state lives in machine slots — the
layer-2 scheduler — take the machine as an explicit handle:
``snapshot(machine)`` / ``restore(machine, state)``).

:class:`~repro.stack.HyperspaceStack` composes the per-layer states into a
:class:`StackCheckpoint`: a versioned, self-describing unit that
:func:`save_checkpoint` / :func:`load_checkpoint` move to and from disk.
The headline invariant (pinned by ``tests/test_checkpoint.py`` and the CI
smoke job): restoring a checkpoint taken at any step *k* onto an
identically configured stack and running to completion produces a
bit-identical schedule, verdict, stats and *state digest* versus the
uninterrupted run — including under link faults, the reliability layer and
adaptive (LBN) mapping.

On-disk format (stdlib-only)
----------------------------

::

    line 1   REPRO-CKPT 1\\n                  magic + schema version (ASCII)
    line 2   {...json meta...}\\n             self-describing header
    rest     <pickle payload bytes>           the composed layer states

The meta header carries the step, topology description, layer names, an
optional application ``workload`` blob (used by ``repro solve --resume`` to
rebuild the stack), the payload's length and sha256 (integrity), and the
semantic ``state_digest``.  :func:`load_checkpoint` verifies magic, schema
and payload digest and raises :class:`~repro.errors.CheckpointError` on any
mismatch.

Two digests, two jobs:

* the **payload digest** (full sha256 of the pickle bytes) detects file
  corruption or truncation;
* the **state digest** (:func:`canonical_digest` of the :func:`normalize`-d
  layer states) is *semantic*: it is identical for equal states regardless
  of how the in-memory objects are shared or what order they were created
  in, which is what makes it comparable between a resumed run and a
  straight-through run.

.. warning::
   The payload is a pickle: load checkpoints only from trusted sources
   (the same caveat as any pickle-based format).
"""

from __future__ import annotations

import json
import pickle
import random
from collections import deque
from pathlib import Path
from types import BuiltinFunctionType, FunctionType, MethodType
from typing import Any, Dict, Optional, Union

from .errors import CheckpointError
from .netsim.digest import canonical_digest, payload_digest

__all__ = [
    "MAGIC",
    "SCHEMA_VERSION",
    "LayerState",
    "StackCheckpoint",
    "normalize",
    "state_digest_of",
    "save_checkpoint",
    "load_checkpoint",
]

#: file magic, first token of line 1
MAGIC = "REPRO-CKPT"
#: on-disk schema version, second token of line 1
SCHEMA_VERSION = 1


class LayerState:
    """One layer's captured mutable state.

    ``layer`` names the owner (``"netsim"``, ``"reliability"``, ``"sched"``,
    ``"telemetry"`` — layers 3-5 ride inside the scheduler's per-process
    states), ``version`` is the layer's own snapshot-schema version, and
    ``data`` is a plain (picklable) structure fully detached from the live
    objects it was captured from.
    """

    __slots__ = ("layer", "version", "data")

    def __init__(self, layer: str, version: int, data: Any) -> None:
        self.layer = layer
        self.version = version
        self.data = data

    def require(self, layer: str, version: int) -> Any:
        """Validate provenance and return ``data`` (restore-side guard)."""
        if self.layer != layer:
            raise CheckpointError(
                f"layer state belongs to {self.layer!r}, expected {layer!r}"
            )
        if self.version != version:
            raise CheckpointError(
                f"layer {layer!r} snapshot version {self.version} not supported "
                f"(this build reads version {version})"
            )
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LayerState({self.layer!r}, v{self.version})"


def normalize(obj: Any) -> Any:
    """Recursively convert ``obj`` into canonical plain data.

    The output is JSON-encodable and independent of object identity,
    sharing and memory layout, so :func:`canonical_digest` of it compares
    *state* rather than pickling accidents:

    * containers become (tagged) lists — dicts keep iteration order (which
      the deterministic simulator reproduces run-for-run), sets are sorted;
    * slotted / ``__dict__`` objects become ``["obj", classname, fields]``
      with fields sorted by name;
    * :class:`random.Random` becomes its ``getstate()`` tuple;
    * functions and methods are named, not serialized.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (bytes, bytearray)):
        return ["bytes", payload_digest(bytes(obj))]
    if isinstance(obj, (list, tuple, deque)):
        return [normalize(v) for v in obj]
    if isinstance(obj, dict):
        return ["dict", [[normalize(k), normalize(v)] for k, v in obj.items()]]
    if isinstance(obj, (set, frozenset)):
        items = [normalize(v) for v in obj]
        items.sort(key=lambda v: json.dumps(v, sort_keys=True, default=str))
        return ["set", items]
    if isinstance(obj, random.Random):
        return ["rng", normalize(obj.getstate())]
    if isinstance(obj, (FunctionType, BuiltinFunctionType, MethodType)):
        return ["fn", f"{getattr(obj, '__module__', '?')}.{obj.__qualname__}"]
    # generic object: collect __dict__ plus every slot along the MRO
    fields: Dict[str, Any] = {}
    d = getattr(obj, "__dict__", None)
    if d is not None:
        fields.update(d)
    for klass in type(obj).__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if hasattr(obj, name):
                fields[name] = getattr(obj, name)
    return [
        "obj",
        type(obj).__name__,
        [[name, normalize(fields[name])] for name in sorted(fields)],
    ]


def state_digest_of(layers: Dict[str, "LayerState"]) -> str:
    """Semantic digest of a composed layer-state dict (resume parity)."""
    return canonical_digest(
        ["ckpt", [[name, normalize(layers[name])] for name in sorted(layers)]]
    )


class StackCheckpoint:
    """A composed, serialized snapshot of every layer of one stack run.

    Built via :meth:`build` — which pickles the layer states *immediately*
    (one pickle, so intra-state sharing such as a frame referenced by both
    a retransmit buffer and a timer bucket survives the round trip, and the
    captured bytes can never alias live mutable state) — or reconstituted
    from disk by :func:`load_checkpoint`.
    """

    __slots__ = ("meta", "payload")

    def __init__(self, meta: Dict[str, Any], payload: bytes) -> None:
        self.meta = meta
        self.payload = payload

    @classmethod
    def build(
        cls, layers: Dict[str, LayerState], meta: Optional[Dict[str, Any]] = None
    ) -> "StackCheckpoint":
        """Compose per-layer states into one self-describing checkpoint."""
        try:
            payload = pickle.dumps(layers, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # unpicklable closure/generator leaked in
            raise CheckpointError(
                f"layer state is not serializable: {exc}"
            ) from exc
        full_meta: Dict[str, Any] = dict(meta or {})
        full_meta["schema"] = SCHEMA_VERSION
        full_meta["layers"] = sorted(layers)
        full_meta["payload_len"] = len(payload)
        full_meta["payload_sha256"] = payload_digest(payload)
        full_meta["state_digest"] = state_digest_of(layers)
        return cls(full_meta, payload)

    def layers(self) -> Dict[str, LayerState]:
        """Unpickle a *fresh* copy of the layer states (safe to restore
        from the same checkpoint any number of times)."""
        return pickle.loads(self.payload)

    @property
    def step(self) -> Optional[int]:
        """Simulation step the snapshot was taken after (from the meta)."""
        return self.meta.get("step")

    @property
    def state_digest(self) -> str:
        """The semantic state digest recorded at build time."""
        return self.meta["state_digest"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StackCheckpoint(step={self.step}, layers={self.meta.get('layers')}, "
            f"digest={self.state_digest})"
        )


def save_checkpoint(path: Union[str, Path], ckpt: StackCheckpoint) -> Path:
    """Write ``ckpt`` in the on-disk format; returns the path written."""
    path = Path(path)
    header = f"{MAGIC} {SCHEMA_VERSION}\n".encode("ascii")
    meta_line = json.dumps(ckpt.meta, sort_keys=True).encode("utf-8") + b"\n"
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(meta_line)
        fh.write(ckpt.payload)
    return path


def load_checkpoint(path: Union[str, Path]) -> StackCheckpoint:
    """Read and verify a checkpoint file (magic, schema, payload digest)."""
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    magic_end = blob.find(b"\n")
    if magic_end < 0:
        raise CheckpointError(f"{path} is not a checkpoint (no header line)")
    parts = blob[:magic_end].decode("ascii", "replace").split()
    if len(parts) != 2 or parts[0] != MAGIC:
        raise CheckpointError(f"{path} is not a checkpoint (bad magic {parts!r})")
    try:
        schema = int(parts[1])
    except ValueError:
        raise CheckpointError(f"{path}: malformed schema version {parts[1]!r}")
    if schema != SCHEMA_VERSION:
        raise CheckpointError(
            f"{path}: schema version {schema} not supported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    meta_end = blob.find(b"\n", magic_end + 1)
    if meta_end < 0:
        raise CheckpointError(f"{path}: truncated (no meta line)")
    try:
        meta = json.loads(blob[magic_end + 1 : meta_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: malformed meta header: {exc}") from exc
    payload = blob[meta_end + 1 :]
    if meta.get("payload_len") != len(payload):
        raise CheckpointError(
            f"{path}: payload truncated "
            f"({len(payload)} bytes, header declares {meta.get('payload_len')})"
        )
    if meta.get("payload_sha256") != payload_digest(payload):
        raise CheckpointError(f"{path}: payload integrity digest mismatch")
    return StackCheckpoint(meta, payload)
