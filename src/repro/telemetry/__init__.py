"""``repro.telemetry`` — cross-layer observability for the stack.

A structured event bus that all five layers publish to, with typed metrics,
an in-memory event log, and exporters for Chrome trace-event JSON
(``chrome://tracing`` / Perfetto) and metrics dumps.  The governing rule is
**zero overhead when disabled**: every instrumentation site in the stack is
guarded by a single ``if <telemetry> is not None`` check, so a simulation
without a bus runs the exact PR-1 optimized hot paths (see
``docs/observability.md`` for the measured numbers).

Quick assembly::

    from repro import HyperspaceStack, Torus
    from repro.telemetry import TelemetryBus, ChromeTraceExporter, EventLog

    bus = TelemetryBus()
    log = bus.attach(EventLog())
    exporter = bus.attach(ChromeTraceExporter())
    stack = HyperspaceStack(Torus((8, 8)), telemetry=bus)
    ...
    exporter.write("trace.json")          # open in https://ui.perfetto.dev

CLI: ``python -m repro trace <workload> --out trace.json`` runs a packaged
workload with full-stack tracing (see :mod:`repro.telemetry.capture`).
"""

from .bus import TelemetryBus
from .events import (
    L1_NETSIM,
    L2_SCHED,
    L3_MAPPING,
    L4_RECURSION,
    L5_APP,
    LAYER_NAMES,
    TelemetryEvent,
)
from .export import (
    ChromeTraceExporter,
    write_metrics,
    write_metrics_csv,
    write_metrics_json,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, MetricsSubscriber
from .probe import (
    active_probe_bus,
    install_probes,
    probe,
    probe_enabled,
    probes_to,
    set_probe_node,
    uninstall_probes,
)
from .recorder import EventLog, TraceRecorderFeed

__all__ = [
    "TelemetryBus",
    "TelemetryEvent",
    "L1_NETSIM",
    "L2_SCHED",
    "L3_MAPPING",
    "L4_RECURSION",
    "L5_APP",
    "LAYER_NAMES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSubscriber",
    "EventLog",
    "TraceRecorderFeed",
    "ChromeTraceExporter",
    "write_metrics",
    "write_metrics_json",
    "write_metrics_csv",
    "probe",
    "probe_enabled",
    "install_probes",
    "uninstall_probes",
    "set_probe_node",
    "active_probe_bus",
    "probes_to",
    "capture_workload",
    "capture_sat_trace",
    "resolve_workload",
    "WORKLOADS",
]


def __getattr__(name):  # lazy: capture pulls in apps/stack, avoid cycles
    if name in ("capture_workload", "capture_sat_trace", "resolve_workload", "WORKLOADS"):
        from . import capture

        return getattr(capture, name)
    raise AttributeError(f"module 'repro.telemetry' has no attribute {name!r}")
