"""The structured event bus every layer publishes to.

Design constraints (in priority order):

1. **Zero overhead when disabled.**  Components hold ``telemetry=None`` by
   default and guard every emission site with a single
   ``if self._telemetry is not None`` — no bus, no event objects, no calls.
   The layer-1 fast send path (see ``repro/netsim/backend.py``) stays the
   PR-1 optimized code with exactly one extra local ``is None`` test.
2. **Cheap when enabled.**  ``emit`` allocates one
   :class:`~repro.telemetry.events.TelemetryEvent` and calls each
   subscriber's handler directly (bound methods are cached at subscribe
   time, no per-event dispatch logic).
3. **Deterministic.**  Subscribers are invoked in subscription order,
   synchronously, on the simulation thread; the event stream is a pure
   function of the run (same seed => same events), which is what lets the
   exporter golden tests pin byte-identical traces.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .events import TelemetryEvent

__all__ = ["TelemetryBus", "Subscriber"]

#: A subscriber: any callable taking one event, or an object with
#: ``on_event(event)`` (the bound method is extracted at subscribe time).
Subscriber = Callable[[TelemetryEvent], None]


class TelemetryBus:
    """Synchronous publish/subscribe hub for :class:`TelemetryEvent`.

    Typical assembly::

        bus = TelemetryBus()
        log = bus.attach(EventLog())
        exporter = bus.attach(ChromeTraceExporter())
        stack = HyperspaceStack(topology, telemetry=bus)
    """

    __slots__ = ("_subscribers", "_handlers", "events_emitted")

    def __init__(self) -> None:
        #: attached subscriber objects/callables, in subscription order
        self._subscribers: List[Any] = []
        #: resolved per-event handlers (parallel to ``_subscribers``)
        self._handlers: List[Subscriber] = []
        #: total events published (cheap health/overhead indicator)
        self.events_emitted = 0

    # -- subscription ---------------------------------------------------

    def attach(self, subscriber: Any) -> Any:
        """Subscribe and return ``subscriber`` (chains into assignments).

        ``subscriber`` is either a callable of one event or an object
        exposing ``on_event(event)``.
        """
        handler = getattr(subscriber, "on_event", None)
        if handler is None:
            if not callable(subscriber):
                raise TypeError(
                    f"subscriber {subscriber!r} is neither callable nor has on_event"
                )
            handler = subscriber
        self._subscribers.append(subscriber)
        self._handlers.append(handler)
        return subscriber

    def detach(self, subscriber: Any) -> None:
        """Remove a previously attached subscriber (no-op if absent)."""
        try:
            i = self._subscribers.index(subscriber)
        except ValueError:
            return
        del self._subscribers[i]
        del self._handlers[i]

    @property
    def subscribers(self) -> List[Any]:
        """Attached subscribers (subscription order, read-only copy)."""
        return list(self._subscribers)

    # -- publishing -----------------------------------------------------

    def emit(
        self,
        layer: int,
        name: str,
        step: int,
        node: int = -1,
        dur: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Publish one event to every subscriber, in subscription order."""
        ev = TelemetryEvent(step, layer, name, node, dur, attrs)
        self.events_emitted += 1
        for handler in self._handlers:
            handler(ev)

    def emit_event(self, event: TelemetryEvent) -> None:
        """Publish a pre-built event (relays, adapters)."""
        self.events_emitted += 1
        for handler in self._handlers:
            handler(event)
