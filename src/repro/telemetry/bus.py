"""The structured event bus every layer publishes to.

Design constraints (in priority order):

1. **Zero overhead when disabled.**  Components hold ``telemetry=None`` by
   default and guard every emission site with a single
   ``if self._telemetry is not None`` — no bus, no event objects, no calls.
   The layer-1 fast send path (see ``repro/netsim/backend.py``) stays the
   PR-1 optimized code with exactly one extra local ``is None`` test.
2. **Cheap when enabled.**  The bus exposes two publishing surfaces:

   * ``emit`` — the original per-event path: allocate one
     :class:`~repro.telemetry.events.TelemetryEvent` and call every
     subscriber's handler (bound methods cached at subscribe time).  Used
     for rare events (drops, probes, layer 2-5 lifecycle) where per-event
     dispatch cost is irrelevant.
   * the **hot-path batch surface** — ``count`` / ``observe`` coalesce
     per-message increments into per-step deltas delivered to aggregating
     subscribers in one call per step, and ``record`` appends event
     *tuples* to a preallocated ring buffer that is materialised into
     :class:`TelemetryEvent` objects only when flushed to subscribers that
     actually retain events.  ``flush`` (called by the machine at every
     step boundary) drains all three.  No per-message event object, no
     per-message handler call, no per-message metric-name formatting.

3. **Deterministic.**  Subscribers are invoked in subscription order,
   synchronously, on the simulation thread; the event stream is a pure
   function of the run (same seed => same events), which is what lets the
   exporter golden tests pin byte-identical traces.  ``emit`` flushes the
   ring first, so the merged stream seen by event subscribers stays in
   publication order.

Subscriber classification
-------------------------

At attach time the bus inspects each subscriber once:

* ``needs_events`` (class attribute, default ``True``) — subscribers that
  declare ``needs_events = False`` (e.g.
  :class:`~repro.telemetry.MetricsSubscriber`) are *not* fed ring-buffered
  events; they consume the coalesced deltas instead.  ``emit`` still
  reaches every subscriber.
* ``on_counters(deltas)`` — receives the ``{(layer, name): n}`` counter
  deltas at every flush;
* ``on_observations(deltas)`` — receives the
  ``{(layer, name, value): n}`` coalesced histogram observations.

A publisher must route each observation through *either* ``emit`` *or* the
batch surface, never both — ``count``/``record`` form one logical event
split across the two audiences (aggregators see the count, event retainers
see the tuple).

Sampling
--------

``sample_every=N`` keeps every ``N``-th ``record`` call (deterministic
counter, not random), trading trace completeness for proportionally less
ring traffic.  Counters and observations are never sampled — metrics stay
exact at any sampling rate.  The default ``1`` records everything, which
the trace-subsumption tests rely on.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .events import TelemetryEvent

__all__ = ["TelemetryBus", "Subscriber"]

#: A subscriber: any callable taking one event, or an object with
#: ``on_event(event)`` (the bound method is extracted at subscribe time).
Subscriber = Callable[[TelemetryEvent], None]


class TelemetryBus:
    """Synchronous publish/subscribe hub for :class:`TelemetryEvent`.

    Typical assembly::

        bus = TelemetryBus()
        log = bus.attach(EventLog())
        exporter = bus.attach(ChromeTraceExporter())
        stack = HyperspaceStack(topology, telemetry=bus)

    Parameters
    ----------
    sample_every:
        Keep one in every ``sample_every`` ``record`` calls (default 1 =
        keep all).  Deterministic; applies only to the ring-buffered event
        stream, never to counters/observations.
    ring_size:
        Capacity of the preallocated event-tuple ring.  The ring flushes
        when full and at every ``flush``/``emit``, so the size only tunes
        batching granularity, never drops events.
    """

    __slots__ = (
        "_subscribers",
        "_handlers",
        "_event_handlers",
        "_counter_subs",
        "_observation_subs",
        "events_emitted",
        "sample_every",
        "_sample_skip",
        "want_events",
        "_counts",
        "_observations",
        "_ring",
        "_ring_n",
    )

    def __init__(self, *, sample_every: int = 1, ring_size: int = 1024) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        #: attached subscriber objects/callables, in subscription order
        self._subscribers: List[Any] = []
        #: resolved per-event handlers (parallel to ``_subscribers``)
        self._handlers: List[Subscriber] = []
        #: handlers of subscribers that retain events (``needs_events``)
        self._event_handlers: List[Subscriber] = []
        #: bound ``on_counters`` methods of aggregating subscribers
        self._counter_subs: List[Callable] = []
        #: bound ``on_observations`` methods of aggregating subscribers
        self._observation_subs: List[Callable] = []
        #: total events published (cheap health/overhead indicator);
        #: coalesced counter deltas are not events and do not count
        self.events_emitted = 0
        self.sample_every = sample_every
        self._sample_skip = 0
        #: True when at least one subscriber retains events — publishers
        #: check this before building ``record`` arguments
        self.want_events = False
        #: coalesced counter deltas: (layer, name) -> n since last flush
        self._counts: Dict[Tuple[int, str], int] = {}
        #: coalesced histogram observations: (layer, name, value) -> n
        self._observations: Dict[Tuple[int, str, int], int] = {}
        #: preallocated ring of event tuples (step, layer, name, node,
        #: dur, attrs); ``_ring_n`` is the fill level
        self._ring: List[Any] = [None] * ring_size
        self._ring_n = 0

    # -- subscription ---------------------------------------------------

    def attach(self, subscriber: Any) -> Any:
        """Subscribe and return ``subscriber`` (chains into assignments).

        ``subscriber`` is either a callable of one event or an object
        exposing ``on_event(event)``.
        """
        handler = getattr(subscriber, "on_event", None)
        if handler is None:
            if not callable(subscriber):
                raise TypeError(
                    f"subscriber {subscriber!r} is neither callable nor has on_event"
                )
            handler = subscriber
        self._subscribers.append(subscriber)
        self._handlers.append(handler)
        self._reclassify()
        return subscriber

    def detach(self, subscriber: Any) -> None:
        """Remove a previously attached subscriber (no-op if absent)."""
        try:
            i = self._subscribers.index(subscriber)
        except ValueError:
            return
        del self._subscribers[i]
        del self._handlers[i]
        self._reclassify()

    def _reclassify(self) -> None:
        """Rebuild the per-audience dispatch lists from the subscriber set."""
        self._event_handlers = []
        self._counter_subs = []
        self._observation_subs = []
        for sub, handler in zip(self._subscribers, self._handlers):
            if getattr(sub, "needs_events", True):
                self._event_handlers.append(handler)
            on_counters = getattr(sub, "on_counters", None)
            if on_counters is not None:
                self._counter_subs.append(on_counters)
            on_observations = getattr(sub, "on_observations", None)
            if on_observations is not None:
                self._observation_subs.append(on_observations)
        self.want_events = bool(self._event_handlers)

    @property
    def subscribers(self) -> List[Any]:
        """Attached subscribers (subscription order, read-only copy)."""
        return list(self._subscribers)

    # -- publishing: per-event path -------------------------------------

    def emit(
        self,
        layer: int,
        name: str,
        step: int,
        node: int = -1,
        dur: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Publish one event to every subscriber, in subscription order."""
        if self._ring_n:
            self._flush_ring()
        ev = TelemetryEvent(step, layer, name, node, dur, attrs)
        self.events_emitted += 1
        for handler in self._handlers:
            handler(ev)

    def emit_event(self, event: TelemetryEvent) -> None:
        """Publish a pre-built event (relays, adapters)."""
        if self._ring_n:
            self._flush_ring()
        self.events_emitted += 1
        for handler in self._handlers:
            handler(event)

    # -- publishing: hot-path batch surface ------------------------------

    def count(self, layer: int, name: str, n: int = 1) -> None:
        """Coalesce ``n`` occurrences of ``l{layer}.{name}`` until flush."""
        key = (layer, name)
        counts = self._counts
        counts[key] = counts.get(key, 0) + n

    def observe(self, layer: int, name: str, value: int, n: int = 1) -> None:
        """Coalesce ``n`` histogram observations of ``value`` until flush.

        The matching counter ``l{layer}.{name}`` is bumped implicitly by
        the aggregating subscriber, mirroring how a span ``emit`` both
        counts and observes.
        """
        key = (layer, name, value)
        obs = self._observations
        obs[key] = obs.get(key, 0) + n

    def record(
        self,
        step: int,
        layer: int,
        name: str,
        node: int = -1,
        dur: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one event tuple to the ring (subject to sampling).

        Only meaningful when :attr:`want_events` — publishers guard the
        call (and the ``attrs`` construction) behind that flag.
        """
        skip = self._sample_skip
        if skip:
            self._sample_skip = skip - 1
            return
        self._sample_skip = self.sample_every - 1
        ring = self._ring
        n = self._ring_n
        ring[n] = (step, layer, name, node, dur, attrs)
        n += 1
        if n == len(ring):
            self._ring_n = n
            self._flush_ring()
        else:
            self._ring_n = n

    def _flush_ring(self) -> None:
        """Materialise ring tuples into events for the retaining audience."""
        n = self._ring_n
        self._ring_n = 0
        self.events_emitted += n
        handlers = self._event_handlers
        if not handlers:
            return
        ring = self._ring
        if len(handlers) == 1:
            handler = handlers[0]
            for i in range(n):
                t = ring[i]
                handler(TelemetryEvent(t[0], t[1], t[2], t[3], t[4], t[5]))
        else:
            for i in range(n):
                t = ring[i]
                ev = TelemetryEvent(t[0], t[1], t[2], t[3], t[4], t[5])
                for handler in handlers:
                    handler(ev)

    def flush(self) -> None:
        """Drain the ring, counter deltas and observations to subscribers.

        The machine calls this at every step boundary; direct users of the
        batch surface call it before reading aggregated state.
        """
        if self._ring_n:
            self._flush_ring()
        counts = self._counts
        if counts:
            for fn in self._counter_subs:
                fn(counts)
            counts.clear()
        obs = self._observations
        if obs:
            for fn in self._observation_subs:
                fn(obs)
            obs.clear()

    # -- snapshot / restore (repro.state protocol) ---------------------

    #: snapshot-schema version of the telemetry layer state
    STATE_VERSION = 1

    def snapshot(self) -> "LayerState":
        """Capture the bus's step-boundary state.

        The machine flushes the bus at every step boundary, so the ring
        and the coalesced delta maps are empty whenever a checkpoint is
        taken — only the total event count and the deterministic sampling
        phase carry across.  Subscribers are assembly, not state: a
        resumed run re-attaches its own.
        """
        from ..state import LayerState

        return LayerState(
            "telemetry",
            self.STATE_VERSION,
            {
                "events_emitted": self.events_emitted,
                "sample_skip": self._sample_skip,
            },
        )

    def restore(self, state: "LayerState") -> None:
        """Install a :meth:`snapshot`-captured state into this bus."""
        data = state.require("telemetry", self.STATE_VERSION)
        self.events_emitted = data["events_emitted"]
        self._sample_skip = data["sample_skip"]
        self._counts.clear()
        self._observations.clear()
        self._ring_n = 0
