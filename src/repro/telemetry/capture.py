"""Packaged traced workloads (the ``repro trace`` CLI and bench wiring).

:func:`capture_workload` runs one named workload with a fully wired
telemetry pipeline — bus + Chrome-trace exporter + metrics — and writes the
artifacts; :func:`capture_sat_trace` does the same for a single SAT sweep
cell (used by the figure benches and ``record_baseline.py --trace``).

Workload names accept either a registry key (``sat``, ``sumrec``, ``fib``,
``nqueens``, ``traversal``) or a path to one of the repository's example
scripts (``examples/sat_solver.py``) — the basename is mapped to the
workload the script demonstrates, so ``repro trace examples/<any>.py``
always produces a representative trace.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from .bus import TelemetryBus
from .export import ChromeTraceExporter, write_metrics
from .metrics import MetricsSubscriber

__all__ = ["WORKLOADS", "capture_workload", "capture_sat_trace"]


def _run_sat(bus: TelemetryBus, topology, seed: int) -> Dict[str, Any]:
    from ..apps.sat import uf20_91_suite
    from ..engine import RunSpec, execute
    from ..topology import spec_of

    cnf = uf20_91_suite(1, seed=seed)[0]
    spec = RunSpec(
        workload="sat",
        workload_params={
            "clauses": [list(c) for c in cnf.clauses],
            "num_vars": cnf.num_vars,
        },
        topology=spec_of(topology),
        mapper="lbn",
        status=16,
        seed=seed,
    )
    run = execute(spec, topology=topology, telemetry=bus)
    satisfiable = bool(run.verdict["sat"])
    verified = (
        cnf.is_satisfied_by(dict(run.verdict["assignment"]))
        if satisfiable
        else True
    )
    return {
        "satisfiable": satisfiable,
        "verified": verified,
        "computation_time": run.report.computation_time,
        "sent": run.report.sent_total,
    }


def _stack_workload(workload: str, n: int, mapper: str = "rr"):
    def run(bus: TelemetryBus, topology, seed: int) -> Dict[str, Any]:
        from ..engine import RunSpec, execute
        from ..topology import spec_of

        spec = RunSpec(
            workload=workload,
            workload_params={"n": n},
            topology=spec_of(topology),
            mapper=mapper,
            seed=seed,
            drain=False,
        )
        res = execute(spec, topology=topology, telemetry=bus)
        return {
            "result": repr(res.result),
            "computation_time": res.report.computation_time,
            "sent": res.report.sent_total,
        }

    return run


def _run_traversal(bus: TelemetryBus, topology, seed: int) -> Dict[str, Any]:
    from ..engine import RunSpec, execute
    from ..topology import spec_of

    spec = RunSpec(
        workload="traversal",
        workload_params={},
        topology=spec_of(topology),
        seed=seed,
    )
    run = execute(spec, topology=topology, telemetry=bus)
    return {
        "computation_time": run.report.computation_time,
        "sent": run.report.sent_total,
    }


#: name -> (description, default topology spec, runner)
WORKLOADS: Dict[str, Tuple[str, str, Callable]] = {
    "sat": (
        "distributed DPLL on one uf20-91 instance (all 5 layers + probes)",
        "torus2d:14x14",
        _run_sat,
    ),
    "sumrec": (
        "the paper's Listing-3 recursive sum (layers 1-4)",
        "torus2d:8x8",
        _stack_workload("sumrec", 60),
    ),
    "fib": (
        "fork-join Fibonacci (layers 1-4, fixed fan-out)",
        "torus2d:8x8",
        _stack_workload("fib", 13),
    ),
    "nqueens": (
        "6-queens via non-deterministic choice (layers 1-4)",
        "torus2d:8x8",
        _stack_workload("nqueens", 6, mapper="lbn"),
    ),
    "traversal": (
        "Listing-1 mesh flood fill (layer 1 only)",
        "torus2d:20x20",
        _run_traversal,
    ),
}

#: example script basename -> workload key (``repro trace examples/<any>.py``)
_EXAMPLE_ALIASES: Dict[str, str] = {
    "quickstart": "sumrec",
    "layers_tour": "sumrec",
    "sat_solver": "sat",
    "scalability_sweep": "sat",
    "unfolding_heatmap": "sat",
    "combinatorial_zoo": "nqueens",
    "nqueens_mesh": "nqueens",
    "topology_playground": "traversal",
}

def resolve_workload(name: str) -> str:
    """Map a workload name or ``examples/`` path to a registry key."""
    if name in WORKLOADS:
        return name
    stem = Path(name).stem
    if stem in WORKLOADS:
        return stem
    alias = _EXAMPLE_ALIASES.get(stem)
    if alias is not None:
        return alias
    known = ", ".join(sorted(WORKLOADS))
    raise ValueError(f"unknown trace workload {name!r} (known: {known})")


def capture_workload(
    workload: str,
    out: Union[str, Path],
    *,
    metrics_path: Optional[Union[str, Path]] = None,
    topology: Optional[str] = None,
    seed: int = 2017,
) -> Dict[str, Any]:
    """Run ``workload`` traced; write the Perfetto trace (and metrics).

    Returns a summary dict: the workload result plus event/layer counts and
    the artifact paths.
    """
    from ..topology import topology_from_spec

    key = resolve_workload(workload)
    description, default_topo, runner = WORKLOADS[key]
    topo = topology_from_spec(topology or default_topo)

    bus = TelemetryBus()
    exporter = bus.attach(ChromeTraceExporter())
    metrics = bus.attach(MetricsSubscriber())
    result = runner(bus, topo, seed)

    trace_path = exporter.write(out)
    summary: Dict[str, Any] = {
        "workload": key,
        "description": description,
        "topology": topo.describe(),
        "seed": seed,
        "result": result,
        "events": len(exporter),
        "layers": exporter.layers(),
        "trace_path": str(trace_path),
    }
    if metrics_path is not None:
        summary["metrics_path"] = str(write_metrics(metrics.registry, metrics_path))
    return summary


def capture_sat_trace(
    cnf,
    topology,
    out: Union[str, Path],
    *,
    mapper: str = "lbn",
    status: Optional[int] = 16,
    heuristic: str = "max_occurrence",
    simplify: str = "none",
    seed: int = 2017,
    max_steps: int = 2_000_000,
    metrics_path: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Trace one SAT sweep cell (the figure benches' representative run).

    Runs the cell's canonical :class:`repro.engine.RunSpec` through
    :func:`repro.engine.execute` with a fresh telemetry pipeline and
    writes the Chrome trace — the profiling lens of the paper's §V-C,
    per event instead of per aggregate.
    """
    from ..engine import RunSpec, execute
    from ..topology import spec_of

    bus = TelemetryBus()
    exporter = bus.attach(ChromeTraceExporter())
    metrics = bus.attach(MetricsSubscriber())
    spec = RunSpec(
        workload="sat",
        workload_params={
            "clauses": [list(c) for c in cnf.clauses],
            "num_vars": cnf.num_vars,
        },
        topology=spec_of(topology),
        mapper=mapper,
        status=status,
        heuristic=heuristic,
        simplify=simplify,
        seed=seed,
        max_steps=max_steps,
    )
    run = execute(spec, topology=topology, telemetry=bus)
    trace_path = exporter.write(out)
    summary: Dict[str, Any] = {
        "topology": topology.describe(),
        "mapper": mapper,
        "satisfiable": bool(run.verdict["sat"]),
        "computation_time": run.report.computation_time,
        "events": len(exporter),
        "layers": exporter.layers(),
        "trace_path": str(trace_path),
    }
    if metrics_path is not None:
        summary["metrics_path"] = str(write_metrics(metrics.registry, metrics_path))
    return summary
