"""Structured telemetry events and the cross-layer event taxonomy.

Every layer of the stack publishes :class:`TelemetryEvent` values to a
:class:`~repro.telemetry.bus.TelemetryBus`.  An event is deliberately tiny —
six slots, no inheritance — because a traced simulation can emit one event
per message send *and* per delivery; the whole pipeline is built so that a
simulation with **no** bus attached pays exactly one ``is None`` check per
potential event (see ``docs/observability.md`` and ``docs/performance.md``
for measured overhead).

Hot-path events (layer-1 ``send`` / ``deliver`` and the reliability
counters) do not pass through ``__init__`` individually: publishers stage
them as plain ``(step, layer, name, node, dur, attrs)`` tuples in the bus's
ring buffer — the slot order matches this class's constructor — and the bus
materialises :class:`TelemetryEvent` objects in batches, only when a
subscriber actually retains events.  Aggregating subscribers (metrics)
never see per-message objects at all; they consume coalesced per-step
deltas (see :mod:`repro.telemetry.bus`).

Taxonomy (the full per-layer list lives in ``docs/observability.md``):

=====  ==========  =====================================================
layer  constant    representative events
=====  ==========  =====================================================
1      L1_NETSIM   ``send``, ``deliver``, ``drop``, ``queued`` (counter);
                   with reliable delivery on: ``retransmit``, ``ack``,
                   ``dedup``, ``link_retries`` (span; per-message retry
                   count histogram)
2      L2_SCHED    ``context_switch``, ``run_queue`` (counter),
                   ``budget_exhausted``
3      L3_MAPPING  ``ticket_issue``, ``ticket_claim``, ``ticket_forward``,
                   ``reply_sent``, ``reply_delivered``, ``cancel_sent``,
                   ``status_broadcast``
4      L4_RECUR    ``invocation`` (span), ``call``, ``sync``, ``result``,
                   ``choice_win``, ``choice_exhausted``, ``cancelled``,
                   ``late_reply``, ``dup_work``
5      L5_APP      application probes, e.g. ``dpll.branch`` /
                   ``dpll.backtrack``
=====  ==========  =====================================================

Conventions:

* ``step`` is the simulation time step the event belongs to (the clock of
  every exporter); for *span* events it is the **start** step.
* ``node`` is the simulated node the event happened on, or ``-1`` for
  machine-wide events (e.g. the per-step ``queued`` counter).
* ``dur`` is ``None`` for instant events and a step count (>= 0) for spans.
* counter-style events carry a numeric ``value`` key in ``attrs``; the
  Chrome exporter renders them as counter tracks.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "TelemetryEvent",
    "L1_NETSIM",
    "L2_SCHED",
    "L3_MAPPING",
    "L4_RECURSION",
    "L5_APP",
    "LAYER_NAMES",
]

#: layer identifiers (match the paper's Figure 2 numbering)
L1_NETSIM = 1
L2_SCHED = 2
L3_MAPPING = 3
L4_RECURSION = 4
L5_APP = 5

#: human-readable layer titles (used by exporters as track/process names)
LAYER_NAMES: Dict[int, str] = {
    L1_NETSIM: "layer 1 - netsim",
    L2_SCHED: "layer 2 - sched",
    L3_MAPPING: "layer 3 - mapping",
    L4_RECURSION: "layer 4 - recursion",
    L5_APP: "layer 5 - app",
}


class TelemetryEvent:
    """One structured observation published on the bus.

    Attributes
    ----------
    step:
        Simulation step (start step for spans; ``-1`` = before step 0).
    layer:
        Publishing layer, 1..5 (see the module constants).
    name:
        Event name within the layer's taxonomy.
    node:
        Simulated node id, or ``-1`` for machine-wide events.
    dur:
        ``None`` for instant events; duration in steps for spans.
    attrs:
        Optional payload dict (kept ``None`` when empty to avoid
        allocating a dict per hot-path event).
    """

    __slots__ = ("step", "layer", "name", "node", "dur", "attrs")

    def __init__(
        self,
        step: int,
        layer: int,
        name: str,
        node: int = -1,
        dur: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.step = step
        self.layer = layer
        self.name = name
        self.node = node
        self.dur = dur
        self.attrs = attrs

    @property
    def is_span(self) -> bool:
        """True for duration (span) events."""
        return self.dur is not None

    @property
    def is_counter(self) -> bool:
        """True for counter-style events (numeric ``value`` attribute)."""
        return self.attrs is not None and "value" in self.attrs

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (used by JSON dumps and tests)."""
        d: Dict[str, Any] = {
            "step": self.step,
            "layer": self.layer,
            "name": self.name,
            "node": self.node,
        }
        if self.dur is not None:
            d["dur"] = self.dur
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = f" dur={self.dur}" if self.dur is not None else ""
        attrs = f" {self.attrs!r}" if self.attrs else ""
        return (
            f"TelemetryEvent(t={self.step} L{self.layer} {self.name} "
            f"node={self.node}{span}{attrs})"
        )
