"""Exporters: Chrome trace-event JSON (Perfetto) and metrics dumps.

:class:`ChromeTraceExporter` is a bus subscriber producing the Trace Event
Format consumed by ``chrome://tracing`` and https://ui.perfetto.dev — drop
the written file onto either UI.  Mapping conventions:

* **clock** — one simulation step = one microsecond of trace time (``ts``);
  wall time is meaningless inside the simulator, steps are the ground truth;
* **process** (``pid``) — the stack layer (1..5), named via metadata
  events, so Perfetto groups tracks by layer;
* **thread** (``tid``) — the simulated node id (machine-wide events use
  tid 0 of the layer's process);
* instant events -> phase ``"i"``, span events -> complete events (``"X"``)
  with ``dur`` in steps, counter-style events (a numeric ``value`` attr) ->
  counter tracks (``"C"``).

Metrics writers (:func:`write_metrics_json` / :func:`write_metrics_csv`)
dump a :class:`~repro.telemetry.metrics.MetricsRegistry` snapshot.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .events import LAYER_NAMES, TelemetryEvent
from .metrics import MetricsRegistry

__all__ = [
    "ChromeTraceExporter",
    "write_metrics_json",
    "write_metrics_csv",
    "write_metrics",
]


def _json_safe(value: Any) -> Any:
    """Coerce an attr value to something ``json.dump`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


class ChromeTraceExporter:
    """Accumulate bus events; serialise as Chrome trace-event JSON."""

    __slots__ = ("_events", "_layers_seen")

    def __init__(self) -> None:
        self._events: List[TelemetryEvent] = []
        self._layers_seen: set = set()

    # -- bus subscriber interface --------------------------------------

    def on_event(self, event: TelemetryEvent) -> None:
        self._events.append(event)
        self._layers_seen.add(event.layer)

    # -- serialisation --------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def layers(self) -> List[int]:
        """Layers that contributed at least one event, ascending."""
        return sorted(self._layers_seen)

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The trace as a JSON-ready dict (Trace Event Format, object form)."""
        trace_events: List[Dict[str, Any]] = []
        # metadata: name each layer's process and pin the display order
        for layer in self.layers():
            trace_events.append(
                {
                    "ph": "M",
                    "pid": layer,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": LAYER_NAMES.get(layer, f"layer {layer}")},
                }
            )
            trace_events.append(
                {
                    "ph": "M",
                    "pid": layer,
                    "tid": 0,
                    "name": "process_sort_index",
                    "args": {"sort_index": layer},
                }
            )
        for ev in self._events:
            # steps can be -1 (init-time / external injection); clamp so the
            # trace clock starts at 0 as the viewers expect
            ts = ev.step if ev.step >= 0 else 0
            tid = ev.node if ev.node >= 0 else 0
            entry: Dict[str, Any] = {
                "name": ev.name,
                "pid": ev.layer,
                "tid": tid,
                "ts": ts,
                "cat": LAYER_NAMES.get(ev.layer, f"layer{ev.layer}"),
            }
            attrs = ev.attrs
            if ev.dur is not None:
                entry["ph"] = "X"
                entry["dur"] = ev.dur
            elif attrs is not None and isinstance(
                attrs.get("value"), (int, float)
            ):
                entry["ph"] = "C"
            else:
                entry["ph"] = "i"
                entry["s"] = "t"
            if attrs:
                entry["args"] = {k: _json_safe(v) for k, v in attrs.items()}
            trace_events.append(entry)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "1 simulation step = 1us",
                "generator": "repro.telemetry",
            },
        }

    def write(self, path: Union[str, Path], indent: Optional[int] = None) -> Path:
        """Write the trace JSON to ``path``; returns the resolved path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=indent)
            fh.write("\n")
        return path


def write_metrics_json(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    """Dump a metrics snapshot as JSON; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(registry.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def write_metrics_csv(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    """Dump a metrics snapshot as CSV (``name,kind,field,value`` rows)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["name", "kind", "field", "value"])
        for name, payload in registry.as_dict().items():
            kind = payload["kind"]
            for field, value in payload.items():
                if field == "kind":
                    continue
                if isinstance(value, dict):
                    for sub, v in value.items():
                        writer.writerow([name, kind, f"{field}.{sub}", v])
                else:
                    writer.writerow([name, kind, field, value])
    return path


def write_metrics(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    """Dump metrics as JSON or CSV based on the path suffix."""
    path = Path(path)
    if path.suffix.lower() == ".csv":
        return write_metrics_csv(registry, path)
    return write_metrics_json(registry, path)
