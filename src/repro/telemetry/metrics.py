"""Typed metrics (counters / gauges / histograms) over the event bus.

:class:`MetricsRegistry` is the standalone container — any component may
create and update metrics directly.  :class:`MetricsSubscriber` derives a
standard set of metrics *from the event stream*, so attaching it to a
:class:`~repro.telemetry.bus.TelemetryBus` yields per-layer counters, span
histograms and counter-track gauges with no per-layer code:

* every event increments the counter ``l{layer}.{name}``;
* span events (``dur`` set) feed the histogram ``l{layer}.{name}.steps``;
* counter-style events (``value`` attr) update the gauge
  ``l{layer}.{name}`` (last value + peak).

Dumps: :meth:`MetricsRegistry.as_dict`, plus CSV/JSON writers in
:mod:`repro.telemetry.export`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from .events import TelemetryEvent

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricsSubscriber"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value plus observed extremes."""

    __slots__ = ("name", "value", "peak", "low", "updates")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.peak = -math.inf
        self.low = math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value
        if value < self.low:
            self.low = value
        self.updates += 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "value": self.value,
            "peak": self.peak if self.updates else None,
            "low": self.low if self.updates else None,
            "updates": self.updates,
        }


class Histogram:
    """Streaming distribution summary (count/sum/min/max + fixed buckets).

    Buckets are cumulative powers of two over step durations — wide enough
    for any simulation span while keeping the summary O(1) per observation.
    """

    __slots__ = ("name", "count", "total", "min", "max", "bucket_counts")

    kind = "histogram"

    #: upper bounds of the cumulative buckets (last bucket is +inf)
    BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384)

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.bucket_counts = [0] * (len(self.BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.observe_n(value, 1)

    def observe_n(self, value: float, n: int) -> None:
        """Record ``n`` identical observations in one update.

        The coalescing path of :class:`MetricsSubscriber` batches repeated
        values (e.g. the zero-retry case of ``l1.link_retries``) into a
        single bucket update per step instead of ``n``.
        """
        self.count += n
        self.total += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.BOUNDS):
            if value <= bound:
                self.bucket_counts[i] += n
                return
        self.bucket_counts[-1] += n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": round(self.mean, 4),
            "buckets": {
                **{f"le_{b}": c for b, c in zip(self.BOUNDS, self.bucket_counts)},
                "inf": self.bucket_counts[-1],
            },
        }


class MetricsRegistry:
    """Named metrics, created on first use, dumped as one dict."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def _get(self, name: str, cls) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Any:
        return self._metrics[name]

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """All metrics as ``{name: {kind, ...}}``, sorted by name."""
        return {name: self._metrics[name].as_dict() for name in self.names()}


class MetricsSubscriber:
    """Bus subscriber deriving the standard per-layer metrics.

    Every event bumps ``l{layer}.{name}`` (counter); spans additionally
    feed ``l{layer}.{name}.steps`` (histogram); counter-style events update
    the gauge ``l{layer}.{name}.level``.

    This subscriber is a pure aggregator: it declares
    ``needs_events = False``, so the bus excludes it from the ring-buffered
    event stream and instead delivers the coalesced per-step counter and
    observation deltas through :meth:`on_counters` /
    :meth:`on_observations` — one call and one cached metric lookup per
    distinct name per step, instead of an f-string plus registry lookup
    per message.  ``emit``-published events still arrive via
    :meth:`on_event` exactly as before.
    """

    __slots__ = ("registry", "_counter_cache", "_hist_cache")

    #: aggregates deltas; never needs the materialised event stream
    needs_events = False

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        #: (layer, name) -> Counter, resolved once per distinct key
        self._counter_cache: Dict[Any, Counter] = {}
        #: (layer, name) -> (Counter, Histogram) for observation keys
        self._hist_cache: Dict[Any, Any] = {}

    def on_event(self, event: TelemetryEvent) -> None:
        base = f"l{event.layer}.{event.name}"
        self.registry.counter(base).inc()
        if event.dur is not None:
            self.registry.histogram(base + ".steps").observe(event.dur)
        attrs = event.attrs
        if attrs is not None:
            value = attrs.get("value")
            if value is not None:
                self.registry.gauge(base + ".level").set(value)

    def on_counters(self, deltas: Dict[Any, int]) -> None:
        """Apply one step's coalesced ``{(layer, name): n}`` deltas."""
        cache = self._counter_cache
        for key, n in deltas.items():
            counter = cache.get(key)
            if counter is None:
                counter = cache[key] = self.registry.counter(
                    f"l{key[0]}.{key[1]}"
                )
            counter.value += n

    def on_observations(self, deltas: Dict[Any, int]) -> None:
        """Apply coalesced ``{(layer, name, value): n}`` span observations.

        Mirrors the ``emit`` span treatment: each observation bumps the
        base counter and feeds the ``.steps`` histogram.
        """
        cache = self._hist_cache
        for (layer, name, value), n in deltas.items():
            pair = cache.get((layer, name))
            if pair is None:
                base = f"l{layer}.{name}"
                pair = cache[(layer, name)] = (
                    self.registry.counter(base),
                    self.registry.histogram(base + ".steps"),
                )
            pair[0].value += n
            pair[1].observe_n(value, n)

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        return self.registry.as_dict()
