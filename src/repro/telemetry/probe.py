"""Layer-5 application probes.

Layer-5 code is a plain generator function — it has no context handle to
thread a bus through, and instrumenting a solver must not change its
signature.  Probes therefore go through a module-level *active bus*:

* :class:`~repro.stack.HyperspaceStack` installs its bus (plus a
  step-clock and the executing node, maintained by layer 4) around each
  run;
* application code calls :func:`probe` anywhere; with no bus installed it
  is a no-op costing one attribute load and one ``is None`` test.

Example (this is exactly how the distributed DPLL solver is instrumented)::

    from repro import telemetry

    def my_solver(problem):
        ...
        telemetry.probe("my.branch", var=var, depth=len(model))
        yield Choice(...)

The installed state is process-global (the simulator is single-threaded by
design); nested installs are rejected so two concurrently *running* stacks
in one process cannot interleave their probe streams silently.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Optional

from .bus import TelemetryBus
from .events import L5_APP

__all__ = [
    "probe",
    "probe_enabled",
    "install_probes",
    "uninstall_probes",
    "active_probe_bus",
    "set_probe_node",
    "probes_to",
]

#: [bus, step_fn, current node] — a list so hot updates rebind one slot
_state: list = [None, None, -1]


def install_probes(
    bus: TelemetryBus, step_fn: Optional[Callable[[], int]] = None
) -> None:
    """Route :func:`probe` calls to ``bus``; ``step_fn`` supplies the clock."""
    if _state[0] is not None and _state[0] is not bus:
        raise RuntimeError("another telemetry bus already has probes installed")
    _state[0] = bus
    _state[1] = step_fn
    _state[2] = -1


def uninstall_probes() -> None:
    """Disconnect probes (safe to call when none are installed)."""
    _state[0] = None
    _state[1] = None
    _state[2] = -1


def active_probe_bus() -> Optional[TelemetryBus]:
    """The currently installed bus, or ``None``."""
    return _state[0]


def probe_enabled() -> bool:
    """True when a bus is installed (for guarding expensive attr building)."""
    return _state[0] is not None


def set_probe_node(node: int) -> None:
    """Attribute subsequent probes to ``node`` (layer 4 calls this while
    driving a generator, so probes land on the executing node's track)."""
    _state[2] = node


def probe(name: str, **attrs: Any) -> None:
    """Emit a layer-5 instant event, or do nothing when telemetry is off."""
    bus = _state[0]
    if bus is None:
        return
    step_fn = _state[1]
    bus.emit(
        L5_APP,
        name,
        step_fn() if step_fn is not None else 0,
        _state[2],
        attrs=attrs or None,
    )


@contextmanager
def probes_to(bus: TelemetryBus, step_fn: Optional[Callable[[], int]] = None):
    """Context manager: install probes for the duration of a block."""
    install_probes(bus, step_fn)
    try:
        yield bus
    finally:
        uninstall_probes()
