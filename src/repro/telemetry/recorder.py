"""In-memory subscribers: the event log and the TraceRecorder adapter.

:class:`EventLog` records every event for queries in tests and notebooks.
:class:`TraceRecorderFeed` demonstrates that layer 1's pre-existing
:class:`~repro.netsim.trace.TraceRecorder` is *subsumed* by the bus: a
recorder driven purely from ``send`` / ``deliver`` / ``drop`` / ``queued``
bus events reproduces the paper's three §V-C metrics (computation time,
interconnect activity, node activity) without touching the machine.  The
machine still drives its own recorder directly on the hot path — that is a
performance choice, not an information one, and
``tests/telemetry/test_bus.py`` pins the equivalence.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..netsim.trace import TraceRecorder
from .events import L1_NETSIM, TelemetryEvent

__all__ = ["EventLog", "TraceRecorderFeed"]


class EventLog:
    """Append-only event recorder with simple query helpers."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[TelemetryEvent] = []

    def on_event(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def layers(self) -> List[int]:
        """Distinct layers that emitted, ascending."""
        return sorted({ev.layer for ev in self.events})

    def names(self, layer: Optional[int] = None) -> List[str]:
        """Distinct event names (optionally restricted to one layer)."""
        return sorted(
            {ev.name for ev in self.events if layer is None or ev.layer == layer}
        )

    def by_layer(self, layer: int) -> List[TelemetryEvent]:
        return [ev for ev in self.events if ev.layer == layer]

    def by_name(self, name: str, layer: Optional[int] = None) -> List[TelemetryEvent]:
        return [
            ev
            for ev in self.events
            if ev.name == name and (layer is None or ev.layer == layer)
        ]

    def count(self, name: str, layer: Optional[int] = None) -> int:
        return len(self.by_name(name, layer))

    def counts(self) -> Dict[str, int]:
        """``{"l{layer}.{name}": count}`` for every event kind seen."""
        out: Dict[str, int] = {}
        for ev in self.events:
            key = f"l{ev.layer}.{ev.name}"
            out[key] = out.get(key, 0) + 1
        return dict(sorted(out.items()))

    def filter(self, predicate: Callable[[TelemetryEvent], bool]) -> List[TelemetryEvent]:
        return [ev for ev in self.events if predicate(ev)]


class TraceRecorderFeed:
    """Drive a :class:`TraceRecorder` from layer-1 bus events.

    The adapter consumes the layer-1 taxonomy only; all other layers'
    events pass through untouched.  Message-size accounting rides on the
    ``size`` attr of ``send`` events; per-payload-type counters are the one
    recorder feature the bus does not reproduce (events carry sizes, not
    payload objects).
    """

    __slots__ = ("recorder",)

    def __init__(self, recorder: Optional[TraceRecorder] = None, n_nodes: int = 0) -> None:
        if recorder is None:
            recorder = TraceRecorder(n_nodes)
        self.recorder = recorder

    def on_event(self, event: TelemetryEvent) -> None:
        if event.layer != L1_NETSIM:
            return
        name = event.name
        attrs = event.attrs
        if name == "send":
            size = attrs.get("size", 1) if attrs else 1
            self.recorder.on_send(event.node, event.step, None, size)
        elif name == "deliver":
            self.recorder.on_deliver(event.node, event.step)
        elif name == "drop":
            self.recorder.on_drop(event.node, event.step)
        elif name == "queued":
            assert attrs is not None
            self.recorder.on_step_end(
                event.step, attrs["value"], attrs.get("delivered", 0)
            )
