"""Machine interconnect topologies (the paper's "hyperspace" meshes).

Public surface:

* :class:`Topology` — abstract interconnect description.
* Concrete machines: :class:`Torus`, :class:`Grid`, :class:`Hypercube`,
  :class:`FullyConnected`, :class:`Ring`, :class:`Line`, :class:`Star`,
  :class:`CompleteTree`.
* :func:`topology_from_spec` — parse ``"torus2d:14x14"``-style specs.
* :mod:`repro.topology.embedding` — Gray-code embeddings into hypercubes.
"""

from .base import Coord, NodeId, Topology
from .ccc import CubeConnectedCycles
from .custom import CustomTopology, from_networkx, to_networkx
from .embedding import (
    Embedding,
    embed_grid_in_hypercube,
    embed_ring_in_hypercube,
    embed_tree_in_hypercube,
    embedding_latency,
    gray_code,
    gray_rank,
)
from .factory import balanced_dims, nearest_mesh_dims, spec_of, topology_from_spec
from .fully_connected import FullyConnected, Star
from .hypercube import Hypercube
from .torus import Grid, Line, Ring, Torus
from .tree import CompleteTree

__all__ = [
    "Topology",
    "NodeId",
    "Coord",
    "CustomTopology",
    "to_networkx",
    "from_networkx",
    "Torus",
    "Grid",
    "Ring",
    "Line",
    "Hypercube",
    "FullyConnected",
    "Star",
    "CompleteTree",
    "CubeConnectedCycles",
    "spec_of",
    "topology_from_spec",
    "balanced_dims",
    "nearest_mesh_dims",
    "Embedding",
    "embedding_latency",
    "gray_code",
    "gray_rank",
    "embed_grid_in_hypercube",
    "embed_ring_in_hypercube",
    "embed_tree_in_hypercube",
]
