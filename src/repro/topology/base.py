"""Topology abstraction for hyperspace machines.

A :class:`Topology` describes the static interconnect of a simulated machine:
how many nodes exist, which pairs are adjacent, and (for mesh-like networks)
how node indices map to coordinates in the embedding space.

Nodes are identified by dense integer ids ``0 .. n_nodes-1`` throughout the
stack; coordinates are a per-topology concept used for construction,
visualisation (heatmaps in Figure 5) and distance computations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import TopologyError

__all__ = ["Topology", "NodeId", "Coord"]

NodeId = int
Coord = Tuple[int, ...]


class Topology(ABC):
    """Abstract base class for machine interconnect topologies.

    Subclasses must provide :attr:`n_nodes` and :meth:`neighbours`.  All other
    queries (distance, diameter, degree statistics, path finding) have generic
    BFS-based implementations which concrete topologies may override with
    closed forms.
    """

    #: short machine-readable kind tag, e.g. ``"torus"``; set by subclasses.
    kind: str = "abstract"

    @property
    @abstractmethod
    def n_nodes(self) -> int:
        """Total number of nodes in the machine."""

    @abstractmethod
    def neighbours(self, node: NodeId) -> Sequence[NodeId]:
        """Return the ordered tuple of nodes adjacent to ``node``.

        The order is deterministic and significant: the round-robin mapper
        cycles destinations in exactly this order.
        """

    # ------------------------------------------------------------------
    # Generic helpers
    # ------------------------------------------------------------------

    def check_node(self, node: NodeId) -> None:
        """Raise :class:`TopologyError` unless ``node`` is a valid id."""
        if not isinstance(node, int) or not (0 <= node < self.n_nodes):
            raise TopologyError(
                f"node id {node!r} out of range for {self!r} "
                f"(expected 0 <= id < {self.n_nodes})"
            )

    def nodes(self) -> range:
        """Iterate over all node ids."""
        return range(self.n_nodes)

    def degree(self, node: NodeId) -> int:
        """Number of neighbours of ``node``."""
        return len(self.neighbours(node))

    def is_adjacent(self, a: NodeId, b: NodeId) -> bool:
        """True if ``b`` is a neighbour of ``a``."""
        return b in self.neighbours(a)

    def edges(self) -> Iterable[Tuple[NodeId, NodeId]]:
        """Yield each undirected edge exactly once as ``(min, max)``."""
        for a in self.nodes():
            for b in self.neighbours(a):
                if a < b:
                    yield (a, b)

    def n_links(self) -> int:
        """Number of undirected links in the machine."""
        return sum(1 for _ in self.edges())

    def distance(self, a: NodeId, b: NodeId) -> int:
        """Hop distance between two nodes (generic BFS; often overridden)."""
        self.check_node(a)
        self.check_node(b)
        if a == b:
            return 0
        dist = self._bfs_distances(a, stop_at=b)
        d = dist.get(b)
        if d is None:
            raise TopologyError(f"nodes {a} and {b} are disconnected in {self!r}")
        return d

    def _bfs_distances(
        self, source: NodeId, stop_at: NodeId | None = None
    ) -> Dict[NodeId, int]:
        """Breadth-first distances from ``source`` (early exit at ``stop_at``)."""
        dist: Dict[NodeId, int] = {source: 0}
        frontier: deque[NodeId] = deque([source])
        while frontier:
            cur = frontier.popleft()
            if stop_at is not None and cur == stop_at:
                return dist
            d = dist[cur] + 1
            for nxt in self.neighbours(cur):
                if nxt not in dist:
                    dist[nxt] = d
                    frontier.append(nxt)
        return dist

    def shortest_path(self, a: NodeId, b: NodeId) -> List[NodeId]:
        """One shortest path from ``a`` to ``b`` inclusive (BFS parents)."""
        self.check_node(a)
        self.check_node(b)
        if a == b:
            return [a]
        parent: Dict[NodeId, NodeId] = {a: a}
        frontier: deque[NodeId] = deque([a])
        while frontier:
            cur = frontier.popleft()
            for nxt in self.neighbours(cur):
                if nxt not in parent:
                    parent[nxt] = cur
                    if nxt == b:
                        path = [b]
                        while path[-1] != a:
                            path.append(parent[path[-1]])
                        path.reverse()
                        return path
                    frontier.append(nxt)
        raise TopologyError(f"nodes {a} and {b} are disconnected in {self!r}")

    def diameter(self) -> int:
        """Maximum hop distance between any node pair (generic: all-pairs BFS)."""
        best = 0
        for a in self.nodes():
            dist = self._bfs_distances(a)
            if len(dist) != self.n_nodes:
                raise TopologyError(f"{self!r} is disconnected")
            best = max(best, max(dist.values()))
        return best

    def is_connected(self) -> bool:
        """True if every node is reachable from node 0."""
        if self.n_nodes == 0:
            return True
        return len(self._bfs_distances(0)) == self.n_nodes

    def is_node_symmetric(self) -> bool:
        """Cheap necessary condition for node symmetry: uniform degree."""
        if self.n_nodes == 0:
            return True
        d0 = self.degree(0)
        return all(self.degree(n) == d0 for n in self.nodes())

    # ------------------------------------------------------------------
    # Coordinates (optional; meshes override)
    # ------------------------------------------------------------------

    def coords(self, node: NodeId) -> Coord:
        """Coordinates of ``node`` in the embedding space.

        The default treats the machine as one-dimensional.
        """
        self.check_node(node)
        return (node,)

    def node_at(self, coord: Coord) -> NodeId:
        """Inverse of :meth:`coords`."""
        if len(coord) != 1:
            raise TopologyError(f"{self!r} uses 1-d coordinates, got {coord!r}")
        node = coord[0]
        self.check_node(node)
        return node

    @property
    def shape(self) -> Coord:
        """Extent along each coordinate axis (default: 1-d line)."""
        return (self.n_nodes,)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def adjacency_lists(self) -> List[Tuple[NodeId, ...]]:
        """Materialised neighbour lists for all nodes (index = node id)."""
        return [tuple(self.neighbours(n)) for n in self.nodes()]

    def describe(self) -> str:
        """Human-readable one-line description used in benchmark reports."""
        return f"{self.kind}(n={self.n_nodes})"

    def __repr__(self) -> str:
        return self.describe()

    def __len__(self) -> int:
        return self.n_nodes
