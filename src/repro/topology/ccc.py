"""Cube-connected cycles (CCC) — the bounded-degree hypercube relative.

CCC(d) replaces each vertex of a d-dimensional hypercube with a d-cycle;
cycle position *i* of cube vertex *v* connects to (a) its cycle neighbours
and (b) position *i* of the cube vertex ``v ^ (1 << i)``.  The result keeps
the hypercube's logarithmic diameter while bounding every node's degree at
3 — the constant-fan-out property real machines (like the transputer's four
links, paper Figure 1A) need that pure hypercubes lack at scale.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import TopologyError
from .base import Coord, NodeId, Topology

__all__ = ["CubeConnectedCycles"]


class CubeConnectedCycles(Topology):
    """CCC(d): ``d * 2**d`` nodes of degree 3 (degree 2 for d < 3).

    Node ids are ``cube_vertex * d + cycle_position``; coordinates are the
    ``(cycle_position, *address_bits)`` tuples.
    """

    kind = "ccc"

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise TopologyError(f"CCC dimension must be >= 1, got {dimension}")
        if dimension > 16:
            raise TopologyError(
                f"CCC({dimension}) would have {dimension * 2**dimension} nodes; refusing"
            )
        self._dim = int(dimension)
        self._n = self._dim * (1 << self._dim)
        d = self._dim
        neigh: List[Tuple[NodeId, ...]] = []
        for node in range(self._n):
            vertex, pos = divmod(node, d)
            out: List[NodeId] = []
            if d > 1:
                down = vertex * d + (pos - 1) % d
                up = vertex * d + (pos + 1) % d
                out.append(down)
                if up != down:
                    out.append(up)
            out.append((vertex ^ (1 << pos)) * d + pos)
            neigh.append(tuple(out))
        self._neigh = neigh

    @property
    def dimension(self) -> int:
        """Underlying hypercube dimension (= cycle length)."""
        return self._dim

    @property
    def n_nodes(self) -> int:
        return self._n

    def neighbours(self, node: NodeId) -> Sequence[NodeId]:
        self.check_node(node)
        return self._neigh[node]

    def coords(self, node: NodeId) -> Coord:
        self.check_node(node)
        vertex, pos = divmod(node, self._dim)
        bits = tuple((vertex >> (self._dim - 1 - i)) & 1 for i in range(self._dim))
        return (pos,) + bits

    def node_at(self, coord: Coord) -> NodeId:
        if len(coord) != self._dim + 1:
            raise TopologyError(
                f"CCC({self._dim}) coordinates are (pos, {self._dim} bits), got {coord!r}"
            )
        pos = coord[0]
        if not (0 <= pos < self._dim):
            raise TopologyError(f"cycle position {pos} out of range")
        vertex = 0
        for bit in coord[1:]:
            if bit not in (0, 1):
                raise TopologyError(f"address bits must be 0/1, got {coord!r}")
            vertex = (vertex << 1) | bit
        return vertex * self._dim + pos

    @property
    def shape(self) -> Coord:
        return (self._dim,) + tuple(2 for _ in range(self._dim))

    def describe(self) -> str:
        return f"ccc({self._dim}, n={self._n})"
