"""Arbitrary (irregular) topologies and NetworkX interoperability.

The paper notes that SpiNNaker's "underlying communication infrastructure
permits arbitrary topologies to be virtualised efficiently" (§II-A).
:class:`CustomTopology` lets users run the stack on any connected graph —
hand-built, loaded from data, or converted from a ``networkx`` graph —
and :func:`to_networkx` exports any of this package's topologies for
analysis/plotting with the NetworkX ecosystem.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..errors import TopologyError
from .base import NodeId, Topology

__all__ = ["CustomTopology", "to_networkx", "from_networkx"]


class CustomTopology(Topology):
    """A topology defined by explicit adjacency lists.

    Parameters
    ----------
    adjacency:
        ``adjacency[i]`` is the ordered neighbour tuple of node *i*.
        The relation must be symmetric and self-loop-free; neighbour order
        is preserved (it drives round-robin mapping).
    name:
        Optional label used by :meth:`describe`.
    """

    kind = "custom"

    def __init__(
        self, adjacency: Sequence[Sequence[NodeId]], name: Optional[str] = None
    ) -> None:
        n = len(adjacency)
        neigh: List[Tuple[NodeId, ...]] = []
        for node, row in enumerate(adjacency):
            out = tuple(int(m) for m in row)
            for m in out:
                if not (0 <= m < n):
                    raise TopologyError(
                        f"node {node} lists out-of-range neighbour {m}"
                    )
                if m == node:
                    raise TopologyError(f"node {node} has a self-loop")
            if len(set(out)) != len(out):
                raise TopologyError(f"node {node} lists duplicate neighbours")
            neigh.append(out)
        for a in range(n):
            for b in neigh[a]:
                if a not in neigh[b]:
                    raise TopologyError(
                        f"asymmetric adjacency: {a} lists {b} but not vice versa"
                    )
        self._neigh = neigh
        self._n = n
        self.name = name

    @property
    def n_nodes(self) -> int:
        return self._n

    def neighbours(self, node: NodeId) -> Sequence[NodeId]:
        self.check_node(node)
        return self._neigh[node]

    def describe(self) -> str:
        label = self.name or "custom"
        return f"{label}(n={self._n})"


def to_networkx(topology: Topology):
    """Export a topology as a ``networkx.Graph``.

    Nodes carry a ``coords`` attribute (the topology's coordinate for the
    node) so mesh layouts can be plotted directly.
    """
    import networkx as nx

    g = nx.Graph(kind=topology.kind, describe=topology.describe())
    for node in topology.nodes():
        g.add_node(node, coords=topology.coords(node))
    g.add_edges_from(topology.edges())
    return g


def from_networkx(graph, name: Optional[str] = None) -> CustomTopology:
    """Build a :class:`CustomTopology` from a ``networkx`` graph.

    Node labels may be arbitrary hashables; they are relabelled to dense
    integer ids in sorted order (natural sort when the labels are mutually
    comparable — so integer-labelled graphs keep their numbering — with a
    string-order fallback for mixed labels).  The graph must be undirected,
    simple and non-empty.
    """
    import networkx as nx

    if graph.number_of_nodes() == 0:
        raise TopologyError("cannot build a topology from an empty graph")
    if graph.is_directed():
        raise TopologyError("topologies are undirected; pass graph.to_undirected()")
    try:
        labels = sorted(graph.nodes())
    except TypeError:  # mixed/incomparable labels
        labels = sorted(graph.nodes(), key=str)
    index: Dict[Hashable, int] = {label: i for i, label in enumerate(labels)}
    adjacency: List[List[int]] = [[] for _ in labels]
    for label in labels:
        node = index[label]
        for nb in graph.neighbors(label):
            if nb == label:
                continue  # drop self-loops
            adjacency[node].append(index[nb])
        adjacency[node].sort()
    return CustomTopology(adjacency, name=name)
