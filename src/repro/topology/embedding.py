"""Topology embeddings (paper §II-A, refs [14]-[16]).

The paper motivates hypercubes partly by their ability to embed other
topologies efficiently: "hypercubes can embed other topologies including
trees and lower-dimensional meshes efficiently".  This module implements the
classic constructions:

* :func:`gray_code` / :func:`gray_rank` — the reflected binary Gray code, the
  workhorse of mesh/ring embeddings (consecutive codes differ in one bit, so
  a ring maps to a dilation-1 cycle in the cube);
* :func:`embed_ring_in_hypercube` — dilation-1 embedding of an even cycle;
* :func:`embed_grid_in_hypercube` — dilation-1 embedding of a grid whose
  extents are powers of two (Chan [14]);
* :func:`embed_tree_in_hypercube` — double-rooted-style inorder embedding of
  a complete binary tree with dilation <= 2 (Bhatt & Ipsen [15]);
* :class:`Embedding` — an injective guest→host node map with
  dilation/expansion quality metrics;
* :func:`embedding_latency` — charge a guest machine the host-route cost
  of each guest link, so solvers can run *virtualised* on a host topology.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import TopologyError
from .base import NodeId, Topology
from .hypercube import Hypercube
from .torus import Grid, Ring, Torus
from .tree import CompleteTree

__all__ = [
    "gray_code",
    "gray_rank",
    "embed_ring_in_hypercube",
    "embed_grid_in_hypercube",
    "embed_tree_in_hypercube",
    "Embedding",
    "dilation",
    "embedding_latency",
    "is_valid_embedding",
]


def gray_code(i: int) -> int:
    """The i-th reflected binary Gray code."""
    if i < 0:
        raise TopologyError(f"gray_code index must be >= 0, got {i}")
    return i ^ (i >> 1)


def gray_rank(g: int) -> int:
    """Inverse of :func:`gray_code`."""
    if g < 0:
        raise TopologyError(f"gray_rank argument must be >= 0, got {g}")
    i = 0
    while g:
        i ^= g
        g >>= 1
    return i


class Embedding:
    """A mapping of guest nodes onto distinct host nodes.

    Parameters
    ----------
    guest, host:
        The two topologies.
    mapping:
        ``mapping[guest_node] == host_node``; must be injective.
    """

    __slots__ = ("guest", "host", "mapping")

    def __init__(self, guest: Topology, host: Topology, mapping: Sequence[NodeId]):
        if len(mapping) != guest.n_nodes:
            raise TopologyError(
                f"mapping covers {len(mapping)} nodes, guest has {guest.n_nodes}"
            )
        seen: Dict[NodeId, NodeId] = {}
        for g, h in enumerate(mapping):
            host.check_node(h)
            if h in seen:
                raise TopologyError(
                    f"embedding not injective: guest nodes {seen[h]} and {g} "
                    f"both map to host node {h}"
                )
            seen[h] = g
        self.guest = guest
        self.host = host
        self.mapping = tuple(mapping)

    def dilation(self) -> int:
        """Max host distance across any guest edge (1 = adjacency preserved)."""
        worst = 0
        for a, b in self.guest.edges():
            worst = max(worst, self.host.distance(self.mapping[a], self.mapping[b]))
        return worst

    def expansion(self) -> float:
        """Host size / guest size."""
        return self.host.n_nodes / self.guest.n_nodes

    def average_dilation(self) -> float:
        """Mean host distance across guest edges."""
        dists = [
            self.host.distance(self.mapping[a], self.mapping[b])
            for a, b in self.guest.edges()
        ]
        return sum(dists) / len(dists) if dists else 0.0


def embedding_latency(embedding: "Embedding"):
    """Per-link latency model for running a guest topology *virtualised* on
    a host machine (paper §II-A: hypercubes "can embed other topologies").

    A message over a guest link whose endpoints map ``d`` host hops apart
    pays ``d - 1`` extra in-flight steps (hop count minus the one step every
    message pays anyway).  Pass the result as ``latency=`` to
    :class:`repro.netsim.Machine` or :class:`repro.stack.HyperspaceStack`
    running on the *guest* topology.
    """
    table: Dict[tuple, int] = {}
    for a, b in embedding.guest.edges():
        d = embedding.host.distance(embedding.mapping[a], embedding.mapping[b])
        extra = max(0, d - 1)
        table[(a, b)] = extra
        table[(b, a)] = extra

    def latency(src: NodeId, dst: NodeId) -> int:
        return table.get((src, dst), 0)

    return latency


def dilation(guest: Topology, host: Topology, mapping: Sequence[NodeId]) -> int:
    """Convenience wrapper: dilation of ``mapping`` from guest into host."""
    return Embedding(guest, host, mapping).dilation()


def is_valid_embedding(
    guest: Topology, host: Topology, mapping: Sequence[NodeId]
) -> bool:
    """True if ``mapping`` is injective and host-valid (any dilation)."""
    try:
        Embedding(guest, host, mapping)
    except TopologyError:
        return False
    return True


def embed_ring_in_hypercube(ring: Ring, cube: Hypercube) -> Embedding:
    """Dilation-1 embedding of an even-length ring via the Gray code.

    Requires ``len(ring)`` to be even, >= 4 (or exactly the full cube size);
    odd cycles cannot embed with dilation 1 because hypercubes are bipartite.
    Only the full-cube case ``len(ring) == 2**dim`` is implemented here — the
    general even-cycle construction is not needed by the benches.
    """
    n = ring.n_nodes
    if n != cube.n_nodes:
        raise TopologyError(
            f"ring size {n} != hypercube size {cube.n_nodes}; "
            "only full-cube ring embeddings are supported"
        )
    if n >= 2 and n % 2 != 0:
        raise TopologyError("odd rings cannot embed in a (bipartite) hypercube")
    return Embedding(ring, cube, [gray_code(i) for i in range(n)])


def _is_power_of_two(x: int) -> bool:
    return x >= 1 and (x & (x - 1)) == 0


def embed_grid_in_hypercube(grid: Grid | Torus, cube: Hypercube) -> Embedding:
    """Dilation-1 embedding of a power-of-two grid (or torus) into a cube.

    Each axis of extent ``2**k`` consumes ``k`` address bits, Gray-coded so
    that moving one step along any axis flips exactly one bit.  Wrap-around
    torus links also have dilation 1 when every extent is >= 4 or == 2 (the
    Gray code of an even full range is cyclic).
    """
    dims = grid.shape
    bits_per_axis = []
    total_bits = 0
    for d in dims:
        if not _is_power_of_two(d):
            raise TopologyError(
                f"grid extents must be powers of two for dilation-1 embedding, got {dims}"
            )
        k = d.bit_length() - 1
        bits_per_axis.append(k)
        total_bits += k
    if total_bits != cube.dimension:
        raise TopologyError(
            f"grid {dims} needs a {total_bits}-cube, got a {cube.dimension}-cube"
        )
    mapping: List[NodeId] = []
    for node in range(grid.n_nodes):
        coord = grid.coords(node)
        addr = 0
        for c, k in zip(coord, bits_per_axis):
            addr = (addr << k) | gray_code(c)
        mapping.append(addr)
    return Embedding(grid, cube, mapping)


def embed_tree_in_hypercube(tree: CompleteTree, cube: Hypercube) -> Embedding:
    """Embed a complete binary tree with ``2**d - 1`` nodes into a d-cube.

    Uses the inorder-labelling construction: number tree nodes by inorder
    traversal (1..2**d-1) and map each to that integer's address in the cube
    (address 0 stays unused).  This yields dilation <= 2, which our tests
    verify — matching the classic Bhatt-Ipsen bound [15] for single cubes.
    """
    if tree.arity != 2:
        raise TopologyError("only binary trees embed via the inorder construction")
    if tree.n_nodes != cube.n_nodes - 1:
        raise TopologyError(
            f"tree has {tree.n_nodes} nodes; need 2**{cube.dimension} - 1 "
            f"= {cube.n_nodes - 1}"
        )
    # inorder traversal of the implicit BFS-numbered complete binary tree
    mapping = [0] * tree.n_nodes
    counter = 1

    def visit(node: int) -> None:
        nonlocal counter
        left = 2 * node + 1
        right = 2 * node + 2
        if left < tree.n_nodes:
            visit(left)
        mapping[node] = counter
        counter += 1
        if right < tree.n_nodes:
            visit(right)

    visit(0)
    return Embedding(tree, cube, mapping)
