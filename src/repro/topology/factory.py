"""Construct topologies from compact spec strings.

The benchmark harness sweeps machines described by strings such as
``"torus2d:14x14"`` or ``"full:196"``; this module parses them.

Grammar (case-insensitive)::

    spec      := kind [ ":" params ]
    kind      := "torus" | "torus2d" | "torus3d" | "grid" | "hypercube"
               | "ccc" | "full" | "ring" | "line" | "star" | "tree"
    params    := extent ("x" extent)*        for meshes, e.g. "14x14"
               | integer                     for full/ring/line/star/hypercube
               | arity "x" levels            for tree

``torus2d:N`` / ``torus3d:N`` (single integer) pick the most-square mesh of
*approximately* N cores — exactly what the Figure 4 sweep needs when walking
core counts that have no exact square/cube factorisation.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..errors import TopologyError
from .base import Topology
from .ccc import CubeConnectedCycles
from .fully_connected import FullyConnected, Star
from .hypercube import Hypercube
from .torus import Grid, Line, Ring, Torus
from .tree import CompleteTree

__all__ = ["spec_of", "topology_from_spec", "balanced_dims", "nearest_mesh_dims"]


def balanced_dims(n_nodes: int, ndim: int) -> Tuple[int, ...]:
    """Most-balanced ``ndim`` extents whose product is exactly ``n_nodes``.

    Chooses the factorisation minimising the spread ``max(dims) - min(dims)``
    (ties broken lexicographically); extents of 1 are allowed, so a prime
    ``n_nodes`` yields a degenerate mesh like ``(1, 7)``.  Callers wanting
    "approximately n, well-shaped" should use :func:`nearest_mesh_dims`.
    """
    if n_nodes < 1 or ndim < 1:
        raise TopologyError(f"need n_nodes >= 1 and ndim >= 1, got {n_nodes}, {ndim}")
    best: Tuple[int, ...] | None = None

    def search(remaining: int, dims_left: int, min_factor: int, acc: list[int]) -> None:
        nonlocal best
        if dims_left == 1:
            if remaining >= min_factor:
                cand = tuple(sorted(acc + [remaining]))
                if best is None or (max(cand) - min(cand), cand) < (
                    max(best) - min(best),
                    best,
                ):
                    best = cand
            return
        # non-decreasing factor order bounds f by the dims_left-th root
        f = min_factor
        while f**dims_left <= remaining:
            if remaining % f == 0:
                search(remaining // f, dims_left - 1, f, acc + [f])
            f += 1

    search(n_nodes, ndim, 1, [])
    if best is None:
        raise TopologyError(f"{n_nodes} has no {ndim}-way factorisation")
    return best


def nearest_mesh_dims(n_nodes: int, ndim: int) -> Tuple[int, ...]:
    """Square/cubic extents whose product is the closest to ``n_nodes``.

    Returns ``(k,)*ndim`` with ``k = round(n_nodes ** (1/ndim))`` (at least 1),
    choosing between ``floor`` and ``ceil`` roots by which product lands
    closer to the request.  Used by the scalability sweep, which asks for
    "about N cores" at each point.
    """
    if n_nodes < 1 or ndim < 1:
        raise TopologyError(f"need n_nodes >= 1 and ndim >= 1, got {n_nodes}, {ndim}")
    root = n_nodes ** (1.0 / ndim)
    lo = max(1, math.floor(root))
    hi = lo + 1
    if abs(lo**ndim - n_nodes) <= abs(hi**ndim - n_nodes):
        k = lo
    else:
        k = hi
    return tuple([k] * ndim)


def _parse_extents(text: str) -> Tuple[int, ...]:
    try:
        return tuple(int(p) for p in text.lower().split("x"))
    except ValueError as exc:
        raise TopologyError(f"bad extent list {text!r}") from exc


def topology_from_spec(spec: str) -> Topology:
    """Parse a topology spec string (see module docstring for the grammar)."""
    if not isinstance(spec, str) or not spec.strip():
        raise TopologyError(f"empty topology spec {spec!r}")
    text = spec.strip().lower()
    kind, _, params = text.partition(":")
    kind = kind.strip()
    params = params.strip()

    def need_params() -> str:
        if not params:
            raise TopologyError(f"topology spec {spec!r} needs parameters")
        return params

    if kind in ("torus", "grid"):
        dims = _parse_extents(need_params())
        return Torus(dims) if kind == "torus" else Grid(dims)
    if kind in ("torus2d", "torus3d", "grid2d", "grid3d"):
        ndim = 2 if kind.endswith("2d") else 3
        dims = _parse_extents(need_params())
        if len(dims) == 1:
            dims = nearest_mesh_dims(dims[0], ndim)
        if len(dims) != ndim:
            raise TopologyError(f"{kind} expects {ndim} extents, got {dims}")
        return Torus(dims) if kind.startswith("torus") else Grid(dims)
    if kind == "hypercube":
        return Hypercube(int(need_params()))
    if kind == "ccc":
        return CubeConnectedCycles(int(need_params()))
    if kind in ("full", "fully_connected", "complete"):
        return FullyConnected(int(need_params()))
    if kind == "ring":
        return Ring(int(need_params()))
    if kind == "line":
        return Line(int(need_params()))
    if kind == "star":
        return Star(int(need_params()))
    if kind == "tree":
        dims = _parse_extents(need_params())
        if len(dims) != 2:
            raise TopologyError(f"tree spec wants 'arity x levels', got {params!r}")
        return CompleteTree(dims[0], dims[1])
    raise TopologyError(f"unknown topology kind {kind!r} in spec {spec!r}")


def spec_of(topology: Topology) -> "str | None":
    """The spec string that re-parses to an equal topology, or ``None``.

    The inverse of :func:`topology_from_spec` for every built-in family
    (``describe()`` output is for humans and does *not* re-parse).  A
    ``RunSpec`` built from a topology *object* uses this to stay
    JSON-serialisable; exotic topologies (``CustomTopology``, embeddings)
    have no spec string and yield ``None`` — such runs execute fine but
    their checkpoint headers cannot rebuild the machine unaided.

    Subclass order matters: a :class:`Ring` *is a* :class:`Torus` and a
    :class:`Line` *is a* :class:`Grid`, so the specific kinds are tested
    first.
    """
    if isinstance(topology, Ring):
        return f"ring:{topology.n_nodes}"
    if isinstance(topology, Line):
        return f"line:{topology.n_nodes}"
    if isinstance(topology, Torus):
        return "torus:" + "x".join(str(d) for d in topology.shape)
    if isinstance(topology, Grid):
        return "grid:" + "x".join(str(d) for d in topology.shape)
    if isinstance(topology, Hypercube):
        return f"hypercube:{topology.dimension}"
    if isinstance(topology, CubeConnectedCycles):
        return f"ccc:{topology.dimension}"
    if isinstance(topology, CompleteTree):
        return f"tree:{topology.arity}x{topology.levels}"
    if isinstance(topology, FullyConnected):
        return f"full:{topology.n_nodes}"
    if isinstance(topology, Star):
        return f"star:{topology.n_nodes}"
    return None
