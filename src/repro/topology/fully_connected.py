"""Fully connected and star topologies.

The paper's Figure 4 uses a fully connected machine (every core adjacent to
every other core) as the scalability upper-bound baseline.  The star topology
is provided as a pathological contrast for tests and ablations: a hub node
adjacent to all leaves, with leaves adjacent only to the hub.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import TopologyError
from .base import NodeId, Topology

__all__ = ["FullyConnected", "Star"]


class FullyConnected(Topology):
    """Complete graph on ``n`` nodes — the paper's baseline machine."""

    kind = "full"

    def __init__(self, n: int) -> None:
        if n < 1:
            raise TopologyError(f"fully connected machine needs >= 1 node, got {n}")
        self._n = int(n)
        # Neighbour tuples are O(n) each; build lazily and cache per node to
        # keep construction of large baselines cheap when only a few nodes
        # ever send.
        self._cache: dict[NodeId, Tuple[NodeId, ...]] = {}

    @property
    def n_nodes(self) -> int:
        return self._n

    def neighbours(self, node: NodeId) -> Sequence[NodeId]:
        """All other nodes, rotated to start just after ``node``.

        The rotation keeps the machine node-symmetric under order-sensitive
        mappers: round-robin from any node starts at its successor instead
        of funnelling every first subcall to node 0.
        """
        self.check_node(node)
        cached = self._cache.get(node)
        if cached is None:
            cached = tuple((node + 1 + i) % self._n for i in range(self._n - 1))
            self._cache[node] = cached
        return cached

    def is_adjacent(self, a: NodeId, b: NodeId) -> bool:
        self.check_node(a)
        self.check_node(b)
        return a != b

    def distance(self, a: NodeId, b: NodeId) -> int:
        self.check_node(a)
        self.check_node(b)
        return 0 if a == b else 1

    def diameter(self) -> int:
        return 0 if self._n == 1 else 1

    def n_links(self) -> int:
        return self._n * (self._n - 1) // 2

    def describe(self) -> str:
        return f"full({self._n})"


class Star(Topology):
    """Hub-and-spoke graph: node 0 is adjacent to all others."""

    kind = "star"

    def __init__(self, n: int) -> None:
        if n < 2:
            raise TopologyError(f"star needs >= 2 nodes, got {n}")
        self._n = int(n)
        self._hub_neigh = tuple(range(1, self._n))

    @property
    def n_nodes(self) -> int:
        return self._n

    def neighbours(self, node: NodeId) -> Sequence[NodeId]:
        self.check_node(node)
        if node == 0:
            return self._hub_neigh
        return (0,)

    def distance(self, a: NodeId, b: NodeId) -> int:
        self.check_node(a)
        self.check_node(b)
        if a == b:
            return 0
        return 1 if 0 in (a, b) else 2

    def diameter(self) -> int:
        return 2

    def describe(self) -> str:
        return f"star({self._n})"
