"""Binary hypercube topology (paper §II-A, Figure 1B).

An ``n``-dimensional hypercube has ``2**n`` nodes; node addresses are n-bit
strings and two nodes are adjacent iff their addresses differ in exactly one
bit.  Key properties the paper highlights (and our tests verify):

* node symmetry — every node has degree ``n``;
* ``n * 2**(n-1)`` links and diameter ``n``;
* distance equals Hamming distance of the addresses;
* lower-dimensional meshes, rings and trees embed efficiently
  (see :mod:`repro.topology.embedding`).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import TopologyError
from .base import Coord, NodeId, Topology

__all__ = ["Hypercube"]


class Hypercube(Topology):
    """Binary n-cube with ``2**dimension`` nodes."""

    kind = "hypercube"

    def __init__(self, dimension: int) -> None:
        if dimension < 0:
            raise TopologyError(f"hypercube dimension must be >= 0, got {dimension}")
        if dimension > 24:
            raise TopologyError(
                f"hypercube dimension {dimension} would create {2**dimension} nodes; "
                "refusing (> 2**24)"
            )
        self._dim = int(dimension)
        self._n = 1 << self._dim
        self._neigh: Tuple[Tuple[NodeId, ...], ...] = tuple(
            tuple(node ^ (1 << bit) for bit in range(self._dim))
            for node in range(self._n)
        )

    @property
    def dimension(self) -> int:
        """Number of address bits (= node degree = diameter)."""
        return self._dim

    @property
    def n_nodes(self) -> int:
        return self._n

    def neighbours(self, node: NodeId) -> Sequence[NodeId]:
        self.check_node(node)
        return self._neigh[node]

    def distance(self, a: NodeId, b: NodeId) -> int:
        """Hamming distance between the two node addresses."""
        self.check_node(a)
        self.check_node(b)
        return (a ^ b).bit_count()

    def diameter(self) -> int:
        return self._dim

    def coords(self, node: NodeId) -> Coord:
        """Address bits, most significant first, as a 0/1 tuple."""
        self.check_node(node)
        return tuple((node >> (self._dim - 1 - i)) & 1 for i in range(self._dim))

    def node_at(self, coord: Coord) -> NodeId:
        if len(coord) != self._dim:
            raise TopologyError(f"expected {self._dim} bits, got {coord!r}")
        node = 0
        for bit in coord:
            if bit not in (0, 1):
                raise TopologyError(f"hypercube coordinates are bits, got {coord!r}")
            node = (node << 1) | bit
        return node

    @property
    def shape(self) -> Coord:
        return tuple(2 for _ in range(self._dim))

    def describe(self) -> str:
        return f"hypercube({self._dim}d, n={self._n})"
