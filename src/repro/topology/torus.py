"""k-ary n-cube topologies: tori and open grids.

The paper's evaluation machines are 2- and 3-dimensional hyper-tori
("the core mesh is arranged as a torus", Figure 1C).  A :class:`Torus` with
``dims=(k, k)`` is the classic 2D torus; ``dims=(k, k, k)`` the 3D one.
:class:`Grid` is the same mesh without wrap-around links (the transputer
array of Figure 1A).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import TopologyError
from .base import Coord, NodeId, Topology

__all__ = ["Torus", "Grid", "Ring", "Line"]


def _check_dims(dims: Sequence[int]) -> Tuple[int, ...]:
    dims = tuple(int(d) for d in dims)
    if not dims:
        raise TopologyError("topology needs at least one dimension")
    if any(d < 1 for d in dims):
        raise TopologyError(f"all extents must be >= 1, got {dims}")
    return dims


class _MeshBase(Topology):
    """Shared coordinate arithmetic for row-major tori and grids."""

    def __init__(self, dims: Sequence[int]) -> None:
        self._dims = _check_dims(dims)
        self._n = 1
        for d in self._dims:
            self._n *= d
        # row-major strides: last axis varies fastest
        strides: List[int] = []
        acc = 1
        for d in reversed(self._dims):
            strides.append(acc)
            acc *= d
        self._strides = tuple(reversed(strides))
        self._neigh: List[Tuple[NodeId, ...]] = self._build_neighbours()

    # -- coordinates ---------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def shape(self) -> Coord:
        return self._dims

    @property
    def ndim(self) -> int:
        """Number of mesh dimensions."""
        return len(self._dims)

    def coords(self, node: NodeId) -> Coord:
        self.check_node(node)
        out = []
        for d, s in zip(self._dims, self._strides):
            out.append((node // s) % d)
        return tuple(out)

    def node_at(self, coord: Coord) -> NodeId:
        if len(coord) != len(self._dims):
            raise TopologyError(
                f"expected {len(self._dims)}-d coordinate, got {coord!r}"
            )
        node = 0
        for c, d, s in zip(coord, self._dims, self._strides):
            if not (0 <= c < d):
                raise TopologyError(f"coordinate {coord!r} out of bounds {self._dims}")
            node += c * s
        return node

    def neighbours(self, node: NodeId) -> Sequence[NodeId]:
        self.check_node(node)
        return self._neigh[node]

    # -- subclass hooks --------------------------------------------------

    def _build_neighbours(self) -> List[Tuple[NodeId, ...]]:
        raise NotImplementedError


class Torus(_MeshBase):
    """n-dimensional torus (k-ary n-cube) with wrap-around links.

    Neighbour order per node: for each axis in order, the ``-1`` neighbour
    then the ``+1`` neighbour.  Axes with extent 1 contribute no links;
    axes with extent 2 contribute a single link (the wrap link coincides
    with the direct one and is deduplicated).

    Parameters
    ----------
    dims:
        Extent along each axis, e.g. ``(14, 14)`` for the 196-core 2D torus
        used in the paper's Figure 5.
    """

    kind = "torus"

    def _build_neighbours(self) -> List[Tuple[NodeId, ...]]:
        neigh: List[Tuple[NodeId, ...]] = []
        for node in range(self._n):
            coord = []
            rem = node
            for d, s in zip(self._dims, self._strides):
                coord.append((rem // s) % d)
            out: List[NodeId] = []
            for axis, (d, s) in enumerate(zip(self._dims, self._strides)):
                if d == 1:
                    continue
                c = coord[axis]
                down = node + ((c - 1) % d - c) * s
                up = node + ((c + 1) % d - c) * s
                out.append(down)
                if up != down:
                    out.append(up)
            neigh.append(tuple(out))
        return neigh

    def distance(self, a: NodeId, b: NodeId) -> int:
        """Closed-form torus distance: per-axis wrapped L1."""
        ca, cb = self.coords(a), self.coords(b)
        total = 0
        for xa, xb, d in zip(ca, cb, self._dims):
            delta = abs(xa - xb)
            total += min(delta, d - delta)
        return total

    def diameter(self) -> int:
        return sum(d // 2 for d in self._dims)

    def describe(self) -> str:
        dims = "x".join(str(d) for d in self._dims)
        return f"torus{len(self._dims)}d({dims})"


class Grid(_MeshBase):
    """n-dimensional open grid (mesh without wrap-around links)."""

    kind = "grid"

    def _build_neighbours(self) -> List[Tuple[NodeId, ...]]:
        neigh: List[Tuple[NodeId, ...]] = []
        for node in range(self._n):
            coord = []
            rem = node
            for d, s in zip(self._dims, self._strides):
                coord.append((rem // s) % d)
            out: List[NodeId] = []
            for axis, (d, s) in enumerate(zip(self._dims, self._strides)):
                c = coord[axis]
                if c - 1 >= 0:
                    out.append(node - s)
                if c + 1 < d:
                    out.append(node + s)
            neigh.append(tuple(out))
        return neigh

    def distance(self, a: NodeId, b: NodeId) -> int:
        """Closed-form grid distance: plain L1 between coordinates."""
        ca, cb = self.coords(a), self.coords(b)
        return sum(abs(xa - xb) for xa, xb in zip(ca, cb))

    def diameter(self) -> int:
        return sum(d - 1 for d in self._dims)

    def describe(self) -> str:
        dims = "x".join(str(d) for d in self._dims)
        return f"grid{len(self._dims)}d({dims})"


class Ring(Torus):
    """1-dimensional torus: ``n`` nodes in a cycle."""

    kind = "ring"

    def __init__(self, n: int) -> None:
        if n < 1:
            raise TopologyError(f"ring needs >= 1 node, got {n}")
        super().__init__((n,))

    def describe(self) -> str:
        return f"ring({self.n_nodes})"


class Line(Grid):
    """1-dimensional open grid: ``n`` nodes in a path."""

    kind = "line"

    def __init__(self, n: int) -> None:
        if n < 1:
            raise TopologyError(f"line needs >= 1 node, got {n}")
        super().__init__((n,))

    def describe(self) -> str:
        return f"line({self.n_nodes})"
