"""Complete d-ary tree topology.

Trees are a natural match for the unfolding call structure of fork-join
solvers, and the paper cites efficient tree embeddings into hypercubes
(§II-A, refs [15], [16]).  This topology is used in ablation benches and as
an embedding target in :mod:`repro.topology.embedding`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import TopologyError
from .base import NodeId, Topology

__all__ = ["CompleteTree"]


class CompleteTree(Topology):
    """Complete ``arity``-ary tree with the given number of levels.

    Nodes are numbered in breadth-first order: node 0 is the root, the
    children of node ``i`` are ``arity*i + 1 .. arity*i + arity``.
    """

    kind = "tree"

    def __init__(self, arity: int, levels: int) -> None:
        if arity < 1:
            raise TopologyError(f"tree arity must be >= 1, got {arity}")
        if levels < 1:
            raise TopologyError(f"tree needs >= 1 level, got {levels}")
        self._arity = int(arity)
        self._levels = int(levels)
        if arity == 1:
            self._n = levels
        else:
            self._n = (arity**levels - 1) // (arity - 1)
        self._neigh: List[Tuple[NodeId, ...]] = []
        for node in range(self._n):
            out: List[NodeId] = []
            if node > 0:
                out.append((node - 1) // self._arity)
            first_child = self._arity * node + 1
            for c in range(first_child, min(first_child + self._arity, self._n)):
                out.append(c)
            self._neigh.append(tuple(out))

    @property
    def arity(self) -> int:
        """Branching factor of the tree."""
        return self._arity

    @property
    def levels(self) -> int:
        """Number of levels (root counts as level 1)."""
        return self._levels

    @property
    def n_nodes(self) -> int:
        return self._n

    def neighbours(self, node: NodeId) -> Sequence[NodeId]:
        self.check_node(node)
        return self._neigh[node]

    def parent(self, node: NodeId) -> NodeId | None:
        """Parent of ``node`` or ``None`` for the root."""
        self.check_node(node)
        return None if node == 0 else (node - 1) // self._arity

    def depth(self, node: NodeId) -> int:
        """Distance from the root (root has depth 0)."""
        self.check_node(node)
        d = 0
        while node > 0:
            node = (node - 1) // self._arity
            d += 1
        return d

    def diameter(self) -> int:
        return 2 * (self._levels - 1)

    def describe(self) -> str:
        return f"tree(arity={self._arity}, levels={self._levels}, n={self._n})"
