"""Tests for the brute-force SAT reference."""

import pytest

from repro.apps.sat import CNF, all_models, brute_force_count, brute_force_solve
from repro.errors import ApplicationError


class TestBruteForceSolve:
    def test_sat(self, tiny_cnf):
        model = brute_force_solve(tiny_cnf)
        assert model is not None
        assert tiny_cnf.is_satisfied_by(model)

    def test_unsat(self, unsat_cnf):
        assert brute_force_solve(unsat_cnf) is None

    def test_empty_formula(self):
        assert brute_force_solve(CNF([])) == {}

    def test_size_limit(self):
        big = CNF([(25,)], num_vars=25)
        with pytest.raises(ApplicationError):
            brute_force_solve(big)


class TestBruteForceCount:
    def test_tautology_counts_all(self):
        cnf = CNF([(1, -1)], num_vars=1)
        assert brute_force_count(cnf) == 2

    def test_unique_model(self, tiny_cnf):
        # x1 & ~x2 & (x2|x3) forces x1=T, x2=F, x3=T
        assert brute_force_count(tiny_cnf) == 1

    def test_unsat_counts_zero(self, unsat_cnf):
        assert brute_force_count(unsat_cnf) == 0

    def test_free_variable_doubles_count(self):
        constrained = CNF([(1,)], num_vars=1)
        with_free = CNF([(1,)], num_vars=2)
        assert brute_force_count(with_free) == 2 * brute_force_count(constrained)


class TestAllModels:
    def test_models_all_satisfy(self):
        cnf = CNF([(1, 2)], num_vars=2)
        models = all_models(cnf)
        assert len(models) == 3
        for m in models:
            assert cnf.is_satisfied_by(m)

    def test_count_consistency(self, tiny_cnf):
        assert len(all_models(tiny_cnf)) == brute_force_count(tiny_cnf)
