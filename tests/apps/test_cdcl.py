"""Tests for the CDCL reference solver (the paper's §V-B contrast)."""

import random

import pytest

from repro.apps.sat import (
    CNF,
    brute_force_solve,
    dpll_solve,
    uf20_91_suite,
    uniform_random_ksat,
)
from repro.apps.sat.cdcl import CdclResult, cdcl_solve, luby
from repro.errors import ApplicationError


class TestLuby:
    def test_sequence_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_powers_of_two_at_complete_blocks(self):
        for k in range(1, 8):
            assert luby(2**k - 1) == 2 ** (k - 1)

    def test_invalid_index(self):
        with pytest.raises(ApplicationError):
            luby(0)


class TestBasicVerdicts:
    def test_empty_formula_sat(self):
        assert cdcl_solve(CNF([])).satisfiable

    def test_empty_clause_unsat(self):
        assert not cdcl_solve(CNF([()])).satisfiable

    def test_single_unit(self):
        res = cdcl_solve(CNF([(3,)], num_vars=3))
        assert res.satisfiable
        assert res.assignment[3] is True

    def test_contradiction(self):
        assert not cdcl_solve(CNF([(1,), (-1,)])).satisfiable

    def test_model_is_total(self, tiny_cnf):
        res = cdcl_solve(tiny_cnf)
        assert res.satisfiable
        assert set(res.assignment) == {1, 2, 3}
        assert tiny_cnf.is_satisfied_by(res.assignment)

    def test_bool_protocol(self, tiny_cnf, unsat_cnf):
        assert cdcl_solve(tiny_cnf)
        assert not cdcl_solve(unsat_cnf)

    def test_invalid_restart_base(self, tiny_cnf):
        with pytest.raises(ApplicationError):
            cdcl_solve(tiny_cnf, restart_base=0)


class TestAgainstReferences:
    def test_matches_brute_force_randomized(self):
        rng = random.Random(17)
        for _ in range(40):
            cnf = uniform_random_ksat(8, rng.randint(10, 60), 3, rng)
            expected = brute_force_solve(cnf) is not None
            res = cdcl_solve(cnf)
            assert res.satisfiable == expected
            if res.satisfiable:
                assert cnf.is_satisfied_by(res.assignment)

    def test_matches_dpll_on_uf20(self, small_sat_suite):
        for cnf in small_sat_suite:
            assert cdcl_solve(cnf).satisfiable == dpll_solve(cnf).satisfiable

    def test_hard_unsat_exhaustive_clauses(self):
        clauses = [
            (s1 * 1, s2 * 2, s3 * 3)
            for s1 in (1, -1)
            for s2 in (1, -1)
            for s3 in (1, -1)
        ]
        res = cdcl_solve(CNF(clauses))
        assert not res.satisfiable
        assert res.stats.conflicts >= 1
        assert res.stats.learned_clauses >= 1

    def test_learning_and_backjumping_happen(self):
        # a formula engineered to force a conflict below the first decision
        rng = random.Random(5)
        found = False
        for _ in range(30):
            cnf = uniform_random_ksat(10, 55, 3, rng)
            res = cdcl_solve(cnf)
            if res.stats.learned_clauses > 0:
                found = True
                assert res.stats.conflicts >= res.stats.learned_clauses
                break
        assert found

    def test_restarts_with_tiny_base(self):
        rng = random.Random(9)
        # UNSAT-ish dense instance + restart_base=1 triggers restarts quickly
        for _ in range(20):
            cnf = uniform_random_ksat(8, 70, 3, rng)
            res = cdcl_solve(cnf, restart_base=1)
            expected = brute_force_solve(cnf) is not None
            assert res.satisfiable == expected
            if res.stats.restarts > 0:
                return
        pytest.skip("no instance triggered a restart (unlikely)")


class TestStats:
    def test_as_dict_keys(self, tiny_cnf):
        d = cdcl_solve(tiny_cnf).stats.as_dict()
        assert set(d) == {
            "decisions",
            "propagations",
            "conflicts",
            "learned_clauses",
            "restarts",
            "max_backjump",
        }

    def test_cdcl_explores_less_than_barebone_dpll(self):
        # the point of §V-B's contrast: learning prunes harder.  Compare
        # decision counts on the uf20 suite (aggregate, to smooth variance).
        suite = uf20_91_suite(5, seed=23)
        dpll_total = sum(dpll_solve(c, heuristic="first").stats.branches for c in suite)
        cdcl_total = sum(cdcl_solve(c).stats.decisions for c in suite)
        assert cdcl_total < dpll_total
