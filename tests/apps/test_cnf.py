"""Tests for the CNF data structure."""

import pytest

from repro.apps.sat import CNF, negate, var_of
from repro.errors import ApplicationError


class TestLiteralHelpers:
    def test_var_of(self):
        assert var_of(3) == 3
        assert var_of(-7) == 7

    def test_negate(self):
        assert negate(4) == -4
        assert negate(-4) == 4


class TestConstruction:
    def test_basic(self):
        cnf = CNF([(1, -2), (3,)])
        assert cnf.num_clauses == 2
        assert cnf.num_vars == 3

    def test_explicit_num_vars(self):
        cnf = CNF([(1,)], num_vars=10)
        assert cnf.num_vars == 10

    def test_num_vars_too_small_rejected(self):
        with pytest.raises(ApplicationError):
            CNF([(5,)], num_vars=3)

    def test_zero_literal_rejected(self):
        with pytest.raises(ApplicationError):
            CNF([(1, 0)])

    def test_empty_formula(self):
        cnf = CNF([])
        assert cnf.is_consistent
        assert not cnf.has_empty_clause
        assert cnf.num_vars == 0

    def test_empty_clause_detected(self):
        cnf = CNF([(1,), ()])
        assert cnf.has_empty_clause

    def test_immutable(self):
        cnf = CNF([(1,)])
        with pytest.raises(AttributeError):
            cnf.num_vars = 5

    def test_equality_and_hash(self):
        a = CNF([(1, 2)], num_vars=2)
        b = CNF([(1, 2)], num_vars=2)
        c = CNF([(1, 2)], num_vars=3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_iteration_and_len(self):
        cnf = CNF([(1,), (2, 3)])
        assert len(cnf) == 2
        assert list(cnf) == [(1,), (2, 3)]


class TestQueries:
    def test_literals(self):
        cnf = CNF([(1, -2), (2, 3)])
        assert cnf.literals() == {1, -2, 2, 3}

    def test_literals_cached(self):
        cnf = CNF([(1,)])
        assert cnf.literals() is cnf.literals()

    def test_variables(self):
        cnf = CNF([(1, -2), (-3,)])
        assert cnf.variables() == {1, 2, 3}

    def test_unit_literals_in_order(self):
        cnf = CNF([(1, 2), (3,), (-4,), (3,)])
        assert cnf.unit_literals() == [3, -4]

    def test_contradictory_units_both_reported(self):
        cnf = CNF([(1,), (-1,)])
        assert cnf.unit_literals() == [1, -1]

    def test_pure_literals(self):
        cnf = CNF([(1, -2), (1, 3), (-2, -3)])
        # 1 appears only positive, 2 only negative, 3 both ways
        assert cnf.pure_literals() == [1, -2]

    def test_no_pure_literals(self):
        cnf = CNF([(1, -1)])
        assert cnf.pure_literals() == []

    def test_stats(self):
        s = CNF([(1, 2, 3), (-1,)], num_vars=5).stats()
        assert s == {
            "num_vars": 5,
            "num_clauses": 2,
            "num_literals": 4,
            "free_vars": 3,
        }


class TestAssign:
    def test_satisfied_clauses_dropped(self):
        cnf = CNF([(1, 2), (3,)]).assign(1)
        assert cnf.clauses == ((3,),)

    def test_falsified_literals_removed(self):
        cnf = CNF([(-1, 2)]).assign(1)
        assert cnf.clauses == ((2,),)

    def test_empty_clause_creation(self):
        cnf = CNF([(-1,)]).assign(1)
        assert cnf.has_empty_clause

    def test_num_vars_preserved(self):
        cnf = CNF([(1, 2)], num_vars=5).assign(1)
        assert cnf.num_vars == 5

    def test_assign_zero_rejected(self):
        with pytest.raises(ApplicationError):
            CNF([(1,)]).assign(0)

    def test_assign_all(self):
        cnf = CNF([(1, 2), (-1, 3), (-3, -2)])
        out = cnf.assign_all([1, 3])
        assert out.clauses == ((-2,),)

    def test_assign_original_untouched(self):
        cnf = CNF([(1, 2)])
        cnf.assign(1)
        assert cnf.clauses == ((1, 2),)


class TestEvaluate:
    def test_satisfying_assignment(self):
        cnf = CNF([(1, -2), (2, 3)])
        assert cnf.evaluate({1: True, 2: True, 3: False}) is True

    def test_falsifying_assignment(self):
        cnf = CNF([(1,), (-1,)])
        assert cnf.evaluate({1: True}) is False

    def test_partial_undecided(self):
        cnf = CNF([(1, 2)])
        assert cnf.evaluate({1: False}) is None

    def test_partial_but_decided_true(self):
        cnf = CNF([(1, 2)])
        assert cnf.evaluate({1: True}) is True

    def test_empty_formula_true(self):
        assert CNF([]).evaluate({}) is True

    def test_empty_clause_false(self):
        assert CNF([()]).evaluate({}) is False

    def test_is_satisfied_by(self):
        cnf = CNF([(1,), (-2,)])
        assert cnf.is_satisfied_by({1: True, 2: False})
        assert not cnf.is_satisfied_by({1: True})  # undecided is not satisfied
        assert not cnf.is_satisfied_by({1: False, 2: False})
