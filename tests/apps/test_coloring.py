"""Tests for the graph-coloring application."""

import random

import pytest

from repro import HyperspaceStack
from repro.apps.coloring import (
    ColoringProblem,
    chromatic_number,
    color_graph,
    coloring_found,
    complete_graph,
    cycle_graph,
    greedy_coloring,
    is_valid_coloring,
    random_graph,
    sequential_coloring,
)
from repro.errors import ApplicationError
from repro.topology import Torus


class TestGraphConstruction:
    def test_cycle_graph(self):
        edges = cycle_graph(5)
        assert len(edges) == 5
        assert (0, 4) in edges

    def test_cycle_too_small(self):
        with pytest.raises(ApplicationError):
            cycle_graph(2)

    def test_complete_graph(self):
        assert len(complete_graph(5)) == 10

    def test_self_loop_rejected(self):
        with pytest.raises(ApplicationError):
            ColoringProblem.build(3, [(1, 1)], 2)

    def test_out_of_range_edge(self):
        with pytest.raises(ApplicationError):
            ColoringProblem.build(3, [(0, 5)], 2)

    def test_duplicate_edges_merged(self):
        p = ColoringProblem.build(3, [(0, 1), (1, 0), (0, 1)], 2)
        assert p.edges == ((0, 1),)

    def test_random_graph_seeded(self):
        a = random_graph(8, 0.5, random.Random(3))
        b = random_graph(8, 0.5, random.Random(3))
        assert a == b

    def test_random_graph_probability_bounds(self):
        with pytest.raises(ApplicationError):
            random_graph(5, 1.5, random.Random(0))
        assert random_graph(5, 0.0, random.Random(0)) == ()
        assert len(random_graph(5, 1.0, random.Random(0))) == 10


class TestSequentialReferences:
    def test_even_cycle_two_colorable(self):
        assert sequential_coloring(6, cycle_graph(6), 2) is not None

    def test_odd_cycle_needs_three(self):
        assert sequential_coloring(7, cycle_graph(7), 2) is None
        assert sequential_coloring(7, cycle_graph(7), 3) is not None

    def test_complete_graph_chromatic(self):
        assert chromatic_number(5, complete_graph(5)) == 5

    def test_empty_graph(self):
        assert chromatic_number(4, ()) == 1
        assert chromatic_number(0, ()) == 0

    def test_greedy_upper_bounds_chromatic(self):
        rng = random.Random(6)
        for _ in range(5):
            edges = random_graph(8, 0.4, rng)
            greedy_k = max(greedy_coloring(8, edges), default=-1) + 1
            assert greedy_k >= chromatic_number(8, edges)

    def test_greedy_is_valid(self):
        edges = random_graph(10, 0.3, random.Random(1))
        colors = greedy_coloring(10, edges)
        assert is_valid_coloring(10, edges, colors, max(colors) + 1)


class TestValidity:
    def test_valid(self):
        assert is_valid_coloring(3, ((0, 1), (1, 2)), (0, 1, 0), 2)

    def test_conflict(self):
        assert not is_valid_coloring(3, ((0, 1),), (0, 0, 1), 2)

    def test_wrong_length(self):
        assert not is_valid_coloring(3, (), (0, 1), 2)

    def test_color_out_of_palette(self):
        assert not is_valid_coloring(2, (), (0, 5), 2)

    def test_found_predicate(self):
        assert coloring_found(())
        assert not coloring_found(None)


class TestDistributedColoring:
    def test_matches_sequential_feasibility(self):
        rng = random.Random(12)
        stack = HyperspaceStack(Torus((4, 4)), seed=5)
        for _ in range(5):
            edges = random_graph(7, 0.4, rng)
            k = chromatic_number(7, edges)
            # feasible at k
            sol, _ = stack.run_recursive(
                color_graph, ColoringProblem.build(7, edges, k)
            )
            assert sol is not None
            assert is_valid_coloring(7, edges, sol, k)
            # infeasible at k-1 (skip k=1 graphs)
            if k > 1:
                sol, _ = stack.run_recursive(
                    color_graph, ColoringProblem.build(7, edges, k - 1)
                )
                assert sol is None

    def test_odd_cycle_distributed(self):
        stack = HyperspaceStack(Torus((4, 4)))
        sol, _ = stack.run_recursive(
            color_graph, ColoringProblem.build(9, cycle_graph(9), 2)
        )
        assert sol is None

    @pytest.mark.parametrize("mapper", ["rr", "lbn"])
    def test_mapper_independent(self, mapper):
        stack = HyperspaceStack(Torus((4, 4)), mapper=mapper, seed=2)
        edges = cycle_graph(8)
        sol, _ = stack.run_recursive(
            color_graph, ColoringProblem.build(8, edges, 2)
        )
        assert is_valid_coloring(8, edges, sol, 2)

    def test_zero_vertices(self):
        stack = HyperspaceStack(Torus((3, 3)))
        sol, _ = stack.run_recursive(color_graph, ColoringProblem.build(0, (), 1))
        assert sol == ()
