"""Tests for DIMACS CNF parsing and serialisation."""

import pytest

from repro.apps.sat import CNF, load_dimacs, parse_dimacs, save_dimacs, to_dimacs
from repro.errors import DimacsFormatError

BASIC = """\
c a comment
p cnf 3 2
1 -2 0
2 3 0
"""


class TestParse:
    def test_basic(self):
        cnf = parse_dimacs(BASIC)
        assert cnf.num_vars == 3
        assert cnf.clauses == ((1, -2), (2, 3))

    def test_comments_ignored(self):
        cnf = parse_dimacs("c x\nc y\np cnf 1 1\n1 0\n")
        assert cnf.num_clauses == 1

    def test_clause_spanning_lines(self):
        cnf = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert cnf.clauses == ((1, 2, 3),)

    def test_multiple_clauses_one_line(self):
        cnf = parse_dimacs("p cnf 2 2\n1 0 -2 0\n")
        assert cnf.clauses == ((1,), (-2,))

    def test_satlib_trailer_tolerated(self):
        cnf = parse_dimacs("p cnf 1 1\n1 0\n%\n0\n")
        assert cnf.num_clauses == 1

    def test_blank_lines_ignored(self):
        cnf = parse_dimacs("\np cnf 1 1\n\n1 0\n\n")
        assert cnf.num_clauses == 1

    def test_missing_problem_line(self):
        with pytest.raises(DimacsFormatError):
            parse_dimacs("1 0\n")

    def test_duplicate_problem_line(self):
        with pytest.raises(DimacsFormatError):
            parse_dimacs("p cnf 1 1\np cnf 1 1\n1 0\n")

    def test_malformed_problem_line(self):
        with pytest.raises(DimacsFormatError):
            parse_dimacs("p sat 1 1\n1 0\n")
        with pytest.raises(DimacsFormatError):
            parse_dimacs("p cnf one two\n1 0\n")

    def test_negative_counts(self):
        with pytest.raises(DimacsFormatError):
            parse_dimacs("p cnf -1 0\n")

    def test_bad_literal(self):
        with pytest.raises(DimacsFormatError):
            parse_dimacs("p cnf 1 1\nx 0\n")

    def test_unterminated_clause(self):
        with pytest.raises(DimacsFormatError):
            parse_dimacs("p cnf 2 1\n1 2\n")

    def test_clause_count_mismatch(self):
        with pytest.raises(DimacsFormatError):
            parse_dimacs("p cnf 1 2\n1 0\n")

    def test_variable_out_of_range(self):
        with pytest.raises(DimacsFormatError):
            parse_dimacs("p cnf 1 1\n5 0\n")


class TestSerialise:
    def test_to_dimacs_roundtrip(self):
        cnf = CNF([(1, -2), (3,)], num_vars=4)
        again = parse_dimacs(to_dimacs(cnf))
        assert again == cnf

    def test_comments_included(self):
        text = to_dimacs(CNF([(1,)]), comments=["generated for tests"])
        assert "c generated for tests" in text

    def test_file_roundtrip(self, tmp_path):
        cnf = CNF([(1, 2, -3), (-1,)], num_vars=3)
        path = tmp_path / "problem.cnf"
        save_dimacs(cnf, path, comments=["hello"])
        assert load_dimacs(path) == cnf

    def test_roundtrip_generated_instances(self, small_sat_suite):
        for cnf in small_sat_suite:
            assert parse_dimacs(to_dimacs(cnf)) == cnf

    def test_empty_formula(self):
        cnf = CNF([], num_vars=0)
        assert parse_dimacs(to_dimacs(cnf)) == cnf
