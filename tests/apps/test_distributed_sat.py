"""Tests for the distributed DPLL solver (paper Listing 4) on the stack."""

import random

import pytest

from repro.apps.sat import (
    CNF,
    SatProblem,
    brute_force_solve,
    dpll_solve,
    is_sat,
    make_solve_sat,
    solve_on_machine,
    uniform_random_ksat,
)
from repro.errors import ApplicationError
from repro.topology import FullyConnected, Hypercube, Ring, Torus


class TestSatProblem:
    def test_extend(self):
        p = SatProblem(CNF([(1,)]))
        q = p.extend(1, True)
        assert q.assignment == ((1, True),)
        assert p.assignment == ()

    def test_as_dict(self):
        p = SatProblem(CNF([]), ((1, True), (2, False)))
        assert p.as_dict() == {1: True, 2: False}

    def test_is_sat_predicate(self):
        assert is_sat({})
        assert is_sat({1: True})
        assert not is_sat(None)


class TestMakeSolveSat:
    def test_invalid_hint_mode(self):
        with pytest.raises(ApplicationError):
            make_solve_sat(hint_mode="psychic")

    def test_invalid_simplify(self):
        with pytest.raises(ApplicationError):
            make_solve_sat(simplify="sometimes")

    def test_accepts_bare_cnf_argument(self):
        fn = make_solve_sat()
        gen = fn(CNF([]))
        op = next(gen)
        from repro.recursion import Result

        assert isinstance(op, Result)
        assert op.value == {}


class TestVerdictsAgainstReferences:
    @pytest.mark.parametrize("simplify", ["none", "single", "fixpoint"])
    def test_matches_brute_force_small(self, simplify):
        rng = random.Random(21)
        for _ in range(6):
            cnf = uniform_random_ksat(9, 38, 3, rng)
            expected = brute_force_solve(cnf) is not None
            res = solve_on_machine(cnf, Torus((4, 4)), simplify=simplify, seed=1)
            assert res.satisfiable == expected
            assert res.verified

    def test_matches_sequential_on_suite(self, small_sat_suite):
        for i, cnf in enumerate(small_sat_suite):
            seq = dpll_solve(cnf)
            dist = solve_on_machine(cnf, Torus((5, 5)), seed=10 + i)
            assert dist.satisfiable == seq.satisfiable
            assert dist.verified

    @pytest.mark.parametrize(
        "topo",
        [Ring(8), Torus((3, 3)), Torus((2, 2, 2)), Hypercube(3), FullyConnected(9)],
        ids=lambda t: t.describe(),
    )
    def test_verdict_independent_of_topology(self, topo, small_sat_suite):
        cnf = small_sat_suite[0]
        res = solve_on_machine(cnf, topo, seed=4)
        assert res.satisfiable
        assert res.verified

    @pytest.mark.parametrize("mapper", ["rr", "lbn", "random", "hint"])
    def test_verdict_independent_of_mapper(self, mapper, small_sat_suite):
        cnf = small_sat_suite[1]
        res = solve_on_machine(
            cnf, Torus((4, 4)), mapper=mapper, seed=4,
            hint_mode="clauses" if mapper == "hint" else None,
        )
        assert res.satisfiable
        assert res.verified

    def test_unsat_detection(self):
        rng = random.Random(2)
        found = 0
        while found < 2:
            cnf = uniform_random_ksat(8, 60, 3, rng)
            if brute_force_solve(cnf) is None:
                res = solve_on_machine(cnf, Torus((3, 3)), seed=1)
                assert not res.satisfiable
                found += 1


class TestDeterminism:
    def test_same_seed_same_trace(self, small_sat_suite):
        cnf = small_sat_suite[0]
        a = solve_on_machine(cnf, Torus((4, 4)), mapper="lbn", seed=77)
        b = solve_on_machine(cnf, Torus((4, 4)), mapper="lbn", seed=77)
        assert a.report.computation_time == b.report.computation_time
        assert a.report.sent_total == b.report.sent_total
        assert (a.report.node_activity == b.report.node_activity).all()

    def test_different_seed_changes_lbn_trace(self, small_sat_suite):
        cnf = small_sat_suite[0]
        a = solve_on_machine(cnf, Torus((4, 4)), mapper="lbn", seed=77)
        b = solve_on_machine(cnf, Torus((4, 4)), mapper="lbn", seed=78)
        # tie-breaking differs; traces are overwhelmingly unlikely to match
        assert (
            a.report.computation_time != b.report.computation_time
            or (a.report.node_activity != b.report.node_activity).any()
        )


class TestDrainSemantics:
    def test_drain_runs_to_quiescence(self, small_sat_suite):
        res = solve_on_machine(
            small_sat_suite[0], Torus((4, 4)), seed=1, drain=True
        )
        assert res.report.quiescent

    def test_no_drain_halts_early(self, small_sat_suite):
        cnf = small_sat_suite[0]
        drain = solve_on_machine(cnf, Torus((4, 4)), seed=1, simplify="none")
        quick = solve_on_machine(
            cnf, Torus((4, 4)), seed=1, simplify="none", drain=False
        )
        assert quick.report.steps < drain.report.steps
        assert quick.satisfiable == drain.satisfiable

    def test_hint_mode_vars(self, small_sat_suite):
        res = solve_on_machine(
            small_sat_suite[0], Torus((4, 4)), mapper="hint",
            hint_mode="vars", seed=1,
        )
        assert res.verified


class TestSimplifyModesWorkload:
    def test_simplify_none_generates_most_work(self, small_sat_suite):
        cnf = small_sat_suite[0]
        sent = {}
        for mode in ("none", "single", "fixpoint"):
            res = solve_on_machine(cnf, Torus((6, 6)), simplify=mode, seed=1)
            sent[mode] = res.report.sent_total
        assert sent["none"] > sent["single"] > sent["fixpoint"]
