"""Tests for the sequential DPLL solver and its simplification rules."""

import random

import pytest

from repro.apps.sat import (
    CNF,
    assign_pures,
    brute_force_solve,
    dpll_solve,
    propagate_units,
    uniform_random_ksat,
)


class TestPropagateUnits:
    def test_single_unit(self):
        assignment = {}
        cnf = propagate_units(CNF([(1,), (-1, 2)]), assignment)
        assert assignment == {1: True, 2: True}
        assert cnf.is_consistent

    def test_negative_unit(self):
        assignment = {}
        propagate_units(CNF([(-3,)]), assignment)
        assert assignment == {3: False}

    def test_conflict_leaves_empty_clause(self):
        assignment = {}
        cnf = propagate_units(CNF([(1,), (-1,)]), assignment)
        assert cnf.has_empty_clause

    def test_fixpoint_chains(self):
        assignment = {}
        cnf = propagate_units(
            CNF([(1,), (-1, 2), (-2, 3), (-3, 4)]), assignment, fixpoint=True
        )
        assert assignment == {1: True, 2: True, 3: True, 4: True}
        assert cnf.is_consistent

    def test_single_pass_defers_new_units(self):
        assignment = {}
        cnf = propagate_units(
            CNF([(1,), (-1, 2), (-2, 3)]), assignment, fixpoint=False
        )
        # one sweep assigns 1 only; (2) becomes a unit left for later
        assert assignment == {1: True}
        assert (2,) in cnf.clauses

    def test_no_units_noop(self):
        cnf = CNF([(1, 2)])
        assignment = {}
        assert propagate_units(cnf, assignment) == cnf
        assert assignment == {}


class TestAssignPures:
    def test_pure_positive(self):
        assignment = {}
        cnf = assign_pures(CNF([(1, 2), (1, -2)]), assignment)
        assert assignment[1] is True
        assert cnf.num_clauses == 0

    def test_pure_negative(self):
        assignment = {}
        assign_pures(CNF([(-3, 2), (-3, -2)]), assignment)
        assert assignment[3] is False

    def test_purity_rechecked_between_assigns(self):
        # assigning one pure literal may remove clauses and flip another
        # variable's purity; the sweep must not assign based on stale data
        assignment = {}
        cnf = assign_pures(CNF([(1, 2), (1, -2), (-2, 3)]), assignment)
        for var, value in assignment.items():
            # every assignment must be sound: no empty clause produced
            assert not cnf.has_empty_clause


class TestDpllSolve:
    def test_trivial_sat(self, tiny_cnf):
        res = dpll_solve(tiny_cnf)
        assert res.satisfiable
        assert tiny_cnf.is_satisfied_by(res.assignment)

    def test_trivial_unsat(self, unsat_cnf):
        res = dpll_solve(unsat_cnf)
        assert not res.satisfiable
        assert res.assignment is None

    def test_bool_protocol(self, tiny_cnf, unsat_cnf):
        assert dpll_solve(tiny_cnf)
        assert not dpll_solve(unsat_cnf)

    def test_empty_formula_sat(self):
        assert dpll_solve(CNF([])).satisfiable

    def test_empty_clause_unsat(self):
        assert not dpll_solve(CNF([()])).satisfiable

    def test_model_is_verified(self, small_sat_suite):
        for cnf in small_sat_suite:
            res = dpll_solve(cnf)
            assert res.satisfiable
            assert cnf.is_satisfied_by(res.assignment)

    @pytest.mark.parametrize(
        "heuristic", ["first", "max_occurrence", "jeroslow_wang", "moms"]
    )
    def test_all_heuristics_agree(self, heuristic):
        rng = random.Random(17)
        for _ in range(10):
            cnf = uniform_random_ksat(8, 30, 3, rng)
            expected = brute_force_solve(cnf) is not None
            res = dpll_solve(cnf, heuristic=heuristic)
            assert res.satisfiable == expected
            if res.satisfiable:
                assert cnf.is_satisfied_by(res.assignment)

    def test_random_heuristic(self):
        rng = random.Random(3)
        cnf = uniform_random_ksat(8, 30, 3, rng)
        res = dpll_solve(cnf, heuristic="random", rng=random.Random(5))
        assert res.satisfiable == (brute_force_solve(cnf) is not None)

    def test_stats_populated(self, small_sat_suite):
        res = dpll_solve(small_sat_suite[0])
        assert res.stats.branches >= 1
        assert res.stats.max_depth >= 0
        assert res.stats.unit_propagations >= 0
        d = res.stats.as_dict()
        assert set(d) == {
            "decisions",
            "unit_propagations",
            "pure_assignments",
            "max_depth",
            "branches",
        }

    def test_max_branches_cap(self):
        rng = random.Random(0)
        cnf = uniform_random_ksat(20, 91, 3, rng)
        with pytest.raises(RuntimeError):
            dpll_solve(cnf, max_branches=1)

    def test_hard_unsat_instance(self):
        # pigeonhole-ish: 3 vars, all 8 sign combinations as clauses -> UNSAT
        clauses = [
            (s1 * 1, s2 * 2, s3 * 3)
            for s1 in (1, -1)
            for s2 in (1, -1)
            for s3 in (1, -1)
        ]
        assert not dpll_solve(CNF(clauses)).satisfiable
