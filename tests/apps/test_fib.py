"""Tests for the fork-join Fibonacci application."""

import pytest

from repro import HyperspaceStack
from repro.apps.fib import fib, fib_hinted, sequential_fib
from repro.topology import Ring, Torus


class TestSequentialFib:
    def test_base_cases(self):
        assert sequential_fib(0) == 0
        assert sequential_fib(1) == 1

    def test_known_values(self):
        assert [sequential_fib(n) for n in range(10)] == [
            0, 1, 1, 2, 3, 5, 8, 13, 21, 34,
        ]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sequential_fib(-1)


class TestDistributedFib:
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 12])
    def test_matches_sequential(self, n):
        stack = HyperspaceStack(Torus((5, 5)))
        result, _ = stack.run_recursive(fib, n)
        assert result == sequential_fib(n)

    def test_small_machine(self):
        stack = HyperspaceStack(Ring(3))
        result, _ = stack.run_recursive(fib, 10)
        assert result == 55

    def test_hinted_variant_same_result(self):
        stack = HyperspaceStack(Torus((5, 5)), mapper="hint")
        result, _ = stack.run_recursive(fib_hinted, 11)
        assert result == sequential_fib(11)

    def test_invocation_count_is_call_tree_size(self):
        # fib's call tree has 2*fib(n+1)-1 nodes
        n = 8
        stack = HyperspaceStack(Torus((4, 4)))
        stack.run_recursive(fib, n)
        stats = stack.last_run.engine_stats
        assert stats.invocations == 2 * sequential_fib(n + 1) - 1

    def test_more_cores_not_slower(self):
        def ct(nodes):
            stack = HyperspaceStack(Torus(nodes))
            _, report = stack.run_recursive(fib, 11, halt_on_result=False)
            return report.computation_time

        small, large = ct((2, 2)), ct((8, 8))
        assert large <= small
