"""Tests for random SAT instance generators."""

import random

import pytest

from repro.apps.sat import (
    UF20_CLAUSES,
    UF20_VARS,
    brute_force_solve,
    dpll_solve,
    planted_random_ksat,
    satisfiable_random_ksat,
    uf20_91_suite,
    uniform_random_ksat,
)
from repro.errors import ApplicationError


class TestUniformRandomKsat:
    def test_shape(self):
        cnf = uniform_random_ksat(20, 91, 3, random.Random(0))
        assert cnf.num_vars == 20
        assert cnf.num_clauses == 91
        assert all(len(c) == 3 for c in cnf.clauses)

    def test_distinct_variables_per_clause(self):
        cnf = uniform_random_ksat(10, 200, 3, random.Random(1))
        for clause in cnf.clauses:
            variables = [abs(l) for l in clause]
            assert len(set(variables)) == 3

    def test_deterministic_given_seed(self):
        a = uniform_random_ksat(10, 30, 3, random.Random(7))
        b = uniform_random_ksat(10, 30, 3, random.Random(7))
        assert a == b

    def test_different_seeds_differ(self):
        a = uniform_random_ksat(10, 30, 3, random.Random(7))
        b = uniform_random_ksat(10, 30, 3, random.Random(8))
        assert a != b

    def test_polarity_roughly_balanced(self):
        cnf = uniform_random_ksat(20, 500, 3, random.Random(2))
        negs = sum(1 for c in cnf.clauses for l in c if l < 0)
        assert 0.4 < negs / 1500 < 0.6

    def test_k_larger_than_vars_rejected(self):
        with pytest.raises(ApplicationError):
            uniform_random_ksat(2, 5, 3, random.Random(0))

    def test_invalid_k(self):
        with pytest.raises(ApplicationError):
            uniform_random_ksat(5, 5, 0, random.Random(0))

    def test_negative_clauses_rejected(self):
        with pytest.raises(ApplicationError):
            uniform_random_ksat(5, -1, 2, random.Random(0))

    def test_k1_and_k2(self):
        for k in (1, 2):
            cnf = uniform_random_ksat(6, 10, k, random.Random(0))
            assert all(len(c) == k for c in cnf.clauses)


class TestSatisfiableRandomKsat:
    def test_always_satisfiable(self):
        rng = random.Random(3)
        for _ in range(3):
            cnf = satisfiable_random_ksat(10, 44, 3, rng)
            assert brute_force_solve(cnf) is not None

    def test_exhaustion_raises(self):
        # an unsatisfiable request: more clauses than a tiny var count
        # can ever satisfy within the attempt budget
        rng = random.Random(0)
        with pytest.raises(ApplicationError):
            satisfiable_random_ksat(3, 200, 3, rng, max_attempts=3)


class TestPlantedRandomKsat:
    def test_always_satisfiable(self):
        rng = random.Random(5)
        for _ in range(5):
            cnf = planted_random_ksat(12, 50, 3, rng)
            assert dpll_solve(cnf).satisfiable

    def test_shape(self):
        cnf = planted_random_ksat(10, 40, 3, random.Random(1))
        assert cnf.num_clauses == 40
        assert all(len(c) == 3 for c in cnf.clauses)

    def test_too_few_vars_rejected(self):
        with pytest.raises(ApplicationError):
            planted_random_ksat(2, 5, 3, random.Random(0))


class TestUf20Suite:
    def test_paper_parameters(self):
        assert UF20_VARS == 20
        assert UF20_CLAUSES == 91

    def test_suite_shape(self, small_sat_suite):
        assert len(small_sat_suite) == 3
        for cnf in small_sat_suite:
            assert cnf.num_vars == 20
            assert cnf.num_clauses == 91

    def test_all_satisfiable(self, small_sat_suite):
        for cnf in small_sat_suite:
            assert dpll_solve(cnf).satisfiable

    def test_deterministic(self):
        assert uf20_91_suite(2, seed=5) == uf20_91_suite(2, seed=5)

    def test_distinct_instances(self):
        suite = uf20_91_suite(3, seed=5)
        assert len({cnf.clauses for cnf in suite}) == 3

    def test_planted_variant(self):
        suite = uf20_91_suite(2, seed=5, planted=True)
        for cnf in suite:
            assert dpll_solve(cnf).satisfiable


class TestSuiteMemoisation:
    def test_repeat_calls_share_instances(self):
        from repro.apps.sat.generator import clear_suite_cache

        clear_suite_cache()
        first = uf20_91_suite(2, seed=11)
        second = uf20_91_suite(2, seed=11)
        # same immutable CNF objects, not regenerated copies
        assert all(a is b for a, b in zip(first, second))

    def test_returned_list_is_a_fresh_copy(self):
        suite = uf20_91_suite(2, seed=11)
        suite.append("sentinel")
        assert len(uf20_91_suite(2, seed=11)) == 2

    def test_cache_keys_distinguish_parameters(self):
        assert uf20_91_suite(2, seed=11)[0] is not uf20_91_suite(2, seed=12)[0]
        planted = uf20_91_suite(2, seed=11, planted=True)
        assert planted[0] is not uf20_91_suite(2, seed=11)[0]

    def test_clear_suite_cache_forces_regeneration(self):
        from repro.apps.sat.generator import clear_suite_cache

        before = uf20_91_suite(2, seed=11)
        clear_suite_cache()
        after = uf20_91_suite(2, seed=11)
        assert before == after  # same seed, same formulas ...
        assert before[0] is not after[0]  # ... but freshly built objects
