"""Tests for DPLL branching heuristics."""

import random

import pytest

from repro.apps.sat import (
    CNF,
    HEURISTIC_NAMES,
    first_literal,
    jeroslow_wang,
    make_heuristic,
    make_random_heuristic,
    max_occurrence,
    moms,
)
from repro.errors import ApplicationError


class TestFirstLiteral:
    def test_picks_first(self):
        assert first_literal(CNF([(3, 1), (2,)])) == 3

    def test_skips_empty_clauses(self):
        assert first_literal(CNF([(), (5,)])) == 5

    def test_empty_formula_rejected(self):
        with pytest.raises(ApplicationError):
            first_literal(CNF([]))


class TestMaxOccurrence:
    def test_most_frequent_wins(self):
        cnf = CNF([(1, 2), (2, 3), (2, -4), (-1,)])
        assert max_occurrence(cnf) == 2

    def test_polarities_counted_separately(self):
        cnf = CNF([(1, -2), (-2, 3), (-2,)])
        assert max_occurrence(cnf) == -2

    def test_tie_break_smallest_var_positive(self):
        cnf = CNF([(1,), (2,)])
        assert max_occurrence(cnf) == 1

    def test_empty_rejected(self):
        with pytest.raises(ApplicationError):
            max_occurrence(CNF([]))


class TestJeroslowWang:
    def test_short_clauses_weigh_more(self):
        # 5 appears once in a 1-clause (weight 1/2); 1 appears twice in
        # 3-clauses (weight 2/8 = 1/4)
        cnf = CNF([(5,), (1, 2, 3), (1, -2, 4)])
        assert jeroslow_wang(cnf) == 5

    def test_accumulates_across_clauses(self):
        cnf = CNF([(1, 2), (1, 3), (4, 5)])
        assert jeroslow_wang(cnf) == 1

    def test_empty_rejected(self):
        with pytest.raises(ApplicationError):
            jeroslow_wang(CNF([]))


class TestMoms:
    def test_counts_only_min_size_clauses(self):
        cnf = CNF([(1, 2), (1, 3), (4, 5, 1)])
        # min clause size is 2; literal 1 appears twice there
        assert moms(cnf) == 1

    def test_ignores_longer_clause_majority(self):
        cnf = CNF([(2, 3), (1, 4, 5), (1, 6, 7), (1, 8, 9)])
        assert moms(cnf) in (2, 3)

    def test_empty_rejected(self):
        with pytest.raises(ApplicationError):
            moms(CNF([]))


class TestRandomHeuristic:
    def test_deterministic_with_seed(self):
        cnf = CNF([(1, 2, 3), (-1, -2, -3)])
        a = make_random_heuristic(random.Random(9))
        b = make_random_heuristic(random.Random(9))
        assert [a(cnf) for _ in range(5)] == [b(cnf) for _ in range(5)]

    def test_picks_existing_literal(self):
        cnf = CNF([(1, -3), (2,)])
        h = make_random_heuristic(random.Random(0))
        for _ in range(20):
            assert h(cnf) in cnf.literals()

    def test_empty_rejected(self):
        h = make_random_heuristic(random.Random(0))
        with pytest.raises(ApplicationError):
            h(CNF([]))


class TestRegistry:
    def test_all_names_resolve(self):
        rng = random.Random(0)
        for name in HEURISTIC_NAMES:
            h = make_heuristic(name, rng)
            assert callable(h)

    def test_unknown_name(self):
        with pytest.raises(ApplicationError):
            make_heuristic("clairvoyant")

    def test_random_requires_rng(self):
        with pytest.raises(ApplicationError):
            make_heuristic("random")

    def test_heuristics_return_valid_literals(self, small_sat_suite):
        rng = random.Random(1)
        for name in HEURISTIC_NAMES:
            h = make_heuristic(name, rng)
            for cnf in small_sat_suite:
                lit = h(cnf)
                assert lit in cnf.literals()
