"""Tests for the branch-and-bound knapsack application."""

import random

import pytest

from repro import HyperspaceStack
from repro.apps.knapsack import (
    Item,
    KnapsackProblem,
    fractional_bound,
    knapsack,
    make_knapsack_solver,
    random_knapsack_problem,
    sequential_knapsack,
)
from repro.errors import ApplicationError
from repro.topology import Ring, Torus


class TestSequentialReference:
    def test_simple(self):
        items = [Item(60, 10), Item(100, 20), Item(120, 30)]
        assert sequential_knapsack(items, 50) == 220

    def test_zero_capacity(self):
        assert sequential_knapsack([Item(10, 5)], 0) == 0

    def test_no_items(self):
        assert sequential_knapsack([], 100) == 0

    def test_all_fit(self):
        items = [Item(5, 1), Item(7, 2)]
        assert sequential_knapsack(items, 10) == 12

    def test_negative_capacity_rejected(self):
        with pytest.raises(ApplicationError):
            sequential_knapsack([], -1)


class TestFractionalBound:
    def test_upper_bounds_exact(self):
        rng = random.Random(4)
        for _ in range(10):
            prob = random_knapsack_problem(8, 40, rng)
            exact = sequential_knapsack(prob.items, prob.capacity)
            assert fractional_bound(prob) >= exact

    def test_exact_when_everything_fits(self):
        items = (Item(4, 1), Item(3, 1))
        prob = KnapsackProblem(items, 0, 10, 0)
        assert fractional_bound(prob) == 7.0

    def test_includes_value_so_far(self):
        prob = KnapsackProblem((), 0, 0, 42)
        assert fractional_bound(prob) == 42.0


class TestRandomProblem:
    def test_sorted_by_density(self):
        prob = random_knapsack_problem(12, 60, random.Random(0))
        densities = [it.value / it.weight for it in prob.items]
        assert densities == sorted(densities, reverse=True)

    def test_negative_items_rejected(self):
        with pytest.raises(ApplicationError):
            random_knapsack_problem(-1, 10, random.Random(0))


class TestDistributedKnapsack:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_dp(self, seed):
        rng = random.Random(seed)
        prob = random_knapsack_problem(9, 45, rng)
        exact = sequential_knapsack(prob.items, prob.capacity)
        stack = HyperspaceStack(Torus((4, 4)), seed=seed)
        value, _ = stack.run_recursive(knapsack, prob)
        assert value == exact

    def test_no_prune_no_hints_matches(self):
        rng = random.Random(7)
        prob = random_knapsack_problem(8, 40, rng)
        exact = sequential_knapsack(prob.items, prob.capacity)
        solver = make_knapsack_solver(use_hints=False, prune=False)
        stack = HyperspaceStack(Torus((4, 4)))
        value, _ = stack.run_recursive(solver, prob)
        assert value == exact

    def test_pruning_reduces_work(self):
        rng = random.Random(11)
        prob = random_knapsack_problem(10, 50, rng)
        pruned = make_knapsack_solver(use_hints=False, prune=True)
        unpruned = make_knapsack_solver(use_hints=False, prune=False)
        stack = HyperspaceStack(Torus((4, 4)))
        stack.run_recursive(pruned, prob, halt_on_result=False)
        pruned_calls = stack.last_run.engine_stats.calls_made
        stack.run_recursive(unpruned, prob, halt_on_result=False)
        unpruned_calls = stack.last_run.engine_stats.calls_made
        assert pruned_calls < unpruned_calls

    def test_hint_mapper_integration(self):
        rng = random.Random(13)
        prob = random_knapsack_problem(9, 45, rng)
        exact = sequential_knapsack(prob.items, prob.capacity)
        stack = HyperspaceStack(Torus((4, 4)), mapper="hint")
        value, _ = stack.run_recursive(knapsack, prob)
        assert value == exact

    def test_small_machine(self):
        rng = random.Random(17)
        prob = random_knapsack_problem(8, 40, rng)
        exact = sequential_knapsack(prob.items, prob.capacity)
        stack = HyperspaceStack(Ring(3))
        value, _ = stack.run_recursive(knapsack, prob)
        assert value == exact

    def test_zero_capacity_problem(self):
        prob = KnapsackProblem((Item(5, 2),), 0, 0, 0)
        stack = HyperspaceStack(Torus((3, 3)))
        value, _ = stack.run_recursive(knapsack, prob)
        assert value == 0
