"""Fidelity checks: the implementations honour the paper's listings.

These tests pin structural details of Listings 1-4 that a refactor could
silently change — check order, message classification, and the exact
fork-join protocol shapes — independent of end-to-end behaviour.
"""

import inspect

import pytest

from repro.apps.sat import CNF, SatProblem, make_solve_sat
from repro.recursion import Call, Choice, Result, Sync


def drive(gen, replies):
    """Drive a solver generator, answering Sync with queued replies."""
    ops = []
    to_send = None
    try:
        while True:
            op = gen.send(to_send)
            ops.append(op)
            if isinstance(op, Sync):
                to_send = replies.pop(0)
            elif isinstance(op, (Call, Choice)):
                to_send = "ticket"
            elif isinstance(op, Result):
                break
    except StopIteration:
        pass
    return ops


class TestListing4Structure:
    """Listing 4 line order: consistent -> SAT before empty-clause -> UNSAT,
    then simplification, then the two-subcall choice."""

    def test_consistent_checked_first(self):
        # lines 2-3: consistent(problem) -> Result(SAT)
        gen = make_solve_sat()(SatProblem(CNF([])))
        op = next(gen)
        assert isinstance(op, Result)
        assert op.value == {}  # SAT with empty model

    def test_empty_clause_checked_second(self):
        # lines 4-5: exist_empty_clause -> Result(UNSAT)
        gen = make_solve_sat()(SatProblem(CNF([()])))
        op = next(gen)
        assert isinstance(op, Result)
        assert op.value is None

    def test_branch_yields_choice_of_two_calls(self):
        # lines 12-15: both polarities delegated under is_SAT choice
        cnf = CNF([(1, 2), (-1, 2), (1, -2), (-1, 3), (2, -3)])
        gen = make_solve_sat(simplify="none")(SatProblem(cnf))
        op = next(gen)
        assert isinstance(op, Choice)
        assert len(op.calls) == 2
        sub1, sub2 = (c.args for c in op.calls)
        # the two sub-problems assign opposite polarities of one variable
        (v1, b1), = set(sub1.assignment) - set(())
        (v2, b2), = set(sub2.assignment) - set(())
        assert v1 == v2 and b1 != b2

    def test_sync_result_tail(self):
        # lines 16-17: result <- yield Sync(); yield result
        cnf = CNF([(1, 2), (-1, 2), (1, -2), (-1, 3), (2, -3)])
        gen = make_solve_sat(simplify="none")(SatProblem(cnf))
        ops = drive(gen, replies=[{1: True}])
        assert isinstance(ops[0], Choice)
        assert isinstance(ops[1], Sync)
        assert isinstance(ops[2], Result)
        assert ops[2].value == {1: True}

    def test_unsat_propagates_none(self):
        cnf = CNF([(1, 2), (-1, 2), (1, -2), (-1, 3), (2, -3)])
        gen = make_solve_sat(simplify="none")(SatProblem(cnf))
        ops = drive(gen, replies=[None])  # both branches came back UNSAT
        assert ops[-1].value is None


class TestListing3Structure:
    def test_source_matches_paper_shape(self):
        from repro.apps.sumrec import calculate_sum

        src = inspect.getsource(calculate_sum)
        # the three ops of Listing 3, in order
        assert src.index("Result(0)") < src.index("Call(n - 1)")
        assert src.index("Call(n - 1)") < src.index("Sync()")
        assert src.index("Sync()") < src.index("Result(total + n)")

    def test_base_case_boundary(self):
        # Listing 3 line 2: "if n < 1" — zero and negatives are base cases
        from repro.apps.sumrec import calculate_sum

        for n in (0, -1, -10):
            gen = calculate_sum(n)
            op = next(gen)
            assert isinstance(op, Result) and op.value == 0


class TestListing1Structure:
    def test_receive_signature_matches_paper(self):
        # Listing 1: receive(node, state, sender, msg, send, neighbours)
        from repro.apps.traversal import traversal_program

        prog = traversal_program()
        params = list(
            inspect.signature(prog._receive_fn).parameters
        )
        assert params == ["node", "state", "sender", "msg", "send", "neighbours"]

    def test_initial_state_is_visited_false(self):
        from repro.apps.traversal import traversal_program

        prog = traversal_program()
        assert prog._init_fn(0) == {"visited": False}


class TestListing2Structure:
    def test_three_message_classes(self):
        # Listing 2 classifies: evaluation call / returned result / trigger
        from repro.apps.sumrec import SumCall, SumResult, SumTrigger, sum_receive

        sent = []

        def send(payload, ticket="<none>"):
            sent.append((payload, ticket))
            return "t"

        sum_receive(None, "reply", SumCall(0), send)  # call, base case
        sum_receive(None, None, SumTrigger(5), send)  # trigger
        state = sum_receive(None, "reply", SumCall(3), send)  # call, recursive
        sum_receive(state, "t", SumResult(6), send)  # returned result
        kinds = [type(p).__name__ for p, _ in sent]
        assert kinds == ["SumResult", "SumCall", "SumCall", "SumResult"]
