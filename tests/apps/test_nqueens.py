"""Tests for the N-queens application."""

import pytest

from repro import HyperspaceStack
from repro.apps.nqueens import (
    QueensProblem,
    count_solutions,
    found,
    is_valid_placement,
    nqueens,
    sequential_nqueens,
)
from repro.errors import ApplicationError
from repro.topology import Ring, Torus


class TestSequentialReference:
    def test_known_solution_counts(self):
        # OEIS A000170
        assert count_solutions(1) == 1
        assert count_solutions(2) == 0
        assert count_solutions(3) == 0
        assert count_solutions(4) == 2
        assert count_solutions(5) == 10
        assert count_solutions(6) == 4
        assert count_solutions(7) == 40

    def test_sequential_finds_valid(self):
        for n in (1, 4, 5, 6, 7):
            sol = sequential_nqueens(n)
            assert sol is not None
            assert is_valid_placement(n, sol)

    def test_sequential_unsolvable(self):
        assert sequential_nqueens(2) is None
        assert sequential_nqueens(3) is None

    def test_invalid_board(self):
        with pytest.raises(ApplicationError):
            sequential_nqueens(0)
        with pytest.raises(ApplicationError):
            count_solutions(0)


class TestValidity:
    def test_valid_placement(self):
        assert is_valid_placement(4, (1, 3, 0, 2))

    def test_column_clash(self):
        assert not is_valid_placement(4, (0, 0, 2, 3))

    def test_diagonal_clash(self):
        assert not is_valid_placement(4, (0, 1, 3, 2))

    def test_wrong_length(self):
        assert not is_valid_placement(4, (0, 2))

    def test_out_of_range_column(self):
        assert not is_valid_placement(4, (0, 2, 4, 1))

    def test_found_predicate(self):
        assert found(())
        assert found((1, 2))
        assert not found(None)


class TestDistributedNQueens:
    @pytest.mark.parametrize("n", [1, 4, 5, 6])
    def test_finds_valid_solution(self, n):
        stack = HyperspaceStack(Torus((5, 5)), seed=n)
        sol, _ = stack.run_recursive(nqueens, QueensProblem(n))
        assert sol is not None
        assert is_valid_placement(n, tuple(sol))

    @pytest.mark.parametrize("n", [2, 3])
    def test_unsolvable_returns_none(self, n):
        stack = HyperspaceStack(Torus((4, 4)))
        sol, _ = stack.run_recursive(nqueens, QueensProblem(n))
        assert sol is None

    def test_int_argument_accepted(self):
        stack = HyperspaceStack(Torus((4, 4)))
        sol, _ = stack.run_recursive(nqueens, 5)
        assert is_valid_placement(5, tuple(sol))

    def test_invalid_board_size(self):
        stack = HyperspaceStack(Torus((3, 3)))
        with pytest.raises(ApplicationError):
            stack.run_recursive(nqueens, QueensProblem(0))

    def test_small_machine(self):
        stack = HyperspaceStack(Ring(4))
        sol, _ = stack.run_recursive(nqueens, QueensProblem(6))
        assert is_valid_placement(6, tuple(sol))

    @pytest.mark.parametrize("mapper", ["rr", "lbn"])
    def test_mapper_independent_validity(self, mapper):
        stack = HyperspaceStack(Torus((4, 4)), mapper=mapper, seed=9)
        sol, _ = stack.run_recursive(nqueens, QueensProblem(6))
        assert is_valid_placement(6, tuple(sol))

    def test_speculative_fanout_is_data_dependent(self):
        # N-queens issues one subcall per safe column: the root row alone
        # contributes 6 calls in one choice group, so on average fan-out
        # strictly exceeds one call per group (unlike SAT's fixed 2)
        stack = HyperspaceStack(Torus((5, 5)))
        stack.run_recursive(nqueens, QueensProblem(6), halt_on_result=False)
        stats = stack.last_run.engine_stats
        assert stats.choice_groups >= 1
        assert stats.calls_made >= stats.choice_groups + 5
