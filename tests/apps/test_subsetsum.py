"""Tests for the subset-sum application."""

import random

import pytest

from repro import HyperspaceStack
from repro.apps.subsetsum import (
    SubsetSumProblem,
    brute_force_subset_sum,
    random_subset_sum_problem,
    sequential_subset_sum,
    subset_found,
    subset_sum,
)
from repro.errors import ApplicationError
from repro.topology import Ring, Torus


class TestProblemConstruction:
    def test_build(self):
        p = SubsetSumProblem.build([3, 1, 4], 5)
        assert p.numbers == (3, 1, 4)
        assert p.remaining_target == 5

    def test_non_positive_rejected(self):
        with pytest.raises(ApplicationError):
            SubsetSumProblem.build([3, 0], 2)
        with pytest.raises(ApplicationError):
            SubsetSumProblem.build([-1], 2)

    def test_negative_target_rejected(self):
        with pytest.raises(ApplicationError):
            SubsetSumProblem.build([1], -1)


class TestSequentialReference:
    def test_simple_yes(self):
        sol = sequential_subset_sum([3, 34, 4, 12, 5, 2], 9)
        assert sol is not None
        assert sum(sol) == 9

    def test_simple_no(self):
        assert sequential_subset_sum([3, 34, 4, 12, 5, 2], 30) is None

    def test_zero_target(self):
        assert sequential_subset_sum([5, 7], 0) == ()

    def test_matches_brute_force(self):
        rng = random.Random(8)
        for _ in range(25):
            nums = [rng.randint(1, 20) for _ in range(8)]
            target = rng.randint(1, 60)
            assert (sequential_subset_sum(nums, target) is not None) == (
                brute_force_subset_sum(nums, target)
            )

    def test_brute_force_size_limit(self):
        with pytest.raises(ApplicationError):
            brute_force_subset_sum(list(range(1, 30)), 10)


class TestGenerators:
    def test_forced_satisfiable(self):
        rng = random.Random(3)
        for _ in range(5):
            p = random_subset_sum_problem(10, rng, satisfiable=True)
            assert sequential_subset_sum(p.numbers, p.remaining_target) is not None

    def test_forced_unsatisfiable(self):
        rng = random.Random(3)
        p = random_subset_sum_problem(6, rng, satisfiable=False)
        assert sequential_subset_sum(p.numbers, p.remaining_target) is None

    def test_invalid_size(self):
        with pytest.raises(ApplicationError):
            random_subset_sum_problem(0, random.Random(0))


class TestDistributedSubsetSum:
    def test_satisfiable_instances(self):
        rng = random.Random(5)
        stack = HyperspaceStack(Torus((4, 4)), seed=1)
        for _ in range(4):
            p = random_subset_sum_problem(10, rng, satisfiable=True)
            sol, _ = stack.run_recursive(subset_sum, p)
            assert sol is not None
            assert sum(sol) == p.remaining_target

    def test_unsatisfiable_instances(self):
        rng = random.Random(6)
        stack = HyperspaceStack(Torus((4, 4)), seed=1)
        for _ in range(3):
            p = random_subset_sum_problem(8, rng, satisfiable=False)
            sol, _ = stack.run_recursive(subset_sum, p)
            assert sol is None

    def test_matches_sequential_decision(self):
        rng = random.Random(7)
        stack = HyperspaceStack(Torus((3, 3)), seed=2)
        for _ in range(6):
            p = random_subset_sum_problem(9, rng)
            expected = sequential_subset_sum(p.numbers, p.remaining_target)
            sol, _ = stack.run_recursive(subset_sum, p)
            assert (sol is not None) == (expected is not None)

    def test_zero_target_immediate(self):
        stack = HyperspaceStack(Ring(3))
        sol, report = stack.run_recursive(
            subset_sum, SubsetSumProblem.build([5, 5], 0)
        )
        assert sol == ()
        assert report.steps <= 2  # decided at the trigger node

    def test_found_predicate(self):
        assert subset_found(())
        assert not subset_found(None)
