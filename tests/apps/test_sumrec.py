"""Tests for the paper's running sum example (Listings 2 & 3)."""

import pytest

from repro import HyperspaceStack
from repro.apps.sumrec import (
    SumCall,
    SumResult,
    SumTrigger,
    calculate_sum,
    closed_form_sum,
    sum_receive,
    sum_ticketed_app,
)
from repro.mapping import MappingService
from repro.topology import Ring, Torus


class TestClosedForm:
    def test_values(self):
        assert closed_form_sum(10) == 55
        assert closed_form_sum(1) == 1
        assert closed_form_sum(0) == 0
        assert closed_form_sum(-5) == 0


class TestListing3:
    @pytest.mark.parametrize("n", [0, 1, 2, 10, 25])
    def test_calculate_sum(self, n):
        stack = HyperspaceStack(Torus((6, 6)))
        result, _ = stack.run_recursive(calculate_sum, n)
        assert result == closed_form_sum(n)

    def test_negative_input(self):
        stack = HyperspaceStack(Torus((4, 4)))
        result, _ = stack.run_recursive(calculate_sum, -3)
        assert result == 0

    def test_on_small_machine(self):
        # depth 30 on 4 nodes: invocations pile up per node and still work
        stack = HyperspaceStack(Ring(4))
        result, _ = stack.run_recursive(calculate_sum, 30)
        assert result == closed_form_sum(30)

    @pytest.mark.parametrize("mapper", ["rr", "lbn", "random"])
    def test_mapper_independent(self, mapper):
        stack = HyperspaceStack(Torus((5, 5)), mapper=mapper, seed=2)
        result, _ = stack.run_recursive(calculate_sum, 12)
        assert result == 78


class TestListing2:
    def run_listing2(self, n, ring_size=20):
        stack = HyperspaceStack(Ring(ring_size))
        results, report = stack.run_ticketed(sum_ticketed_app(), SumTrigger(n))
        state = MappingService.app_state_of(
            stack.last_run.scheduler.process_state(stack.last_run.machine, 0)
        )
        return state, report

    def test_computes_sum_10(self):
        state, _ = self.run_listing2(10)
        assert type(state).__name__ == "_Done"
        assert state.total == 55

    @pytest.mark.parametrize("n", [0, 1, 5, 15])
    def test_various_n(self, n):
        state, _ = self.run_listing2(n)
        assert state.total == closed_form_sum(n)

    def test_chain_spans_multiple_nodes(self):
        _, report = self.run_listing2(10)
        assert report.active_node_count >= 11  # trigger node + 10 workers

    def test_unknown_message_rejected(self):
        with pytest.raises(ValueError):
            sum_receive(None, None, "garbage", lambda *a: None)

    def test_receive_base_case_replies_immediately(self):
        sent = []

        def send(payload, ticket="<none>"):
            sent.append((payload, ticket))
            return "ticket"

        state = sum_receive(None, "reply-handle", SumCall(0), send)
        assert sent == [(SumResult(0), "reply-handle")]
        assert state is None  # state unchanged

    def test_receive_recursive_case_stores_continue(self):
        def send(payload, ticket="<none>"):
            return "sub-ticket"

        state = sum_receive(None, "parent", SumCall(5), send)
        assert state.ticket == "parent"
        assert state.n == 5
