"""Tests for the branch-and-bound TSP application."""

import random

import pytest

from repro import HyperspaceStack
from repro.apps.tsp import (
    TspProblem,
    brute_force_tsp,
    greedy_tour,
    random_distance_matrix,
    sequential_tsp,
    tour_cost,
    tsp,
)
from repro.errors import ApplicationError
from repro.topology import Torus

SQUARE = (
    (0, 1, 9, 1),
    (1, 0, 1, 9),
    (9, 1, 0, 1),
    (1, 9, 1, 0),
)


class TestMatrixValidation:
    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(ApplicationError):
            TspProblem.build(((1, 2), (2, 0)))

    def test_ragged_rejected(self):
        with pytest.raises(ApplicationError):
            TspProblem.build(((0, 1), (1,)))

    def test_negative_rejected(self):
        with pytest.raises(ApplicationError):
            TspProblem.build(((0, -1), (-1, 0)))

    def test_too_small_rejected(self):
        with pytest.raises(ApplicationError):
            TspProblem.build(((0,),))

    def test_random_matrix_symmetric(self):
        m = random_distance_matrix(6, random.Random(1))
        for i in range(6):
            assert m[i][i] == 0
            for j in range(6):
                assert m[i][j] == m[j][i]


class TestReferences:
    def test_square_optimum(self):
        assert brute_force_tsp(SQUARE) == 4
        cost, tour = sequential_tsp(SQUARE)
        assert cost == 4
        assert tour_cost(TspProblem.build(SQUARE).dist, tour) == 4

    def test_greedy_tour_visits_all(self):
        m = random_distance_matrix(7, random.Random(2))
        tour = greedy_tour(m)
        assert sorted(tour) == list(range(7))

    def test_sequential_matches_brute_force(self):
        rng = random.Random(3)
        for _ in range(5):
            m = random_distance_matrix(6, rng)
            assert sequential_tsp(m)[0] == brute_force_tsp(m)

    def test_brute_force_limit(self):
        m = random_distance_matrix(10, random.Random(0))
        with pytest.raises(ApplicationError):
            brute_force_tsp(m)


class TestDistributedTsp:
    def test_square(self):
        stack = HyperspaceStack(Torus((4, 4)), seed=1)
        (cost, tour), _ = stack.run_recursive(tsp, TspProblem.build(SQUARE))
        assert cost == 4
        assert sorted(tour) == [0, 1, 2, 3]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_brute_force(self, seed):
        m = random_distance_matrix(6, random.Random(seed))
        stack = HyperspaceStack(Torus((4, 4)), seed=seed)
        (cost, tour), _ = stack.run_recursive(tsp, TspProblem.build(m))
        assert cost == brute_force_tsp(m)
        assert tour_cost(m, tour) == cost

    def test_hint_mapper(self):
        m = random_distance_matrix(6, random.Random(5))
        stack = HyperspaceStack(Torus((4, 4)), mapper="hint", seed=5)
        (cost, _), _ = stack.run_recursive(tsp, TspProblem.build(m))
        assert cost == brute_force_tsp(m)

    def test_pruning_bounds_work(self):
        # the incumbent prune never removes the optimum
        rng = random.Random(11)
        stack = HyperspaceStack(Torus((3, 3)), seed=4)
        for _ in range(3):
            m = random_distance_matrix(5, rng)
            (cost, _), _ = stack.run_recursive(tsp, TspProblem.build(m))
            assert cost == brute_force_tsp(m)

    def test_two_cities(self):
        m = ((0, 7), (7, 0))
        stack = HyperspaceStack(Torus((3, 3)))
        (cost, tour), _ = stack.run_recursive(tsp, TspProblem.build(m))
        assert cost == 14
        assert tour == (0, 1)
