"""Chaos suite: seeded randomized fault injection against the full stack.

Every test here is deterministic — fault schedules derive from fixed seeds,
so a failure always reproduces.  See ``docs/robustness.md``.
"""
