"""Layer-1 chaos: randomized fault schedules against raw machine workloads.

Each case draws drop/duplicate probabilities and a workload shape from a
seeded RNG, runs the workload over faulty links with reliable delivery on,
and checks the three invariants the protocol promises:

1. **Correctness** — every node's delivery log equals the reliable
   baseline's (exactly-once, per-link FIFO);
2. **Termination** — the run goes quiescent within a step budget;
3. **Quiescence is real** — no queued messages and no pending frames
   remain after the report says so.
"""

import random

import pytest

from repro.netsim import EMPTY_MSG, FaultModel, FunctionalProgram, Machine
from repro.reliability import ReliabilityConfig
from repro.topology import Grid, Hypercube, Ring, Torus

STEP_BUDGET = 20_000


def flood_program():
    """Each node forwards a decrementing hop counter to all neighbours."""

    def init(node):
        return []

    def receive(node, state, sender, msg, send, neighbours):
        state.append((sender, msg))
        if msg is EMPTY_MSG:
            hops = 3
        else:
            hops = msg - 1
        if hops > 0:
            for nb in neighbours:
                send(nb, hops)

    return FunctionalProgram(init, receive)


def run_flood(topo, faults=None, reliability=None):
    kwargs = {"reliability": reliability}
    if faults is not None:
        kwargs["faults"] = faults
    m = Machine(topo, flood_program(), **kwargs)
    m.inject(0, EMPTY_MSG)
    report = m.run(max_steps=STEP_BUDGET)
    return m, report


def delivery_multisets(machine):
    """Per-node multiset of (sender, payload) pairs, order-insensitive."""
    return {
        n: sorted(machine.state_of(n), key=repr)
        for n in machine.topology.nodes()
    }


TOPOLOGIES = [Ring(6), Grid((3, 4)), Torus((3, 3)), Hypercube(3)]


@pytest.mark.parametrize("case", range(8))
@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.describe())
def test_randomized_faults_preserve_delivery_sets(topo, case):
    schedule = random.Random(1000 + case)
    drop = schedule.uniform(0.01, 0.25)
    dup = schedule.uniform(0.0, 0.15)
    fault_seed = schedule.getrandbits(32)

    baseline, _ = run_flood(topo)
    faults = FaultModel(drop, dup, rng=random.Random(fault_seed))
    chaotic, report = run_flood(
        topo, faults=faults, reliability=ReliabilityConfig(timeout=4)
    )

    assert report.quiescent, (
        f"drop={drop:.3f} dup={dup:.3f} seed={fault_seed} did not terminate "
        f"within {STEP_BUDGET} steps"
    )
    assert delivery_multisets(chaotic) == delivery_multisets(baseline), (
        f"delivery sets diverged for drop={drop:.3f} dup={dup:.3f} "
        f"seed={fault_seed}"
    )
    # quiescence must be real: nothing queued, nothing in flight or unacked
    assert chaotic.total_queued == 0
    assert chaotic.reliability.pending == 0


def test_per_link_fifo_order_preserved_under_chaos():
    """Same-link messages arrive in send order even with drops/dups."""
    topo = Ring(6)
    baseline, _ = run_flood(topo)
    faults = FaultModel(0.2, 0.1, rng=random.Random(77))
    chaotic, report = run_flood(
        topo, faults=faults, reliability=ReliabilityConfig(timeout=4)
    )
    assert report.quiescent
    for n in topo.nodes():
        base_log = baseline.state_of(n)
        chaos_log = chaotic.state_of(n)
        for sender in {s for s, _ in base_log}:
            base_from = [m for s, m in base_log if s == sender]
            chaos_from = [m for s, m in chaos_log if s == sender]
            assert chaos_from == base_from, (
                f"link {sender}->{n} reordered: {chaos_from} != {base_from}"
            )


def test_chaos_runs_are_deterministic():
    """The same seeds reproduce the exact same run, step for step."""

    def one():
        faults = FaultModel(0.15, 0.08, rng=random.Random(42))
        m, report = run_flood(
            Torus((3, 3)), faults=faults,
            reliability=ReliabilityConfig(timeout=3),
        )
        return (
            report.computation_time,
            m.reliability.stats.as_dict(),
            delivery_multisets(m),
        )

    assert one() == one() == one()


def test_unprotected_chaos_loses_messages():
    """Sanity: without the protocol the same fault schedule does lose data
    (otherwise the chaos suite would pass vacuously)."""
    topo = Ring(6)
    baseline, _ = run_flood(topo)
    faults = FaultModel(0.3, 0.0, rng=random.Random(5))
    lossy, report = run_flood(topo, faults=faults)
    assert report.quiescent
    assert report.dropped_total > 0
    assert delivery_multisets(lossy) != delivery_multisets(baseline)
