"""Full-stack chaos: DPLL solves over lossy links with reliable delivery.

The acceptance scenario from the robustness milestone: a uf20-91 suite on a
4x4 torus with ``drop=0.05, duplicate=0.02`` must produce verdicts (and
verified models) identical to the fault-free run, with retransmission
counts visible in a telemetry metrics dump.
"""

import pytest

from repro.apps.sat import dpll_solve, solve_on_machine
from repro.reliability import ReliabilityConfig
from repro.telemetry import TelemetryBus
from repro.telemetry.metrics import MetricsSubscriber
from repro.topology import Ring, Torus

DROP, DUP = 0.05, 0.02


class TestAcceptance:
    def test_uf20_suite_on_torus_verdict_parity(self, small_sat_suite):
        for i, cnf in enumerate(small_sat_suite):
            reference = solve_on_machine(
                cnf, Torus((4, 4)), mapper="lbn", seed=7
            )
            chaotic = solve_on_machine(
                cnf,
                Torus((4, 4)),
                mapper="lbn",
                seed=7,
                drop=DROP,
                duplicate=DUP,
                reliable=True,
            )
            seq = dpll_solve(cnf)
            assert chaotic.satisfiable == reference.satisfiable == seq.satisfiable, (
                f"instance {i}: verdict diverged under drop={DROP} dup={DUP}"
            )
            assert chaotic.verified
            assert chaotic.link_stats is not None
            assert chaotic.link_stats.exhausted == 0

    def test_retransmits_visible_in_metrics_dump(self, small_sat_suite):
        bus = TelemetryBus()
        metrics = bus.attach(MetricsSubscriber())
        res = solve_on_machine(
            small_sat_suite[0],
            Torus((4, 4)),
            mapper="lbn",
            seed=7,
            drop=DROP,
            duplicate=DUP,
            reliable=True,
            telemetry=bus,
        )
        dump = metrics.as_dict()
        assert res.link_stats.retransmits > 0, (
            "chaos run produced no retransmissions — fault rates too low "
            "to exercise the protocol"
        )
        assert dump["l1.retransmit"]["value"] == res.link_stats.retransmits
        hist = dump["l1.link_retries.steps"]
        assert hist["kind"] == "histogram"
        assert hist["sum"] == res.link_stats.retransmits
        assert hist["max"] <= ReliabilityConfig().retry_limit


class TestUnsatAndDeterminism:
    def test_unsat_verdict_survives_chaos(self, unsat_cnf):
        res = solve_on_machine(
            unsat_cnf,
            Ring(6),
            seed=11,
            drop=0.1,
            duplicate=0.05,
            reliable=True,
        )
        assert not res.satisfiable

    def test_chaotic_solve_is_deterministic(self, tiny_cnf):
        def one():
            res = solve_on_machine(
                tiny_cnf,
                Torus((3, 3)),
                mapper="lbn",
                seed=13,
                drop=0.08,
                duplicate=0.04,
                reliable=True,
            )
            return (
                res.satisfiable,
                res.assignment,
                res.report.computation_time,
                res.link_stats.as_dict(),
            )

        assert one() == one() == one()

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_seed_sweep_terminates_and_verifies(self, tiny_cnf, seed):
        res = solve_on_machine(
            tiny_cnf,
            Ring(5),
            seed=seed,
            drop=0.12,
            duplicate=0.06,
            reliable=True,
            max_steps=50_000,
        )
        assert res.satisfiable and res.verified
        assert res.report.quiescent


class TestIdempotentResultHandling:
    """Layer 4 must tolerate the duplicates layer 1.5 cannot see.

    The protocol dedups at link level, but a retransmitted *work* message
    whose reply ticket is already registered would previously re-spawn the
    invocation.  ``dup_work`` counts the suppressed re-spawns.
    """

    def test_dup_work_counter_default_zero(self, tiny_cnf):
        res = solve_on_machine(tiny_cnf, Ring(5), seed=3)
        assert res.engine_stats.as_dict().get("dup_work", 0) == 0

    def test_chaotic_run_reports_engine_stats(self, tiny_cnf):
        res = solve_on_machine(
            tiny_cnf,
            Ring(5),
            seed=3,
            drop=0.1,
            duplicate=0.08,
            reliable=True,
        )
        st = res.engine_stats.as_dict()
        # link-level dedup means layer 4 should normally see no duplicates;
        # the invariant is that any it does see are suppressed, not crashed
        assert st["dup_work"] >= 0
        assert res.verified
