"""Tests for the differential conformance fuzzer (``repro.conformance``)."""
