"""Replay the pinned conformance corpus through the real oracle.

The corpus files are the fuzzer's regression memory: every config in
them once passed (or, for future additions, once failed and was fixed).
Tier-1 replays them end-to-end — real simulations, every applicable
mode — so an execution-mode regression shows up as a corpus failure
with a self-describing discrepancy.
"""

import json
from pathlib import Path

import pytest

from repro.conformance import check_config
from repro.conformance.space import FuzzConfig

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def load_corpus(path):
    payload = json.loads(path.read_text())
    assert payload["format"] == "repro-conformance-corpus"
    assert payload["version"] == 1
    return [FuzzConfig.from_dict(d) for d in payload["configs"]]


def corpus_cases():
    for path in CORPUS_FILES:
        for index, config in enumerate(load_corpus(path)):
            yield pytest.param(config, id=f"{path.stem}-{index:02d}")


def test_corpus_exists_and_is_nontrivial():
    assert CORPUS_FILES, "pinned corpus missing from tests/conformance/corpus/"
    configs = [c for path in CORPUS_FILES for c in load_corpus(path)]
    assert len(configs) >= 20
    # the corpus must keep exercising every workload and both fault kinds
    assert {c.workload for c in configs} == {"sat", "fib", "nqueens", "traversal"}
    assert any(c.reliable and (c.drop or c.duplicate) for c in configs)
    assert any(not c.reliable and (c.drop or c.duplicate) for c in configs)
    assert any(c.shards > 1 for c in configs)
    assert any(c.ckpt_step is not None for c in configs)


@pytest.mark.parametrize("config", corpus_cases())
def test_corpus_config_conforms(config):
    result = check_config(config)
    assert result.ok, (
        f"{config.describe()}: {result.discrepancy.mode}/"
        f"{result.discrepancy.kind}: {result.discrepancy.detail}"
    )
    assert "serial" in result.modes_run
