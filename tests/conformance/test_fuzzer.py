"""Fuzz loop and artifact format, with injected oracle stubs for speed."""

import json

import pytest

from repro.conformance.fuzzer import (
    ArtifactError,
    load_artifact,
    replay_artifact,
    run_fuzz,
    save_artifact,
)
from repro.conformance.oracle import CheckResult, Discrepancy
from repro.conformance.space import DEFAULT_CONFIG


def ok_check(config, *, modes=None, shard_backend="inline"):
    return CheckResult(config, modes_run=["serial", "reference"])


def failing_on(predicate, mode="sharded", kind="counters"):
    """A check_config stub that reports a discrepancy when predicate(c)."""

    def check(config, *, modes=None, shard_backend="inline"):
        if predicate(config):
            return CheckResult(
                config,
                modes_run=["serial"],
                discrepancy=Discrepancy(config, mode, kind, "stubbed"),
            )
        return ok_check(config)

    return check


class TestArtifacts:
    DISC = Discrepancy(
        DEFAULT_CONFIG.with_(mapper="lbn"), "sharded", "counters", "l1: 1 vs 2"
    )

    def test_save_load_round_trip(self, tmp_path):
        path = save_artifact(
            tmp_path / "deep" / "bug.json",
            self.DISC,
            modes=["sharded"],
            original=DEFAULT_CONFIG.with_(mapper="lbn", shards=3),
        )
        payload = load_artifact(path)
        assert payload["discrepancy"] == self.DISC
        assert payload["modes"] == ["sharded"]
        assert payload["original_config"]["shards"] == 3

    def test_original_omitted_when_nothing_shrunk(self, tmp_path):
        path = save_artifact(tmp_path / "bug.json", self.DISC,
                             original=self.DISC.config)
        assert "original_config" not in load_artifact(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(tmp_path / "nope.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json at all")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_artifact(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(ArtifactError, match="not a repro-conformance"):
            load_artifact(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "future.json"
        payload = json.loads((save_artifact(tmp_path / "ok.json", self.DISC)
                              ).read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="unsupported version"):
            load_artifact(path)

    def test_corrupt_discrepancy(self, tmp_path):
        path = save_artifact(tmp_path / "bug.json", self.DISC)
        payload = json.loads(path.read_text())
        payload["discrepancy"]["config"]["warp_factor"] = 9
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="corrupt"):
            load_artifact(path)

    def test_replay_runs_the_real_oracle(self, tmp_path):
        # the pinned default config is clean, so a replayed artifact for it
        # reports "does not reproduce" by returning an ok result
        path = save_artifact(
            tmp_path / "bug.json",
            Discrepancy(DEFAULT_CONFIG, "sharded", "counters", "stale"),
            modes=["sharded"],
        )
        result = replay_artifact(path)
        assert result.ok
        assert result.modes_run == ["serial"]  # shards=1: sharded is moot


class TestRunFuzz:
    def test_clean_run(self):
        report = run_fuzz(3, 20, check=ok_check)
        assert report.ok
        assert report.configs_checked == 20
        assert report.mode_runs == {"serial": 20, "reference": 20}
        assert report.discrepancies == []
        assert report.to_dict()["ok"] is True

    def test_discrepancies_are_shrunk_and_archived(self, tmp_path):
        check = failing_on(lambda c: c.mapper == "lbn")
        report = run_fuzz(3, 60, check=check, artifact_dir=tmp_path)
        assert not report.ok
        assert report.configs_checked == 60  # keeps fuzzing past failures
        assert len(report.artifact_paths) == len(report.discrepancies) >= 1
        for disc, path in zip(report.discrepancies, report.artifact_paths):
            # every archived repro shrank to the canonical minimal config
            assert disc.config == DEFAULT_CONFIG.with_(mapper="lbn")
            payload = load_artifact(path)
            assert payload["discrepancy"] == disc
            replayed = check(payload["discrepancy"].config)
            assert replayed.discrepancy.kind == disc.kind

    def test_no_shrink_keeps_the_original_config(self):
        check = failing_on(lambda c: c.mapper == "lbn")
        report = run_fuzz(3, 60, check=check, shrink=False)
        assert all(d.config.mapper == "lbn" for d in report.discrepancies)
        assert any(d.config != DEFAULT_CONFIG.with_(mapper="lbn")
                   for d in report.discrepancies)

    def test_time_limit_stops_early(self):
        report = run_fuzz(3, 10_000, check=ok_check, time_limit=0.0)
        assert report.configs_checked < 10_000

    def test_progress_lines_are_emitted(self):
        lines = []
        run_fuzz(3, 25, check=ok_check, progress=lines.append)
        assert any("25/25" in line for line in lines)
