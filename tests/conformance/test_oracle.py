"""The differential oracle, exercised with injected runner stubs.

Real end-to-end oracle runs live in ``test_corpus.py``; here the runner
is stubbed so each comparison rule and applicability rule is pinned
directly, without paying for simulations.
"""

import pytest

from repro.conformance.oracle import MODE_NAMES, Discrepancy, check_config
from repro.conformance.space import DEFAULT_CONFIG
from repro.conformance.workloads import (
    RunOutcome,
    applicable_modes,
    checkpointable,
    shardable,
)

SAT = DEFAULT_CONFIG.with_(
    workload="sat",
    workload_params={"num_vars": 6, "num_clauses": 14, "formula_seed": 0},
)


def outcome(mode, **overrides):
    """A healthy RunOutcome; overrides inject the disagreement under test."""
    fields = dict(
        mode=mode,
        completed=True,
        verdict={"kind": "fib", "value": 5},
        schedule_digest="sched-0",
        state_digest="state-0",
        counters={"l1": {"sent": 10}},
    )
    fields.update(overrides)
    return RunOutcome(**fields)


def stub_runner(**per_mode):
    """A run_mode lookalike serving canned outcomes (None = mode moot)."""

    def runner(config, mode, *, shard_backend="inline", baseline=None):
        return per_mode.get(mode, outcome(mode))

    return runner


class TestApplicability:
    def test_serial_always_applies(self):
        for config in (DEFAULT_CONFIG, SAT):
            assert applicable_modes(config)[0] == "serial"

    def test_sharded_needs_shards(self):
        assert "sharded" not in applicable_modes(DEFAULT_CONFIG)
        assert "sharded" in applicable_modes(DEFAULT_CONFIG.with_(shards=2))

    def test_random_heuristic_is_serial_only(self):
        config = SAT.with_(heuristic="random", shards=4, ckpt_step=5)
        assert not shardable(config)
        assert not checkpointable(config)
        modes = applicable_modes(config)
        assert "sharded" not in modes and "resume" not in modes

    def test_traversal_never_resumes(self):
        config = DEFAULT_CONFIG.with_(
            workload="traversal", workload_params={}, ckpt_step=5
        )
        assert not checkpointable(config)
        assert "resume" not in applicable_modes(config)

    def test_resume_needs_a_checkpoint_step(self):
        assert "resume" not in applicable_modes(DEFAULT_CONFIG)
        assert "resume" in applicable_modes(DEFAULT_CONFIG.with_(ckpt_step=5))

    def test_fault_free_needs_protected_faults(self):
        assert "fault_free" not in applicable_modes(DEFAULT_CONFIG)
        assert "fault_free" not in applicable_modes(DEFAULT_CONFIG.with_(drop=0.1))
        assert "fault_free" in applicable_modes(
            DEFAULT_CONFIG.with_(drop=0.1, reliable=True)
        )

    def test_reference_skips_unprotected_faulty_runs(self):
        assert "reference" in applicable_modes(DEFAULT_CONFIG)
        assert "reference" in applicable_modes(
            DEFAULT_CONFIG.with_(drop=0.1, reliable=True)
        )
        assert "reference" not in applicable_modes(DEFAULT_CONFIG.with_(drop=0.1))


class TestComparisons:
    CONFIG = DEFAULT_CONFIG.with_(shards=2, ckpt_step=5)

    def check(self, runner, modes=None):
        return check_config(self.CONFIG, modes=modes, runner=runner)

    def test_agreement_is_ok(self):
        result = self.check(stub_runner())
        assert result.ok
        assert result.modes_run == ["serial", "sharded", "resume", "reference"]

    def test_verdict_disagreement_wins_over_digests(self):
        bad = outcome("sharded", verdict={"kind": "fib", "value": 6},
                      schedule_digest="other", state_digest="other")
        result = self.check(stub_runner(sharded=bad))
        assert result.discrepancy.mode == "sharded"
        assert result.discrepancy.kind == "verdict"

    def test_schedule_digest_disagreement(self):
        bad = outcome("sharded", schedule_digest="sched-X")
        disc = self.check(stub_runner(sharded=bad)).discrepancy
        assert (disc.mode, disc.kind) == ("sharded", "schedule_digest")
        assert "sched-X" in disc.detail

    def test_state_digest_disagreement(self):
        bad = outcome("resume", state_digest="state-X")
        disc = self.check(stub_runner(resume=bad)).discrepancy
        assert (disc.mode, disc.kind) == ("resume", "state_digest")

    def test_counters_compared_for_sharded_only(self):
        # a resumed run's metrics cover only the post-resume suffix by
        # design, so counter drift is a bug for sharded but not for resume
        drifted = {"l1": {"sent": 99}}
        ok = self.check(stub_runner(resume=outcome("resume", counters=drifted)))
        assert ok.ok
        disc = self.check(
            stub_runner(sharded=outcome("sharded", counters=drifted))
        ).discrepancy
        assert (disc.mode, disc.kind) == ("sharded", "counters")
        assert "l1" in disc.detail

    def test_none_outcome_means_skipped_not_compared(self):
        result = self.check(stub_runner(resume=None))
        assert result.ok
        assert "resume" not in result.modes_run
        assert "sharded" in result.modes_run

    def test_runner_exception_is_an_error_discrepancy(self):
        def runner(config, mode, *, shard_backend="inline", baseline=None):
            if mode == "sharded":
                raise RuntimeError("shard exploded")
            return outcome(mode)

        disc = self.check(runner).discrepancy
        assert (disc.mode, disc.kind) == ("sharded", "error")
        assert "shard exploded" in disc.detail

    def test_serial_exception_is_an_error_discrepancy(self):
        def runner(config, mode, *, shard_backend="inline", baseline=None):
            raise RuntimeError("nothing works")

        result = self.check(runner)
        assert (result.discrepancy.mode, result.discrepancy.kind) == (
            "serial", "error")
        assert result.modes_run == []

    def test_modes_filter_restricts_comparisons(self):
        # resume would disagree, but the filter excludes it entirely
        bad = outcome("resume", verdict={"kind": "fib", "value": 7})
        result = self.check(stub_runner(resume=bad), modes=["sharded"])
        assert result.ok
        assert result.modes_run == ["serial", "sharded"]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown modes"):
            self.check(stub_runner(), modes=["serial", "warp"])

    def test_mode_names_cover_the_stub_universe(self):
        assert set(MODE_NAMES) == {
            "serial", "sharded", "resume", "fault_free", "reference"}


class TestFaultFreeComparison:
    CONFIG = DEFAULT_CONFIG.with_(
        workload="sat",
        workload_params={"num_vars": 6, "num_clauses": 14, "formula_seed": 0},
        drop=0.1, reliable=True,
    )

    def sat_outcome(self, mode, sat=True, completed=True):
        verdict = {"kind": "sat", "sat": sat}
        if sat:
            verdict["assignment"] = [(1, True)]
        return outcome(mode, completed=completed, verdict=verdict)

    def check(self, runner):
        # restrict to fault_free: the stub verdicts would fail the real
        # reference solver, which is not what is under test here
        return check_config(self.CONFIG, modes=["fault_free"], runner=runner)

    def test_coarse_parity_ignores_the_witness(self):
        # different satisfying assignments are fine; sat/unsat must agree
        base = self.sat_outcome("serial")
        free = self.sat_outcome("fault_free")
        free.verdict["assignment"] = [(1, False)]
        result = self.check(stub_runner(serial=base, fault_free=free))
        assert result.ok
        assert result.modes_run == ["serial", "fault_free"]

    def test_sat_flip_is_a_verdict_discrepancy(self):
        disc = self.check(stub_runner(
            serial=self.sat_outcome("serial", sat=True),
            fault_free=self.sat_outcome("fault_free", sat=False),
        )).discrepancy
        assert (disc.mode, disc.kind) == ("fault_free", "verdict")

    def test_incomplete_run_skips_the_comparison(self):
        result = self.check(stub_runner(
            serial=self.sat_outcome("serial", completed=False),
            fault_free=self.sat_outcome("fault_free", sat=False),
        ))
        assert result.ok
        assert "fault_free" not in result.modes_run


class TestDiscrepancySerialisation:
    def test_round_trip(self):
        disc = Discrepancy(SAT.with_(shards=3), "sharded", "counters", "l1: 1 vs 2")
        assert Discrepancy.from_dict(disc.to_dict()) == disc
