"""``FuzzConfig.to_runspec()`` over the full pinned conformance corpus.

Every corpus config must map to a RunSpec that (a) survives a JSON
round-trip identically, (b) passes the engine's capability table once
normalised to its serial baseline, and (c) executes to the *same
observable schedule* whether built from the original spec or from its
JSON round-trip — the property that makes checkpoint headers and replay
artifacts trustworthy.
"""

import json
from pathlib import Path

import pytest

from repro.conformance.space import FuzzConfig
from repro.engine import RunSpec, execute, violations

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def corpus_cases():
    for path in CORPUS_FILES:
        payload = json.loads(path.read_text())
        for index, data in enumerate(payload["configs"]):
            yield pytest.param(
                FuzzConfig.from_dict(data), id=f"{path.stem}-{index:02d}"
            )


def _serial_spec(config):
    # shards and checkpoint cadence are per-mode knobs; the canonical
    # serial baseline drops both (exactly what the oracle's serial mode
    # runs when the config is not checkpointable)
    return config.to_runspec().with_(shards=1, checkpoint_every=None)


@pytest.mark.parametrize("config", corpus_cases())
def test_corpus_to_runspec_round_trips(config):
    spec = config.to_runspec()
    assert RunSpec.from_json(spec.to_json()) == spec
    assert violations(_serial_spec(config)) == []


@pytest.mark.parametrize("config", corpus_cases())
def test_corpus_replay_is_spec_transparent(config):
    spec = _serial_spec(config)
    rebuilt = RunSpec.from_json(spec.to_json())
    a = execute(spec, want_state_digest=True)
    b = execute(rebuilt, want_state_digest=True)
    assert a.verdict == b.verdict
    assert a.schedule_digest() == b.schedule_digest()
    assert a.semantic_digest == b.semantic_digest
