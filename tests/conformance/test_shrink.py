"""The shrinker, proven against deliberately-broken oracle stubs.

Each stub encodes "the bug": a predicate that is True exactly when a
config still triggers it.  The shrinker must reduce an elaborate failing
config to the canonical minimal one — every dimension at its default
except the ones the bug actually needs.
"""

from repro.conformance.shrink import shrink_config
from repro.conformance.space import (
    DEFAULT_CONFIG,
    DEFAULT_WORKLOAD_PARAMS,
    build_cnf,
)


def elaborate(**changes):
    """A deliberately ornate config: everything off-default."""
    base = DEFAULT_CONFIG.with_(
        workload="nqueens",
        workload_params={"n": 6},
        topology="torus2d:3x3",
        mapper="lbn",
        status=4,
        drain=False,
        seed=321,
        drop=0.05,
        duplicate=0.02,
        reliable=True,
        shards=3,
        partitioner="greedy",
        ckpt_step=10,
    )
    return base.with_(**changes)


class TestDimensionMinimisation:
    def test_single_guilty_dimension_survives_alone(self):
        # the "bug" needs exactly one off-default dimension: the mapper
        shrunk = shrink_config(elaborate(), lambda c: c.mapper == "lbn")
        assert shrunk == DEFAULT_CONFIG.with_(mapper="lbn")

    def test_two_interacting_dimensions_both_survive(self):
        failing = lambda c: c.shards == 3 and c.partitioner == "greedy"
        shrunk = shrink_config(elaborate(), failing)
        assert shrunk == DEFAULT_CONFIG.with_(shards=3, partitioner="greedy")

    def test_default_config_failure_shrinks_to_default(self):
        shrunk = shrink_config(elaborate(), lambda c: True)
        assert shrunk == DEFAULT_CONFIG

    def test_non_failing_config_is_returned_unchanged(self):
        config = elaborate()
        assert shrink_config(config, lambda c: False) == config


class TestSizeMinimisation:
    def test_fib_n_walks_down(self):
        config = DEFAULT_CONFIG.with_(workload_params={"n": 11})
        shrunk = shrink_config(config, lambda c: c.workload_params["n"] >= 7)
        assert shrunk == DEFAULT_CONFIG.with_(workload_params={"n": 7})

    def test_canonical_default_params_beat_smaller_ones(self):
        # the bug reproduces at the workload's default size too, so the
        # default wins outright even though smaller n would also fail
        config = elaborate(workload="fib", workload_params={"n": 11})
        shrunk = shrink_config(config, lambda c: c.mapper == "lbn")
        assert shrunk == DEFAULT_CONFIG.with_(mapper="lbn")

    def test_sat_recipe_materialises_and_ddmins_to_one_clause(self):
        config = elaborate(
            workload="sat",
            workload_params={"num_vars": 6, "num_clauses": 30, "formula_seed": 4},
        )

        def compact(clause):
            renumber = {v: i + 1 for i, v in
                        enumerate(sorted({abs(l) for l in clause}))}
            return tuple(sorted(
                renumber[abs(l)] * (1 if l > 0 else -1) for l in clause))

        # pick a guilty clause the workload's *default* formula does not
        # contain (so "canonical params win outright" cannot short-circuit
        # the ddmin path this test is about); all seeds are pinned, so the
        # choice is deterministic
        default_cnf = build_cnf(DEFAULT_CONFIG.with_(
            workload="sat", workload_params=DEFAULT_WORKLOAD_PARAMS["sat"]))
        default_clauses = {tuple(sorted(c)) for c in default_cnf.clauses}
        default_clauses |= {compact(c) for c in default_cnf.clauses}
        target = next(
            tuple(c) for c in build_cnf(config).clauses
            if tuple(sorted(c)) not in default_clauses
            and compact(c) not in default_clauses
        )

        def failing(c):
            if c.workload != "sat":
                return False
            clauses = {tuple(sorted(cl)) for cl in build_cnf(c).clauses}
            # "the bug" trips while the guilty clause is present, exactly
            # or in variable-compacted form
            return tuple(sorted(target)) in clauses or compact(target) in clauses

        shrunk = shrink_config(config, failing, max_evals=600)
        clauses = [tuple(cl) for cl in shrunk.workload_params["clauses"]]
        assert len(clauses) == 1
        assert tuple(sorted(clauses[0])) == compact(target)
        # variables were renumbered down to the ones the clause uses
        assert shrunk.workload_params["num_vars"] == len(
            {abs(l) for l in clauses[0]})
        # everything else collapsed to defaults
        assert shrunk.with_(
            workload=DEFAULT_CONFIG.workload,
            workload_params=DEFAULT_CONFIG.workload_params,
        ) == DEFAULT_CONFIG


class TestBudget:
    def test_predicate_calls_are_bounded(self):
        calls = []

        def failing(c):
            calls.append(c)
            return True

        shrink_config(elaborate(), failing, max_evals=10)
        assert len(calls) <= 10

    def test_exhausted_budget_still_returns_a_failing_config(self):
        # with a tiny budget the sweep may not finish, but the result must
        # still satisfy the predicate (it only ever keeps failing configs)
        failing = lambda c: c.mapper == "lbn"
        shrunk = shrink_config(elaborate(), failing, max_evals=4)
        assert failing(shrunk)
