"""Config-space sampler: determinism, serialisation, formula building."""

import random

import pytest

from repro.conformance.space import (
    DEFAULT_CONFIG,
    DEFAULT_WORKLOAD_PARAMS,
    DIMENSIONS,
    FuzzConfig,
    build_cnf,
    sample_configs,
    sample_list,
)
from repro.errors import ApplicationError
from repro.topology import topology_from_spec


class TestSamplerDeterminism:
    def test_same_seed_same_stream(self):
        assert sample_list(7, 40) == sample_list(7, 40)

    def test_prefix_stability(self):
        # a bigger budget extends the stream, it does not reshuffle it
        assert sample_list(7, 60)[:40] == sample_list(7, 40)

    def test_different_seeds_differ(self):
        assert sample_list(1, 40) != sample_list(2, 40)

    def test_generator_is_lazy_and_sized(self):
        gen = sample_configs(3, 10)
        assert iter(gen) is gen
        assert len(list(gen)) == 10


class TestSampledConfigsAreValid:
    def test_every_sample_is_buildable(self):
        for config in sample_list(5, 60):
            topo = topology_from_spec(config.topology)
            assert topo.n_nodes >= 2  # layer-5 mappers need a neighbour
            assert config.shards >= 1
            assert 0.0 <= config.drop <= 0.5
            assert 0.0 <= config.duplicate <= 0.5
            assert config.workload in DEFAULT_WORKLOAD_PARAMS
            if config.workload == "sat":
                cnf = build_cnf(config)
                assert cnf.clauses

    def test_faulty_reliable_combinations_all_appear(self):
        configs = sample_list(5, 120)
        faulty = [c for c in configs if c.drop or c.duplicate]
        assert faulty
        assert any(c.reliable for c in faulty)
        assert any(not c.reliable for c in faulty)
        assert any(not (c.drop or c.duplicate) for c in configs)

    def test_every_workload_and_mode_dimension_is_reached(self):
        configs = sample_list(5, 120)
        assert {c.workload for c in configs} == set(DEFAULT_WORKLOAD_PARAMS)
        assert any(c.shards > 1 for c in configs)
        assert any(c.ckpt_step is not None for c in configs)


class TestFuzzConfigSerialisation:
    def test_round_trip_identity(self):
        for config in sample_list(11, 40):
            assert FuzzConfig.from_dict(config.to_dict()) == config

    def test_unknown_key_rejected(self):
        data = DEFAULT_CONFIG.to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ApplicationError):
            FuzzConfig.from_dict(data)

    def test_with_replaces_only_named_fields(self):
        changed = DEFAULT_CONFIG.with_(mapper="lbn")
        assert changed.mapper == "lbn"
        assert changed.with_(mapper=DEFAULT_CONFIG.mapper) == DEFAULT_CONFIG

    def test_describe_mentions_the_workload(self):
        for config in sample_list(2, 10):
            text = config.describe()
            assert config.workload in text
            assert config.topology in text

    def test_default_config_sits_at_every_dimension_default(self):
        # the shrinker's fixpoint target: defaulting any dimension of the
        # default config must be a no-op
        for dim in DIMENSIONS:
            assert hasattr(DEFAULT_CONFIG, dim)
        assert DEFAULT_CONFIG.with_() == DEFAULT_CONFIG


class TestBuildCnf:
    def test_recipe_is_deterministic(self):
        config = DEFAULT_CONFIG.with_(
            workload="sat",
            workload_params={"num_vars": 6, "num_clauses": 14, "formula_seed": 3},
        )
        a, b = build_cnf(config), build_cnf(config)
        assert a.clauses == b.clauses
        assert a.num_vars == b.num_vars == 6

    def test_formula_seed_changes_the_formula(self):
        base = {"num_vars": 6, "num_clauses": 14}
        one = build_cnf(DEFAULT_CONFIG.with_(
            workload="sat", workload_params={**base, "formula_seed": 1}))
        two = build_cnf(DEFAULT_CONFIG.with_(
            workload="sat", workload_params={**base, "formula_seed": 2}))
        assert one.clauses != two.clauses

    def test_explicit_clauses_pass_through(self):
        config = DEFAULT_CONFIG.with_(
            workload="sat",
            workload_params={"clauses": [[1, -2], [2]], "num_vars": 2},
        )
        cnf = build_cnf(config)
        assert list(cnf.clauses) == [(1, -2), (2,)]
        assert cnf.num_vars == 2

    def test_tiny_var_count_clamps_clause_width(self):
        config = DEFAULT_CONFIG.with_(
            workload="sat",
            workload_params={"num_vars": 2, "num_clauses": 6, "formula_seed": 0},
        )
        cnf = build_cnf(config)
        assert all(len(c) <= 2 for c in cnf.clauses)
        assert all(abs(l) <= 2 for c in cnf.clauses for l in c)
