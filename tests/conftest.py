"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.apps.sat import CNF, uf20_91_suite
from repro.topology import (
    CompleteTree,
    FullyConnected,
    Grid,
    Hypercube,
    Line,
    Ring,
    Star,
    Torus,
)


@pytest.fixture
def rng() -> random.Random:
    """A seeded random stream."""
    return random.Random(12345)


@pytest.fixture(scope="session")
def small_sat_suite():
    """Three satisfiable uf20-91-style instances (session-cached)."""
    return uf20_91_suite(3, seed=99)


@pytest.fixture
def tiny_cnf() -> CNF:
    """A small satisfiable formula with a unique model: x1 & ~x2 & (x2|x3)."""
    return CNF([(1,), (-2,), (2, 3)], num_vars=3)


@pytest.fixture
def unsat_cnf() -> CNF:
    """The smallest UNSAT formula: x1 & ~x1."""
    return CNF([(1,), (-1,)], num_vars=1)


def all_small_topologies():
    """A representative zoo of small topologies (used via parametrize)."""
    return [
        Torus((4, 4)),
        Torus((3, 3, 3)),
        Torus((2, 5)),
        Grid((4, 4)),
        Grid((2, 3, 2)),
        Ring(7),
        Line(6),
        Hypercube(4),
        FullyConnected(9),
        Star(6),
        CompleteTree(2, 4),
    ]
