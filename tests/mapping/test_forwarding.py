"""Tests for multi-hop work forwarding: paths, reply relays, cancel relays."""

import pytest

from repro import HyperspaceStack
from repro.apps.fib import fib, sequential_fib
from repro.apps.sumrec import calculate_sum, closed_form_sum
from repro.mapping import MappingService, ReplyHandle, make_mapper_factory
from repro.netsim import Machine
from repro.sched import SchedulerProgram
from repro.topology import Ring, Torus


class PathProbeApp:
    """Records the reply handle of each piece of work it executes."""

    def init(self, mctx):
        mctx.state = {"handles": []}

    def on_work(self, mctx, reply, payload, hint):
        if payload == "start":
            mctx.state["ticket"] = mctx.call("job")
        else:
            mctx.state["handles"].append(reply)
            mctx.reply(reply, ("done", mctx.node))

    def on_reply(self, mctx, ticket, payload):
        mctx.state["answer"] = payload

    def on_cancel(self, mctx, ticket):
        mctx.state.setdefault("cancelled", []).append(ticket)


def build(topology, app, forward_hops=0):
    service = MappingService(
        app, make_mapper_factory("rr"), forward_hops=forward_hops
    )
    sched = SchedulerProgram([service])
    machine = Machine(topology, sched)
    return machine, sched


class TestForwardedPaths:
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_path_length_matches_forward_hops(self, hops):
        app = PathProbeApp()
        machine, sched = build(Ring(12), app, forward_hops=hops)
        machine.inject(0, "start")
        machine.run()
        handles = []
        for node in range(12):
            st = MappingService.app_state_of(sched.process_state(machine, node))
            handles.extend(st["handles"])
        assert len(handles) == 1
        handle = handles[0]
        # route covers every relay plus the issuer
        assert len(handle.route) == hops + 1
        assert handle.route[-1] == 0  # terminates at the issuer

    @pytest.mark.parametrize("hops", [1, 2, 4])
    def test_reply_relays_back_to_issuer(self, hops):
        app = PathProbeApp()
        machine, sched = build(Ring(12), app, forward_hops=hops)
        machine.inject(0, "start")
        machine.run()
        st0 = MappingService.app_state_of(sched.process_state(machine, 0))
        assert st0["answer"][0] == "done"

    def test_full_application_correct_with_forwarding(self):
        for hops in (0, 1, 2):
            stack = HyperspaceStack(Torus((4, 4)), forward_hops=hops, seed=2)
            result, report = stack.run_recursive(fib, 10, halt_on_result=False)
            assert result == sequential_fib(10)
            assert report.quiescent

    def test_forwarding_increases_traffic(self):
        def run(hops):
            stack = HyperspaceStack(Torus((4, 4)), forward_hops=hops, seed=2)
            _, report = stack.run_recursive(
                calculate_sum, 15, halt_on_result=False
            )
            return report.sent_total

        assert run(2) > run(0)

    def test_deep_recursion_with_forwarding(self):
        stack = HyperspaceStack(Ring(6), forward_hops=1, seed=1)
        result, _ = stack.run_recursive(calculate_sum, 40)
        assert result == closed_form_sum(40)


class TestCancelThroughRelays:
    def test_cancel_chases_forwarded_work(self):
        # issuer forwards work 2 hops, then cancels the ticket; the cancel
        # must relay through the forwarding chain to the executing node
        class CancelProbe(PathProbeApp):
            def on_work(self, mctx, reply, payload, hint):
                if payload == "start":
                    ticket = mctx.call("job")
                    mctx.state["ticket"] = ticket
                    mctx.cancel(ticket)
                else:
                    mctx.state["handles"].append(reply)
                    # deliberately never reply: the work just sits here

        app = CancelProbe()
        machine, sched = build(Ring(12), app, forward_hops=2)
        machine.inject(0, "start")
        machine.run()
        cancelled = []
        for node in range(12):
            st = MappingService.app_state_of(sched.process_state(machine, node))
            cancelled.extend(st.get("cancelled", []))
        assert len(cancelled) == 1

    def test_cancellation_through_forwarding_in_full_stack(self):
        from repro.recursion import Call, Choice, Result, Sync

        def racing(task):
            if task == "root":
                yield Choice(
                    lambda r: r == "fast", Call("fast"), Call(("slow", 12))
                )
                got = yield Sync()
                yield Result(got)
            elif task == "fast":
                yield Result("fast")
            else:
                _, n = task
                if n == 0:
                    yield Result(None)
                else:
                    yield Call(("slow", n - 1))
                    sub = yield Sync()
                    yield Result(sub)

        stack = HyperspaceStack(
            Torus((4, 4)), forward_hops=1, cancellation=True, seed=3
        )
        result, report = stack.run_recursive(racing, "root", halt_on_result=False)
        assert result == "fast"
        assert report.quiescent
        assert stack.last_run.engine_stats.cancels_sent >= 1
