"""Unit tests for mapping algorithms (paper §V-D)."""

import random

import pytest

from repro.errors import MappingError
from repro.mapping import (
    HintAwareMapper,
    LeastBusyNeighbourMapper,
    MapperView,
    RandomMapper,
    RoundRobinMapper,
    make_mapper_factory,
)


def make_view(neighbours=(1, 2, 3, 4), node=0, seed=0):
    return MapperView(node, neighbours, random.Random(seed))


class TestMapperView:
    def test_observe_records_count(self):
        v = make_view()
        v.observe(1, 5)
        assert v.known_count(1) == 5

    def test_unobserved_defaults_to_zero(self):
        assert make_view().known_count(3) == 0

    def test_observe_keeps_freshest(self):
        v = make_view()
        v.observe(1, 5)
        v.observe(1, 3)  # stale (counts are monotone)
        assert v.known_count(1) == 5
        v.observe(1, 9)
        assert v.known_count(1) == 9


class TestRoundRobin:
    def test_circular_order(self):
        m = RoundRobinMapper()
        v = make_view((10, 20, 30))
        assert [m.choose(v, None) for _ in range(7)] == [10, 20, 30, 10, 20, 30, 10]

    def test_ignores_counts(self):
        m = RoundRobinMapper()
        v = make_view((1, 2))
        v.observe(1, 1000)
        assert m.choose(v, None) == 1  # static: counts irrelevant

    def test_no_neighbours_rejected(self):
        with pytest.raises(MappingError):
            RoundRobinMapper().choose(make_view(()), None)


class TestLeastBusyNeighbour:
    def test_picks_smallest_known_count(self):
        m = LeastBusyNeighbourMapper()
        v = make_view((1, 2, 3))
        v.observe(1, 10)
        v.observe(2, 2)
        v.observe(3, 7)
        assert m.choose(v, None) == 2

    def test_unheard_neighbours_look_idle(self):
        m = LeastBusyNeighbourMapper()
        v = make_view((1, 2, 3))
        v.observe(1, 4)
        v.observe(2, 4)
        assert m.choose(v, None) == 3  # never heard from -> count 0

    def test_random_tie_break_spreads(self):
        m = LeastBusyNeighbourMapper(track_outstanding=False)
        v = make_view((1, 2, 3, 4), seed=42)
        picks = {m.choose(v, None) for _ in range(40)}
        assert len(picks) > 1

    def test_outstanding_tracking_spreads_bursts(self):
        m = LeastBusyNeighbourMapper(track_outstanding=True)
        v = make_view((1, 2, 3))
        picks = []
        for _ in range(3):
            dst = m.choose(v, None)
            m.on_sent(v, dst, None)
            picks.append(dst)
        assert sorted(picks) == [1, 2, 3]

    def test_naive_variant_hammers_stale_minimum(self):
        m = LeastBusyNeighbourMapper(track_outstanding=False)
        v = make_view((1, 2, 3))
        v.observe(2, 1)
        v.observe(3, 1)
        picks = []
        for _ in range(5):
            dst = m.choose(v, None)
            m.on_sent(v, dst, None)
            picks.append(dst)
        assert picks == [1, 1, 1, 1, 1]

    def test_reply_retires_outstanding(self):
        m = LeastBusyNeighbourMapper(track_outstanding=True)
        v = make_view((1, 2))
        m.on_sent(v, 1, None)
        m.on_sent(v, 1, None)
        m.on_reply(v, 1)
        m.on_reply(v, 1)
        m.on_reply(v, 1)  # extra replies are tolerated
        assert m._outstanding == {}

    def test_no_neighbours_rejected(self):
        with pytest.raises(MappingError):
            LeastBusyNeighbourMapper().choose(make_view(()), None)


class TestRandomMapper:
    def test_uniformish(self):
        m = RandomMapper()
        v = make_view((1, 2, 3, 4), seed=3)
        picks = [m.choose(v, None) for _ in range(400)]
        for n in (1, 2, 3, 4):
            assert 50 < picks.count(n) < 150

    def test_deterministic_given_seed(self):
        a = [RandomMapper().choose(make_view(seed=9), None) for _ in range(5)]
        b = [RandomMapper().choose(make_view(seed=9), None) for _ in range(5)]
        assert a == b


class TestHintAware:
    def test_defaults_to_least_busy(self):
        m = HintAwareMapper()
        v = make_view((1, 2))
        v.observe(1, 5)
        assert m.choose(v, None) == 2

    def test_outstanding_hints_steer_away(self):
        m = HintAwareMapper(alpha=1.0)
        v = make_view((1, 2))
        m.on_sent(v, 1, 100.0)  # heavy work sent to 1
        assert m.choose(v, 1.0) == 2

    def test_reply_retires_hint_load(self):
        m = HintAwareMapper(alpha=1.0)
        v = make_view((1, 2))
        m.on_sent(v, 1, 100.0)
        m.on_reply(v, 1)
        v.observe(2, 1)
        assert m.choose(v, None) == 1

    def test_unhinted_work_uses_default(self):
        m = HintAwareMapper(alpha=1.0)
        v = make_view((1, 2))
        m.on_sent(v, 1, None)
        assert m._outstanding[1] == HintAwareMapper.DEFAULT_HINT

    def test_negative_alpha_rejected(self):
        with pytest.raises(MappingError):
            HintAwareMapper(alpha=-1)

    def test_fifo_retirement_order(self):
        m = HintAwareMapper()
        v = make_view((1, 2))
        m.on_sent(v, 1, 10.0)
        m.on_sent(v, 1, 1.0)
        m.on_reply(v, 1)  # retires the 10.0 first
        assert m._outstanding[1] == pytest.approx(1.0)


class TestFactory:
    @pytest.mark.parametrize("name", ["rr", "lbn", "random", "hint"])
    def test_known_names(self, name):
        factory = make_mapper_factory(name)
        assert factory() is not factory()  # fresh instance per node

    def test_unknown_name(self):
        with pytest.raises(MappingError):
            make_mapper_factory("banana")

    def test_kwargs_forwarded(self):
        factory = make_mapper_factory("hint", alpha=2.5)
        assert factory().alpha == 2.5
