"""Tests for the layer-3 mapping service (tickets, replies, status)."""

import pytest

from repro.errors import MappingError
from repro.mapping import (
    ExplicitStatusPolicy,
    MappingService,
    NoStatusPolicy,
    ReplyHandle,
    RoundRobinMapper,
    Ticket,
    make_mapper_factory,
    make_status_factory,
)
from repro.netsim import Machine
from repro.sched import SchedulerProgram
from repro.topology import Ring, Torus


class EchoApp:
    """Replies to every piece of work with (node, payload)."""

    def init(self, mctx):
        mctx.state = {"replies": [], "work": []}

    def on_work(self, mctx, reply, payload, hint):
        if payload == "start":
            mctx.state["ticket"] = mctx.call("job", hint=2.5)
        else:
            mctx.state["work"].append((payload, hint))
            mctx.reply(reply, ("done", mctx.node, payload))

    def on_reply(self, mctx, ticket, payload):
        mctx.state["replies"].append((ticket, payload))

    def on_cancel(self, mctx, ticket):
        pass


def build(topology, app, mapper="rr", status=None, **kw):
    service = MappingService(
        app, make_mapper_factory(mapper), make_status_factory(status), **kw
    )
    sched = SchedulerProgram([service])
    machine = Machine(topology, sched)
    return machine, sched, service


class TestCallReply:
    def test_work_travels_one_hop_and_reply_returns(self):
        app = EchoApp()
        machine, sched, service = build(Ring(5), app)
        machine.inject(0, "start")
        machine.run()
        st0 = MappingService.app_state_of(sched.process_state(machine, 0))
        assert len(st0["replies"]) == 1
        ticket, payload = st0["replies"][0]
        assert ticket == st0["ticket"]
        assert payload[0] == "done"
        # work executed at a neighbour of node 0
        assert payload[1] in Ring(5).neighbours(0)

    def test_hint_passes_through(self):
        app = EchoApp()
        machine, sched, service = build(Ring(5), app)
        machine.inject(0, "start")
        machine.run()
        worker = Ring(5).neighbours(0)[0]
        stw = MappingService.app_state_of(sched.process_state(machine, worker))
        assert stw["work"] == [("job", 2.5)]

    def test_tickets_are_unique_per_node(self):
        class ManyCalls:
            def init(self, mctx):
                mctx.state = []

            def on_work(self, mctx, reply, payload, hint):
                if payload == "start":
                    mctx.state = [mctx.call(i) for i in range(5)]
                else:
                    mctx.reply(reply, None)

            def on_reply(self, mctx, ticket, payload):
                pass

            def on_cancel(self, mctx, ticket):
                pass

        app = ManyCalls()
        machine, sched, _ = build(Ring(5), app)
        machine.inject(0, "start")
        machine.run()
        tickets = MappingService.app_state_of(sched.process_state(machine, 0))
        assert len(set(tickets)) == 5
        assert all(t.node == 0 for t in tickets)

    def test_external_reply_collected_as_result(self):
        class Immediate:
            def init(self, mctx):
                mctx.state = None

            def on_work(self, mctx, reply, payload, hint):
                mctx.reply(reply, payload * 2)

            def on_reply(self, mctx, ticket, payload):
                pass

            def on_cancel(self, mctx, ticket):
                pass

        machine, sched, _ = build(Ring(4), Immediate())
        machine.inject(2, 21)
        machine.run()
        results = MappingService.results_of(sched.process_state(machine, 2))
        assert results == [42]

    def test_halt_on_result(self):
        class Immediate:
            def init(self, mctx):
                mctx.state = None

            def on_work(self, mctx, reply, payload, hint):
                mctx.reply(reply, "r")

            def on_reply(self, mctx, ticket, payload):
                pass

            def on_cancel(self, mctx, ticket):
                pass

        machine, sched, _ = build(Ring(4), Immediate(), halt_on_result=True)
        machine.inject(0, "x")
        report = machine.run()
        assert report.steps == 1

    def test_empty_route_reply_rejected(self):
        class BadReply:
            def init(self, mctx):
                mctx.state = None

            def on_work(self, mctx, reply, payload, hint):
                mctx.reply(ReplyHandle(Ticket(0, 0), ()), "oops")

            def on_reply(self, mctx, ticket, payload):
                pass

            def on_cancel(self, mctx, ticket):
                pass

        machine, _, _ = build(Ring(4), BadReply())
        machine.inject(0, "x")
        with pytest.raises(MappingError):
            machine.run()


class TestActivityTracking:
    def test_received_count_increments_on_work(self):
        app = EchoApp()
        machine, sched, _ = build(Ring(5), app)
        machine.inject(0, "start")
        machine.run()
        view0 = MappingService.view_of(sched.process_state(machine, 0))
        # node 0 received: the trigger + the reply
        assert view0.received_count == 2

    def test_piggybacked_counts_observed(self):
        app = EchoApp()
        machine, sched, _ = build(Ring(5), app)
        machine.inject(0, "start")
        machine.run()
        worker = Ring(5).neighbours(0)[0]
        vieww = MappingService.view_of(sched.process_state(machine, worker))
        # worker saw node 0's count piggybacked on the work message
        assert 0 in vieww.neighbour_counts

    def test_status_messages_not_counted_as_activity(self):
        class Chatter:
            def init(self, mctx):
                mctx.state = None

            def on_work(self, mctx, reply, payload, hint):
                if reply is not None:
                    mctx.reply(reply, None)
                else:
                    for _ in range(6):
                        mctx.call("w")

            def on_reply(self, mctx, ticket, payload):
                pass

            def on_cancel(self, mctx, ticket):
                pass

        machine, sched, _ = build(Ring(3), Chatter(), status=1)
        machine.inject(0, "go")
        report = machine.run(max_steps=10_000)
        assert report.quiescent  # no status storm
        view = MappingService.view_of(sched.process_state(machine, 0))
        # trigger + 6 replies; statuses excluded
        assert view.received_count == 7


class TestStatusPolicies:
    def test_no_status_policy(self):
        p = NoStatusPolicy()
        assert not p.should_broadcast(100)

    def test_explicit_threshold(self):
        p = ExplicitStatusPolicy(threshold=3)
        assert not p.should_broadcast(2)
        assert p.should_broadcast(3)
        p.on_broadcast(3)
        assert not p.should_broadcast(5)
        assert p.should_broadcast(6)

    def test_invalid_threshold(self):
        with pytest.raises(MappingError):
            ExplicitStatusPolicy(threshold=0)

    def test_make_status_factory(self):
        assert isinstance(make_status_factory(None)(), NoStatusPolicy)
        assert isinstance(make_status_factory("off")(), NoStatusPolicy)
        assert isinstance(make_status_factory(8)(), ExplicitStatusPolicy)
        assert make_status_factory("8")().threshold == 8
        with pytest.raises(MappingError):
            make_status_factory("loud")

    def test_status_traffic_appears_on_wire(self):
        app = EchoApp()
        m_off, _, _ = build(Torus((3, 3)), EchoApp(), status=None)
        m_off.inject(0, "start")
        off_sent = m_off.run().sent_total

        m_on, _, _ = build(Torus((3, 3)), app, status=1)
        m_on.inject(0, "start")
        on_sent = m_on.run().sent_total
        assert on_sent > off_sent


class TestForwardHops:
    def test_forwarded_work_still_replies_to_issuer(self):
        app = EchoApp()
        machine, sched, _ = build(Ring(8), app, forward_hops=2)
        machine.inject(0, "start")
        machine.run()
        st0 = MappingService.app_state_of(sched.process_state(machine, 0))
        assert len(st0["replies"]) == 1
        # with 2 forwarding hops the worker is 3 hops out (on a ring, distinct)
        _, payload = st0["replies"][0]
        worker = payload[1]
        assert worker not in (0,)

    def test_invalid_forward_hops(self):
        with pytest.raises(MappingError):
            MappingService(EchoApp(), RoundRobinMapper, forward_hops=-1)
