"""Tests for tickets, reply handles and the Listing-2 functional adapter."""

import pytest

from repro import HyperspaceStack
from repro.mapping import (
    CancelMsg,
    ReplyHandle,
    ReplyMsg,
    StatusMsg,
    Ticket,
    TicketedFunctionalApp,
    WorkMsg,
)
from repro.topology import Ring


class TestTicket:
    def test_fields(self):
        t = Ticket(3, 7)
        assert t.node == 3
        assert t.seq == 7

    def test_equality_and_hashability(self):
        assert Ticket(1, 2) == Ticket(1, 2)
        assert Ticket(1, 2) != Ticket(1, 3)
        assert len({Ticket(1, 2), Ticket(1, 2), Ticket(2, 1)}) == 2

    def test_repr(self):
        assert repr(Ticket(1, 2)) == "Ticket(1.2)"


class TestReplyHandle:
    def test_fields(self):
        h = ReplyHandle(Ticket(0, 1), (4, 0))
        assert h.ticket == Ticket(0, 1)
        assert h.route == (4, 0)

    def test_repr_mentions_route(self):
        assert "via" in repr(ReplyHandle(Ticket(0, 0), (1,)))


class TestEnvelopes:
    def test_work_msg_slots(self):
        w = WorkMsg(Ticket(0, 0), "p", None, (0,), 0, 5)
        assert w.payload == "p"
        assert w.sender_count == 5
        assert "WorkMsg" in repr(w)

    def test_reply_msg(self):
        r = ReplyMsg(Ticket(0, 0), "v", (), 3)
        assert r.route == ()
        assert "ReplyMsg" in repr(r)

    def test_status_msg(self):
        assert StatusMsg(9).sender_count == 9
        assert "9" in repr(StatusMsg(9))

    def test_cancel_msg(self):
        c = CancelMsg(Ticket(1, 1), 2)
        assert c.ticket == Ticket(1, 1)
        assert "Cancel" in repr(c)


class TestTicketedFunctionalApp:
    def test_functional_state_replacement(self):
        log = []

        def receive(state, ticket, msg, send):
            log.append((state, msg))
            return (state or 0) + 1

        stack = HyperspaceStack(Ring(4))
        app = TicketedFunctionalApp(receive)
        stack.run_ticketed(app, "first")
        assert log == [(None, "first")]

    def test_init_state_factory(self):
        states = []

        def receive(state, ticket, msg, send):
            states.append(state)

        app = TicketedFunctionalApp(receive, init_state=lambda: {"count": 0})
        stack = HyperspaceStack(Ring(4))
        stack.run_ticketed(app, "go")
        assert states == [{"count": 0}]

    def test_none_return_keeps_state(self):
        seen = []

        def receive(state, ticket, msg, send):
            seen.append(state)
            if msg == "set":
                return "kept"
            return None  # explicit: do not replace

        app = TicketedFunctionalApp(receive)
        stack = HyperspaceStack(Ring(4))
        machine, sched, service = (None, None, None)
        results, _ = stack.run_ticketed(app, "set")
        # inject a second trigger through a fresh run is separate; instead
        # verify single-shot state capture
        assert seen == [None]

    def test_send_without_ticket_delegates(self):
        tickets = []

        def receive(state, ticket, msg, send):
            if msg == "go":
                tickets.append(send("work"))
            elif msg == "work":
                send("result", ticket)
            elif msg == "result":
                send(("done", ticket), None)

        stack = HyperspaceStack(Ring(4))
        results, _ = stack.run_ticketed(TicketedFunctionalApp(receive), "go")
        assert len(tickets) == 1
        assert isinstance(tickets[0], Ticket)
        assert results and results[0][0] == "done"
        # the reply was delivered quoting the issued ticket
        assert results[0][1] == tickets[0]

    def test_on_cancel_is_noop(self):
        app = TicketedFunctionalApp(lambda *a: None)
        assert app.on_cancel(None, Ticket(0, 0)) is None
