"""Tests for the layer-3 work-sharing extension (paper Figure 2)."""

import pytest

from repro import HyperspaceStack
from repro.apps.fib import fib, sequential_fib
from repro.apps.sumrec import calculate_sum
from repro.errors import MappingError
from repro.mapping import MappingService, RoundRobinMapper, queue_depth_load
from repro.recursion import RecursionEngine
from repro.topology import Ring, Torus


class TestConfiguration:
    def test_share_needs_load_fn(self):
        with pytest.raises(MappingError):
            MappingService(
                RecursionEngine(fib), RoundRobinMapper, share_threshold=2
            )

    def test_invalid_threshold(self):
        with pytest.raises(MappingError):
            MappingService(
                RecursionEngine(fib),
                RoundRobinMapper,
                share_threshold=0,
                load_fn=queue_depth_load,
            )

    def test_invalid_max_share_hops(self):
        with pytest.raises(MappingError):
            MappingService(
                RecursionEngine(fib),
                RoundRobinMapper,
                share_threshold=1,
                load_fn=queue_depth_load,
                max_share_hops=0,
            )

    def test_stack_rejects_bad_share_load(self):
        with pytest.raises(ValueError):
            HyperspaceStack(Ring(4), share_load="vibes")


class TestCorrectnessUnderSharing:
    @pytest.mark.parametrize("share_load", ["queue", "invocations"])
    @pytest.mark.parametrize("threshold", [1, 2, 5])
    def test_fib_result_unchanged(self, share_load, threshold):
        stack = HyperspaceStack(
            Torus((4, 4)), share_threshold=threshold, share_load=share_load, seed=3
        )
        result, report = stack.run_recursive(fib, 11, halt_on_result=False)
        assert result == sequential_fib(11)
        assert report.quiescent

    def test_sum_on_tiny_machine(self):
        stack = HyperspaceStack(Ring(3), share_threshold=1)
        result, _ = stack.run_recursive(calculate_sum, 25)
        assert result == 325

    def test_sat_verdict_unchanged(self, small_sat_suite):
        from repro.apps.sat import SatProblem, make_solve_sat

        cnf = small_sat_suite[0]
        for threshold in (None, 3):
            stack = HyperspaceStack(Torus((5, 5)), share_threshold=threshold, seed=3)
            raw, _ = stack.run_recursive(make_solve_sat(), SatProblem(cnf))
            assert raw is not None


class TestSharingBehaviour:
    def test_aggressive_sharing_adds_forwarding_traffic(self):
        def run(threshold):
            stack = HyperspaceStack(
                Torus((4, 4)), share_threshold=threshold, seed=1
            )
            _, report = stack.run_recursive(fib, 11, halt_on_result=False)
            return report

        baseline = run(None)
        shared = run(1)
        assert shared.sent_total > baseline.sent_total

    def test_detour_is_bounded(self):
        # even with threshold 1 on a saturated ring the run terminates —
        # the max_share_hops cap prevents work from bouncing forever
        stack = HyperspaceStack(Ring(4), share_threshold=1, seed=1)
        result, report = stack.run_recursive(fib, 9, halt_on_result=False)
        assert result == 34
        assert report.quiescent

    def test_replies_still_reach_issuer_through_detours(self):
        # deep linear recursion: every reply must retrace a (possibly
        # detoured) path; any routing bug would deadlock the run
        stack = HyperspaceStack(Torus((3, 3)), share_threshold=1, seed=2)
        result, report = stack.run_recursive(calculate_sum, 30)
        assert result == 465

    def test_queue_depth_load_probe(self):
        # probe reads the machine's real inbox depth
        observed = []

        def probing_load(pctx, app_state):
            observed.append(queue_depth_load(pctx, app_state))
            return 0  # never actually share

        from repro.mapping import make_mapper_factory
        from repro.netsim import Machine
        from repro.sched import SchedulerProgram

        engine = RecursionEngine(fib)
        service = MappingService(
            engine,
            make_mapper_factory("rr"),
            share_threshold=10**9,
            load_fn=probing_load,
            halt_on_result=True,
        )
        sched = SchedulerProgram([service])
        machine = Machine(Torus((3, 3)), sched)
        machine.inject(0, 6)
        machine.run()
        assert observed  # probe ran
        assert all(isinstance(v, int) and v >= 0 for v in observed)
