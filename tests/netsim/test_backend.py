"""Tests for the layer-1 machine event loop (paper §IV-A semantics)."""

import pytest

from repro.errors import AdjacencyError, SimulationError
from repro.netsim import EMPTY_MSG, FunctionalProgram, Machine
from repro.topology import FullyConnected, Line, Ring, Torus


def make_echo_program(log):
    """Program that logs deliveries as (node, sender, payload, step)."""

    class Echo:
        def init(self, ctx):
            ctx.state = {"ctx": ctx}

        def on_message(self, ctx, sender, payload):
            log.append((ctx.node, sender, payload, ctx.step))

    return Echo()


class CountAndForward:
    """Each node forwards a decremented counter to its first neighbour."""

    def init(self, ctx):
        ctx.state = 0

    def on_message(self, ctx, sender, payload):
        ctx.state += 1
        if payload > 0:
            ctx.send(ctx.neighbours[0], payload - 1)


class TestDeliverySemantics:
    def test_injected_message_delivered_at_step_zero(self):
        log = []
        m = Machine(Ring(4), make_echo_program(log))
        m.inject(2, "hello")
        m.run()
        assert log == [(2, -1, "hello", 0)]

    def test_sends_not_delivered_same_step(self):
        steps = []

        class P:
            def init(self, ctx):
                ctx.state = None

            def on_message(self, ctx, sender, payload):
                steps.append((ctx.node, ctx.step))
                if payload:
                    ctx.send(ctx.neighbours[0], False)

        m = Machine(Ring(4), P())
        m.inject(0, True)
        m.run()
        # the forwarded message arrives exactly one step later
        assert steps == [(0, 0), (3, 1)]

    def test_one_message_per_node_per_step(self):
        log = []
        m = Machine(Ring(4), make_echo_program(log))
        m.inject(1, "a")
        m.inject(1, "b")
        m.run()
        assert [(n, p, s) for n, _, p, s in log] == [(1, "a", 0), (1, "b", 1)]

    def test_all_nonempty_queues_pop_same_step(self):
        log = []
        m = Machine(Ring(5), make_echo_program(log))
        for node in (0, 2, 4):
            m.inject(node, "x")
        m.run()
        assert sorted((n, s) for n, _, _, s in log) == [(0, 0), (2, 0), (4, 0)]

    def test_node_order_within_step_is_ascending(self):
        log = []
        m = Machine(Ring(5), make_echo_program(log))
        for node in (4, 0, 2):
            m.inject(node, "x")
        m.step()
        assert [n for n, _, _, _ in log] == [0, 2, 4]

    def test_fifo_order_within_node(self):
        log = []
        m = Machine(Ring(3), make_echo_program(log))
        for payload in ("a", "b", "c"):
            m.inject(0, payload)
        m.run()
        assert [p for _, _, p, _ in log] == ["a", "b", "c"]

    def test_chain_propagation_takes_one_step_per_hop(self):
        m = Machine(Line(6), CountAndForward())
        m.inject(5, 5)  # walks 5 -> 4 -> 3 -> 2 -> 1 -> 0
        report = m.run()
        assert report.steps == 6
        for n in range(6):
            assert m.state_of(n) == 1


class TestAdjacencyEnforcement:
    def test_send_to_non_neighbour_raises(self):
        class Bad:
            def init(self, ctx):
                ctx.state = None

            def on_message(self, ctx, sender, payload):
                ctx.send(2, "too far")  # node 0's neighbours on Ring(5): 4, 1

        m = Machine(Ring(5), Bad())
        m.inject(0, "go")
        with pytest.raises(AdjacencyError):
            m.run()

    def test_send_to_invalid_node_raises(self):
        class Bad:
            def init(self, ctx):
                ctx.state = None

            def on_message(self, ctx, sender, payload):
                ctx.send(99, "nowhere")

        m = Machine(Ring(5), Bad())
        m.inject(0, "go")
        with pytest.raises(SimulationError):
            m.run()

    def test_fully_connected_allows_any_pair(self):
        class Spray:
            def init(self, ctx):
                ctx.state = None

            def on_message(self, ctx, sender, payload):
                if payload:
                    for n in range(ctx.n_nodes):
                        if n != ctx.node:
                            ctx.send(n, False)

        m = Machine(FullyConnected(6), Spray())
        m.inject(0, True)
        report = m.run()
        assert report.delivered_total == 6

    def test_fully_connected_self_send_raises(self):
        class SelfSend:
            def init(self, ctx):
                ctx.state = None

            def on_message(self, ctx, sender, payload):
                ctx.send(ctx.node, "me")

        m = Machine(FullyConnected(4), SelfSend())
        m.inject(1, "go")
        with pytest.raises(AdjacencyError):
            m.run()

    def test_enforcement_can_be_disabled(self):
        log = []

        class FarSend:
            def init(self, ctx):
                ctx.state = None

            def on_message(self, ctx, sender, payload):
                if payload:
                    ctx.send(3, False)
                else:
                    log.append(ctx.node)

        m = Machine(Ring(6), FarSend(), enforce_adjacency=False)
        m.inject(0, True)
        m.run()
        assert log == [3]


class TestRunControl:
    def test_quiescence_detection(self):
        log = []
        m = Machine(Ring(4), make_echo_program(log))
        assert m.is_quiescent
        m.inject(0, "x")
        assert not m.is_quiescent
        m.run()
        assert m.is_quiescent

    def test_run_respects_max_steps(self):
        class Pingpong:
            def init(self, ctx):
                ctx.state = None

            def on_message(self, ctx, sender, payload):
                ctx.send(ctx.neighbours[0], payload)

        m = Machine(Ring(4), Pingpong())
        m.inject(0, "forever")
        report = m.run(max_steps=10)
        assert report.steps == 10
        assert not report.quiescent

    def test_negative_max_steps_rejected(self):
        m = Machine(Ring(3), CountAndForward())
        with pytest.raises(SimulationError):
            m.run(max_steps=-1)

    def test_halt_stops_the_loop(self):
        class HaltAfter:
            def init(self, ctx):
                ctx.state = None

            def on_message(self, ctx, sender, payload):
                if payload == 0:
                    ctx.machine.halt()
                else:
                    ctx.send(ctx.neighbours[0], payload - 1)

        m = Machine(Ring(10), HaltAfter())
        m.inject(0, 3)
        report = m.run()
        assert report.steps == 4

    def test_empty_run_is_quiescent_at_zero_steps(self):
        m = Machine(Ring(4), CountAndForward())
        report = m.run()
        assert report.steps == 0
        assert report.quiescent

    def test_inject_invalid_node(self):
        m = Machine(Ring(4), CountAndForward())
        with pytest.raises(Exception):
            m.inject(7, "x")

    def test_state_of_returns_program_state(self):
        m = Machine(Ring(4), CountAndForward())
        m.inject(0, 0)
        m.run()
        assert m.state_of(0) == 1
        assert m.state_of(1) == 0

    def test_resume_after_max_steps(self):
        m = Machine(Line(8), CountAndForward())
        m.inject(7, 7)
        m.run(max_steps=3)
        report = m.run(max_steps=100)
        assert report.quiescent
        assert sum(m.state_of(n) for n in range(8)) == 8


class TestLatency:
    def test_zero_latency_next_step(self):
        log = []
        m = Machine(Ring(4), make_echo_program(log), latency=0)
        m.inject(0, "x")
        m.run()
        assert log[0][3] == 0

    def test_constant_latency_delays_delivery(self):
        steps = []

        class P:
            def init(self, ctx):
                ctx.state = None

            def on_message(self, ctx, sender, payload):
                steps.append((ctx.node, ctx.step))
                if payload:
                    ctx.send(ctx.neighbours[0], False)

        m = Machine(Ring(4), P(), latency=3)
        m.inject(0, True)
        m.run()
        # hop sent at step 0 arrives at step 0 + 1 + 3
        assert steps == [(0, 0), (3, 4)]

    def test_callable_latency(self):
        steps = []

        class P:
            def init(self, ctx):
                ctx.state = None

            def on_message(self, ctx, sender, payload):
                steps.append(ctx.step)
                if payload > 0:
                    ctx.send(ctx.neighbours[0], payload - 1)

        # latency 2 on every link
        m = Machine(Ring(6), P(), latency=lambda s, d: 2)
        m.inject(0, 2)
        m.run()
        assert steps == [0, 3, 6]

    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            Machine(Ring(4), CountAndForward(), latency=-1)

    def test_quiescence_waits_for_in_flight(self):
        m = Machine(Ring(4), CountAndForward(), latency=5)
        m.inject(0, 1)
        m.step()  # deliver injection; the forwarded message is now in flight
        assert not m.is_quiescent
        report = m.run()
        assert report.quiescent


class TestTraceIntegration:
    def test_trace_size_mismatch_rejected(self):
        from repro.netsim import TraceRecorder

        with pytest.raises(SimulationError):
            Machine(Ring(4), CountAndForward(), trace=TraceRecorder(5))

    def test_sent_and_delivered_counts(self):
        m = Machine(Line(5), CountAndForward())
        m.inject(4, 4)
        report = m.run()
        assert report.sent_total == 5  # inject + 4 forwards
        assert report.delivered_total == 5

    def test_computation_time_definition(self):
        m = Machine(Line(5), CountAndForward())
        m.inject(4, 4)
        report = m.run()
        # inject at step -1 (pre-clock), last send at step 3
        assert report.computation_time == report.last_activity_step - report.first_activity_step

    def test_queue_depth_recording(self):
        from repro.netsim import TraceRecorder

        trace = TraceRecorder(5, record_queue_depths=True)
        m = Machine(Line(5), CountAndForward(), trace=trace)
        m.inject(4, 4)
        report = m.run()
        assert report.queue_depths is not None
        assert report.queue_depths.shape == (report.steps, 5)
