"""Regression pins for the optimized layer-1 event loop.

The hot path maintains an incrementally-sorted active-node list and a
per-node queue-depth mirror instead of scanning inboxes; these tests pin
the observable contract those structures must preserve — ascending-id
delivery order, exact trace counters, and correct accounting on the slow
paths (link latency, faults, finite queue capacity).
"""

import random

import pytest

from repro.errors import SimulationError
from repro.netsim import EMPTY_MSG, FaultModel, Machine, TraceRecorder
from repro.topology import FullyConnected, Line, Ring, Torus


class Recorder:
    """Log deliveries as (step, node, payload); optionally send a plan."""

    def __init__(self, plan=None):
        # node -> list of destinations to send to on first delivery
        self.plan = plan or {}
        self.log = []

    def init(self, ctx):
        ctx.state = False

    def on_message(self, ctx, sender, payload):
        self.log.append((ctx.step, ctx.node, payload))
        if not ctx.state:
            ctx.state = True
            for dst in self.plan.get(ctx.node, ()):
                ctx.send(dst, payload)


def make_machine(topology, plan=None, **kw):
    program = Recorder(plan)
    m = Machine(topology, program, enforce_adjacency=False, **kw)
    return m, program.log


class TestDeliveryOrderPinned:
    def test_out_of_order_activations_deliver_ascending(self):
        # node 0 activates 5, 3, 1 (in that send order); the next step must
        # still deliver in ascending node-id order
        m, log = make_machine(Ring(6), plan={0: [5, 3, 1]})
        m.inject(0, "x")
        m.run()
        assert [n for _, n, _ in log] == [0, 1, 3, 5]
        assert [s for s, _, _ in log] == [0, 1, 1, 1]

    def test_mid_sweep_sends_never_jump_the_current_step(self):
        # node 1 sends to node 4 while node 4's queue is already being
        # drained this step; the new message must wait for the next step
        m, log = make_machine(Ring(6), plan={1: [4]})
        m.inject(1, "a")
        m.inject(4, "b")
        m.run()
        assert log == [(0, 1, "a"), (0, 4, "b"), (1, 4, "a")]

    def test_interleaved_rounds_stay_sorted(self):
        # waves bounce between high and low ids for several steps; order
        # within every step must stay ascending
        rng = random.Random(7)
        n = 25
        plan = {i: [rng.randrange(n)] for i in range(n)}
        m, log = make_machine(Torus((5, 5)), plan=plan)
        for node in (17, 3, 11):
            m.inject(node, "w")
        m.run()
        by_step = {}
        for step, node, _ in log:
            by_step.setdefault(step, []).append(node)
        for step, nodes in by_step.items():
            assert nodes == sorted(nodes), f"step {step} delivered {nodes}"


class TestQueueDepthMirror:
    def test_depths_track_backlog(self):
        m, _ = make_machine(Ring(4))
        for _ in range(3):
            m.inject(0, "x")
        m.inject(1, "y")
        assert m.queue_depths() == [3, 1, 0, 0]
        m.step()
        assert m.queue_depths() == [2, 0, 0, 0]
        assert m.queue_depth_of(0) == 2
        m.run()
        assert m.queue_depths() == [0, 0, 0, 0]

    def test_depths_include_fresh_sends(self):
        m, _ = make_machine(Ring(4), plan={0: [2, 2]})
        m.inject(0, "x")
        m.step()
        assert m.queue_depth_of(2) == 2
        assert m.queue_depths() == [0, 0, 2, 0]


class TestTraceCountersPinned:
    def test_counters_simple_chain(self):
        trace = TraceRecorder(4)
        m, _ = make_machine(Ring(4), plan={0: [1], 1: [2], 2: [3]}, trace=trace)
        m.inject(0, "go")
        report = m.run()
        assert report.sent_total == 4  # inject + 3 forwards
        assert report.delivered_total == 4
        assert report.dropped_total == 0
        assert list(report.delivered_series) == [1, 1, 1, 1]
        # each forward is queued at the end of the step that sent it
        assert list(report.queued_series) == [1, 1, 1, 0]
        assert list(report.node_delivered) == [1, 1, 1, 1]

    def test_counters_with_latency_and_in_flight(self):
        trace = TraceRecorder(4)
        m, log = make_machine(
            Ring(4), plan={0: [1], 1: [2]}, trace=trace, latency=2
        )
        m.inject(0, "go")
        assert not m.is_quiescent
        report = m.run()
        # sends arrive at send_step + 1 + latency
        assert [(s, n) for s, n, _ in log] == [(0, 0), (3, 1), (6, 2)]
        assert report.sent_total == 3
        assert report.delivered_total == 3
        assert report.quiescent
        # queued_series counts only landed messages, not in-flight ones
        assert sum(report.queued_series) == 0

    def test_counters_with_duplicating_faults(self):
        trace = TraceRecorder(4)
        faults = FaultModel(duplicate_probability=1.0, rng=random.Random(1))
        m, log = make_machine(Ring(4), plan={0: [1]}, trace=trace, faults=faults)
        m.inject(0, "go")
        report = m.run()
        # both the injection and the forward are duplicated: node 0 gets two
        # copies (only the first triggers the plan), node 1 gets two copies
        assert report.sent_total == 2
        assert [n for _, n, _ in log] == [0, 0, 1, 1]
        assert report.delivered_total == 4

    def test_counters_with_dropping_faults(self):
        trace = TraceRecorder(4)
        faults = FaultModel(drop_probability=1.0, rng=random.Random(1))
        m, log = make_machine(Ring(4), plan={0: [1]}, trace=trace, faults=faults)
        m.inject(0, "go")
        report = m.run()
        # faults apply to external injections too: the kickstart is dropped
        assert report.sent_total == 1
        assert report.dropped_total == 1
        assert log == []
        assert report.delivered_total == 0
        assert report.quiescent


class TestFiniteCapacity:
    def test_overflow_drop_policy_counts_drops(self):
        trace = TraceRecorder(6)
        # nodes 0 and 1 both send to node 5 in the same step; capacity 1
        # admits only the first (lowest-id sender runs first)
        m, log = make_machine(
            FullyConnected(6),
            plan={0: [5], 1: [5]},
            trace=trace,
            queue_capacity=1,
            queue_overflow="drop",
        )
        m.inject(0, "a")
        m.inject(1, "b")
        report = m.run()
        assert report.dropped_total == 1
        assert report.delivered_total == 3
        assert (1, 5, "a") in log and all(p != "b" or n != 5 for _, n, p in log)

    def test_overflow_raise_policy(self):
        m, _ = make_machine(
            FullyConnected(6),
            plan={0: [5], 1: [5]},
            queue_capacity=1,
            queue_overflow="raise",
        )
        m.inject(0, "a")
        m.inject(1, "b")
        with pytest.raises(SimulationError):
            m.run()

    def test_bounded_fifo_preserves_order_and_depths(self):
        m, log = make_machine(Line(3), plan={0: [1], 2: [1]}, queue_capacity=4)
        m.inject(0, "a")
        m.inject(2, "b")
        m.run()
        # node 1 receives from 0 then from 2 (senders ran in ascending order)
        arrivals = [(n, p) for _, n, p in log if n == 1]
        assert arrivals == [(1, "a"), (1, "b")]
