"""Coverage for the machine's opt-in slow send paths.

The fast path (reliable, zero-latency, unbounded FIFO) is exercised by
nearly every other test; these cases pin down the behaviours that only
appear when queue bounds, link latency or fault injection are switched on.
"""

import random

import pytest

from repro.errors import QueueOverflowError
from repro.netsim import EMPTY_MSG, FaultModel, FunctionalProgram, Machine
from repro.telemetry import TelemetryBus
from repro.topology import Line, Ring


def recorder():
    def init(node):
        return []

    def receive(node, state, sender, msg, send, neighbours):
        state.append((sender, msg))

    return FunctionalProgram(init, receive)


def fanout(count):
    """Node 0 sends ``count`` messages to neighbour on kickstart."""

    def init(node):
        return []

    def receive(node, state, sender, msg, send, neighbours):
        if msg is EMPTY_MSG and node == 0:
            for i in range(count):
                send(neighbours[0], i)
        else:
            state.append(msg)

    return FunctionalProgram(init, receive)


class TestQueueOverflow:
    def test_overflow_drop_attributed_to_destination(self):
        events = []
        bus = TelemetryBus()
        bus.attach(events.append)
        m = Machine(
            Line(2),
            fanout(5),
            queue_capacity=2,
            queue_overflow="drop",
            telemetry=bus,
        )
        m.inject(0, EMPTY_MSG)
        report = m.run()
        # 5 sends into a capacity-2 inbox drained one per step: the inbox
        # absorbs 2, the other 3 are dropped and charged to the receiver
        assert report.dropped_total == 3
        assert m.trace.node_dropped[1] == 3
        assert m.trace.node_dropped[0] == 0
        drops = [e for e in events if e.name == "drop"]
        assert len(drops) == 3
        assert all(e.attrs["reason"] == "overflow" for e in drops)
        assert all(e.node == 1 for e in drops)

    def test_overflow_raise_is_default(self):
        m = Machine(Line(2), fanout(5), queue_capacity=2)
        m.inject(0, EMPTY_MSG)
        with pytest.raises(QueueOverflowError):
            m.run()


class TestLatencyPath:
    def test_int_latency_delays_delivery(self):
        m = Machine(Line(2), recorder(), latency=3)
        m.inject(0, "x")  # injected before step 0; zero-latency for EXTERNAL
        m.step()
        assert m.state_of(0) == [(-1, "x")]

        m2 = Machine(Line(2), fanout(1), latency=3)
        m2.inject(0, EMPTY_MSG)
        report = m2.run()
        assert m2.state_of(1) == [0]
        # kickstart at step 0, message matures 3 extra steps later
        assert report.steps >= 4

    def test_callable_latency_receives_endpoints(self):
        seen = []

        def lat(src, dst):
            seen.append((src, dst))
            return 2

        m = Machine(Line(3), fanout(2), latency=lat)
        m.inject(0, EMPTY_MSG)
        m.run()
        assert m.state_of(1) == [0, 1]
        assert (0, 1) in seen

    def test_latency_combined_with_faults(self):
        fm = FaultModel(drop_probability=1.0, rng=random.Random(0))
        m = Machine(Line(2), fanout(3), latency=2, faults=fm)
        m.inject(0, EMPTY_MSG)
        report = m.run()
        # EXTERNAL inject is still subject to faults: everything dropped
        assert report.delivered_total == 0
        assert report.dropped_total == 1

    def test_latency_preserves_per_link_fifo(self):
        m = Machine(Line(2), fanout(4), latency=5)
        m.inject(0, EMPTY_MSG)
        m.run()
        assert m.state_of(1) == [0, 1, 2, 3]


class TestFaultSlowPathAccounting:
    def test_fault_drops_emit_telemetry_reason(self):
        events = []
        bus = TelemetryBus()
        bus.attach(events.append)
        fm = FaultModel(drop_probability=1.0, rng=random.Random(0))
        m = Machine(Ring(4), recorder(), faults=fm, telemetry=bus)
        m.inject(0, "x")
        m.run()
        drops = [e for e in events if e.name == "drop"]
        assert len(drops) == 1
        assert drops[0].attrs["reason"] == "fault"

    def test_duplicates_count_toward_delivered(self):
        fm = FaultModel(duplicate_probability=1.0, rng=random.Random(0))
        m = Machine(Line(2), fanout(2), faults=fm)
        m.inject(0, EMPTY_MSG)
        report = m.run()
        # the kickstart itself is duplicated, so the fanout fires twice
        assert m.state_of(1) == [0, 0, 1, 1, 0, 0, 1, 1]
        assert report.delivered_total == report.sent_total * 2
