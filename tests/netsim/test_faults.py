"""Tests for fault injection (drop/duplicate extension)."""

import random

import pytest

from repro.errors import SimulationError
from repro.netsim import FaultModel, FunctionalProgram, Machine, ReliableLinks
from repro.topology import Ring


class TestFaultModel:
    def test_reliable_default(self):
        assert ReliableLinks.is_reliable
        assert ReliableLinks.copies_to_deliver() == 1

    def test_invalid_probability(self):
        with pytest.raises(SimulationError):
            FaultModel(drop_probability=1.5, rng=random.Random(0))
        with pytest.raises(SimulationError):
            FaultModel(duplicate_probability=-0.1, rng=random.Random(0))

    def test_rng_required_for_faults(self):
        with pytest.raises(SimulationError):
            FaultModel(drop_probability=0.5)

    def test_always_drop(self):
        fm = FaultModel(drop_probability=1.0, rng=random.Random(0))
        assert all(fm.copies_to_deliver() == 0 for _ in range(10))

    def test_always_duplicate(self):
        fm = FaultModel(duplicate_probability=1.0, rng=random.Random(0))
        assert all(fm.copies_to_deliver() == 2 for _ in range(10))

    def test_statistical_drop_rate(self):
        fm = FaultModel(drop_probability=0.3, rng=random.Random(7))
        n = 10_000
        dropped = sum(1 for _ in range(n) if fm.copies_to_deliver() == 0)
        assert 0.25 < dropped / n < 0.35

    def test_rng_required_for_duplicate_only(self):
        with pytest.raises(SimulationError):
            FaultModel(duplicate_probability=0.5)

    def test_both_certain_drop_dominates(self):
        fm = FaultModel(
            drop_probability=1.0, duplicate_probability=1.0,
            rng=random.Random(0),
        )
        assert all(fm.copies_to_deliver() == 0 for _ in range(10))


class TestIndependentDraws:
    """Regression: the duplicate draw must not be masked by a drop.

    ``copies_to_deliver`` consumes one RNG draw per configured fault
    (drop first, then duplicate) on *every* call, so the two fault
    streams are statistically independent and the stream position does
    not depend on earlier outcomes.
    """

    def test_seed_pinned_copies_sequence(self):
        # pinned against the documented sampling order; any change to the
        # draw order or conditional consumption breaks this sequence
        fm = FaultModel(0.4, 0.35, rng=random.Random(2026))
        assert [fm.copies_to_deliver() for _ in range(20)] == [
            0, 1, 0, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 1, 2, 0, 0, 1, 2, 1,
        ]

    def test_constant_rng_consumption_per_call(self):
        # both faults configured -> exactly two draws per call, dropped
        # or not; a shadow RNG advanced 2 draws/call must stay in sync
        fm = FaultModel(0.7, 0.3, rng=random.Random(99))
        shadow = random.Random(99)
        for _ in range(50):
            fm.copies_to_deliver()
            shadow.random(), shadow.random()
        assert fm._rng.random() == shadow.random()

    def test_certain_duplicate_never_masked_by_drops(self):
        # with duplicate_probability=1.0 every *delivered* message must be
        # duplicated — under the old entangled sampling, the draw that
        # followed a drop could yield copies == 1
        fm = FaultModel(0.5, 1.0, rng=random.Random(11))
        copies = [fm.copies_to_deliver() for _ in range(200)]
        assert set(copies) == {0, 2}

    def test_duplicate_stream_independent_of_drop_rate(self):
        # same seed, wildly different drop rates: the duplicate draw for
        # message i is RNG draw 2i+1 either way, so the duplicate stream
        # (and the RNG stream position) is identical
        always = FaultModel(1.0, 0.5, rng=random.Random(31337))
        never = FaultModel(1e-12, 0.5, rng=random.Random(31337))
        shadow = random.Random(31337)
        expect = []
        for _ in range(40):
            shadow.random()  # drop draw
            expect.append(shadow.random() < 0.5)  # duplicate draw
        got = [never.copies_to_deliver() == 2 for _ in range(40)]
        assert got == expect
        assert all(always.copies_to_deliver() == 0 for _ in range(40))
        # both models consumed the same number of draws
        assert always._rng.random() == never._rng.random()


class TestFaultsInMachine:
    @staticmethod
    def flood_program():
        def init(node):
            return {"visited": False}

        def receive(node, state, sender, msg, send, neighbours):
            if not state["visited"]:
                state["visited"] = True
                for n in neighbours:
                    send(n, None)

        return FunctionalProgram(init, receive)

    def test_total_drop_stops_traversal(self):
        fm = FaultModel(drop_probability=1.0, rng=random.Random(0))
        m = Machine(Ring(6), self.flood_program(), faults=fm)
        m.inject(0, None)
        report = m.run()
        # the injected message itself is dropped: nothing ever happens
        assert report.delivered_total == 0
        assert report.dropped_total == 1
        assert not m.state_of(0)["visited"]

    def test_duplication_inflates_delivery(self):
        fm = FaultModel(duplicate_probability=1.0, rng=random.Random(0))
        m = Machine(Ring(6), self.flood_program(), faults=fm)
        m.inject(0, None)
        report = m.run()
        # every send delivers twice; traversal still visits everyone
        assert all(m.state_of(n)["visited"] for n in range(6))
        assert report.delivered_total == 2 * report.sent_total

    def test_traversal_reliable_under_moderate_duplication(self):
        fm = FaultModel(duplicate_probability=0.2, rng=random.Random(3))
        m = Machine(Ring(8), self.flood_program(), faults=fm)
        m.inject(0, None)
        m.run()
        assert all(m.state_of(n)["visited"] for n in range(8))

    def test_deterministic_given_seed(self):
        def run(seed):
            fm = FaultModel(drop_probability=0.4, rng=random.Random(seed))
            m = Machine(Ring(8), self.flood_program(), faults=fm)
            m.inject(0, None)
            return m.run().delivered_total

        assert run(5) == run(5)
