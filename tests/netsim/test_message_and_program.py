"""Tests for envelopes and the node-program adapters."""

import pytest

from repro.netsim import EMPTY_MSG, Envelope, FunctionalProgram, Machine, NodeProgram
from repro.topology import Ring


class TestEnvelope:
    def test_fields(self):
        e = Envelope(src=1, dst=2, payload="x", sent_step=5, msg_id=9)
        assert (e.src, e.dst, e.payload, e.sent_step, e.msg_id) == (1, 2, "x", 5, 9)

    def test_copy_as_fresh_id(self):
        e = Envelope(1, 2, "x", 5, 9)
        d = e.copy_as(10)
        assert d.msg_id == 10
        assert (d.src, d.dst, d.payload, d.sent_step) == (1, 2, "x", 5)

    def test_repr(self):
        assert "1->2" in repr(Envelope(1, 2, None, 0, 3))

    def test_empty_msg_is_none(self):
        assert EMPTY_MSG is None


class TestFunctionalProgram:
    def test_state_replacement_style(self):
        def init(node):
            return 0

        def receive(node, state, sender, msg, send, neighbours):
            return state + msg  # functional: return new state

        m = Machine(Ring(3), FunctionalProgram(init, receive))
        m.inject(0, 5)
        m.inject(0, 7)
        m.run()
        assert m.state_of(0) == 12

    def test_mutation_style(self):
        def init(node):
            return {"total": 0}

        def receive(node, state, sender, msg, send, neighbours):
            state["total"] += msg  # in-place: return None

        m = Machine(Ring(3), FunctionalProgram(init, receive))
        m.inject(1, 4)
        m.run()
        assert m.state_of(1) == {"total": 4}

    def test_no_init_function(self):
        seen = []

        def receive(node, state, sender, msg, send, neighbours):
            seen.append(state)

        m = Machine(Ring(3), FunctionalProgram(None, receive))
        m.inject(0, "x")
        m.run()
        assert seen == [None]

    def test_receive_gets_paper_signature(self):
        captured = {}

        def receive(node, state, sender, msg, send, neighbours):
            captured.update(
                node=node, sender=sender, msg=msg, neighbours=neighbours
            )

        m = Machine(Ring(5), FunctionalProgram(None, receive))
        m.inject(2, "hello")
        m.run()
        assert captured["node"] == 2
        assert captured["sender"] == -1  # external
        assert captured["msg"] == "hello"
        assert captured["neighbours"] == (1, 3)

    def test_protocol_conformance(self):
        prog = FunctionalProgram(None, lambda *a: None)
        assert isinstance(prog, NodeProgram)


class TestNodeContext:
    def test_n_nodes_and_step(self):
        seen = {}

        class P:
            def init(self, ctx):
                ctx.state = None
                seen["init_step"] = ctx.step

            def on_message(self, ctx, sender, payload):
                seen["n_nodes"] = ctx.n_nodes
                seen["step"] = ctx.step
                seen["machine"] = ctx.machine

        m = Machine(Ring(6), P())
        m.inject(0, None)
        m.run()
        assert seen["init_step"] == -1
        assert seen["n_nodes"] == 6
        assert seen["step"] == 0
        assert seen["machine"] is m
