"""Shard partitioners: validity, balance, edge-cut quality, determinism."""

import pytest

from repro.errors import SimulationError
from repro.netsim.partition import (
    PARTITIONERS,
    edge_cut,
    make_partition,
    partition_greedy,
    partition_grid_block,
    partition_strip,
    validate_partition,
)
from repro.topology import FullyConnected, Grid, Hypercube, Line, Ring, Torus


TOPOLOGIES = [
    Torus((4, 4)),
    Torus((6, 6)),
    Grid((5, 7)),
    Grid((8, 3)),
    Ring(12),
    Line(9),
    Hypercube(4),
]

SHARD_COUNTS = [1, 2, 3, 4, 7]


def every_node_once(topology, parts):
    seen = sorted(n for part in parts for n in part)
    return seen == list(topology.nodes())


class TestValidity:
    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_partition_is_valid_and_balanced(self, name, shards):
        for topo in TOPOLOGIES:
            if shards > topo.n_nodes:
                continue
            parts = make_partition(topo, shards, name)
            assert len(parts) == shards
            assert every_node_once(topo, parts)
            sizes = [len(p) for p in parts]
            assert max(sizes) - min(sizes) <= 1, (name, topo.describe(), sizes)
            validate_partition(topo, parts)  # must not raise

    def test_single_shard_owns_everything(self):
        topo = Torus((4, 4))
        for name in PARTITIONERS:
            parts = make_partition(topo, 1, name)
            assert parts == [list(topo.nodes())]

    def test_shards_exceeding_nodes_rejected(self):
        with pytest.raises(SimulationError, match="shard"):
            make_partition(Line(4), 5)

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(SimulationError, match="partitioner"):
            make_partition(Torus((4, 4)), 2, "voronoi")

    def test_validate_rejects_missing_and_duplicate_nodes(self):
        topo = Line(4)
        with pytest.raises(SimulationError):
            validate_partition(topo, [[0, 1], [2]])  # node 3 missing
        with pytest.raises(SimulationError):
            validate_partition(topo, [[0, 1], [1, 2, 3]])  # node 1 twice
        with pytest.raises(SimulationError):
            validate_partition(topo, [[0], [1, 2, 3]])  # unbalanced


class TestEdgeCut:
    def test_edge_cut_counts_crossing_links_once(self):
        # a 4-ring split into halves {0,1} {2,3} cuts exactly the two
        # links 1-2 and 3-0
        assert edge_cut(Ring(4), [[0, 1], [2, 3]]) == 2

    def test_strip_cut_on_torus_rows(self):
        # strips of a 4x4 torus are whole rows: each boundary contributes
        # 4 vertical links and the wrap-around adds the last<->first rows
        topo = Torus((4, 4))
        parts = partition_strip(topo, 4)
        assert edge_cut(topo, parts) == 16

    @pytest.mark.parametrize("topo", [Torus((6, 6)), Grid((6, 6)), Grid((8, 3))])
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_greedy_never_worse_than_strip(self, topo, shards):
        strip_cut = edge_cut(topo, partition_strip(topo, shards))
        greedy_cut = edge_cut(topo, partition_greedy(topo, shards))
        assert greedy_cut <= strip_cut

    def test_grid_block_beats_strip_on_wide_grid(self):
        # splitting a 6x6 grid into 4 quadrant blocks (cut 12) beats four
        # 9-node strips (cut 18)
        topo = Grid((6, 6))
        strip_cut = edge_cut(topo, partition_strip(topo, 4))
        block_cut = edge_cut(topo, partition_grid_block(topo, 4))
        assert block_cut < strip_cut

    def test_grid_block_falls_back_on_one_dimensional_topologies(self):
        # no second axis to block over: grid-block must still return a
        # valid balanced partition
        for topo in (Ring(10), Line(10), Hypercube(3)):
            parts = partition_grid_block(topo, 2)
            validate_partition(topo, parts)


class TestDeterminism:
    def test_same_seed_same_partition(self):
        topo = Torus((6, 6))
        a = partition_greedy(topo, 4, seed=7)
        b = partition_greedy(topo, 4, seed=7)
        assert a == b

    def test_all_partitioners_are_pure_functions(self):
        topo = Grid((5, 7))
        for name in PARTITIONERS:
            assert make_partition(topo, 3, name) == make_partition(topo, 3, name)

    def test_greedy_seed_changes_at_most_the_layout_not_validity(self):
        topo = Torus((6, 6))
        for seed in range(4):
            parts = partition_greedy(topo, 4, seed=seed)
            validate_partition(topo, parts)


class TestDegenerateTopologies:
    """1-node, single-row, and fully-connected machines.

    These shapes break the assumptions partitioners like to make — a
    second grid axis to block over, more nodes than shards, a sparse
    neighbourhood for greedy growth — and are exactly where the
    conformance fuzzer's hand-picked corpus lives.
    """

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    @pytest.mark.parametrize("topo", [Line(1), Ring(1)], ids=["line1", "ring1"])
    def test_one_node_one_shard(self, name, topo):
        parts = make_partition(topo, 1, name)
        assert parts == [[0]]
        validate_partition(topo, parts)
        assert edge_cut(topo, parts) == 0

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    def test_one_node_cannot_split(self, name):
        with pytest.raises(SimulationError, match="1 nodes into 2 shards"):
            make_partition(Line(1), 2, name)

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    @pytest.mark.parametrize("shards", [1, 2, 3, 8])
    def test_single_row_grid(self, name, shards):
        topo = Grid((1, 8))
        parts = make_partition(topo, shards, name)
        assert len(parts) == shards
        assert every_node_once(topo, parts)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1, (name, sizes)
        validate_partition(topo, parts)

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_fully_connected(self, name, shards):
        # every split of a complete graph cuts the same number of links;
        # balance and validity are all a partitioner can offer here
        topo = FullyConnected(7)
        parts = make_partition(topo, shards, name)
        assert every_node_once(topo, parts)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1, (name, sizes)
        validate_partition(topo, parts)
        total = topo.n_nodes
        within = sum(s * (s - 1) // 2 for s in sizes)
        assert edge_cut(topo, parts) == total * (total - 1) // 2 - within

    @pytest.mark.parametrize("name", sorted(PARTITIONERS))
    def test_degenerate_shapes_are_deterministic(self, name):
        for topo in (Line(1), Grid((1, 8)), FullyConnected(7)):
            shards = min(3, topo.n_nodes)
            assert (make_partition(topo, shards, name)
                    == make_partition(topo, shards, name))
