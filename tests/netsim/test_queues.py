"""Tests for inbox queue policies and capacities."""

import random

import pytest

from repro.errors import QueueOverflowError, SimulationError
from repro.netsim import FifoInbox, LifoInbox, RandomInbox, make_inbox
from repro.netsim.message import Envelope


def env(i):
    return Envelope(src=0, dst=1, payload=i, sent_step=0, msg_id=i)


class TestFifo:
    def test_order(self):
        q = FifoInbox()
        for i in range(5):
            q.push(env(i))
        assert [q.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_len(self):
        q = FifoInbox()
        q.push(env(1))
        q.push(env(2))
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_iter(self):
        q = FifoInbox()
        for i in range(3):
            q.push(env(i))
        assert [e.payload for e in q] == [0, 1, 2]


class TestLifo:
    def test_order(self):
        q = LifoInbox()
        for i in range(5):
            q.push(env(i))
        assert [q.pop().payload for _ in range(5)] == [4, 3, 2, 1, 0]


class TestRandom:
    def test_pops_everything_once(self):
        q = RandomInbox(random.Random(1))
        for i in range(10):
            q.push(env(i))
        popped = sorted(q.pop().payload for _ in range(10))
        assert popped == list(range(10))

    def test_deterministic_given_seed(self):
        def run(seed):
            q = RandomInbox(random.Random(seed))
            for i in range(8):
                q.push(env(i))
            return [q.pop().payload for _ in range(8)]

        assert run(42) == run(42)
        assert run(42) != run(43)  # overwhelmingly likely


class TestCapacity:
    def test_overflow_raises_by_default(self):
        q = FifoInbox(capacity=2)
        q.push(env(1))
        q.push(env(2))
        with pytest.raises(QueueOverflowError):
            q.push(env(3))

    def test_overflow_drop_policy(self):
        q = FifoInbox(capacity=2, overflow="drop")
        assert q.push(env(1))
        assert q.push(env(2))
        assert not q.push(env(3))
        assert len(q) == 2

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            FifoInbox(capacity=0)

    def test_invalid_overflow_policy(self):
        with pytest.raises(SimulationError):
            FifoInbox(capacity=1, overflow="explode")


class TestFactory:
    def test_known_policies(self):
        rng = random.Random(0)
        assert isinstance(make_inbox("fifo", rng), FifoInbox)
        assert isinstance(make_inbox("lifo", rng), LifoInbox)
        assert isinstance(make_inbox("random", rng), RandomInbox)

    def test_unknown_policy(self):
        with pytest.raises(SimulationError):
            make_inbox("priority", random.Random(0))


class TestMachineQueuePolicies:
    def test_lifo_machine_reverses_burst(self):
        from repro.netsim import Machine
        from repro.topology import Ring

        log = []

        class Echo:
            def init(self, ctx):
                ctx.state = None

            def on_message(self, ctx, sender, payload):
                log.append(payload)

        m = Machine(Ring(3), Echo(), queue_policy="lifo")
        for p in ("a", "b", "c"):
            m.inject(0, p)
        m.run()
        assert log == ["c", "b", "a"]

    def test_capacity_drop_in_machine(self):
        from repro.netsim import Machine
        from repro.topology import Ring

        class Quiet:
            def init(self, ctx):
                ctx.state = None

            def on_message(self, ctx, sender, payload):
                pass

        m = Machine(Ring(3), Quiet(), queue_capacity=2, queue_overflow="drop")
        for i in range(5):
            m.inject(0, i)
        report = m.run()
        assert report.delivered_total == 2
        assert report.dropped_total == 3
