"""Unit tests for the layer-1.5 reliable-delivery protocol."""

import random

import pytest

from repro.errors import ReliabilityError
from repro.netsim import EMPTY_MSG, FaultModel, FunctionalProgram, Machine
from repro.reliability import AckFrame, DataFrame, ReliabilityConfig, ReliableDelivery
from repro.telemetry import TelemetryBus
from repro.telemetry.metrics import MetricsSubscriber
from repro.topology import Line, Ring, Torus


class ScriptedFaults:
    """Fault model delivering a scripted copies sequence, then reliable."""

    is_reliable = False

    def __init__(self, copies):
        self._copies = list(copies)

    def copies_to_deliver(self):
        return self._copies.pop(0) if self._copies else 1


def recorder_program():
    """Program recording every delivery as ``(sender, payload)``."""

    def init(node):
        return []

    def receive(node, state, sender, msg, send, neighbours):
        state.append((sender, msg))

    return FunctionalProgram(init, receive)


def burst_program(count):
    """Node 0 sends ``count`` numbered messages to its first neighbour."""

    def init(node):
        return []

    def receive(node, state, sender, msg, send, neighbours):
        if msg is EMPTY_MSG and node == 0:
            for i in range(count):
                send(neighbours[0], i)
        else:
            state.append(msg)

    return FunctionalProgram(init, receive)


class TestConfig:
    def test_defaults_valid(self):
        cfg = ReliabilityConfig()
        assert cfg.timeout >= 1 and cfg.retry_limit > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0},
            {"backoff": 0.5},
            {"max_timeout": 1, "timeout": 4},
            {"retry_limit": -1},
            {"on_exhausted": "explode"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ReliabilityError):
            ReliabilityConfig(**kwargs)


class TestReliableNoFaults:
    """With perfect links the protocol must be an invisible pass-through."""

    def test_same_deliveries_as_plain_machine(self):
        plain = Machine(Ring(5), burst_program(4))
        plain.inject(0, EMPTY_MSG)
        plain.run()
        rel = Machine(Ring(5), burst_program(4), reliability=True)
        rel.inject(0, EMPTY_MSG)
        report = rel.run()
        assert report.quiescent
        assert rel.state_of(rel.topology.neighbours(0)[0]) == plain.state_of(
            plain.topology.neighbours(0)[0]
        )
        stats = rel.reliability.stats
        assert stats.data_sent == stats.delivered == 5  # kickstart + 4
        assert stats.retransmits == 0
        assert stats.dups_suppressed == 0
        # acks are cumulative and coalesced — one per receiving link per
        # step (kickstart ack + one covering the whole 4-message burst),
        # not one per data frame
        assert stats.acks_sent == stats.acks_received == 2
        assert stats.acks_piggybacked == 0  # no reverse data traffic here

    def test_acks_coalesce_per_link_per_step(self):
        # all 4 burst frames arrive in the same step -> a single cumulative
        # ack retires every one of them
        m = Machine(Ring(5), burst_program(4), reliability=True)
        m.inject(0, EMPTY_MSG)
        m.run()
        stats = m.reliability.stats
        assert stats.delivered == 5
        assert stats.acks_sent == 2  # one for the kickstart, one for the burst

    def test_reverse_traffic_piggybacks_acks(self):
        # node 0 and node 1 bounce a counter back and forth: every data
        # frame (after the kickstart exchange) carries the ack for the
        # frame it answers, so standalone ack frames stay rare
        def init(node):
            return []

        def receive(node, state, sender, msg, send, neighbours):
            state.append(msg)
            if isinstance(msg, int) and msg < 20:
                send(neighbours[0], msg + 1)

        m = Machine(Line(2), FunctionalProgram(init, receive), reliability=True)
        m.inject(0, 0)
        report = m.run()
        assert report.quiescent
        stats = m.reliability.stats
        assert stats.acks_piggybacked > 0
        # every frame still gets acknowledged exactly once overall
        assert stats.data_sent == stats.delivered
        assert m.state_of(0)[-1] == 20 or m.state_of(1)[-1] == 20

    def test_fast_path_disabled_only_when_on(self):
        assert Machine(Ring(4), recorder_program())._fast_send
        assert not Machine(Ring(4), recorder_program(), reliability=True)._fast_send
        assert Machine(Ring(4), recorder_program()).reliability is None

    def test_config_instance_accepted(self):
        cfg = ReliabilityConfig(timeout=2, retry_limit=3)
        m = Machine(Ring(4), recorder_program(), reliability=cfg)
        assert m.reliability.config is cfg


class TestDropRecovery:
    def test_single_drop_is_retransmitted(self):
        # transmit order: inject frame, msg 0's data frame (handler sends
        # transmit mid-step), then the end-of-step ack of the inject —
        # which is dropped, so the inject frame is retransmitted and
        # deduplicated at the receiver
        m = Machine(
            Line(2),
            burst_program(1),
            faults=ScriptedFaults([1, 1, 0]),
            reliability=ReliabilityConfig(timeout=2),
        )
        m.inject(0, EMPTY_MSG)
        report = m.run()
        assert report.quiescent
        assert m.state_of(1) == [0]
        stats = m.reliability.stats
        assert stats.retransmits == 1
        assert stats.frames_lost == 1
        assert stats.delivered == 2

    def test_fifo_order_survives_mid_burst_drop(self):
        # script: inject ok, msg 0 ok, then msg 1 dropped while msgs 2..3
        # get through — the out-of-order successors must be buffered by
        # the receiver and released in order once msg 1 is retransmitted
        m = Machine(
            Line(2),
            burst_program(4),
            faults=ScriptedFaults([1, 1, 0, 1, 1]),
            reliability=ReliabilityConfig(timeout=2),
        )
        m.inject(0, EMPTY_MSG)
        report = m.run()
        assert report.quiescent
        assert m.state_of(1) == [0, 1, 2, 3]
        assert m.reliability.stats.retransmits >= 1

    def test_trigger_injection_is_protected_too(self):
        # the kickstart itself is dropped once, then recovered
        m = Machine(
            Line(2),
            burst_program(1),
            faults=ScriptedFaults([0]),
            reliability=ReliabilityConfig(timeout=2),
        )
        m.inject(0, EMPTY_MSG)
        report = m.run()
        assert report.quiescent
        assert m.state_of(1) == [0]


class TestDuplicateSuppression:
    def test_duplicated_data_frame_delivered_once(self):
        m = Machine(
            Line(2),
            burst_program(2),
            faults=ScriptedFaults([1, 1, 2, 1]),  # msg 1's frame duplicated
            reliability=True,
        )
        m.inject(0, EMPTY_MSG)
        m.run()
        assert m.state_of(1) == [0, 1]
        assert m.reliability.stats.dups_suppressed == 1

    def test_lost_ack_recovered_without_redelivery(self):
        # inject, msg 0's data frame and the inject's ack all ok; msg 0's
        # end-of-step ack dropped -> retransmit -> dedup -> re-ack
        m = Machine(
            Line(2),
            burst_program(1),
            faults=ScriptedFaults([1, 1, 1, 0]),
            reliability=ReliabilityConfig(timeout=2),
        )
        m.inject(0, EMPTY_MSG)
        report = m.run()
        assert report.quiescent
        assert m.state_of(1) == [0]  # exactly once despite the retransmission
        stats = m.reliability.stats
        assert stats.retransmits >= 1
        assert stats.dups_suppressed >= 1


class TestRetryCap:
    def test_exhaustion_raises_by_default(self):
        dead = FaultModel(drop_probability=1.0, rng=random.Random(0))
        m = Machine(
            Line(2),
            burst_program(1),
            faults=dead,
            reliability=ReliabilityConfig(timeout=1, retry_limit=2, max_timeout=2),
        )
        m.inject(0, EMPTY_MSG)
        with pytest.raises(ReliabilityError, match="gave up"):
            m.run(max_steps=100)

    def test_exhaustion_drop_mode_records_drop_and_quiesces(self):
        dead = FaultModel(drop_probability=1.0, rng=random.Random(0))
        m = Machine(
            Line(2),
            recorder_program(),
            faults=dead,
            reliability=ReliabilityConfig(
                timeout=1, retry_limit=2, max_timeout=2, on_exhausted="drop"
            ),
        )
        m.inject(0, "lost")
        report = m.run(max_steps=200)
        assert report.quiescent
        assert m.state_of(0) == []
        assert m.reliability.stats.exhausted == 1
        assert report.dropped_total == 1  # end-to-end drop recorded in the trace


class TestTimersAndBackoff:
    def test_retransmit_steps_follow_exponential_backoff(self):
        events = []
        bus = TelemetryBus()
        bus.attach(events.append)
        dead = FaultModel(drop_probability=1.0, rng=random.Random(0))
        m = Machine(
            Line(2),
            recorder_program(),
            faults=dead,
            reliability=ReliabilityConfig(
                timeout=2, backoff=2.0, max_timeout=64, retry_limit=3,
                on_exhausted="drop",
            ),
            telemetry=bus,
        )
        m.inject(0, "x")  # sent at step -1, first due at -1 + 1 + 2 = 2
        m.run(max_steps=100)
        steps = [e.step for e in events if e.name == "retransmit"]
        # waits after each retry: timeout*backoff**n = 4, 8, ... from the
        # step the retry happened at
        assert steps == [2, 6, 14]

    def test_pending_blocks_quiescence_until_acked(self):
        m = Machine(
            Line(2),
            recorder_program(),
            faults=ScriptedFaults([1, 0]),  # data ok, ack dropped
            reliability=ReliabilityConfig(timeout=2),
        )
        m.inject(0, "x")
        m.step()  # frame lands, payload delivered, ack lost
        assert m.state_of(0) == [(-1, "x")] or m.state_of(0) == []
        assert not m.is_quiescent  # sender still holds the unacked frame
        m.run(max_steps=50)
        assert m.is_quiescent


class TestLatencyInterplay:
    def test_reliable_delivery_over_latent_links(self):
        m = Machine(
            Line(3),
            burst_program(3),
            latency=2,
            faults=ScriptedFaults([1, 0, 1, 1]),
            reliability=ReliabilityConfig(timeout=8),
        )
        m.inject(0, EMPTY_MSG)
        report = m.run()
        assert report.quiescent
        assert m.state_of(1) == [0, 1, 2]


class TestTelemetryAndDeterminism:
    def _run(self, seed=3):
        bus = TelemetryBus()
        log = []
        bus.attach(log.append)
        metrics = bus.attach(MetricsSubscriber())
        fm = FaultModel(0.3, 0.1, rng=random.Random(seed))
        m = Machine(
            Torus((3, 3)),
            burst_program(5),
            faults=fm,
            reliability=ReliabilityConfig(timeout=3),
            telemetry=bus,
        )
        m.inject(0, EMPTY_MSG)
        m.run(max_steps=2000)
        return m, log, metrics

    def test_events_and_metrics_dump(self):
        m, log, metrics = self._run()
        names = {e.name for e in log}
        assert {"retransmit", "ack", "link_retries"} <= names
        dump = metrics.as_dict()
        assert dump["l1.retransmit"]["value"] == m.reliability.stats.retransmits
        hist = dump["l1.link_retries.steps"]
        assert hist["kind"] == "histogram"
        assert hist["count"] == m.reliability.stats.data_sent
        # total retransmissions across messages == histogram mass
        assert hist["sum"] == m.reliability.stats.retransmits

    def test_identical_runs_produce_identical_event_streams(self):
        _, log_a, _ = self._run()
        _, log_b, _ = self._run()
        assert [e.as_dict() for e in log_a] == [e.as_dict() for e in log_b]

    def test_link_state_snapshot(self):
        m = Machine(
            Line(2),
            recorder_program(),
            faults=ScriptedFaults([0]),
            reliability=ReliabilityConfig(timeout=50),
        )
        m.inject(0, "x")
        m.step()
        state = m.link_state_snapshot() if hasattr(m, "link_state_snapshot") else (
            m.reliability.link_state()
        )
        assert state == {"-1->0": {"unacked": 1}}


class TestFrames:
    def test_repr_smoke(self):
        from repro.netsim.message import Envelope

        frame = DataFrame(3, Envelope(0, 1, "p", 0, 7))
        assert frame.seq == 3
        ack = AckFrame(9)
        assert ack.cum == 9

    def test_delivery_engine_exposed(self):
        m = Machine(Ring(4), recorder_program(), reliability=True)
        assert isinstance(m.reliability, ReliableDelivery)
        assert m.reliability.pending == 0
