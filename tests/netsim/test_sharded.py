"""Sharded-backend parity, pinned against the serial kernel's digests.

The :class:`~repro.netsim.ShardedMachine` promises a schedule that is
bit-identical to :class:`~repro.netsim.Machine` for any shard count and
either worker backend.  The strongest form of that claim is equality with
the *pre-existing* pinned digests of ``test_step_kernel_parity.py`` — the
sharded backend must land on the exact literals the serial kernel was
frozen at, so sharding cannot drift even together with the serial kernel.

Programs here are module-level classes: worker processes rebuild them by
pickling, and only picklable-by-reference code can cross that boundary.
"""

import multiprocessing
import random

import pytest

from repro.errors import SimulationError
from repro.netsim import (
    EMPTY_MSG,
    Machine,
    ShardProgramSpec,
    ShardWorkerError,
    ShardedMachine,
    resolve_shards,
)
from repro.netsim.digest import canonical_digest as canon
from repro.netsim.faults import FaultModel
from repro.topology import Torus

# the pinned serial-kernel digests from test_step_kernel_parity.py
PLAIN_STORM_DIGEST = "02727c11938513e2"
FAULTY_STORM_DIGEST = "8cf026bd2fbb0935"
PROTECTED_STORM_DIGEST = "fa59d3a4d725030b"


class Storm:
    def init(self, ctx):
        ctx.state = 0

    def on_message(self, ctx, sender, payload):
        ctx.state += 1
        ctx.send(ctx.neighbours[ctx.state & 3], ctx.state)


class PollingCounter:
    """Exercises the poll round: counts steps, sends on a stride."""

    def init(self, ctx):
        ctx.state = 0
        ctx.machine.request_poll(ctx.node)

    def on_step(self, ctx):
        ctx.state += 1
        if ctx.state % 3 == 0:
            ctx.send(ctx.neighbours[0], ctx.state)
        ctx.machine.request_poll(ctx.node)

    def on_message(self, ctx, sender, payload):
        ctx.state += 100


class Exploder:
    def init(self, ctx):
        ctx.state = 0

    def on_message(self, ctx, sender, payload):
        raise RuntimeError("boom in handler")


def _state_rpc(program, ctx, arg):
    return ctx.state


def latency_mod3(src, dst):
    return (src + dst) % 3


def machine_digest(m, steps: int) -> str:
    for n in range(m.topology.n_nodes):
        m.inject(n, EMPTY_MSG)
    m.run(max_steps=steps)
    rep = m.report()
    if isinstance(m, ShardedMachine):
        per = m.map_nodes(_state_rpc)
        states = [per[n] for n in range(m.topology.n_nodes)]
    else:
        states = [m.state_of(n) for n in range(m.topology.n_nodes)]
    return canon({
        "states": states,
        "sent": rep.sent_total,
        "delivered": rep.delivered_total,
        "dropped": rep.dropped_total,
        "queued": rep.queued_series.tolist(),
        "per_step": rep.delivered_series.tolist(),
        "node_delivered": rep.node_delivered.tolist(),
        "steps": rep.steps,
    })


def sharded(program, backend, shards, **kw):
    return ShardedMachine(
        Torus((6, 6)), program, shards=shards, shard_backend=backend, **kw
    )


class TestPinnedParity:
    """The sharded backend hits the serial kernel's frozen literals."""

    @pytest.mark.parametrize("backend", ["inline", "process"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_plain_storm(self, backend, shards):
        with sharded(Storm(), backend, shards) as m:
            assert machine_digest(m, 60) == PLAIN_STORM_DIGEST

    @pytest.mark.parametrize("backend", ["inline", "process"])
    def test_faulty_latent_storm_rng_order(self, backend):
        # fault-model draws happen on the coordinator in replay order;
        # one reordered draw would shift every later drop decision
        with sharded(
            Storm(), backend, 4,
            faults=FaultModel(0.08, 0.03, rng=random.Random(42)),
            latency=latency_mod3,
        ) as m:
            assert machine_digest(m, 60) == FAULTY_STORM_DIGEST

    @pytest.mark.parametrize("backend", ["inline", "process"])
    def test_protected_storm(self, backend):
        # the layer-1.5 reliability protocol runs wholly coordinator-side
        with sharded(Storm(), backend, 4, reliability=True) as m:
            assert machine_digest(m, 60) == PROTECTED_STORM_DIGEST

    @pytest.mark.parametrize("partitioner", ["strip", "grid", "greedy"])
    def test_partitioner_choice_is_semantics_neutral(self, partitioner):
        with ShardedMachine(
            Torus((6, 6)), Storm(), shards=4, shard_backend="inline",
            partitioner=partitioner,
        ) as m:
            assert machine_digest(m, 60) == PLAIN_STORM_DIGEST

    def test_poll_round_parity(self):
        serial = Machine(Torus((6, 6)), PollingCounter())
        want = machine_digest(serial, 30)
        for backend in ("inline", "process"):
            with sharded(PollingCounter(), backend, 4) as m:
                assert machine_digest(m, 30) == want

    def test_spawn_context_parity(self):
        # spawn re-imports this module inside the worker: the strictest
        # picklability check the backend faces
        with ShardedMachine(
            Torus((6, 6)), Storm(), shards=2, shard_backend="process",
            mp_context="spawn",
        ) as m:
            assert machine_digest(m, 60) == PLAIN_STORM_DIGEST

    def test_program_spec_builds_in_worker(self):
        spec = ShardProgramSpec(Storm)
        with ShardedMachine(
            Torus((6, 6)), spec, shards=2, shard_backend="process"
        ) as m:
            assert machine_digest(m, 60) == PLAIN_STORM_DIGEST

    def test_one_shard_matches_serial(self):
        with ShardedMachine(Torus((6, 6)), Storm(), shards=1) as m:
            assert m.shard_backend == "inline"
            assert machine_digest(m, 60) == PLAIN_STORM_DIGEST


class TestResolveShards:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(None) == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert resolve_shards(None) == 3

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert resolve_shards(2) == 2

    def test_auto_and_zero_mean_all_cores(self):
        import os

        cores = os.cpu_count() or 1
        assert resolve_shards("auto") == cores
        assert resolve_shards(0) == cores

    def test_not_capped_at_core_count(self):
        import os

        cores = os.cpu_count() or 1
        assert resolve_shards(cores + 7) == cores + 7

    def test_garbage_rejected(self):
        with pytest.raises(SimulationError):
            resolve_shards("many")
        with pytest.raises(SimulationError):
            resolve_shards(-2)

    def test_shard_count_clamped_to_nodes(self):
        with ShardedMachine(Torus((2, 2)), Storm(), shards=9,
                            shard_backend="inline") as m:
            assert m.shards == 4


class TestGuards:
    def test_non_fifo_queue_rejected(self):
        with pytest.raises(SimulationError, match="FIFO"):
            ShardedMachine(Torus((4, 4)), Storm(), shards=2,
                           shard_backend="inline", queue_policy="lifo")

    def test_bounded_queue_rejected(self):
        with pytest.raises(SimulationError, match="FIFO"):
            ShardedMachine(Torus((4, 4)), Storm(), shards=2,
                           shard_backend="inline", queue_capacity=8)

    def test_bad_backend_name_rejected(self):
        with pytest.raises(SimulationError, match="shard_backend"):
            ShardedMachine(Torus((4, 4)), Storm(), shards=2,
                           shard_backend="threads")

    def test_state_of_redirects_to_map_nodes(self):
        with sharded(Storm(), "inline", 2) as m:
            with pytest.raises(SimulationError, match="map_nodes"):
                m.state_of(0)

    def test_unpicklable_program_rejected_by_process_backend(self):
        class Local(Storm):
            pass

        with pytest.raises(SimulationError, match="picklable"):
            ShardedMachine(Torus((4, 4)), Local(), shards=2,
                           shard_backend="process")

    def test_auto_backend_falls_back_inline_for_unpicklable(self):
        class Local(Storm):
            pass

        with ShardedMachine(Torus((4, 4)), Local(), shards=2,
                            shard_backend="auto") as m:
            assert m.shard_backend == "inline"
            assert machine_digest(m, 20)  # still runs

    def test_worker_exception_carries_shard_traceback(self):
        with sharded(Exploder(), "process", 2) as m:
            m.inject(0, EMPTY_MSG)
            with pytest.raises(RuntimeError, match="boom in handler"):
                m.step()

    def test_close_is_idempotent(self):
        m = sharded(Storm(), "process", 2)
        m.close()
        m.close()


class TestMapNodes:
    def test_gathers_every_node(self):
        with sharded(Storm(), "process", 4) as m:
            for n in range(m.topology.n_nodes):
                m.inject(n, EMPTY_MSG)
            m.run(max_steps=10)
            per = m.map_nodes(_state_rpc)
            assert sorted(per) == list(range(36))
            assert all(isinstance(v, int) for v in per.values())

    def test_partition_telemetry_counters(self):
        from repro.telemetry import TelemetryBus
        from repro.telemetry.metrics import MetricsSubscriber

        bus = TelemetryBus()
        sub = bus.attach(MetricsSubscriber())
        with ShardedMachine(Torus((4, 4)), Storm(), shards=4,
                            shard_backend="inline", telemetry=bus) as m:
            assert m.edge_cut > 0
        bus.flush()
        reg = sub.registry
        assert reg["l1.shard_count"].value == 4
        assert reg["l1.shard_edge_cut"].value == m.edge_cut
