"""Tests for message-size models and bandwidth accounting."""

import pytest

from repro.mapping import CancelMsg, ReplyMsg, StatusMsg, Ticket, WorkMsg
from repro.netsim import (
    HEADER_SIZE,
    FunctionalProgram,
    Machine,
    generic_content_size,
    make_envelope_sizer,
    unit_size,
)
from repro.sched import Packet
from repro.topology import Ring


class TestContentSizers:
    def test_unit_size(self):
        assert unit_size("anything") == 1
        assert unit_size(None) == 1

    def test_generic_scalar(self):
        assert generic_content_size(42) == 1
        assert generic_content_size("string") == 1

    def test_generic_tuple(self):
        assert generic_content_size((1, 2, 3)) == 4

    def test_generic_nested(self):
        assert generic_content_size(((1, 2), 3)) == 5

    def test_generic_dict(self):
        assert generic_content_size({1: True}) == 3


class TestEnvelopeSizer:
    def test_bare_payload(self):
        sizer = make_envelope_sizer()
        assert sizer("x") == 1

    def test_packet_unwrapped(self):
        sizer = make_envelope_sizer()
        assert sizer(Packet(0, 0, "x")) == HEADER_SIZE + 1

    def test_work_msg_charges_path(self):
        sizer = make_envelope_sizer()
        w = WorkMsg(Ticket(0, 0), "x", None, path=(0, 1, 2), hops_left=0, sender_count=0)
        assert sizer(w) == HEADER_SIZE + 3 + 1

    def test_reply_msg_charges_route(self):
        sizer = make_envelope_sizer()
        r = ReplyMsg(Ticket(0, 0), "x", route=(1, 0), sender_count=0)
        assert sizer(r) == HEADER_SIZE + 2 + 1

    def test_status_and_cancel_fixed(self):
        sizer = make_envelope_sizer()
        assert sizer(StatusMsg(7)) == HEADER_SIZE
        assert sizer(CancelMsg(Ticket(0, 0), 1)) == HEADER_SIZE

    def test_nested_packet_work(self):
        sizer = make_envelope_sizer()
        w = WorkMsg(Ticket(0, 0), (1, 2), None, path=(0,), hops_left=0, sender_count=0)
        assert sizer(Packet(0, 0, w)) == HEADER_SIZE + HEADER_SIZE + 1 + 3

    def test_custom_content_sizer(self):
        sizer = make_envelope_sizer(lambda c: 100)
        assert sizer("x") == 100


class TestMachineTrafficAccounting:
    @staticmethod
    def forwarding_program():
        def receive(node, state, sender, msg, send, neighbours):
            if msg:
                send(neighbours[0], msg - 1)

        return FunctionalProgram(None, receive)

    def test_default_unit_traffic(self):
        m = Machine(Ring(5), self.forwarding_program())
        m.inject(0, 3)
        rep = m.run()
        assert rep.traffic_total == rep.sent_total
        assert rep.mean_message_size == 1.0

    def test_custom_size_fn(self):
        m = Machine(Ring(5), self.forwarding_program(), size_fn=lambda p: 10)
        m.inject(0, 3)
        rep = m.run()
        assert rep.traffic_total == 10 * rep.sent_total
        assert rep.mean_message_size == 10.0

    def test_node_traffic_attribution(self):
        m = Machine(Ring(5), self.forwarding_program(), size_fn=lambda p: 5)
        m.inject(0, 2)  # 0 receives, forwards to 4; 4 forwards to 3
        rep = m.run()
        assert rep.node_traffic[0] == 5
        assert rep.node_traffic[4] == 5
        # external injection is not attributed to any node
        assert rep.node_traffic.sum() == rep.traffic_total - 5

    def test_sat_bandwidth_ordering(self, small_sat_suite):
        from repro import HyperspaceStack, Torus
        from repro.apps.sat import SatProblem, make_solve_sat, sat_content_size

        cnf = small_sat_suite[0]
        traffic = {}
        for mode in ("none", "fixpoint"):
            stack = HyperspaceStack(
                Torus((6, 6)),
                seed=1,
                size_fn=make_envelope_sizer(sat_content_size),
            )
            _, rep = stack.run_recursive(
                make_solve_sat(simplify=mode), SatProblem(cnf), halt_on_result=False
            )
            traffic[mode] = rep.traffic_total
        # deep local simplification saves an order of magnitude of bandwidth
        assert traffic["fixpoint"] * 5 < traffic["none"]
