"""Seed-pinned cross-commit parity for the batched step kernel.

The hot-path overhaul (batched deliveries, buffered telemetry, the
virtualized clean-link reliability path) must leave layer-1 semantics
bit-identical: same delivery schedule, same RNG draw order under faults,
same figure data.  Each digest below was computed by running the exact
same scenario on the pre-overhaul commit (the v0 growth seed) and is
pinned as a literal, so any behavioural drift in the kernel — not just a
crash — fails loudly.

If a digest changes, that is a *semantics* change to the simulator, not a
test to update casually: re-derive the value from a known-good commit and
justify the difference.
"""

import random

from repro.netsim import EMPTY_MSG, Machine
from repro.netsim.digest import canonical_digest as canon
from repro.netsim.faults import FaultModel
from repro.topology import Torus


class Storm:
    def init(self, ctx):
        ctx.state = 0

    def on_message(self, ctx, sender, payload):
        ctx.state += 1
        ctx.send(ctx.neighbours[ctx.state & 3], ctx.state)


def machine_digest(m: Machine, steps: int) -> str:
    for n in range(m.topology.n_nodes):
        m.inject(n, EMPTY_MSG)
    m.run(max_steps=steps)
    rep = m.report()
    states = [m.state_of(n) for n in range(m.topology.n_nodes)]
    return canon({
        "states": states,
        "sent": rep.sent_total,
        "delivered": rep.delivered_total,
        "dropped": rep.dropped_total,
        "queued": rep.queued_series.tolist(),
        "per_step": rep.delivered_series.tolist(),
        "node_delivered": rep.node_delivered.tolist(),
        "steps": rep.steps,
    })


class TestKernelParity:
    def test_plain_storm_schedule_pinned(self):
        # pure batched-kernel path: no faults, no latency, no telemetry
        m = Machine(Torus((6, 6)), Storm())
        assert machine_digest(m, 60) == "02727c11938513e2"

    def test_faulty_latent_storm_rng_order_pinned(self):
        # the unprotected slow path must consume fault-model draws in the
        # exact pre-overhaul order — a reordered draw shifts every
        # subsequent drop/duplicate decision
        m = Machine(
            Torus((6, 6)),
            Storm(),
            faults=FaultModel(0.08, 0.03, rng=random.Random(42)),
            latency=lambda s, d: (s + d) % 3,
        )
        assert machine_digest(m, 60) == "8cf026bd2fbb0935"

    def test_protected_clean_storm_pinned(self):
        # the virtualized clean-link reliability path must deliver the
        # same payloads on the same steps as the framed protocol did
        m = Machine(Torus((6, 6)), Storm(), reliability=True)
        assert machine_digest(m, 60) == "fa59d3a4d725030b"

    def test_traversal_flood_pinned(self):
        from repro.apps.traversal import run_traversal

        _, rep = run_traversal(Torus((8, 8)))
        digest = canon({
            "sent": rep.sent_total,
            "delivered": rep.delivered_total,
            "steps": rep.steps,
            "node": rep.node_delivered.tolist(),
        })
        assert digest == "863b1d14c4ec5b32"


class TestFigureParity:
    def test_figure5_quick_pinned(self):
        from repro.bench import QUICK, figure5_to_dict, run_figure5

        assert canon(figure5_to_dict(run_figure5(QUICK))) == "6af368b389c81da1"

    def test_figure4_quick_pinned(self):
        from repro.bench import QUICK, figure4_to_dict, run_figure4

        assert canon(figure4_to_dict(run_figure4(QUICK))) == "1bc9ec78f1de3dbd"
